#!/usr/bin/env bash
# Panic-hygiene ratchet: counts panic-family call sites (panic!, unwrap,
# expect, unreachable!, todo!) in each crate's src/ and fails if any crate
# exceeds its checked-in budget. The budgets are the current counts —
# including #[cfg(test)] unit-test modules, which keeps the script a dumb
# grep — so new panics in library code fail CI, and the numbers may only
# be ratcheted *down* as code is converted to located diagnostics.
#
# On failure the offending file:line sites are printed so the author can
# see exactly which call pushed the crate over budget instead of
# re-running the grep by hand.
#
# Exit status: 0 all within budget, 1 over budget, 2 a budgeted crate
# directory disappeared (rename the entry rather than silently skipping —
# a vanished dir would otherwise let its panics escape the ratchet).
#
# Usage: ci/panic_budget.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\('

# crate-dir budget
BUDGETS="
autovec 39
bench 27
core 80
criterion_compat 0
fuzz 20
proptest_compat 2
psimc 26
psir 105
rand_compat 0
serve 82
shapecheck 9
suite 19
telemetry 18
vmach 14
vmath 10
"

fail=0
missing=0
while read -r crate budget; do
  [ -z "$crate" ] && continue
  src="crates/$crate/src"
  if [ ! -d "$src" ]; then
    echo "panic_budget: budgeted directory $src no longer exists —" \
         "update or remove its BUDGETS entry" >&2
    missing=1
    continue
  fi
  sites=$(grep -rEn "$PATTERN" "$src" --include='*.rs' 2>/dev/null \
            | grep -v '^\s*//' || true)
  if [ -z "$sites" ]; then
    count=0
  else
    count=$(printf '%s\n' "$sites" | wc -l)
  fi
  if [ "$count" -gt "$budget" ]; then
    echo "panic_budget: crates/$crate has $count panic-family sites (budget $budget)" >&2
    echo "  convert new failures to telemetry::Diagnostic instead (DESIGN.md §9)" >&2
    echo "  offending sites:" >&2
    printf '%s\n' "$sites" | sed -E 's/:([0-9]+):.*/:\1/' | sort -u \
      | sed 's/^/    /' >&2
    fail=1
  elif [ "$count" -lt "$budget" ]; then
    echo "panic_budget: crates/$crate improved to $count (budget $budget) — ratchet the budget down"
  else
    echo "panic_budget: crates/$crate ok ($count/$budget)"
  fi
done <<EOF
$BUDGETS
EOF

[ "$missing" -ne 0 ] && exit 2
exit $fail

#!/usr/bin/env bash
# Aggregates the committed BENCH_*.json baselines (and any freshly
# generated reports passed as arguments) into one markdown perf table,
# appended to $GITHUB_STEP_SUMMARY when set, else printed to stdout.
#
# Pure bash/grep/sed on the flat top-level keys of the bench schema —
# no python or jq, so it runs identically on a bare runner and locally.
set -euo pipefail
cd "$(dirname "$0")/.."

# Top-level scalar field of a flat bench JSON document: first match of
#   "key": value
# outside the rows array (top-level keys precede "rows" in every report).
field() { # file key -> value or "-"
  local v
  v=$(sed -n 's/^  "'"$2"'": *\([^,}]*\),*$/\1/p' "$1" | head -n 1)
  [ -n "$v" ] && printf '%s' "$v" | tr -d '"' || printf '%s' "-"
}

# meta block field (two-space-deeper indentation).
meta() { # file key -> value or "-"
  local v
  v=$(sed -n 's/^    "'"$2"'": *\([^,}]*\),*$/\1/p' "$1" | head -n 1)
  [ -n "$v" ] && printf '%s' "$v" | tr -d '"' || printf '%s' "-"
}

round2() { # trim a float to 2 decimals without bc
  case "$1" in
  *.*) printf '%s' "$1" | sed 's/\(\.[0-9][0-9]\)[0-9]*$/\1/' ;;
  *) printf '%s' "$1" ;;
  esac
}

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  for f in BENCH_*.json; do
    [ -e "$f" ] && files+=("$f")
  done
fi
if [ ${#files[@]} -eq 0 ]; then
  echo "bench_summary: no BENCH_*.json baselines found" >&2
  exit 1
fi

out=$(mktemp)
{
  echo "### Benchmark baselines"
  echo
  echo "| report | tool | target | engine | geomean speedup | batch | batch speedup | identical | size |"
  echo "|---|---|---|---|---|---|---|---|---|"
  for f in "${files[@]}"; do
    tool=$(meta "$f" tool)
    mode=$(meta "$f" engine)
    # Schema 3: the costing target joins meta (the target×engine CI
    # matrix keeps one baseline per leg, and this table is the one place
    # the whole matrix is visible at once). compbench has no target.
    target=$(meta "$f" target)
    gm=$(round2 "$(field "$f" geomean_speedup)")
    # servebench meta carries the batching knobs; its plan_share section
    # carries the measured batched/unbatched throughput ratio. Both are
    # nested one level deep, same indentation as the meta block.
    bw=$(meta "$f" batch_window_ms)
    if [ "$bw" = "-" ]; then
      batch="-"
    elif [ "$bw" = "0" ]; then
      batch="off"
    else
      batch="${bw}ms/$(meta "$f" max_batch)"
    fi
    bs=$(meta "$f" batch_speedup)
    [ "$bs" != "-" ] && bs="$(round2 "$bs")x"
    # runbench reports per-kernel identity; servebench reports checked.
    ident=$(field "$f" identical)
    [ "$ident" = "-" ] && ident=$(field "$f" checked)
    size=$(field "$f" kernels)
    [ "$size" = "-" ] && size="$(field "$f" items) items" || size="$size kernels"
    bail=$(field "$f" bailouts)
    [ "$bail" != "-" ] && mode="$mode ($bail bailouts)"
    echo "| $f | $tool | $target | $mode | ${gm}x | $batch | $bs | $ident | $size |"
  done
  echo
} >"$out"

cat "$out"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  cat "$out" >>"$GITHUB_STEP_SUMMARY"
fi
rm -f "$out"

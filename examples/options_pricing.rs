//! Black–Scholes option pricing — the math-library workload of Figure 4,
//! including the SLEEF-vs-built-in `pow` story on a binomial refinement.
//!
//! ```text
//! cargo run --release --example options_pricing
//! ```

use parsimony::{vectorize_module, MathLib, VectorizeOptions};
use psir::{Interp, Memory, RtVal};
use vmach::{Target, TargetCost};
use vmath::RuntimeExterns;

const SRC: &str = "
void black_scholes(f32* restrict s, f32* restrict k, f32* restrict t,
                   f32* restrict out, f32 r, f32 vol, i64 n) {
    psim gang(16) threads(n) {
        i64 i = psim_thread_num();
        f32 sp = s[i];
        f32 kp = k[i];
        f32 tp = t[i];
        f32 sq = vol * sqrt(tp);
        f32 d1 = (log(sp / kp) + (r + 0.5 * vol * vol) * tp) / sq;
        f32 d2 = d1 - sq;
        out[i] = sp * cdf(d1) - kp * exp(0.0 - r * tp) * cdf(d2);
    }
}

void binomial(f32* restrict s, f32* restrict k, f32* restrict t,
              f32* restrict out, f32* restrict v, f32 r, f32 vol,
              i64 steps, i64 n) {
    psim gang(16) threads(n) {
        i64 i = psim_thread_num();
        f32 sp = s[i];
        f32 kp = k[i];
        f32 tp = t[i];
        f32 dt = tp / (f32) steps;
        f32 u = exp(vol * sqrt(dt));
        f32 disc = exp(r * dt);
        f32 pu = (disc - 1.0 / u) / (u - 1.0 / u);
        f32 pd = 1.0 - pu;
        f32 idisc = 1.0 / disc;
        for (i64 j = 0; j < steps + 1; j += 1) {
            f32 px = sp * pow(u, 2.0 * (f32) j - (f32) steps);
            v[j * n + i] = max(px - kp, 0.0);
        }
        for (i64 back = steps; back > 0; back -= 1) {
            for (i64 j = 0; j < back; j += 1) {
                v[j * n + i] = (pu * v[(j + 1) * n + i] + pd * v[j * n + i]) * idisc;
            }
        }
        out[i] = v[i];
    }
}
";

static COST: std::sync::LazyLock<TargetCost> =
    std::sync::LazyLock::new(|| TargetCost::for_target(Target::reference_default()));
static EXTERNS: RuntimeExterns = RuntimeExterns::new();

fn price(
    module: &psir::Module,
    func: &str,
    n: u64,
    steps: Option<u64>,
) -> Result<(Vec<f32>, u64), Box<dyn std::error::Error>> {
    let mut mem = Memory::default();
    let to_bytes =
        |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|f| f.to_bits().to_le_bytes()).collect() };
    let spots: Vec<f32> = (0..n).map(|i| 80.0 + (i % 41) as f32).collect();
    let strikes: Vec<f32> = (0..n).map(|i| 90.0 + (i % 21) as f32).collect();
    let expiries: Vec<f32> = (0..n).map(|i| 0.25 + (i % 8) as f32 * 0.25).collect();
    let s = mem.alloc_bytes(&to_bytes(&spots), 64)?;
    let k = mem.alloc_bytes(&to_bytes(&strikes), 64)?;
    let t = mem.alloc_bytes(&to_bytes(&expiries), 64)?;
    let out = mem.alloc(4 * n, 64)?;
    let mut args = vec![RtVal::S(s), RtVal::S(k), RtVal::S(t), RtVal::S(out)];
    if let Some(steps) = steps {
        let scratch = mem.alloc(4 * (steps + 1) * n, 64)?;
        args.push(RtVal::S(scratch));
        args.push(RtVal::from_f32(0.03));
        args.push(RtVal::from_f32(0.25));
        args.push(RtVal::S(steps));
    } else {
        args.push(RtVal::from_f32(0.03));
        args.push(RtVal::from_f32(0.25));
    }
    args.push(RtVal::S(n));
    let mut it = Interp::new(module, mem, &*COST, &EXTERNS);
    it.call(func, &args)?;
    let bytes = it.mem.read_bytes(out, 4 * n)?;
    let prices = bytes
        .chunks(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
        .collect();
    Ok((prices, it.cycles))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2048u64;
    let steps = 16u64;
    let module = psimc::compile(SRC)?;

    // Two compilations of the same source: Parsimony with SLEEF-like math,
    // and the gang-synchronous / ispc-like mode with the fast built-in pow.
    let sleef = vectorize_module(&module, &VectorizeOptions::default())?;
    let fastm = vectorize_module(&module, &VectorizeOptions::gang_synchronous())?;
    assert_eq!(
        VectorizeOptions::default().math_lib,
        MathLib::Sleef,
        "default is the paper's SLEEF configuration"
    );

    let (bs, bs_cycles) = price(&sleef.module, "black_scholes", n, None)?;
    println!("Black–Scholes: {n} options in {bs_cycles} cycles");
    println!("  first prices: {:.2} {:.2} {:.2}", bs[0], bs[1], bs[2]);

    let (bin_a, cyc_sleef) = price(&sleef.module, "binomial", n, Some(steps))?;
    let (bin_b, cyc_fastm) = price(&fastm.module, "binomial", n, Some(steps))?;
    assert_eq!(bin_a, bin_b, "both math libraries agree on values");
    // The binomial lattice converges toward Black–Scholes.
    let mean_gap: f32 = bs
        .iter()
        .zip(&bin_a)
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / n as f32;
    println!("binomial ({steps} steps): mean |binomial − BS| = {mean_gap:.3}");
    println!("  with SLEEF-like pow      : {cyc_sleef} cycles");
    println!("  with ispc-built-in pow   : {cyc_fastm} cycles");
    println!(
        "  ratio                    : {:.2} (the paper's Figure 4 gap: 0.71)",
        cyc_fastm as f64 / cyc_sleef as f64
    );
    Ok(())
}

//! An image-processing pipeline in PsimC — the Simd-Library-style workload
//! that motivates Figure 5.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```
//!
//! Three stages over an interleaved BGR image: conversion to gray (strided
//! loads → packed + shuffle, §4.2.3), a 3-tap blur, and Otsu-free
//! binarization against a mean threshold computed with a gang reduction.
//! Each stage is one `psim` region with a gang size chosen for its element
//! width — the per-region gang-size freedom §1 argues for.

use parsimony::{vectorize_module, VectorizeOptions};
use psir::{Interp, Memory, RtVal};
use vmach::{Target, TargetCost};
use vmath::RuntimeExterns;

const SRC: &str = "
void to_gray(u8* restrict bgr, u8* restrict gray, i64 n) {
    psim gang(64) threads(n) {
        i64 i = psim_thread_num();
        i32 b = (i32) bgr[i * 3];
        i32 g = (i32) bgr[i * 3 + 1];
        i32 r = (i32) bgr[i * 3 + 2];
        gray[i] = (u8) ((b * 29 + g * 150 + r * 77 + 128) >> 8);
    }
}

void blur3(u8* restrict src, u8* restrict dst, i64 n) {
    psim gang(64) threads(n) {
        i64 i = psim_thread_num();
        i32 s = (i32) src[i] + 2 * (i32) src[i + 1] + (i32) src[i + 2] + 2;
        dst[i] = (u8) (s >> 2);
    }
}

void mean_value(u8* restrict src, u64* restrict out, i64 n) {
    psim gang(64) threads(64) {
        i64 lane = psim_thread_num();
        u64 acc = 0;
        for (i64 base = 0; base < n; base += 64) {
            acc += (u64) src[base + lane];
        }
        u64 total = psim_reduce_add(acc);
        out[0] = total / (u64) n;
    }
}

void binarize(u8* restrict src, u8* restrict dst, u64* restrict mean, i64 n) {
    psim gang(64) threads(n) {
        i64 i = psim_thread_num();
        u8 t = (u8) mean[0];
        dst[i] = src[i] > t ? (u8) 255 : (u8) 0;
    }
}
";

static COST: std::sync::LazyLock<TargetCost> =
    std::sync::LazyLock::new(|| TargetCost::for_target(Target::reference_default()));
static EXTERNS: RuntimeExterns = RuntimeExterns::new();

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (512u64, 256u64);
    let n = w * h;

    let module = psimc::compile(SRC)?;
    let out = vectorize_module(&module, &VectorizeOptions::default())?;
    for warning in &out.warnings {
        println!("note: {warning}");
    }

    // Synthesize a BGR test image (diagonal gradient with a bright disc).
    let mut bgr = vec![0u8; (3 * n + 64) as usize];
    for y in 0..h {
        for x in 0..w {
            let i = (y * w + x) as usize;
            let (dx, dy) = (x as i64 - 256, y as i64 - 128);
            let inside = dx * dx + dy * dy < 90 * 90;
            bgr[3 * i] = (x / 2) as u8;
            bgr[3 * i + 1] = if inside { 220 } else { (y / 2) as u8 };
            bgr[3 * i + 2] = ((x + y) / 4) as u8;
        }
    }

    let mut mem = Memory::default();
    let p_bgr = mem.alloc_bytes(&bgr, 64)?;
    let p_gray = mem.alloc(n + 64, 64)?;
    let p_blur = mem.alloc(n + 64, 64)?;
    let p_mean = mem.alloc(8, 64)?;
    let p_bin = mem.alloc(n, 64)?;

    let mut it = Interp::new(&out.module, mem, &*COST, &EXTERNS);
    it.call("to_gray", &[RtVal::S(p_bgr), RtVal::S(p_gray), RtVal::S(n)])?;
    it.call("blur3", &[RtVal::S(p_gray), RtVal::S(p_blur), RtVal::S(n)])?;
    it.call(
        "mean_value",
        &[RtVal::S(p_blur), RtVal::S(p_mean), RtVal::S(n)],
    )?;
    it.call(
        "binarize",
        &[
            RtVal::S(p_blur),
            RtVal::S(p_bin),
            RtVal::S(p_mean),
            RtVal::S(n),
        ],
    )?;

    let mean = u64::from_le_bytes(it.mem.read_bytes(p_mean, 8)?.try_into()?);
    let bin = it.mem.read_bytes(p_bin, n)?;
    let white = bin.iter().filter(|&&b| b == 255).count();
    println!("image {w}x{h}: mean gray = {mean}, {white} white pixels after binarization");
    println!("pipeline took {} simulated cycles total", it.cycles);
    println!("memory-op mix: {:?}", it.stats);

    // Render a coarse ASCII preview (every 16th pixel).
    println!("\npreview:");
    for y in (0..h).step_by(16) {
        let row: String = (0..w)
            .step_by(8)
            .map(|x| {
                if bin[(y * w + x) as usize] == 255 {
                    '#'
                } else {
                    '.'
                }
            })
            .collect();
        println!("{row}");
    }
    Ok(())
}

//! Horizontal operations — the semantics §2.2/§3 of the paper is about.
//!
//! ```text
//! cargo run --release --example horizontal_ops
//! ```
//!
//! Three demonstrations:
//!
//! 1. **Listing 3**: the neighbor-copy that serial semantics cannot express
//!    (`a[i+1] = a[i]` needs all loads before any store) written with an
//!    explicit `psim_gang_sync()` — and the proof that the auto-vectorizer
//!    correctly *refuses* the serial version (Listing 1's data race).
//! 2. A gang-wide prefix sum built from `psim_shuffle` (log-step scan).
//! 3. A bitonic-style gang sort using shuffles and min/max.

use autovec::{autovectorize_function, AutovecOptions};
use parsimony::{vectorize_module, VectorizeOptions};
use psir::{Interp, Memory, RtVal};
use vmath::RuntimeExterns;

const SRC: &str = "
// Listing 3 of the paper: explicit synchronization makes the shift legal.
// As in the paper, the gang spans the whole region (gang_size(N)) — the
// model guarantees nothing about ordering *between* gangs, so the
// neighbor-write is only race-free within one gang.
void shift_right(i32* a, i64 n) {
    psim gang(16) threads(n) {
        i64 i = psim_thread_num();
        i32 tmp = a[i];
        psim_gang_sync();
        a[i + 1] = tmp;
    }
}

// Hillis-Steele inclusive scan within each gang (log2(8) = 3 steps).
void gang_prefix_sum(i32* restrict a, i64 n) {
    psim gang(8) threads(n) {
        i64 lane = psim_lane_num();
        i64 i = psim_thread_num();
        i32 x = a[i];
        for (i64 d = 1; d < 8; d = d * 2) {
            i32 up = psim_shuffle(x, lane - d);
            x = x + (lane >= d ? up : 0);
        }
        a[i] = x;
    }
}

// Odd-even transposition sort within each gang (8 rounds of
// shuffle + min/max).
void gang_sort(i32* restrict a, i64 n) {
    psim gang(8) threads(n) {
        i64 lane = psim_lane_num();
        i64 i = psim_thread_num();
        i32 x = a[i];
        for (i64 round = 0; round < 8; round += 1) {
            i64 phase = round % 2;
            bool left = lane % 2 == phase % 2;
            i64 partner = left ? lane + 1 : lane - 1;
            bool has = partner >= 0 && partner < 8;
            i32 other = psim_shuffle(x, partner);
            i32 lo = min(x, other);
            i32 hi = max(x, other);
            x = has ? (left ? lo : hi) : x;
        }
        a[i] = x;
    }
}
";

static COST: psir::UnitCost = psir::UnitCost;
static EXTERNS: RuntimeExterns = RuntimeExterns::new();

fn run(module: &psir::Module, func: &str, data: &[i32], extra: usize) -> Vec<i32> {
    let mut mem = Memory::default();
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let a = mem.alloc_bytes(&bytes, 64).expect("alloc");
    let mut it = Interp::new(module, mem, &COST, &EXTERNS);
    it.call(func, &[RtVal::S(a), RtVal::S((data.len() - extra) as u64)])
        .expect("runs");
    it.mem
        .read_bytes(a, (data.len() * 4) as u64)
        .expect("read")
        .chunks(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = psimc::compile(SRC)?;
    let out = vectorize_module(&module, &VectorizeOptions::default())?;

    // 1. Listing 3: the synchronized shift (one gang of 16).
    let data: Vec<i32> = (0..17).collect();
    let shifted = run(&out.module, "shift_right", &data, 1);
    println!("shift_right: {:?}", &shifted[..17]);
    assert_eq!(&shifted[1..17], &(0..16).collect::<Vec<i32>>()[..]);

    // …and the auto-vectorizer must REJECT the serial form (Listing 1).
    let serial = psimc::compile(
        "void shift_right(i32* restrict a, i64 n) {
            for (i64 i = 0; i < n; i += 1) { a[i + 1] = a[i]; }
        }",
    )?;
    let (_, report) = autovectorize_function(
        serial.function("shift_right").unwrap(),
        &AutovecOptions::default(),
    );
    assert_eq!(report.vectorized, 0);
    println!(
        "auto-vectorizer correctly rejected the serial shift: {}",
        report.rejected[0].1
    );

    // 2. Prefix sum per gang.
    let data: Vec<i32> = vec![1; 16];
    let scanned = run(&out.module, "gang_prefix_sum", &data, 0);
    println!("prefix sums: {scanned:?}");
    assert_eq!(&scanned[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(&scanned[8..], &[1, 2, 3, 4, 5, 6, 7, 8]);

    // 3. Gang sort.
    let data: Vec<i32> = vec![5, 1, 7, 3, 8, 2, 6, 4, 42, -3, 9, 0, 17, 11, -8, 25];
    let sorted = run(&out.module, "gang_sort", &data, 0);
    println!("gang-sorted: {sorted:?}");
    assert_eq!(&sorted[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
    let mut second: Vec<i32> = data[8..].to_vec();
    second.sort_unstable();
    assert_eq!(&sorted[8..], &second[..]);

    println!("all horizontal-operation demos verified");
    Ok(())
}

//! Quickstart: the whole Parsimony flow on one SAXPY kernel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's pipeline end to end: PsimC source with a `psim` region
//! (§3) → front-end outlining into an SPMD-annotated function plus the
//! Listing 6 gang loop (§4.1) → the standalone IR-to-IR vectorization pass
//! (§4.2) → execution on the virtual AVX-512 machine with simulated cycles
//! (§4.3), compared against plain scalar execution.

use parsimony::{vectorize_module, VectorizeOptions};
use psir::{Interp, Memory, RtVal};
use vmach::{Target, TargetCost};
use vmath::RuntimeExterns;

const SRC: &str = "
// y[i] = a*x[i] + y[i], one conceptual thread per element.
void saxpy(f32* restrict x, f32* restrict y, f32 a, i64 n) {
    psim gang(16) threads(n) {
        i64 i = psim_thread_num();
        y[i] = a * x[i] + y[i];
    }
}
";

static COST: std::sync::LazyLock<TargetCost> =
    std::sync::LazyLock::new(|| TargetCost::for_target(Target::reference_default()));
static EXTERNS: RuntimeExterns = RuntimeExterns::new();

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Front-end: PsimC → scalar IR with an outlined SPMD region.
    let module = psimc::compile(SRC)?;
    println!("== scalar module (front-end output) ==");
    for f in module.functions() {
        print!("{}", psir::print_function(f));
    }

    // 2. Middle-end: the Parsimony pass vectorizes the region and re-inlines
    //    the full-gang specialization into the gang loop.
    let out = vectorize_module(&module, &VectorizeOptions::default())?;
    println!("\n== vectorized driver (after the Parsimony pass) ==");
    print!(
        "{}",
        psir::print_function(out.module.function("saxpy").unwrap())
    );

    // 3. Run it on the virtual AVX-512 machine.
    let n = 1000usize;
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
    let ys: Vec<f32> = (0..n).map(|i| 100.0 - i as f32).collect();
    let mut mem = Memory::default();
    let to_bytes =
        |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|f| f.to_bits().to_le_bytes()).collect() };
    let x = mem.alloc_bytes(&to_bytes(&xs), 64)?;
    let y = mem.alloc_bytes(&to_bytes(&ys), 64)?;
    let mut it = Interp::new(&out.module, mem, &*COST, &EXTERNS);
    it.call(
        "saxpy",
        &[
            RtVal::S(x),
            RtVal::S(y),
            RtVal::from_f32(3.0),
            RtVal::S(n as u64),
        ],
    )?;
    let vec_cycles = it.cycles;

    // Verify against the reference computation.
    let bytes = it.mem.read_bytes(y, (n * 4) as u64)?;
    for i in 0..n {
        let got = f32::from_bits(u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into()?));
        assert_eq!(got, 3.0 * xs[i] + ys[i], "element {i}");
    }

    // 4. Compare with scalar execution of the serial version.
    let serial = psimc::compile(
        "void saxpy(f32* restrict x, f32* restrict y, f32 a, i64 n) {
            for (i64 i = 0; i < n; i += 1) { y[i] = a * x[i] + y[i]; }
        }",
    )?;
    let mut mem = Memory::default();
    let x = mem.alloc_bytes(&to_bytes(&xs), 64)?;
    let y = mem.alloc_bytes(&to_bytes(&ys), 64)?;
    let mut it = Interp::new(&serial, mem, &*COST, &EXTERNS);
    it.call(
        "saxpy",
        &[
            RtVal::S(x),
            RtVal::S(y),
            RtVal::from_f32(3.0),
            RtVal::S(n as u64),
        ],
    )?;
    let scalar_cycles = it.cycles;

    println!("\nresults verified for all {n} elements");
    println!("scalar     : {scalar_cycles:>9} simulated cycles");
    println!("parsimony  : {vec_cycles:>9} simulated cycles");
    println!(
        "speedup    : {:.2}x (gang of 16 f32 lanes on the 512-bit machine)",
        scalar_cycles as f64 / vec_cycles as f64
    );
    Ok(())
}

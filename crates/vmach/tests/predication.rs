//! The two cross-family legalization properties the SVE target is built
//! on (ISSUE 10's property-test satellite):
//!
//! 1. **Throughput parity.** For unmasked straight-line kernels, the
//!    predication-first legalization and the fixed-width
//!    shuffle/blend legalization agree on total element throughput: at
//!    equal register width every instruction costs the same total cycles,
//!    so a target switch cannot change what "fast" means for code with no
//!    masked lanes.
//! 2. **Predication wins on masked tails.** For the masked loads and
//!    stores a loop tail produces, the predicated sequence uses strictly
//!    fewer micro-ops (and strictly fewer cycles) than the fixed-width
//!    blend/read-modify-write emulation, at every register count.

use proptest::prelude::*;
use psir::{BinOp, CmpPred, Function, FunctionBuilder, Inst, InstId, Param, ScalarTy, Ty, Value};
use vmach::{legalize, Target, UopKind};

/// One step of a randomly generated straight-line vector kernel.
#[derive(Debug, Clone)]
enum Op {
    Add,
    Mul,
    Div,
    Sqrtish, // unary: FNeg to keep values finite, still a vec unary op
    Select,
    Splat,
    Shuffle,
    RoundTrip, // packed store + packed load (unmasked memory traffic)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Sqrtish),
        Just(Op::Select),
        Just(Op::Splat),
        Just(Op::Shuffle),
        Just(Op::RoundTrip),
    ]
}

fn lanes() -> impl Strategy<Value = u32> {
    prop_oneof![Just(4u32), Just(8), Just(16), Just(32), Just(64)]
}

/// Builds an unmasked straight-line kernel from the op list: a packed
/// load, a chain of vector ops, a packed store. No instruction carries a
/// mask, which is the regime where every target family must agree.
fn build_kernel(ops: &[Op], lanes: u32) -> Function {
    let mut fb = FunctionBuilder::new(
        "k",
        vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
        Ty::Void,
    );
    let vty = Ty::vec(ScalarTy::F32, lanes);
    let mut v = fb.load(vty, Value::Param(0), None);
    for o in ops {
        v = match o {
            Op::Add => fb.bin(BinOp::FAdd, v, v),
            Op::Mul => fb.bin(BinOp::FMul, v, v),
            Op::Div => fb.bin(BinOp::FDiv, v, v),
            Op::Sqrtish => fb.un(psir::UnOp::FNeg, v),
            Op::Select => {
                let c = fb.cmp(CmpPred::FOgt, v, v);
                fb.select(c, v, v)
            }
            Op::Splat => {
                let s = fb.splat(1.5f32, lanes);
                fb.bin(BinOp::FAdd, v, s)
            }
            Op::Shuffle => fb.shuffle_const(v, (0..lanes).rev().collect()),
            Op::RoundTrip => {
                fb.store(Value::Param(0), v, None);
                fb.load(vty, Value::Param(0), None)
            }
        };
    }
    fb.store(Value::Param(0), v, None);
    fb.ret(None);
    fb.finish()
}

/// Builds a loop-tail access pattern: a masked load and a masked store of
/// `lanes` × f32 (what whilelt-predicated tails and fixed-width epilogue
/// fix-ups both legalize from).
fn build_masked_tail(lanes: u32) -> (Function, InstId, InstId) {
    let mut fb = FunctionBuilder::new(
        "tail",
        vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
        Ty::Void,
    );
    let m = fb.const_vec(
        ScalarTy::I1,
        (0..lanes as u64).map(|i| u64::from(i % 2 == 0)).collect(),
    );
    let v = fb.load(Ty::vec(ScalarTy::F32, lanes), Value::Param(0), Some(m));
    fb.store(Value::Param(0), v, Some(m));
    fb.ret(None);
    let f = fb.finish();
    let mut load = None;
    let mut store = None;
    for i in 0..f.num_insts() as u32 {
        match f.inst(InstId(i)) {
            Inst::Load { mask: Some(_), .. } => load = Some(InstId(i)),
            Inst::Store { mask: Some(_), .. } => store = Some(InstId(i)),
            _ => {}
        }
    }
    (f, load.expect("masked load"), store.expect("masked store"))
}

fn total_cycles(t: &Target, f: &Function) -> u64 {
    (0..f.num_insts() as u32)
        .map(|i| {
            legalize(t, f, InstId(i))
                .iter()
                .map(|u| u.cycles)
                .sum::<u64>()
        })
        .sum()
}

fn total_uops(t: &Target, f: &Function) -> usize {
    (0..f.num_insts() as u32)
        .map(|i| legalize(t, f, InstId(i)).len())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    // Property 1: at equal register width, unmasked straight-line kernels
    // cost identically (cycles AND uop count) under fixed-width and
    // predication-first legalization.
    #[test]
    fn unmasked_throughput_is_family_invariant(
        ops in proptest::collection::vec(op(), 1..12),
        lanes in lanes(),
    ) {
        let f = build_kernel(&ops, lanes);
        for (fixed, scalable) in [
            (Target::avx512(), Target::sve(512)),
            (Target::avx2(), Target::sve(256)),
        ] {
            prop_assert_eq!(
                total_cycles(&fixed, &f),
                total_cycles(&scalable, &f),
                "cycles diverge between {} and {} on {:?} x{}",
                fixed.flag_name(), scalable.flag_name(), ops, lanes
            );
            prop_assert_eq!(
                total_uops(&fixed, &f),
                total_uops(&scalable, &f),
                "uop counts diverge between {} and {} on {:?} x{}",
                fixed.flag_name(), scalable.flag_name(), ops, lanes
            );
        }
    }

    // Property 2: masked-tail loads and stores take strictly fewer uops
    // (and cycles) under predication than under blend fix-ups, at every
    // lane count / register width combination.
    #[test]
    fn masked_tails_are_strictly_cheaper_under_predication(
        lanes in lanes(),
    ) {
        let (f, load, store) = build_masked_tail(lanes);
        for (fixed, scalable) in [
            (Target::avx512(), Target::sve(512)),
            (Target::avx2(), Target::sve(256)),
        ] {
            let tail_uops = |t: &Target| {
                legalize(t, &f, load).len() + legalize(t, &f, store).len()
            };
            let tail_cycles = |t: &Target| -> u64 {
                legalize(t, &f, load).iter().chain(legalize(t, &f, store).iter())
                    .map(|u| u.cycles).sum()
            };
            prop_assert!(
                tail_uops(&scalable) < tail_uops(&fixed),
                "{}: {} uops vs {}: {} uops at {} lanes",
                scalable.flag_name(), tail_uops(&scalable),
                fixed.flag_name(), tail_uops(&fixed), lanes
            );
            prop_assert!(
                tail_cycles(&scalable) < tail_cycles(&fixed),
                "cycles not strictly lower at {} lanes", lanes
            );
            // And the predicated sequence is genuinely predication-first:
            // no blend fix-ups, a governing predicate up front.
            let s = legalize(&scalable, &f, store);
            prop_assert!(s.iter().all(|u| u.kind != UopKind::Blend));
            prop_assert!(matches!(s[0].kind, UopKind::WhileLt));
        }
    }
}

//! Legalization of IR instructions onto the target's registers.
//!
//! Each IR instruction maps to a sequence of machine micro-ops, splitting
//! vectors wider than the register (the back-end "unrolling" of §4.3) and
//! turning gathers/scatters into their per-lane machine behavior. The
//! legalized sequence is data — the interpreter executes IR semantics and
//! merely *charges* for the sequence — so tests can assert exactly what a
//! given instruction costs and why.

use crate::target::Target;
use psir::{BinOp, Function, Inst, InstId, Intrinsic, Ty, UnOp};

/// The classes of machine micro-ops the cost model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// Scalar integer ALU op (also address arithmetic); throughput-bound
    /// on a 4-wide core.
    ScalarAlu,
    /// Scalar floating-point op; FP chains are latency-bound (~4 cycles of
    /// latency amortize to ~1 cycle each in real kernels).
    ScalarFp,
    /// Scalar float divide / square root.
    ScalarDiv,
    /// Scalar load or store (L1-hit assumption).
    ScalarMem,
    /// Packed vector ALU op (one register's worth).
    VecAlu,
    /// Packed vector multiply (integer or float).
    VecMul,
    /// Vector divide / square root (iterative unit).
    VecDiv,
    /// Packed (consecutive, possibly masked) vector load/store.
    VecMem,
    /// Hardware gather, priced per lane.
    Gather {
        /// Lanes gathered.
        lanes: u32,
    },
    /// Hardware scatter, priced per lane.
    Scatter {
        /// Lanes scattered.
        lanes: u32,
    },
    /// In-register permutation with a compile-time pattern.
    Shuffle,
    /// Cross-register or runtime-index permutation (`vperm*`).
    ShuffleVar,
    /// Mask-register operation.
    MaskOp,
    /// Lane merge/select fix-up on a fixed-width target (`vpblend*`-class);
    /// how masked operations and vector selects legalize without hardware
    /// predication.
    Blend,
    /// Predicated register move on a scalable target (`sel`/`movprfx`
    /// under a governing predicate); the predication-first counterpart of
    /// [`UopKind::Blend`].
    PredMove,
    /// `whilelt`-style governing-predicate construction on a scalable
    /// target (loop-tail predication instead of an unrolled epilogue).
    WhileLt,
    /// First-faulting contiguous load under a governing predicate
    /// (`ldff1*`-class, scalable targets only).
    FfLoad,
    /// Predicated contiguous store (`st1*` under a governing predicate,
    /// scalable targets only) — no read-modify-write emulation needed.
    PredMem,
    /// Cross-lane reduction step sequence.
    Reduce {
        /// Lanes reduced.
        lanes: u32,
    },
    /// `vpsadbw`-class fused op.
    Sad,
    /// Lane extract/insert between scalar and vector registers.
    LaneXfer,
    /// Broadcast scalar → vector.
    Splat,
    /// Branch/terminator.
    Branch,
    /// Call overhead (callee body is charged separately as it executes).
    Call,
    /// Stack allocation bump.
    Alloca,
}

impl UopKind {
    /// The profiling cost class this micro-op is attributed to (the
    /// telemetry-visible coarsening of the uop taxonomy).
    pub fn cost_class(self) -> telemetry::CostClass {
        use telemetry::CostClass as C;
        match self {
            UopKind::ScalarAlu => C::ScalarAlu,
            UopKind::ScalarFp | UopKind::ScalarDiv => C::ScalarFp,
            UopKind::ScalarMem => C::ScalarMem,
            UopKind::VecAlu => C::VecAlu,
            UopKind::VecMul | UopKind::Sad => C::VecMul,
            UopKind::VecDiv => C::VecDiv,
            UopKind::VecMem => C::VecMem,
            UopKind::Gather { .. } => C::Gather,
            UopKind::Scatter { .. } => C::Scatter,
            UopKind::Shuffle | UopKind::ShuffleVar | UopKind::Blend => C::Shuffle,
            UopKind::MaskOp | UopKind::PredMove | UopKind::WhileLt => C::MaskOp,
            UopKind::FfLoad | UopKind::PredMem => C::VecMem,
            UopKind::Reduce { .. } => C::Reduce,
            UopKind::LaneXfer => C::LaneXfer,
            UopKind::Splat => C::Splat,
            UopKind::Branch => C::Branch,
            UopKind::Call | UopKind::Alloca => C::Other,
        }
    }
}

/// One legalized micro-op with its cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// Micro-op class.
    pub kind: UopKind,
    /// Cycles charged.
    pub cycles: u64,
}

/// Conversion factor between the model's cost units and CPU cycles.
///
/// Costs are in **quarter-cycle** units: scalar-class operations cost 1
/// (modeling a 4-wide superscalar core sustaining ~4 scalar ops/cycle,
/// which is what the paper's serial baselines actually achieve), while one
/// 512-bit vector op costs 4 (one port-bound vector op per cycle) and
/// vector memory ops cost 8 (≈32 B/cycle sustained bandwidth). Gathers and
/// scatters pay per lane, keeping §4.2.2's "order of magnitude" gap over
/// packed accesses.
pub const QUARTER_CYCLES_PER_CYCLE: u64 = 4;

pub(crate) fn cycles_for(kind: UopKind) -> u64 {
    match kind {
        UopKind::ScalarAlu => 1,
        UopKind::ScalarFp => 4,
        UopKind::ScalarDiv => 24,
        UopKind::ScalarMem => 1,
        UopKind::VecAlu => 4,
        UopKind::VecMul => 4,
        UopKind::VecDiv => 32,
        UopKind::VecMem => 8,
        // Gathers/scatters are "often no faster than performing each
        // individual serialized scalar access" (§4.2.2): ~1 cycle per lane
        // plus fixed overhead.
        UopKind::Gather { lanes } => 16 + 4 * lanes as u64,
        UopKind::Scatter { lanes } => 24 + 4 * lanes as u64,
        UopKind::Shuffle => 4,
        UopKind::ShuffleVar => 12,
        UopKind::MaskOp => 1,
        // Blends run on the shuffle port; a predicated move is priced the
        // same so unmasked select-bearing kernels cost identically on every
        // family (the throughput-parity property).
        UopKind::Blend => 4,
        UopKind::PredMove => 4,
        // Predicate construction is a 1-unit mask-register op; predicated /
        // first-faulting contiguous accesses run at packed-memory speed.
        UopKind::WhileLt => 1,
        UopKind::FfLoad => 8,
        UopKind::PredMem => 8,
        UopKind::Reduce { lanes } => 8 * (32 - (lanes.max(1)).leading_zeros() as u64).max(1),
        UopKind::Sad => 4,
        UopKind::LaneXfer => 8,
        UopKind::Splat => 4,
        UopKind::Branch => 1,
        UopKind::Call => 16,
        UopKind::Alloca => 8,
    }
}

fn uop(kind: UopKind) -> Uop {
    Uop {
        kind,
        cycles: cycles_for(kind),
    }
}

fn repeat(kind: UopKind, n: u64) -> Vec<Uop> {
    (0..n).map(|_| uop(kind)).collect()
}

fn vec_split(t: &Target, ty: Ty) -> u64 {
    match ty {
        Ty::Vec(e, n) => t.uops_for(n, e.bits().max(8)),
        _ => 1,
    }
}

/// [`legalize`] behind a bounds check, for callers feeding it IR they did
/// not build themselves: an out-of-range instruction id comes back as a
/// located [`telemetry::Diagnostic`] (pass `legalize`) instead of an
/// index panic. In-range legalization is total and cannot fail.
///
/// # Errors
/// When `id` does not name an instruction of `f`.
pub fn legalize_checked(
    target: &Target,
    f: &Function,
    id: InstId,
) -> Result<Vec<Uop>, telemetry::Diagnostic> {
    if id.0 as usize >= f.num_insts() {
        return Err(telemetry::Diagnostic::new(
            telemetry::Pass::Legalize,
            &f.name,
            format!(
                "instruction i{} out of range (function has {} instructions)",
                id.0,
                f.num_insts()
            ),
        )
        .at_inst(id.0)
        .error());
    }
    Ok(legalize(target, f, id))
}

/// Legalizes one instruction of `f` for `target`.
pub fn legalize(target: &Target, f: &Function, id: InstId) -> Vec<Uop> {
    let inst = f.inst(id);
    let ty = f.inst_ty(id);
    match inst {
        Inst::Bin { op, a, .. } => {
            let oty = f.value_ty(*a);
            if !oty.is_vec() {
                let kind = if op.is_float() {
                    match op {
                        BinOp::FDiv | BinOp::FRem => UopKind::ScalarDiv,
                        _ => UopKind::ScalarFp,
                    }
                } else {
                    match op {
                        BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => UopKind::ScalarDiv,
                        _ => UopKind::ScalarAlu,
                    }
                };
                return vec![uop(kind)];
            }
            // Mask algebra runs on mask registers.
            if oty.elem() == Some(psir::ScalarTy::I1) {
                return vec![uop(UopKind::MaskOp)];
            }
            let n = vec_split(target, oty);
            let kind = match op {
                BinOp::Mul | BinOp::MulHiS | BinOp::MulHiU | BinOp::FMul => UopKind::VecMul,
                BinOp::SDiv
                | BinOp::UDiv
                | BinOp::SRem
                | BinOp::URem
                | BinOp::FDiv
                | BinOp::FRem => UopKind::VecDiv,
                _ => UopKind::VecAlu,
            };
            repeat(kind, n)
        }
        Inst::Un { op, a } => {
            let oty = f.value_ty(*a);
            if !oty.is_vec() {
                let kind = match op {
                    UnOp::FSqrt => UopKind::ScalarDiv,
                    UnOp::FNeg | UnOp::FAbs | UnOp::FFloor | UnOp::FCeil | UnOp::FRound => {
                        UopKind::ScalarFp
                    }
                    _ => UopKind::ScalarAlu,
                };
                return vec![uop(kind)];
            }
            let n = vec_split(target, oty);
            let kind = match op {
                UnOp::FSqrt => UopKind::VecDiv,
                _ => UopKind::VecAlu,
            };
            repeat(kind, n)
        }
        Inst::Cmp { pred, a, .. } => {
            let oty = f.value_ty(*a);
            if !oty.is_vec() {
                vec![uop(if pred.is_float() {
                    UopKind::ScalarFp
                } else {
                    UopKind::ScalarAlu
                })]
            } else {
                repeat(UopKind::VecAlu, vec_split(target, oty))
            }
        }
        Inst::Cast { a, .. } => {
            let oty = f.value_ty(*a);
            if !oty.is_vec() && !ty.is_vec() {
                let fp = oty.elem().is_some_and(|e| e.is_float())
                    || ty.elem().is_some_and(|e| e.is_float());
                vec![uop(if fp {
                    UopKind::ScalarFp
                } else {
                    UopKind::ScalarAlu
                })]
            } else {
                // Converting widths may need both source and dest registers.
                let n = vec_split(target, oty).max(vec_split(target, ty));
                repeat(UopKind::VecAlu, n)
            }
        }
        Inst::Select { .. } => {
            if ty.is_vec() {
                target.ops().vec_select(vec_split(target, ty))
            } else {
                vec![uop(UopKind::ScalarAlu)]
            }
        }
        Inst::Splat { .. } => vec![uop(UopKind::Splat)],
        Inst::ConstVec { .. } => vec![uop(UopKind::VecMem)], // constant-pool load
        Inst::Extract { .. } | Inst::Insert { .. } => vec![uop(UopKind::LaneXfer)],
        Inst::ShuffleConst { v, pattern } => {
            // One shuffle per destination register; crossing source
            // registers costs the variable-permute unit.
            let src = vec_split(target, f.value_ty(*v));
            let dst = target.uops_for(
                pattern.len() as u32,
                f.value_ty(*v).elem().map(|e| e.bits()).unwrap_or(32).max(8),
            );
            if src > 1 {
                repeat(UopKind::ShuffleVar, dst)
            } else {
                repeat(UopKind::Shuffle, dst)
            }
        }
        Inst::ShuffleVar { .. } => repeat(UopKind::ShuffleVar, vec_split(target, ty)),
        Inst::Load { ptr, mask } => {
            let pty = f.value_ty(*ptr);
            if pty.is_vec() {
                if mask.is_some() {
                    target.ops().masked_gather(ty.lanes())
                } else {
                    vec![uop(UopKind::Gather { lanes: ty.lanes() })]
                }
            } else if ty.is_vec() {
                if mask.is_some() {
                    target.ops().masked_load(vec_split(target, ty))
                } else {
                    repeat(UopKind::VecMem, vec_split(target, ty))
                }
            } else {
                vec![uop(UopKind::ScalarMem)]
            }
        }
        Inst::Store { ptr, val, mask } => {
            let pty = f.value_ty(*ptr);
            let vty = f.value_ty(*val);
            if pty.is_vec() {
                if mask.is_some() {
                    target.ops().masked_scatter(pty.lanes())
                } else {
                    vec![uop(UopKind::Scatter { lanes: pty.lanes() })]
                }
            } else if vty.is_vec() {
                if mask.is_some() {
                    target.ops().masked_store(vec_split(target, vty))
                } else {
                    repeat(UopKind::VecMem, vec_split(target, vty))
                }
            } else {
                vec![uop(UopKind::ScalarMem)]
            }
        }
        Inst::Alloca { .. } => vec![uop(UopKind::Alloca)],
        Inst::Gep { .. } => {
            if ty.is_vec() {
                repeat(UopKind::VecAlu, vec_split(target, ty))
            } else {
                vec![uop(UopKind::ScalarAlu)]
            }
        }
        Inst::Call { .. } => vec![uop(UopKind::Call)],
        Inst::Intrin { kind, .. } => match kind {
            // Scalar SPMD intrinsics only execute in baselines/reference
            // paths (vectorized code has eliminated them); charge like an
            // ALU op.
            Intrinsic::Fma => {
                if ty.is_vec() {
                    repeat(UopKind::VecMul, vec_split(target, ty))
                } else {
                    vec![uop(UopKind::ScalarFp)]
                }
            }
            Intrinsic::Math(m) => vec![Uop {
                kind: UopKind::Call,
                cycles: crate::cost::MathCosts::default().scalar(*m),
            }],
            _ => vec![uop(UopKind::ScalarAlu)],
        },
        Inst::Phi { .. } => vec![], // resolved by register allocation
        Inst::Reduce { v, .. } => {
            // Mask reductions (any/all) are a single mask-register test
            // (kortest), not a lane tree.
            if f.value_ty(*v).elem() == Some(psir::ScalarTy::I1) {
                vec![uop(UopKind::MaskOp), uop(UopKind::MaskOp)]
            } else {
                vec![uop(UopKind::Reduce {
                    lanes: f.value_ty(*v).lanes(),
                })]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::{FunctionBuilder, Param, ScalarTy, Value};

    fn build_probe() -> (Function, Vec<InstId>) {
        let mut fb = FunctionBuilder::new(
            "probe",
            vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
            Ty::Void,
        );
        let mut ids = Vec::new();
        let a = fb.const_vec(ScalarTy::I32, (0..32).collect());
        ids.push(a.as_inst().unwrap()); // 0: constvec 32 x i32 (1024b)
        let s = fb.bin(BinOp::Add, a, a);
        ids.push(s.as_inst().unwrap()); // 1: 1024b add
        let idx = fb.const_vec(ScalarTy::I64, (0..16).collect());
        let ptrs = fb.gep(Value::Param(0), idx, 4);
        let g = fb.load(Ty::vec(ScalarTy::I32, 16), ptrs, None);
        ids.push(g.as_inst().unwrap()); // 2: gather of 16
        let pk = fb.load(Ty::vec(ScalarTy::I32, 16), Value::Param(0), None);
        ids.push(pk.as_inst().unwrap()); // 3: packed load 512b
        let d = fb.bin(BinOp::FDiv, pk, pk); // type-invalid float op on ints is
                                             // fine for costing tests only
        ids.push(d.as_inst().unwrap()); // 4: vector divide
        fb.ret(None);
        (fb.finish(), ids)
    }

    #[test]
    fn wide_vector_splits_into_register_ops() {
        let (f, ids) = build_probe();
        let t = Target::avx512();
        let uops = legalize(&t, &f, ids[1]);
        assert_eq!(uops.len(), 2); // 32 × i32 = 1024b → two 512b adds
        assert!(uops.iter().all(|u| u.kind == UopKind::VecAlu));
    }

    #[test]
    fn gather_is_an_order_of_magnitude_worse_than_packed() {
        let (f, ids) = build_probe();
        let t = Target::avx512();
        let gather: u64 = legalize(&t, &f, ids[2]).iter().map(|u| u.cycles).sum();
        let packed: u64 = legalize(&t, &f, ids[3]).iter().map(|u| u.cycles).sum();
        assert!(gather >= 10 * packed, "gather {gather} vs packed {packed}");
    }

    #[test]
    fn divide_is_expensive() {
        let (f, ids) = build_probe();
        let t = Target::avx512();
        let div: u64 = legalize(&t, &f, ids[4]).iter().map(|u| u.cycles).sum();
        assert!(div >= 8);
    }

    #[test]
    fn checked_legalize_locates_out_of_range_ids() {
        let (f, ids) = build_probe();
        let t = Target::avx512();
        // In range: identical to the unchecked entry point.
        assert_eq!(
            legalize_checked(&t, &f, ids[1]).unwrap(),
            legalize(&t, &f, ids[1])
        );
        // Out of range: a located diagnostic, not an index panic.
        let bad = InstId(f.num_insts() as u32);
        let d = legalize_checked(&t, &f, bad).unwrap_err();
        assert_eq!(d.pass, telemetry::Pass::Legalize);
        assert_eq!(d.severity, telemetry::Severity::Error);
        assert_eq!(d.inst, Some(bad.0));
        assert!(d.to_string().contains("out of range"), "{d}");
    }
}

#[cfg(test)]
mod avx2_tests {
    use super::*;
    use psir::{FunctionBuilder, ScalarTy, Ty};

    #[test]
    fn narrower_target_doubles_register_ops() {
        let mut fb = FunctionBuilder::new("p", vec![], Ty::Void);
        let v = fb.const_vec(ScalarTy::F32, (0..16).collect());
        let s = fb.bin(BinOp::FAdd, v, v);
        let id = s.as_inst().unwrap();
        fb.ret(None);
        let f = fb.finish();
        let on512 = legalize(&Target::avx512(), &f, id).len();
        let on256 = legalize(&Target::avx2(), &f, id).len();
        assert_eq!(on512, 1);
        assert_eq!(on256, 2, "16 × f32 = 512b → two 256b ops");
    }

    #[test]
    fn single_register_shuffle_is_cheap_cross_register_is_not() {
        let mut fb = FunctionBuilder::new("q", vec![], Ty::Void);
        let narrow = fb.const_vec(ScalarTy::I8, (0..16).collect()); // 128b
        let n1 = fb.shuffle_const(narrow, (0..16).rev().collect());
        let wide = fb.const_vec(ScalarTy::I8, (0..128).collect()); // 1024b
        let n2 = fb.shuffle_const(wide, (0..64).map(|j| j * 2).collect());
        let id1 = n1.as_inst().unwrap();
        let id2 = n2.as_inst().unwrap();
        fb.ret(None);
        let f = fb.finish();
        let t = Target::avx512();
        let cheap: u64 = legalize(&t, &f, id1).iter().map(|u| u.cycles).sum();
        let costly: u64 = legalize(&t, &f, id2).iter().map(|u| u.cycles).sum();
        assert!(
            costly > cheap,
            "cross-register permutes ({costly}) must cost more than in-register ({cheap})"
        );
        assert!(legalize(&t, &f, id2)
            .iter()
            .all(|u| matches!(u.kind, UopKind::ShuffleVar)));
    }

    #[test]
    fn masked_stores_blend_on_x86_and_predicate_on_sve() {
        let mut fb = FunctionBuilder::new("m", vec![], Ty::Void);
        let p = fb.alloca(64i64);
        let v = fb.const_vec(ScalarTy::I32, (0..16).collect());
        let m = fb.const_vec(ScalarTy::I1, vec![1; 16]);
        fb.store(p, v, Some(m));
        fb.ret(None);
        let f = fb.finish();
        let id = (0..f.num_insts() as u32)
            .map(InstId)
            .find(|&i| matches!(f.inst(i), Inst::Store { mask: Some(_), .. }))
            .expect("the masked store we just built");

        let fixed = legalize(&Target::avx512(), &f, id);
        assert!(
            fixed.iter().any(|u| u.kind == UopKind::Blend),
            "fixed-width masked store carries a blend fix-up: {fixed:?}"
        );
        let sve = legalize(&Target::sve(512), &f, id);
        assert_eq!(sve[0].kind, UopKind::WhileLt);
        assert!(sve[1..].iter().all(|u| u.kind == UopKind::PredMem));
        assert!(
            sve.len() < fixed.len(),
            "predication is strictly fewer uops"
        );
        let c = |v: &[Uop]| v.iter().map(|u| u.cycles).sum::<u64>();
        assert!(c(&sve) < c(&fixed), "and strictly cheaper");
    }

    #[test]
    fn mask_reduce_is_a_mask_test() {
        let mut fb = FunctionBuilder::new("r", vec![], Ty::Void);
        let m = fb.const_vec(ScalarTy::I1, vec![1; 64]);
        let any = fb.reduce(psir::ReduceOp::Or, m, None);
        let wide = fb.const_vec(ScalarTy::I64, (0..64).collect());
        let sum = fb.reduce(psir::ReduceOp::Add, wide, None);
        let id_any = any.as_inst().unwrap();
        let id_sum = sum.as_inst().unwrap();
        fb.ret(None);
        let f = fb.finish();
        let t = Target::avx512();
        let any_cost: u64 = legalize(&t, &f, id_any).iter().map(|u| u.cycles).sum();
        let sum_cost: u64 = legalize(&t, &f, id_sum).iter().map(|u| u.cycles).sum();
        assert!(any_cost <= 2, "kortest-class, got {any_cost}");
        assert!(
            sum_cost >= 10 * any_cost,
            "lane-tree reduce is much heavier"
        );
    }
}

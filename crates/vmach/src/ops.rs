//! Per-target legalization of masked and predicated operations.
//!
//! Unmasked straight-line code legalizes identically on every target (one
//! packed micro-op per register, see `legalize`) — that is what makes the
//! cross-target throughput-parity property hold. The families differ
//! exactly where lanes are *masked*:
//!
//! * **Fixed-width x86** ([`FixedWidthOps`]): no governing predicates.
//!   A masked load is the packed load plus a blend merging the inactive
//!   lanes; a masked store has no in-memory blend, so it is the
//!   read-modify-write emulation (load, blend, store); masked
//!   gathers/scatters pay a fix-up blend around the per-lane unit; a
//!   vector select is the classic blend sequence.
//! * **Scalable SVE** ([`ScalableOps`]): predication-first. One
//!   `whilelt`-style micro-op materializes the governing predicate, then
//!   every register's worth of data runs under it — first-faulting
//!   contiguous loads, predicated contiguous stores, predicated
//!   gather/scatter, and predicated register moves for select. No fix-up
//!   sequences, which is why masked tails are strictly cheaper here (the
//!   property tests in `tests/predication.rs` pin this down).

use crate::legalize::{Uop, UopKind};

/// The target-family hooks `legalize` dispatches masked/predicated
/// operations through. `regs` is the register count from
/// [`Target::uops_for`](crate::Target::uops_for); `lanes` is the IR lane
/// count of a gather/scatter.
pub trait TargetOps {
    /// Masked packed (contiguous) load covering `regs` registers.
    fn masked_load(&self, regs: u64) -> Vec<Uop>;
    /// Masked packed (contiguous) store covering `regs` registers.
    fn masked_store(&self, regs: u64) -> Vec<Uop>;
    /// Masked gather of `lanes` lanes.
    fn masked_gather(&self, lanes: u32) -> Vec<Uop>;
    /// Masked scatter of `lanes` lanes.
    fn masked_scatter(&self, lanes: u32) -> Vec<Uop>;
    /// Per-lane vector select covering `regs` registers.
    fn vec_select(&self, regs: u64) -> Vec<Uop>;
}

fn uop(kind: UopKind) -> Uop {
    Uop {
        kind,
        cycles: crate::legalize::cycles_for(kind),
    }
}

fn per_reg(regs: u64, kinds: &[UopKind]) -> Vec<Uop> {
    let mut out = Vec::with_capacity(regs as usize * kinds.len());
    for _ in 0..regs {
        out.extend(kinds.iter().copied().map(uop));
    }
    out
}

/// Fixed-width x86 legalization: masked operations carry blend fix-ups.
pub struct FixedWidthOps;

impl TargetOps for FixedWidthOps {
    fn masked_load(&self, regs: u64) -> Vec<Uop> {
        // Packed load, then blend the inactive lanes back in.
        per_reg(regs, &[UopKind::VecMem, UopKind::Blend])
    }

    fn masked_store(&self, regs: u64) -> Vec<Uop> {
        // Memory cannot be blended in place: load the destination, blend
        // the active lanes over it, store the merged register back.
        per_reg(regs, &[UopKind::VecMem, UopKind::Blend, UopKind::VecMem])
    }

    fn masked_gather(&self, lanes: u32) -> Vec<Uop> {
        vec![uop(UopKind::Gather { lanes }), uop(UopKind::Blend)]
    }

    fn masked_scatter(&self, lanes: u32) -> Vec<Uop> {
        // Select the active lanes before the per-lane store unit.
        vec![uop(UopKind::Blend), uop(UopKind::Scatter { lanes })]
    }

    fn vec_select(&self, regs: u64) -> Vec<Uop> {
        per_reg(regs, &[UopKind::Blend])
    }
}

/// Scalable (SVE-class) legalization: predication-first. One governing
/// predicate per masked operation, no fix-up sequences.
pub struct ScalableOps;

impl TargetOps for ScalableOps {
    fn masked_load(&self, regs: u64) -> Vec<Uop> {
        let mut out = vec![uop(UopKind::WhileLt)];
        out.extend(per_reg(regs, &[UopKind::FfLoad]));
        out
    }

    fn masked_store(&self, regs: u64) -> Vec<Uop> {
        let mut out = vec![uop(UopKind::WhileLt)];
        out.extend(per_reg(regs, &[UopKind::PredMem]));
        out
    }

    fn masked_gather(&self, lanes: u32) -> Vec<Uop> {
        vec![uop(UopKind::WhileLt), uop(UopKind::Gather { lanes })]
    }

    fn masked_scatter(&self, lanes: u32) -> Vec<Uop> {
        vec![uop(UopKind::WhileLt), uop(UopKind::Scatter { lanes })]
    }

    fn vec_select(&self, regs: u64) -> Vec<Uop> {
        // Predicated register move — same cycles as the blend (parity on
        // unmasked kernels containing selects), attributed to the mask
        // unit instead of the shuffle port.
        per_reg(regs, &[UopKind::PredMove])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uops(v: &[Uop]) -> usize {
        v.len()
    }

    fn cycles(v: &[Uop]) -> u64 {
        v.iter().map(|u| u.cycles).sum()
    }

    #[test]
    fn predicated_masked_stores_are_strictly_cheaper_at_every_width() {
        for regs in 1..=8u64 {
            let fixed = FixedWidthOps.masked_store(regs);
            let sve = ScalableOps.masked_store(regs);
            assert!(uops(&sve) < uops(&fixed), "regs {regs}");
            assert!(cycles(&sve) < cycles(&fixed), "regs {regs}");
        }
    }

    #[test]
    fn predicated_masked_loads_never_cost_more() {
        for regs in 1..=8u64 {
            let fixed = FixedWidthOps.masked_load(regs);
            let sve = ScalableOps.masked_load(regs);
            assert!(uops(&sve) <= uops(&fixed), "regs {regs}");
            assert!(cycles(&sve) < cycles(&fixed), "regs {regs}");
        }
    }

    #[test]
    fn select_cycles_agree_across_families() {
        for regs in 1..=4u64 {
            assert_eq!(
                cycles(&FixedWidthOps.vec_select(regs)),
                cycles(&ScalableOps.vec_select(regs))
            );
        }
    }
}

//! Target description.

/// A SIMD target: a register width and a human-readable name. The default
/// models x86 AVX-512 (`-mprefer-vector-width=512`, as the paper compiles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Vector register width in bits.
    pub vector_bits: u32,
    /// Display name.
    pub name: String,
}

impl Target {
    /// The AVX-512 class target used throughout the evaluation.
    pub fn avx512() -> Target {
        Target {
            vector_bits: 512,
            name: "x86-avx512".into(),
        }
    }

    /// A 256-bit (AVX2-class) target, for gang-size/width sweeps.
    pub fn avx2() -> Target {
        Target {
            vector_bits: 256,
            name: "x86-avx2".into(),
        }
    }

    /// How many registers a vector of `lanes` × `elem_bits` occupies
    /// (the §4.3 unrolling factor; at least 1).
    pub fn uops_for(&self, lanes: u32, elem_bits: u32) -> u64 {
        let total = lanes as u64 * elem_bits as u64;
        total.div_ceil(self.vector_bits as u64).max(1)
    }
}

impl Default for Target {
    fn default() -> Target {
        Target::avx512()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroll_factors() {
        let t = Target::avx512();
        assert_eq!(t.uops_for(16, 32), 1); // 512b exactly
        assert_eq!(t.uops_for(32, 32), 2); // the §4.3 example: 1024b → 2 ops
        assert_eq!(t.uops_for(64, 8), 1); // 64 × i8 = 512b
        assert_eq!(t.uops_for(8, 32), 1); // partial register still 1 op
        assert_eq!(t.uops_for(16, 64), 2);
        let t2 = Target::avx2();
        assert_eq!(t2.uops_for(16, 32), 2);
    }
}

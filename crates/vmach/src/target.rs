//! Target description.
//!
//! Two target families exist:
//!
//! * **Fixed-width** (`x86-avx512`, `x86-avx2`): the register width is a
//!   compile-time constant and masked operations legalize to the packed
//!   operation plus shuffle/blend/select fix-up micro-ops.
//! * **Scalable** (`sve-vla`): the vector length is a *runtime* parameter
//!   (the model sweeps 128–2048 bits) and legalization is
//!   predication-first — masked lanes run under mask-register predication
//!   (`whilelt`-style governing predicates, first-faulting contiguous
//!   loads) with no fix-up sequences.
//!
//! Either way the compiled module is identical: the target changes cycle
//! attribution and micro-op counts, never semantics or module text. The
//! `target-contract` CI job machine-checks that claim by compiling at
//! three SVE vector lengths and diffing the emitted modules.

use crate::ops::{FixedWidthOps, ScalableOps, TargetOps};

/// A SIMD target: register width, whether that width is a compile-time
/// constant or a runtime parameter, and (through [`Target::ops`]) how
/// masked operations legalize.
///
/// There is deliberately **no** `Default` impl: every consumer names its
/// machine explicitly, and the single documented defaulting site is
/// [`Target::reference_default`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Vector register width in bits. For a scalable target this is the
    /// runtime vector length the cost model prices against; the compiled
    /// module never depends on it.
    pub vector_bits: u32,
    /// Target family name (`x86-avx512`, `x86-avx2`, `sve-vla`).
    pub name: String,
    /// Whether the width is a runtime parameter (SVE-class
    /// vector-length-agnostic) with predication-first legalization.
    pub scalable: bool,
}

/// The default vector length priced for `sve-vla` when the flag does not
/// name one.
pub const SVE_DEFAULT_VL: u32 = 512;

/// Smallest legal SVE vector length in bits.
pub const SVE_MIN_VL: u32 = 128;

/// Largest legal SVE vector length in bits.
pub const SVE_MAX_VL: u32 = 2048;

/// The `--target` values every CLI accepts, for help text and usage
/// errors.
pub const VALID_TARGETS: &str = "x86-avx512, x86-avx2, sve-vla[:VL] \
     (VL a multiple of 128 in 128..=2048, default 512)";

impl Target {
    /// The AVX-512 class target used throughout the evaluation.
    pub fn avx512() -> Target {
        Target {
            vector_bits: 512,
            name: "x86-avx512".into(),
            scalable: false,
        }
    }

    /// A 256-bit (AVX2-class) target, for gang-size/width sweeps.
    pub fn avx2() -> Target {
        Target {
            vector_bits: 256,
            name: "x86-avx2".into(),
            scalable: false,
        }
    }

    /// An SVE-class scalable target priced at runtime vector length
    /// `vl_bits`. The compiled module is vector-length-agnostic; only the
    /// cost attribution sees `vl_bits`.
    ///
    /// # Panics
    /// If `vl_bits` is not a multiple of 128 in
    /// [`SVE_MIN_VL`]`..=`[`SVE_MAX_VL`] (the architectural constraint).
    /// CLI input goes through [`Target::parse`], which reports the
    /// constraint as an error instead.
    pub fn sve(vl_bits: u32) -> Target {
        assert!(
            (SVE_MIN_VL..=SVE_MAX_VL).contains(&vl_bits) && vl_bits.is_multiple_of(128),
            "SVE vector length must be a multiple of 128 in \
             {SVE_MIN_VL}..={SVE_MAX_VL}, got {vl_bits}"
        );
        Target {
            vector_bits: vl_bits,
            name: "sve-vla".into(),
            scalable: true,
        }
    }

    /// **The one documented defaulting site.** The machine the evaluation
    /// defaults to when nothing chose one — AVX-512, as the paper
    /// compiles (`-mprefer-vector-width=512`). Everything else either
    /// takes an explicit [`Target`] or delegates here
    /// (`PipelineOptions::default`, the suite runner's `default_target`).
    pub fn reference_default() -> Target {
        Target::avx512()
    }

    /// Parses a `--target` flag value: `x86-avx512`, `x86-avx2`,
    /// `sve-vla` (priced at [`SVE_DEFAULT_VL`]), or `sve-vla:VL`.
    ///
    /// # Errors
    /// Names the valid targets (and the VL constraint) so CLIs can print
    /// the message verbatim as their exit-2 diagnostic.
    pub fn parse(s: &str) -> Result<Target, String> {
        match s {
            "x86-avx512" => return Ok(Target::avx512()),
            "x86-avx2" => return Ok(Target::avx2()),
            "sve-vla" => return Ok(Target::sve(SVE_DEFAULT_VL)),
            _ => {}
        }
        if let Some(vl) = s.strip_prefix("sve-vla:") {
            let bits: u32 = vl.parse().map_err(|_| {
                format!("bad SVE vector length {vl:?}; valid targets: {VALID_TARGETS}")
            })?;
            if !(SVE_MIN_VL..=SVE_MAX_VL).contains(&bits) || !bits.is_multiple_of(128) {
                return Err(format!(
                    "SVE vector length must be a multiple of 128 in \
                     {SVE_MIN_VL}..={SVE_MAX_VL}, got {bits}; valid targets: {VALID_TARGETS}"
                ));
            }
            return Ok(Target::sve(bits));
        }
        Err(format!(
            "unknown target {s:?}; valid targets: {VALID_TARGETS}"
        ))
    }

    /// The stable flag/cache name this target round-trips through
    /// [`Target::parse`]: the family name, plus the priced vector length
    /// for scalable targets (`sve-vla:512`). Serve cache keys and bench
    /// `meta` blocks carry this string.
    pub fn flag_name(&self) -> String {
        if self.scalable {
            format!("{}:{}", self.name, self.vector_bits)
        } else {
            self.name.clone()
        }
    }

    /// The per-target legalization rules for masked/predicated operations
    /// (dispatched by `legalize`).
    pub fn ops(&self) -> &'static dyn TargetOps {
        if self.scalable {
            &ScalableOps
        } else {
            &FixedWidthOps
        }
    }

    /// How many registers a vector of `lanes` × `elem_bits` occupies
    /// (the §4.3 unrolling factor; at least 1).
    ///
    /// On a scalable target the count is against the runtime vector
    /// length and the final partial register is covered by a
    /// `whilelt`-style loop-tail predicate instead of an unrolled scalar
    /// epilogue — same register count, different (predicated) micro-ops
    /// when a mask is present.
    pub fn uops_for(&self, lanes: u32, elem_bits: u32) -> u64 {
        let total = lanes as u64 * elem_bits as u64;
        total.div_ceil(self.vector_bits as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroll_factors() {
        let t = Target::avx512();
        assert_eq!(t.uops_for(16, 32), 1); // 512b exactly
        assert_eq!(t.uops_for(32, 32), 2); // the §4.3 example: 1024b → 2 ops
        assert_eq!(t.uops_for(64, 8), 1); // 64 × i8 = 512b
        assert_eq!(t.uops_for(8, 32), 1); // partial register still 1 op
        assert_eq!(t.uops_for(16, 64), 2);
        let t2 = Target::avx2();
        assert_eq!(t2.uops_for(16, 32), 2);
        // The scalable target unrolls against its runtime VL.
        assert_eq!(Target::sve(128).uops_for(16, 32), 4);
        assert_eq!(Target::sve(2048).uops_for(16, 32), 1);
    }

    #[test]
    fn parse_round_trips_every_flag_name() {
        for t in [
            Target::avx512(),
            Target::avx2(),
            Target::sve(128),
            Target::sve(SVE_DEFAULT_VL),
            Target::sve(2048),
        ] {
            assert_eq!(Target::parse(&t.flag_name()).unwrap(), t);
        }
        assert_eq!(
            Target::parse("sve-vla").unwrap(),
            Target::sve(SVE_DEFAULT_VL)
        );
    }

    #[test]
    fn parse_rejects_unknown_targets_and_bad_vls() {
        for bad in [
            "neon",
            "sve-vla:100",
            "sve-vla:4096",
            "sve-vla:0",
            "sve-vla:x",
            "",
        ] {
            let err = Target::parse(bad).unwrap_err();
            assert!(
                err.contains("x86-avx512") && err.contains("sve-vla"),
                "{bad}: diagnostic must enumerate the targets: {err}"
            );
        }
    }

    #[test]
    fn the_defaulting_site_is_avx512() {
        assert_eq!(Target::reference_default(), Target::avx512());
        assert!(!Target::reference_default().scalable);
    }
}

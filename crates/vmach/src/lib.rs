//! # vmach — the virtual AVX-512-class SIMD machine
//!
//! The paper evaluates on an Intel Xeon Gold 6258R with AVX-512. This crate
//! is the reproduction's stand-in for that hardware: it **legalizes**
//! gang-width vector IR onto 512-bit machine registers (a gang of 32 × i32
//! becomes two 512-bit micro-ops, exactly the §4.3 back-end behavior) and
//! prices every legalized micro-op with a calibrated cycle model. The
//! `psir` interpreter charges these costs while executing, so "simulated
//! cycles" plays the role wall-clock time plays in the paper's figures.
//!
//! The model is deliberately transparent: relative costs (packed ≈ 1 cycle
//! per 512-bit op, gathers pay per lane, `vpsadbw` is one op, division is
//! expensive) are what drive the reproduced speedup *shapes*; absolute
//! cycle parity with real silicon is a non-goal (see `DESIGN.md`).

#![warn(missing_docs)]

mod cost;
mod legalize;
mod target;

pub use cost::{Avx512Cost, MathCosts};
pub use legalize::{legalize, legalize_checked, Uop, UopKind, QUARTER_CYCLES_PER_CYCLE};
pub use target::Target;

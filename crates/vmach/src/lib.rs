//! # vmach — the virtual SIMD machine
//!
//! The paper evaluates on an Intel Xeon Gold 6258R with AVX-512. This crate
//! is the reproduction's stand-in for that hardware: it **legalizes**
//! gang-width vector IR onto machine registers (a gang of 32 × i32 becomes
//! two 512-bit micro-ops on `x86-avx512`, exactly the §4.3 back-end
//! behavior) and prices every legalized micro-op with a calibrated cycle
//! model. The `psir` interpreter charges these costs while executing, so
//! "simulated cycles" plays the role wall-clock time plays in the paper's
//! figures.
//!
//! Three targets are modeled (see [`Target`]): fixed-width `x86-avx512`
//! and `x86-avx2`, where masked operations legalize to blend fix-up
//! sequences, and the scalable `sve-vla`, whose vector length is a runtime
//! parameter (swept 128–2048 bits) and whose legalization is
//! predication-first ([`TargetOps`]). Targets change cycle attribution and
//! micro-op counts only — never execution semantics or module text.
//!
//! The model is deliberately transparent: relative costs (packed ≈ 1 cycle
//! per 512-bit op, gathers pay per lane, `vpsadbw` is one op, division is
//! expensive) are what drive the reproduced speedup *shapes*; absolute
//! cycle parity with real silicon is a non-goal (see `DESIGN.md`).

#![warn(missing_docs)]

mod cost;
mod legalize;
mod ops;
mod target;

pub use cost::{MathCosts, TargetCost};
pub use legalize::{legalize, legalize_checked, Uop, UopKind, QUARTER_CYCLES_PER_CYCLE};
pub use ops::{FixedWidthOps, ScalableOps, TargetOps};
pub use target::{Target, SVE_DEFAULT_VL, SVE_MAX_VL, SVE_MIN_VL, VALID_TARGETS};

//! The cycle cost model plugged into the `psir` interpreter.

use crate::legalize::legalize;
use crate::target::Target;
use psir::{CostModel, Function, InstId, MathFn, Terminator, Ty};

/// Per-call costs of math-library routines, scalar and vectorized.
///
/// The vector numbers model one 512-bit call; wider gangs multiply by the
/// register count. `sleef_pow` vs `fastm_pow` encodes the §6 finding that
/// SLEEF's AVX-512 `pow` is ~2.6× slower than ispc's built-in — the entire
/// Binomial Options gap in Figure 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MathCosts {
    /// SLEEF-like `pow` per 512-bit vector call.
    pub sleef_pow: u64,
    /// ispc-built-in-like `pow` per 512-bit vector call.
    pub fastm_pow: u64,
    /// exp/log per 512-bit vector call.
    pub exp_log: u64,
    /// sin/cos/tan per 512-bit vector call.
    pub trig: u64,
    /// cumulative-normal (Black-Scholes CDF) per 512-bit vector call.
    pub cdf: u64,
}

impl Default for MathCosts {
    fn default() -> MathCosts {
        // Quarter-cycle units (see `legalize::QUARTER_CYCLES_PER_CYCLE`).
        MathCosts {
            sleef_pow: 248,
            fastm_pow: 96,
            exp_log: 72,
            trig: 88,
            cdf: 120,
        }
    }
}

impl MathCosts {
    /// Cost of one scalar libm-class call.
    pub fn scalar(&self, f: MathFn) -> u64 {
        // Quarter-cycle units; scalar libm calls do not benefit from the
        // 4-wide issue the way ordinary scalar code does.
        match f {
            MathFn::Pow => 220,
            MathFn::Exp | MathFn::Log | MathFn::Exp2 | MathFn::Log2 => 100,
            MathFn::Sin | MathFn::Cos | MathFn::Tan | MathFn::Atan | MathFn::Atan2 => 112,
            MathFn::Cdf => 160,
        }
    }

    /// Cost of one vector-library call for `f` from library `lib`
    /// (`"sleef"` or `"fastm"`), per 512-bit register.
    pub fn vector(&self, lib: &str, f: MathFn) -> u64 {
        match f {
            MathFn::Pow => {
                if lib == "fastm" {
                    self.fastm_pow
                } else {
                    self.sleef_pow
                }
            }
            MathFn::Exp | MathFn::Log | MathFn::Exp2 | MathFn::Log2 => self.exp_log,
            MathFn::Sin | MathFn::Cos | MathFn::Tan | MathFn::Atan | MathFn::Atan2 => self.trig,
            MathFn::Cdf => self.cdf,
        }
    }
}

fn parse_math_fn(name: &str) -> Option<MathFn> {
    Some(match name {
        "exp" => MathFn::Exp,
        "log" => MathFn::Log,
        "pow" => MathFn::Pow,
        "sin" => MathFn::Sin,
        "cos" => MathFn::Cos,
        "tan" => MathFn::Tan,
        "atan" => MathFn::Atan,
        "atan2" => MathFn::Atan2,
        "exp2" => MathFn::Exp2,
        "log2" => MathFn::Log2,
        "cdf" => MathFn::Cdf,
        _ => return None,
    })
}

/// The per-target cost model: legalizes each executed instruction for its
/// [`Target`] (fixed-width blend fix-ups or predication-first, see
/// `ops`) and charges the micro-op sequence; prices external (math /
/// machine builtin) calls from their mangled names.
///
/// There is deliberately no `Default`/`new()`: construct with
/// [`TargetCost::for_target`] so every model names its machine. The one
/// documented defaulting site is [`Target::reference_default`].
#[derive(Debug, Clone)]
pub struct TargetCost {
    /// The target being priced.
    pub target: Target,
    /// Math-library cost table.
    pub math: MathCosts,
}

impl TargetCost {
    /// A model for a specific target (e.g. [`Target::avx2`],
    /// [`Target::sve`]).
    pub fn for_target(target: Target) -> TargetCost {
        TargetCost {
            target,
            math: MathCosts::default(),
        }
    }

    /// Converts accumulated model cost to whole CPU cycles (the model works
    /// in quarter-cycle units; see
    /// [`crate::QUARTER_CYCLES_PER_CYCLE`]).
    pub fn to_cycles(units: u64) -> u64 {
        units / crate::legalize::QUARTER_CYCLES_PER_CYCLE
    }
}

impl CostModel for TargetCost {
    fn inst_cost(&self, f: &Function, id: InstId) -> u64 {
        legalize(&self.target, f, id).iter().map(|u| u.cycles).sum()
    }

    fn inst_cost_classed(&self, f: &Function, id: InstId) -> Vec<(telemetry::CostClass, u64)> {
        legalize(&self.target, f, id)
            .iter()
            .map(|u| (u.kind.cost_class(), u.cycles))
            .collect()
    }

    fn inst_cost_full(&self, f: &Function, id: InstId) -> (u64, Vec<(telemetry::CostClass, u64)>) {
        // One legalization serves both answers — this is the query the
        // interpreter's plan cache issues once per static instruction.
        let uops = legalize(&self.target, f, id);
        let total = uops.iter().map(|u| u.cycles).sum();
        let classed = uops
            .iter()
            .map(|u| (u.kind.cost_class(), u.cycles))
            .collect();
        (total, classed)
    }

    fn extern_call_cost(&self, name: &str, ret: Ty) -> u64 {
        // Mangling: "{lib}.{fn}.{elem}" (scalar) or "{lib}.{fn}.{elem}x{G}".
        let mut parts = name.split('.');
        let lib = parts.next().unwrap_or("");
        let func = parts.next().unwrap_or("");
        let suffix = parts.next().unwrap_or("");
        let regs = |elem_bits: u32| {
            let lanes = ret.lanes().max(1);
            self.target.uops_for(lanes, elem_bits)
        };
        match lib {
            "sleef" | "fastm" => {
                let Some(mf) = parse_math_fn(func) else {
                    return 20;
                };
                if suffix.contains('x') {
                    let elem_bits = if suffix.starts_with("f64") { 64 } else { 32 };
                    self.math.vector(lib, mf) * regs(elem_bits)
                } else {
                    self.math.scalar(mf)
                }
            }
            "vmach" => {
                // Machine builtins: sad is one vpsadbw per *source*
                // register (the name carries "{src}x{G}"), plus one widening
                // op when the result element is wider than the native 16b
                // accumulator.
                let lanes: u32 = suffix
                    .split('x')
                    .nth(1)
                    .and_then(|s| s.split('.').next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(ret.lanes().max(1));
                let widen = u64::from(name.ends_with("i32") || name.ends_with("i64"));
                4 * (self.target.uops_for(lanes, 8) + widen)
            }
            _ => 20,
        }
    }

    fn term_cost(&self, _f: &Function, term: &Terminator) -> u64 {
        match term {
            Terminator::Ret(_) => 8,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::ScalarTy;

    fn c() -> TargetCost {
        TargetCost::for_target(Target::reference_default())
    }

    #[test]
    fn sleef_pow_is_about_2_6x_fastm() {
        let c = c();
        let v16 = Ty::vec(ScalarTy::F32, 16);
        let s = c.extern_call_cost("sleef.pow.f32x16", v16);
        let f = c.extern_call_cost("fastm.pow.f32x16", v16);
        let ratio = s as f64 / f as f64;
        assert!((2.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wide_gang_multiplies_math_cost() {
        let c = c();
        let v16 = Ty::vec(ScalarTy::F32, 16);
        let v32 = Ty::vec(ScalarTy::F32, 32);
        assert_eq!(
            c.extern_call_cost("sleef.exp.f32x32", v32),
            2 * c.extern_call_cost("sleef.exp.f32x16", v16)
        );
    }

    #[test]
    fn scalar_math_cheaper_than_serializing_vector() {
        let c = c();
        let scalar = c.extern_call_cost("sleef.exp.f32", Ty::Scalar(ScalarTy::F32));
        let vector = c.extern_call_cost("sleef.exp.f32x16", Ty::vec(ScalarTy::F32, 16));
        // One vector call amortizes 16 lanes: far better than 16 scalars.
        assert!(vector < 16 * scalar / 4);
    }

    #[test]
    fn sad_is_one_op_per_register() {
        let c = c();
        // 64 × i8 source = one 512b vpsadbw (4 quarter-cycles), plus one
        // widening op for the 64b accumulator type.
        assert_eq!(
            c.extern_call_cost("vmach.sad.i8x64.i64", Ty::vec(ScalarTy::I64, 64)),
            8
        );
        assert_eq!(
            c.extern_call_cost("vmach.sad.i8x64.i16", Ty::vec(ScalarTy::I16, 64)),
            4
        );
    }

    #[test]
    fn scalable_vl_scales_math_register_count() {
        // At VL 128 a 16-lane f32 call spans 4 registers; at VL 2048 it
        // fits in one. The priced cost tracks the register count.
        let v16 = Ty::vec(ScalarTy::F32, 16);
        let narrow = TargetCost::for_target(Target::sve(128));
        let wide = TargetCost::for_target(Target::sve(2048));
        assert_eq!(
            narrow.extern_call_cost("sleef.exp.f32x16", v16),
            4 * wide.extern_call_cost("sleef.exp.f32x16", v16)
        );
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive`, range and tuple strategies,
//! `Just`, `any`, `prop_oneof!`, `prop::collection::vec`, string
//! generation from a pattern, and the [`proptest!`] / [`prop_assert_eq!`]
//! macros. Inputs are generated pseudo-randomly from a per-test
//! deterministic seed; there is **no shrinking** — failures report the
//! already-small generated inputs instead.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A failed test case (carried out of the case body by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-`proptest!` configuration (subset of the upstream struct).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| f(self.generate(rng))))
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth and returns the expanded one; recursion is capped at
    /// `depth` levels. (`_desired_size` / `_expected_branch` are accepted
    /// for upstream signature compatibility and ignored.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = f(cur).boxed();
            // Mix leaves back in so expected size stays bounded.
            cur = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        cur
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of a common value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(i8, u8, i16, u16, i32, u32, i64, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// `&'static str` is a regex-like pattern strategy upstream; here it
/// generates arbitrary printable strings (ample for never-panics fuzzing).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(60) as usize;
        (0..len)
            .map(|_| {
                match rng.below(8) {
                    // Mostly printable ASCII…
                    0..=5 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                    // …some non-ASCII…
                    6 => char::from_u32(0xa1 + rng.below(0x500) as u32).unwrap_or('¤'),
                    // …and the odd newline/tab.
                    _ => {
                        if rng.below(2) == 0 {
                            '\n'
                        } else {
                            '\t'
                        }
                    }
                }
            })
            .collect()
    }
}

/// Whole-domain generation for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, u8, i16, u16, i32, u32, i64, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 != 0
    }
}

/// Strategy generating any value of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::ops::Range;
    use std::sync::Arc;

    /// A `Vec` of `n ∈ range` values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, range: Range<usize>) -> BoxedStrategy<Vec<S::Value>> {
        let elem = Arc::new(elem);
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
            let span = (range.end - range.start) as u64;
            let n = range.start + rng.below(span) as usize;
            (0..n).map(|_| elem.generate(rng)).collect()
        }))
    }
}

/// Upstream module alias: `prop::collection::vec`, `prop::num`, ….
pub mod prop {
    pub use super::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use super::{
        any, prop, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestRng, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Internal runner support used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};
}

/// Uniform choice among strategies (all options must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::prelude::Union::new(vec![
            $($crate::prelude::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {:?} != {:?}: {}",
                a,
                b,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)*) => {{
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// runs `config.cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)
        $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let strategies = ($($crate::prelude::Strategy::boxed($strat),)+);
                #[allow(non_snake_case)]
                let ($($arg,)+) = &strategies;
                for case in 0..config.cases {
                    $(let $arg = $crate::prelude::Strategy::generate($arg, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("proptest case {} of {} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_generate() {
        let s = prop_oneof![Just(1i32), 10i32..20, (0i32..3).prop_map(|v| v * 100)];
        let mut rng = TestRng::deterministic("union_and_map_generate");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (10..20).contains(&v) || [0, 100, 200].contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32 })]

        #[test]
        fn macro_roundtrip(x in 0i32..50, y in any::<bool>()) {
            prop_assert!(x >= 0);
            prop_assert_eq!(y, y, "bool must equal itself ({})", x);
        }
    }
}

//! # vmath — vector math libraries (the SLEEF / ispc-builtin substitutes)
//!
//! The Parsimony prototype links SLEEF for vectorized transcendentals, while
//! ispc uses its own built-in library; the paper traces its only Figure 4
//! performance gap (Binomial Options, 0.71×) to SLEEF's slower `pow`. This
//! crate supplies both libraries for the reproduction:
//!
//! * [`RuntimeExterns`] resolves the mangled call names the vectorizer emits
//!   (`sleef.pow.f32x16`, `fastm.exp.f32x16`, …) plus the `vmach.sad.*`
//!   machine builtin, lane-wise over vector arguments,
//! * [`poly`] contains genuine polynomial/range-reduction implementations
//!   (what a SLEEF-like library actually computes), validated against the
//!   IEEE reference in its tests.
//!
//! **Cost vs. value:** the *cycle cost* difference between the two libraries
//! lives in the `vmach` cost model; by default both produce IEEE-reference
//! *values* (so differential tests are bit-exact), with
//! [`RuntimeExterns::approx`] switching to the polynomial kernels.

#![warn(missing_docs)]

pub mod poly;

mod externs;

pub use externs::RuntimeExterns;

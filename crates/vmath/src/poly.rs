//! Polynomial / range-reduction math kernels (SLEEF-style).
//!
//! These are real implementations of the algorithms a vector math library
//! uses: range reduction to a core interval plus a minimax-style polynomial.
//! They are deliberately scalar here — the *vector* execution model applies
//! them lane-wise — and their accuracy is validated against the IEEE
//! reference in the tests (≤ a few ULP over the tested domains).

/// `2^x` via range reduction `x = n + f, f ∈ [-0.5, 0.5]` and a degree-6
/// polynomial for `2^f`.
pub fn exp2f(x: f32) -> f32 {
    if x >= 128.0 {
        return f32::INFINITY;
    }
    if x <= -150.0 {
        return 0.0;
    }
    let n = x.round_ties_even();
    let f = x - n;
    // 2^f = e^(f ln2); coefficients of the Taylor/minimax hybrid.
    const C: [f32; 7] = [
        1.0,
        std::f32::consts::LN_2,
        0.240_226_5,
        0.055_504_11,
        0.009_618_13,
        0.001_333_55,
        0.000_154_03,
    ];
    let mut p = C[6];
    for c in C[..6].iter().rev() {
        p = p * f + c;
    }
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    p * scale
}

/// `log2(x)` via exponent extraction and an atanh-style polynomial on the
/// mantissa.
pub fn log2f(x: f32) -> f32 {
    if x <= 0.0 {
        return if x == 0.0 {
            f32::NEG_INFINITY
        } else {
            f32::NAN
        };
    }
    let bits = x.to_bits();
    let mut e = ((bits >> 23) & 0xff) as i32 - 127;
    let mut m = f32::from_bits((bits & 0x007f_ffff) | 0x3f80_0000); // [1,2)
    if m > std::f32::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // log2(m) = 2/ln2 * (t + t^3/3 + t^5/5 + t^7/7 + t^9/9)
    const K: f32 = 2.885_39; // 2 / ln 2
    let p = t * (1.0 + t2 * (1.0 / 3.0 + t2 * (0.2 + t2 * (1.0 / 7.0 + t2 / 9.0))));
    e as f32 + K * p
}

/// `e^x` through [`exp2f`].
pub fn expf(x: f32) -> f32 {
    exp2f(x * std::f32::consts::LOG2_E)
}

/// `ln x` through [`log2f`].
pub fn logf(x: f32) -> f32 {
    log2f(x) * std::f32::consts::LN_2
}

/// `x^y = 2^(y log2 x)` for positive `x` (negative bases follow the
/// integer-exponent sign rule like a library `powf`).
pub fn powf(x: f32, y: f32) -> f32 {
    if x == 0.0 {
        return if y > 0.0 { 0.0 } else { f32::INFINITY };
    }
    if x < 0.0 {
        // Only integral exponents are meaningful for negative bases.
        let yi = y as i64;
        if (yi as f32) == y {
            let mag = exp2f(y * log2f(-x));
            return if yi % 2 == 0 { mag } else { -mag };
        }
        return f32::NAN;
    }
    exp2f(y * log2f(x))
}

/// Sine via Cody–Waite reduction to `[-π/4, π/4]` and degree-7/8
/// polynomials.
pub fn sinf(x: f32) -> f32 {
    sincos_core(x, false)
}

/// Cosine; same machinery as [`sinf`].
pub fn cosf(x: f32) -> f32 {
    sincos_core(x, true)
}

fn sincos_core(x: f32, cos: bool) -> f32 {
    let x64 = x as f64;
    const FRAC_2_PI: f64 = std::f64::consts::FRAC_2_PI;
    let q = (x64 * FRAC_2_PI).round() as i64;
    let r = x64 - (q as f64) * (std::f64::consts::PI / 2.0);
    let quadrant = if cos { q + 1 } else { q };
    let r = r as f32;
    let r2 = r * r;
    // sin(r) on the reduced interval
    let sin_p = r * (1.0 + r2 * (-1.0 / 6.0 + r2 * (1.0 / 120.0 + r2 * (-1.0 / 5040.0))));
    // cos(r)
    let cos_p = 1.0 + r2 * (-0.5 + r2 * (1.0 / 24.0 + r2 * (-1.0 / 720.0)));
    let (a, b) = (sin_p, cos_p);
    match quadrant.rem_euclid(4) {
        0 => a,
        1 => b,
        2 => -a,
        _ => -b,
    }
}

/// Arc tangent via the classic two-step reduction (Cephes-style):
/// `atan(x) = π/2 − atan(1/x)` for `x > 1`, then `atan(t) = π/4 +
/// atan((t−1)/(t+1))` for `t > tan(π/8)`, and a degree-9 odd minimax
/// polynomial on the core interval.
pub fn atanf(x: f32) -> f32 {
    let neg = x < 0.0;
    let x = x.abs();
    let inv = x > 1.0;
    let mut t = if inv { 1.0 / x } else { x };
    let mut y = 0.0f32;
    if t > 0.414_213_56 {
        // tan(π/8)
        y = std::f32::consts::FRAC_PI_4;
        t = (t - 1.0) / (t + 1.0);
    }
    let z = t * t;
    let p =
        (((8.053_744_5e-2 * z - 1.387_768_6e-1) * z + 1.997_771_1e-1) * z - 3.333_295e-1) * z * t
            + t;
    y += p;
    let r = if inv {
        std::f32::consts::FRAC_PI_2 - y
    } else {
        y
    };
    if neg {
        -r
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_rel_err(f: impl Fn(f32) -> f32, g: impl Fn(f32) -> f32, xs: &[f32]) -> f32 {
        xs.iter()
            .map(|&x| {
                let (a, b) = (f(x), g(x));
                if b == 0.0 {
                    a.abs()
                } else {
                    ((a - b) / b).abs()
                }
            })
            .fold(0.0, f32::max)
    }

    fn grid(lo: f32, hi: f32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f32 / (n - 1) as f32)
            .collect()
    }

    #[test]
    fn exp2_accuracy() {
        let xs = grid(-20.0, 20.0, 4001);
        assert!(max_rel_err(exp2f, |x| x.exp2(), &xs) < 2e-6);
    }

    #[test]
    fn log2_accuracy() {
        let xs = grid(1e-3, 1e4, 4001);
        let err = xs
            .iter()
            .map(|&x| (log2f(x) - x.log2()).abs())
            .fold(0.0, f32::max);
        assert!(err < 3e-6, "abs err {err}");
    }

    #[test]
    fn exp_log_roundtrip() {
        for &x in &grid(-20.0, 20.0, 999) {
            let y = logf(expf(x));
            assert!((y - x).abs() < 3e-4 * (1.0 + x.abs()), "x={x} y={y}");
        }
    }

    #[test]
    fn pow_accuracy() {
        let xs = grid(0.1, 30.0, 101);
        let ys = grid(-3.0, 3.0, 101);
        for &x in &xs {
            for &y in &ys {
                let (a, b) = (powf(x, y), x.powf(y));
                let rel = ((a - b) / b).abs();
                assert!(rel < 1e-4, "pow({x},{y}) = {a} vs {b}");
            }
        }
    }

    #[test]
    fn pow_negative_base_integer_exponent() {
        assert!((powf(-2.0, 3.0) + 8.0).abs() < 1e-4);
        assert!((powf(-2.0, 2.0) - 4.0).abs() < 1e-4);
        assert!(powf(-2.0, 0.5).is_nan());
    }

    #[test]
    fn sin_cos_accuracy() {
        let xs = grid(-20.0, 20.0, 8001);
        let es = xs
            .iter()
            .map(|&x| (sinf(x) - x.sin()).abs().max((cosf(x) - x.cos()).abs()))
            .fold(0.0, f32::max);
        assert!(es < 1e-5, "max abs err {es}");
    }

    #[test]
    fn sin_cos_identity() {
        for &x in &grid(-10.0, 10.0, 997) {
            let s = sinf(x);
            let c = cosf(x);
            assert!((s * s + c * c - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn atan_accuracy() {
        let xs = grid(-50.0, 50.0, 8001);
        let err = xs
            .iter()
            .map(|&x| (atanf(x) - x.atan()).abs())
            .fold(0.0, f32::max);
        assert!(err < 5e-6, "max abs err {err}");
    }
}

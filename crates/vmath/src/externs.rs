//! Runtime resolution of vector-library and machine-builtin calls.

use psir::{eval_math, ExecError, ExternFns, MathFn, RtVal, ScalarTy};

/// Resolves the external calls the vectorizer emits:
///
/// * `sleef.{fn}.{f32|f64}[x{G}]` — SLEEF-like library,
/// * `fastm.{fn}.{f32|f64}[x{G}]` — ispc-built-in-like library,
/// * `vmach.sad.{src}x{G}.{out}` — the §7 `vpsadbw` abstraction.
///
/// By default both math libraries compute IEEE-reference values (identical
/// to the scalar interpreter's [`eval_math`]), which keeps differential
/// tests bit-exact; their *costs* differ in the `vmach` cost model. With
/// [`RuntimeExterns::approx`], `f32` calls run the genuine polynomial
/// kernels from [`crate::poly`] instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeExterns {
    approx: bool,
}

impl RuntimeExterns {
    /// IEEE-reference value semantics (default).
    pub const fn new() -> RuntimeExterns {
        RuntimeExterns { approx: false }
    }

    /// Polynomial-kernel value semantics for `f32`.
    pub const fn approx() -> RuntimeExterns {
        RuntimeExterns { approx: true }
    }
}

fn parse_math(name: &str) -> Option<MathFn> {
    Some(match name {
        "exp" => MathFn::Exp,
        "log" => MathFn::Log,
        "pow" => MathFn::Pow,
        "sin" => MathFn::Sin,
        "cos" => MathFn::Cos,
        "tan" => MathFn::Tan,
        "atan" => MathFn::Atan,
        "atan2" => MathFn::Atan2,
        "exp2" => MathFn::Exp2,
        "log2" => MathFn::Log2,
        "cdf" => MathFn::Cdf,
        _ => return None,
    })
}

fn parse_elem(s: &str) -> Option<(ScalarTy, Option<u32>)> {
    let (elem, lanes) = match s.find('x') {
        Some(i) => (&s[..i], Some(s[i + 1..].parse().ok()?)),
        None => (s, None),
    };
    let ty = match elem {
        "f32" => ScalarTy::F32,
        "f64" => ScalarTy::F64,
        "i8" => ScalarTy::I8,
        "i16" => ScalarTy::I16,
        "i32" => ScalarTy::I32,
        "i64" => ScalarTy::I64,
        _ => return None,
    };
    Some((ty, lanes))
}

impl RuntimeExterns {
    fn math_lane(&self, mf: MathFn, ty: ScalarTy, row: &[u64]) -> Result<u64, ExecError> {
        if self.approx && ty == ScalarTy::F32 {
            let a = f32::from_bits(row[0] as u32);
            let b = row.get(1).map(|&x| f32::from_bits(x as u32)).unwrap_or(0.0);
            let r = match mf {
                MathFn::Exp => crate::poly::expf(a),
                MathFn::Log => crate::poly::logf(a),
                MathFn::Pow => crate::poly::powf(a, b),
                MathFn::Sin => crate::poly::sinf(a),
                MathFn::Cos => crate::poly::cosf(a),
                MathFn::Atan => crate::poly::atanf(a),
                MathFn::Exp2 => crate::poly::exp2f(a),
                MathFn::Log2 => crate::poly::log2f(a),
                // No polynomial kernel: fall back to the reference.
                _ => return eval_math(mf, ty, row),
            };
            Ok(r.to_bits() as u64)
        } else {
            eval_math(mf, ty, row)
        }
    }

    fn call_math(
        &self,
        mf: MathFn,
        ty: ScalarTy,
        lanes: Option<u32>,
        args: &[RtVal],
    ) -> Result<RtVal, ExecError> {
        if args.len() != mf.arity() {
            return Err(ExecError::Other(format!(
                "math.{} expects {} args",
                mf.name(),
                mf.arity()
            )));
        }
        match lanes {
            None => {
                let row: Result<Vec<u64>, _> = args.iter().map(|a| a.scalar()).collect();
                Ok(RtVal::S(self.math_lane(mf, ty, &row?)?))
            }
            Some(n) => {
                let cols: Result<Vec<&[u64]>, _> = args.iter().map(|a| a.vector()).collect();
                let cols = cols?;
                if cols.iter().any(|c| c.len() != n as usize) {
                    return Err(ExecError::Other("vector math lane mismatch".into()));
                }
                let mut out = Vec::with_capacity(n as usize);
                for i in 0..n as usize {
                    let row: Vec<u64> = cols.iter().map(|c| c[i]).collect();
                    out.push(self.math_lane(mf, ty, &row)?);
                }
                Ok(RtVal::V(out))
            }
        }
    }

    fn call_sad(&self, name_rest: &str, args: &[RtVal]) -> Result<RtVal, ExecError> {
        // name_rest = "{src}x{G}.{out}"
        let mut it = name_rest.split('.');
        let (src, lanes) = parse_elem(it.next().unwrap_or(""))
            .ok_or_else(|| ExecError::Other(format!("bad sad mangle {name_rest}")))?;
        let (out, _) = parse_elem(it.next().unwrap_or(""))
            .ok_or_else(|| ExecError::Other(format!("bad sad mangle {name_rest}")))?;
        let lanes = lanes.ok_or_else(|| ExecError::Other("sad needs lanes".into()))? as usize;
        let a = args
            .first()
            .ok_or_else(|| ExecError::Other("sad arity".into()))?
            .vector()?;
        let b = args
            .get(1)
            .ok_or_else(|| ExecError::Other("sad arity".into()))?
            .vector()?;
        if a.len() != lanes || b.len() != lanes {
            return Err(ExecError::Other("sad lane mismatch".into()));
        }
        let groups = lanes.div_ceil(8);
        let mut sums = vec![0u64; groups];
        for i in 0..lanes {
            let (ua, ub) = (a[i] & src.bit_mask(), b[i] & src.bit_mask());
            sums[i / 8] = sums[i / 8].wrapping_add(ua.abs_diff(ub));
        }
        Ok(RtVal::V(
            (0..lanes).map(|i| sums[i / 8] & out.bit_mask()).collect(),
        ))
    }
}

impl ExternFns for RuntimeExterns {
    fn call(&self, name: &str, args: &[RtVal]) -> Result<RtVal, ExecError> {
        if let Some(rest) = name.strip_prefix("vmach.sad.") {
            return self.call_sad(rest, args);
        }
        let mut parts = name.splitn(3, '.');
        let lib = parts.next().unwrap_or("");
        let func = parts.next().unwrap_or("");
        let suffix = parts.next().unwrap_or("");
        if lib != "sleef" && lib != "fastm" {
            return Err(ExecError::UnknownFunction(name.to_string()));
        }
        let mf = parse_math(func).ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        let (ty, lanes) =
            parse_elem(suffix).ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        self.call_math(mf, ty, lanes, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_vector_math_calls() {
        let e = RuntimeExterns::new();
        let r = e.call("sleef.exp.f32", &[RtVal::from_f32(1.0)]).unwrap();
        assert!((f32::from_bits(r.scalar().unwrap() as u32) - std::f32::consts::E).abs() < 1e-6);

        let v = RtVal::V(vec![(1.0f32).to_bits() as u64, (2.0f32).to_bits() as u64]);
        let r = e.call("fastm.exp.f32x2", &[v]).unwrap();
        let lanes = r.vector().unwrap();
        assert!((f32::from_bits(lanes[1] as u32) - (2.0f32).exp()).abs() < 1e-5);
    }

    #[test]
    fn sleef_and_fastm_agree_on_values_by_default() {
        let e = RuntimeExterns::new();
        let args = [RtVal::from_f32(3.5), RtVal::from_f32(1.7)];
        let a = e.call("sleef.pow.f32", &args).unwrap();
        let b = e.call("fastm.pow.f32", &args).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn approx_mode_uses_polynomials_within_tolerance() {
        let e = RuntimeExterns::approx();
        let r = e
            .call(
                "sleef.pow.f32",
                &[RtVal::from_f32(2.0), RtVal::from_f32(10.0)],
            )
            .unwrap();
        let v = f32::from_bits(r.scalar().unwrap() as u32);
        assert!((v - 1024.0).abs() / 1024.0 < 1e-4);
    }

    #[test]
    fn sad_groups_of_eight() {
        let e = RuntimeExterns::new();
        let a = RtVal::V((0..16).map(|i| i as u64).collect());
        let b = RtVal::V(vec![0u64; 16]);
        let r = e.call("vmach.sad.i8x16.i32", &[a, b]).unwrap();
        let lanes = r.vector().unwrap();
        // group 0: 0+1+…+7 = 28; group 1: 8+…+15 = 92
        assert_eq!(lanes[0], 28);
        assert_eq!(lanes[7], 28);
        assert_eq!(lanes[8], 92);
        assert_eq!(lanes[15], 92);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let e = RuntimeExterns::new();
        assert!(matches!(
            e.call("libm.exp.f32", &[RtVal::from_f32(1.0)]),
            Err(ExecError::UnknownFunction(_))
        ));
        assert!(matches!(
            e.call("sleef.nosuch.f32", &[RtVal::from_f32(1.0)]),
            Err(ExecError::UnknownFunction(_))
        ));
    }
}

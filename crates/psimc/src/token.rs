//! Lexer for PsimC.

use std::fmt;

/// Source position (1-based line/column) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based).
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal (value, had an explicit suffix type?).
    Int(i128, Option<String>),
    /// Float literal.
    Float(f64, Option<String>),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Error position.
    pub pos: Pos,
    /// Message.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";", "?", ":", ".",
];

/// Tokenizes PsimC source. `//` and `/* */` comments are skipped.
///
/// # Errors
/// Returns [`LexError`] on malformed literals or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    let advance = |i: &mut usize, line: &mut u32, col: &mut u32, n: usize, bytes: &[u8]| {
        for _ in 0..n {
            if bytes[*i] == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        if c.is_ascii_whitespace() {
            advance(&mut i, &mut line, &mut col, 1, bytes);
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            advance(&mut i, &mut line, &mut col, 2, bytes);
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            if i + 1 >= bytes.len() {
                return Err(LexError {
                    pos,
                    msg: "unterminated block comment".into(),
                });
            }
            advance(&mut i, &mut line, &mut col, 2, bytes);
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            out.push(Spanned {
                tok: Tok::Ident(src[start..i].to_string()),
                pos,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            let is_hex = src[i..].starts_with("0x") || src[i..].starts_with("0X");
            if is_hex {
                advance(&mut i, &mut line, &mut col, 2, bytes);
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                }
            } else {
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_digit() {
                        advance(&mut i, &mut line, &mut col, 1, bytes);
                    } else if b == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                        is_float = true;
                        advance(&mut i, &mut line, &mut col, 1, bytes);
                    } else if (b | 0x20) == b'e'
                        && i + 1 < bytes.len()
                        && (bytes[i + 1].is_ascii_digit()
                            || ((bytes[i + 1] == b'+' || bytes[i + 1] == b'-')
                                && i + 2 < bytes.len()
                                && bytes[i + 2].is_ascii_digit()))
                    {
                        is_float = true;
                        advance(&mut i, &mut line, &mut col, 1, bytes);
                        if bytes[i] == b'+' || bytes[i] == b'-' {
                            advance(&mut i, &mut line, &mut col, 1, bytes);
                        }
                    } else if b == b'.' && i + 1 < bytes.len() && !bytes[i + 1].is_ascii_digit() {
                        // trailing dot like `2.0` handled above; `2.` alone:
                        is_float = true;
                        advance(&mut i, &mut line, &mut col, 1, bytes);
                        break;
                    } else {
                        break;
                    }
                }
            }
            let body_end = i;
            // Optional type suffix: i8/u8/…/f32/f64
            let mut suffix = None;
            if i < bytes.len() && (bytes[i] == b'i' || bytes[i] == b'u' || bytes[i] == b'f') {
                let s = i;
                while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                }
                suffix = Some(src[s..i].to_string());
            }
            let body = &src[start..body_end];
            let is_float = is_float || matches!(&suffix, Some(s) if s.starts_with('f'));
            if is_float {
                let v: f64 = body.parse().map_err(|_| LexError {
                    pos,
                    msg: format!("bad float literal {body}"),
                })?;
                out.push(Spanned {
                    tok: Tok::Float(v, suffix),
                    pos,
                });
            } else {
                let v: i128 = if let Some(hex) =
                    body.strip_prefix("0x").or_else(|| body.strip_prefix("0X"))
                {
                    i128::from_str_radix(hex, 16).map_err(|_| LexError {
                        pos,
                        msg: format!("bad hex literal {body}"),
                    })?
                } else {
                    body.parse().map_err(|_| LexError {
                        pos,
                        msg: format!("bad integer literal {body}"),
                    })?
                };
                out.push(Spanned {
                    tok: Tok::Int(v, suffix),
                    pos,
                });
            }
            continue;
        }
        let rest = &src[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    pos,
                });
                advance(&mut i, &mut line, &mut col, p.len(), bytes);
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                pos,
                msg: format!("unexpected character {:?}", c as char),
            });
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_kernel_fragment() {
        let toks = lex("void f(u8* a) { i64 i = psim_thread_num(); a[i] = 3; }").unwrap();
        assert!(matches!(&toks[0].tok, Tok::Ident(s) if s == "void"));
        assert!(toks.iter().any(|t| matches!(&t.tok, Tok::Punct("["))));
        assert!(matches!(toks.last().unwrap().tok, Tok::Eof));
    }

    #[test]
    fn literals_and_suffixes() {
        let toks = lex("42 0xff 3.5 1e-3 7i64 2.5f32").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(42, None));
        assert_eq!(toks[1].tok, Tok::Int(255, None));
        assert_eq!(toks[2].tok, Tok::Float(3.5, None));
        assert_eq!(toks[3].tok, Tok::Float(1e-3, None));
        assert_eq!(toks[4].tok, Tok::Int(7, Some("i64".into())));
        assert_eq!(toks[5].tok, Tok::Float(2.5, Some("f32".into())));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("a // line\n/* block\nmore */ b").unwrap();
        assert_eq!(toks.len(), 3); // a, b, eof
    }

    #[test]
    fn multi_char_operators() {
        let toks = lex("a <<= b >> c <= d && e").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Punct("<<=")));
        assert!(toks.iter().any(|t| t.tok == Tok::Punct(">>")));
        assert!(toks.iter().any(|t| t.tok == Tok::Punct("&&")));
    }

    #[test]
    fn error_position_reported() {
        let err = lex("ab\n  @").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.col, 3);
    }
}

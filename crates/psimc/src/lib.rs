//! # psimc — the PsimC front-end
//!
//! A C-like language with the `psim gang(G) threads(N) { … }` SPMD construct
//! of the Parsimony paper (§3) and the `psim_*` API, compiled to `psir`.
//! The front-end does exactly what §4.1 asks of one: it outlines each SPMD
//! region into a standalone SPMD-annotated function (captured variables
//! become parameters) and replaces the region with the Listing 6 gang loop
//! calling the `__full` / `__partial` specializations that the `parsimony`
//! vectorizer later provides.
//!
//! ## Language summary
//!
//! * Types: `bool`, `i8..i64`, `u8..u64`, `f32`, `f64`, pointers (`T*`,
//!   optionally `restrict`). Signedness is explicit and there is **no
//!   implicit integer promotion** — arithmetic stays at the operand width;
//!   cast explicitly (`(i32) x`). Literals adapt to the surrounding type.
//! * Statements: declarations, assignments (including `+=` and `++`),
//!   `if`/`else`, `while`, `for`, `return`, blocks.
//! * `psim gang(G) threads(N) { … }` — the SPMD region; inside it the
//!   `psim_*` intrinsics are available (`psim_thread_num`, `psim_lane_num`,
//!   `psim_gang_sync`, `psim_shuffle`, `psim_reduce_add`, `psim_sad`, …).
//! * Builtins: `sqrt`, `abs`, `min`/`max`, `clamp`, `add_sat`/`sub_sat`,
//!   `avg_u`, `mulhi`, `fma`, and the transcendental set (`exp`, `log`,
//!   `pow`, `sin`, `cos`, …) that vectorizes into math-library calls.
//! * `&&`/`||` are non-short-circuiting over `bool`; the ternary operator
//!   evaluates both arms (they lower to `select`).
//!
//! # Examples
//!
//! ```
//! let module = psimc::compile(
//!     "void scale(f32* a, i64 n) {
//!          psim gang(16) threads(n) {
//!              i64 i = psim_thread_num();
//!              a[i] = a[i] * 2.0;
//!          }
//!      }",
//! )?;
//! assert!(module.function("scale").is_some());
//! assert_eq!(module.spmd_functions(), vec!["scale__psim0".to_string()]);
//! # Ok::<(), psimc::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod parser;
pub mod render;
pub mod token;

mod lower;

pub use lower::{compile, CompileError};
pub use parser::{parse, ParseError};

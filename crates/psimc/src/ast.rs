//! Abstract syntax tree and the PsimC surface type system.
//!
//! PsimC is the C-like host language of this reproduction: enough of C to
//! write the benchmark kernels (scalar types with explicit signedness,
//! pointers, loops, functions) plus the `psim gang(G) threads(N) { … }`
//! construct of §3 and the `psim_*` intrinsics. Deliberate divergences from
//! C, chosen for kernel clarity, are documented in the crate docs: no
//! implicit integer promotion (arithmetic stays at the operand width; cast
//! explicitly) and non-short-circuit `&&`/`||` over `bool`.

use crate::token::Pos;
use psir::ScalarTy;
use std::fmt;

/// Surface types. Signedness lives here (the IR encodes it in opcodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PTy {
    /// No value.
    Void,
    /// Boolean.
    Bool,
    /// Signed integers.
    I8,
    /// 16-bit signed.
    I16,
    /// 32-bit signed.
    I32,
    /// 64-bit signed.
    I64,
    /// Unsigned integers.
    U8,
    /// 16-bit unsigned.
    U16,
    /// 32-bit unsigned.
    U32,
    /// 64-bit unsigned.
    U64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Pointer to an element type.
    Ptr(Box<PTy>),
}

impl PTy {
    /// The IR scalar type this lowers to.
    pub fn scalar_ty(&self) -> ScalarTy {
        match self {
            PTy::Void => panic!("void has no scalar type"),
            PTy::Bool => ScalarTy::I1,
            PTy::I8 | PTy::U8 => ScalarTy::I8,
            PTy::I16 | PTy::U16 => ScalarTy::I16,
            PTy::I32 | PTy::U32 => ScalarTy::I32,
            PTy::I64 | PTy::U64 => ScalarTy::I64,
            PTy::F32 => ScalarTy::F32,
            PTy::F64 => ScalarTy::F64,
            PTy::Ptr(_) => ScalarTy::Ptr,
        }
    }

    /// Whether this is a signed integer type.
    pub fn is_signed_int(&self) -> bool {
        matches!(self, PTy::I8 | PTy::I16 | PTy::I32 | PTy::I64)
    }

    /// Whether this is an unsigned integer type.
    pub fn is_unsigned_int(&self) -> bool {
        matches!(self, PTy::U8 | PTy::U16 | PTy::U32 | PTy::U64)
    }

    /// Any integer type (bool excluded).
    pub fn is_int(&self) -> bool {
        self.is_signed_int() || self.is_unsigned_int()
    }

    /// Float type.
    pub fn is_float(&self) -> bool {
        matches!(self, PTy::F32 | PTy::F64)
    }

    /// Pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, PTy::Ptr(_))
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&PTy> {
        match self {
            PTy::Ptr(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for PTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PTy::Void => write!(f, "void"),
            PTy::Bool => write!(f, "bool"),
            PTy::I8 => write!(f, "i8"),
            PTy::I16 => write!(f, "i16"),
            PTy::I32 => write!(f, "i32"),
            PTy::I64 => write!(f, "i64"),
            PTy::U8 => write!(f, "u8"),
            PTy::U16 => write!(f, "u16"),
            PTy::U32 => write!(f, "u32"),
            PTy::U64 => write!(f, "u64"),
            PTy::F32 => write!(f, "f32"),
            PTy::F64 => write!(f, "f64"),
            PTy::Ptr(p) => write!(f, "{p}*"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `&&` (non-short-circuit over bool)
    LAnd,
    /// `||`
    LOr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOpKind {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal with optional suffix type.
    Int(i128, Option<PTy>, Pos),
    /// Float literal with optional suffix type.
    Float(f64, Option<PTy>, Pos),
    /// `true` / `false`.
    Bool(bool, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// Binary operation.
    Bin(BinOpKind, Box<Expr>, Box<Expr>, Pos),
    /// Unary operation.
    Un(UnOpKind, Box<Expr>, Pos),
    /// Explicit cast `(ty) e`.
    Cast(PTy, Box<Expr>, Pos),
    /// `a[i]` load (or store target).
    Index(Box<Expr>, Box<Expr>, Pos),
    /// `*p` load (or store target).
    Deref(Box<Expr>, Pos),
    /// Ternary `c ? t : f`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>, Pos),
    /// Call to a user function or builtin.
    Call(String, Vec<Expr>, Pos),
}

impl Expr {
    /// Source position for diagnostics.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, _, p)
            | Expr::Float(_, _, p)
            | Expr::Bool(_, p)
            | Expr::Var(_, p)
            | Expr::Bin(_, _, _, p)
            | Expr::Un(_, _, p)
            | Expr::Cast(_, _, p)
            | Expr::Index(_, _, p)
            | Expr::Deref(_, p)
            | Expr::Ternary(_, _, _, p)
            | Expr::Call(_, _, p) => *p,
        }
    }
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// Local variable.
    Var(String, Pos),
    /// `a[i]`.
    Index(Expr, Expr, Pos),
    /// `*p`.
    Deref(Expr, Pos),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `ty name = init;`
    Decl(PTy, String, Expr, Pos),
    /// `ty name[K];` — a local array of `K` elements (lowers to an
    /// entry-block alloca; in a psim region each thread gets a private
    /// copy, §4.2.3).
    DeclArray(PTy, String, u64, Pos),
    /// `place op= expr;` (plain `=` uses `None`).
    Assign(Place, Option<BinOpKind>, Expr, Pos),
    /// `if (c) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>, Pos),
    /// `while (c) { .. }`
    While(Expr, Vec<Stmt>, Pos),
    /// `for (init; cond; step) { .. }` — desugared by the parser into
    /// Decl/Assign + While, so lowering never sees it.
    Block(Vec<Stmt>),
    /// `return e?;`
    Return(Option<Expr>, Pos),
    /// Expression statement (a call).
    Expr(Expr, Pos),
    /// `psim gang(G) threads(N) { .. }` (§3).
    Psim {
        /// Compile-time gang size.
        gang: u32,
        /// Thread-count expression, evaluated at the region entry.
        threads: Expr,
        /// Region body.
        body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct FnParam {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: PTy,
    /// `restrict`-qualified pointer.
    pub restrict: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<FnParam>,
    /// Return type.
    pub ret: PTy,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// A parsed compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// All function definitions, in source order.
    pub funcs: Vec<FnDef>,
}

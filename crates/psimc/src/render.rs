//! AST → PsimC source pretty-printer.
//!
//! The inverse of [`crate::parse`]: renders a [`Unit`] (or any statement /
//! expression) back into PsimC source that the parser accepts. Programmatic
//! AST construction (the fuzz generator, shrinker candidates) goes through
//! this renderer so that every artifact — generated programs, minimized
//! repros, corpus files — is plain compilable source rather than an opaque
//! serialized tree.
//!
//! The renderer is deliberately conservative: every composite expression is
//! fully parenthesized, so operator precedence never has to be reconstructed
//! and `render(parse(render(x))) == render(x)` holds for every well-formed
//! tree (string-level idempotence after one round trip).

use crate::ast::{BinOpKind, Expr, FnDef, Place, Stmt, UnOpKind, Unit};
use std::fmt::Write as _;

/// Renders a whole compilation unit.
pub fn render_unit(u: &Unit) -> String {
    let mut out = String::new();
    for (i, f) in u.funcs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        render_fn(&mut out, f);
    }
    out
}

/// Renders one function definition.
fn render_fn(out: &mut String, f: &FnDef) {
    let _ = write!(out, "{} {}(", f.ret, f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}", p.ty);
        if p.restrict {
            out.push_str(" restrict");
        }
        let _ = write!(out, " {}", p.name);
    }
    out.push_str(") {\n");
    for s in &f.body {
        render_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

/// Renders one statement (with trailing newline) at the given indent depth.
pub fn render_stmt(out: &mut String, s: &Stmt, depth: usize) {
    match s {
        Stmt::Decl(ty, name, init, _) => {
            indent(out, depth);
            let _ = writeln!(out, "{ty} {name} = {};", render_expr(init));
        }
        Stmt::DeclArray(ty, name, k, _) => {
            indent(out, depth);
            let _ = writeln!(out, "{ty} {name}[{k}];");
        }
        Stmt::Assign(place, op, rhs, _) => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "{} {}= {};",
                render_place(place),
                op.map(assign_op_token).unwrap_or(""),
                render_expr(rhs)
            );
        }
        Stmt::If(cond, then_b, else_b, _) => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", render_expr(cond));
            for s in then_b {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            if else_b.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_b {
                    render_stmt(out, s, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While(cond, body, _) => {
            indent(out, depth);
            let _ = writeln!(out, "while ({}) {{", render_expr(cond));
            for s in body {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Block(body) => {
            indent(out, depth);
            out.push_str("{\n");
            for s in body {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return(None, _) => {
            indent(out, depth);
            out.push_str("return;\n");
        }
        Stmt::Return(Some(e), _) => {
            indent(out, depth);
            let _ = writeln!(out, "return {};", render_expr(e));
        }
        Stmt::Expr(e, _) => {
            indent(out, depth);
            let _ = writeln!(out, "{};", render_expr(e));
        }
        Stmt::Psim {
            gang,
            threads,
            body,
            ..
        } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "psim gang({gang}) threads({}) {{",
                render_expr(threads)
            );
            for s in body {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

fn render_place(p: &Place) -> String {
    match p {
        Place::Var(n, _) => n.clone(),
        Place::Index(base, idx, _) => {
            format!("{}[{}]", render_base(base), render_expr(idx))
        }
        Place::Deref(e, _) => format!("(*{})", render_expr(e)),
    }
}

/// Index bases don't need parentheses when they are simple names.
fn render_base(e: &Expr) -> String {
    match e {
        Expr::Var(n, _) => n.clone(),
        other => format!("({})", render_expr(other)),
    }
}

/// Renders one expression. Composite forms come back fully parenthesized.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v, suffix, _) => {
            // Keep negative literals unambiguous in any operator context:
            // `a - -5` would lex, but `(-5)` reparses identically
            // everywhere.
            if *v < 0 {
                format!("(-{}{})", v.unsigned_abs(), suffix_str(suffix))
            } else {
                format!("{v}{}", suffix_str(suffix))
            }
        }
        Expr::Float(v, suffix, _) => {
            debug_assert!(v.is_finite(), "cannot render a non-finite float literal");
            if *v < 0.0 {
                format!("(-{:?}{})", -v, suffix_str(suffix))
            } else {
                format!("{v:?}{}", suffix_str(suffix))
            }
        }
        Expr::Bool(b, _) => b.to_string(),
        Expr::Var(n, _) => n.clone(),
        Expr::Bin(op, l, r, _) => {
            format!(
                "({} {} {})",
                render_expr(l),
                bin_op_token(*op),
                render_expr(r)
            )
        }
        Expr::Un(op, a, _) => {
            let t = match op {
                UnOpKind::Neg => "-",
                UnOpKind::Not => "!",
                UnOpKind::BitNot => "~",
            };
            format!("({t}{})", render_expr(a))
        }
        Expr::Cast(ty, a, _) => format!("(({ty}) {})", render_expr(a)),
        Expr::Index(base, idx, _) => {
            format!("{}[{}]", render_base(base), render_expr(idx))
        }
        Expr::Deref(a, _) => format!("(*{})", render_expr(a)),
        Expr::Ternary(c, t, f, _) => format!(
            "({} ? {} : {})",
            render_expr(c),
            render_expr(t),
            render_expr(f)
        ),
        Expr::Call(name, args, _) => {
            let rendered: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", rendered.join(", "))
        }
    }
}

fn suffix_str(s: &Option<crate::ast::PTy>) -> String {
    match s {
        None => String::new(),
        Some(ty) => ty.to_string(),
    }
}

fn bin_op_token(op: BinOpKind) -> &'static str {
    match op {
        BinOpKind::Add => "+",
        BinOpKind::Sub => "-",
        BinOpKind::Mul => "*",
        BinOpKind::Div => "/",
        BinOpKind::Rem => "%",
        BinOpKind::Shl => "<<",
        BinOpKind::Shr => ">>",
        BinOpKind::And => "&",
        BinOpKind::Or => "|",
        BinOpKind::Xor => "^",
        BinOpKind::LAnd => "&&",
        BinOpKind::LOr => "||",
        BinOpKind::Lt => "<",
        BinOpKind::Le => "<=",
        BinOpKind::Gt => ">",
        BinOpKind::Ge => ">=",
        BinOpKind::EqEq => "==",
        BinOpKind::Ne => "!=",
    }
}

fn assign_op_token(op: BinOpKind) -> &'static str {
    match op {
        BinOpKind::Add => "+",
        BinOpKind::Sub => "-",
        BinOpKind::Mul => "*",
        BinOpKind::Div => "/",
        BinOpKind::Rem => "%",
        BinOpKind::And => "&",
        BinOpKind::Or => "|",
        BinOpKind::Xor => "^",
        BinOpKind::Shl => "<<",
        BinOpKind::Shr => ">>",
        other => unreachable!("`{other:?}` is not a compound-assignment operator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Round-trip idempotence: parse → render → parse → render is a
    /// fixpoint at the string level, and the second parse equals the first
    /// modulo positions (checked by re-rendering).
    fn round_trips(src: &str) {
        let u1 = parse(src).expect("source parses");
        let r1 = render_unit(&u1);
        let u2 = parse(&r1).unwrap_or_else(|e| panic!("rendered source reparses: {e}\n{r1}"));
        let r2 = render_unit(&u2);
        assert_eq!(r1, r2, "render is not idempotent for:\n{src}");
    }

    #[test]
    fn renders_core_constructs() {
        round_trips(
            "void k(f32* restrict a, i32* b, i64 n) {
                 psim gang(8) threads(n) {
                     i64 i = psim_thread_num();
                     f32 x = a[i] * 2.0 + -0.5;
                     i32 acc = 0;
                     i32 t = 0;
                     while (t < 4) {
                         if ((b[i] & 1) == 0) { acc += b[i] / 3; } else { acc -= 1; }
                         t++;
                     }
                     f32 s = psim_shuffle(x, (psim_lane_num() + 1) % psim_gang_size());
                     i32 r = psim_reduce_add(acc);
                     a[i] = x > 0.0 ? s : (f32) r;
                     b[(n - 1) - i] = acc << 2;
                 }
             }",
        );
    }

    #[test]
    fn renders_literals_and_casts() {
        round_trips(
            "i32 helper(i32 x) {
                 i64 big = 7i64;
                 f32 f = 2.5f32;
                 f64 d = 0.1;
                 u32 u = 4000000000u32;
                 bool flag = true;
                 i32 arr[8];
                 arr[x & 7] = x;
                 return flag ? (i32) big + arr[0] : ~x;
             }",
        );
    }

    #[test]
    fn renders_negative_literals_unambiguously() {
        use crate::ast::{Expr, PTy, Stmt};
        use crate::token::Pos;
        let p = Pos { line: 1, col: 1 };
        // A hand-built tree with a genuinely negative literal (the parser
        // itself only produces Neg-wrapped positives).
        let f = FnDef {
            name: "neg".into(),
            params: vec![],
            ret: PTy::I32,
            body: vec![Stmt::Return(
                Some(Expr::Bin(
                    BinOpKind::Sub,
                    Box::new(Expr::Int(3, None, p)),
                    Box::new(Expr::Int(-5, Some(PTy::I32), p)),
                    p,
                )),
                p,
            )],
            pos: p,
        };
        let src = render_unit(&Unit { funcs: vec![f] });
        assert!(src.contains("(3 - (-5i32))"), "got: {src}");
        let reparsed = parse(&src).expect("reparses");
        assert_eq!(render_unit(&reparsed), src);
    }
}

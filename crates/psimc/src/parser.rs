//! Recursive-descent parser for PsimC.

use crate::ast::*;
use crate::token::{lex, Pos, Spanned, Tok};
use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Error position.
    pub pos: Pos,
    /// Message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            pos: self.pos(),
            msg: msg.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> PResult<()> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other:?}")),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn base_ty(name: &str) -> Option<PTy> {
        Some(match name {
            "void" => PTy::Void,
            "bool" => PTy::Bool,
            "i8" => PTy::I8,
            "i16" => PTy::I16,
            "i32" => PTy::I32,
            "i64" => PTy::I64,
            "u8" => PTy::U8,
            "u16" => PTy::U16,
            "u32" => PTy::U32,
            "u64" => PTy::U64,
            "f32" => PTy::F32,
            "f64" => PTy::F64,
            _ => return None,
        })
    }

    /// If the next tokens form a type, parse it (base type plus `*`s).
    fn try_ty(&mut self) -> Option<PTy> {
        let Tok::Ident(name) = self.peek().clone() else {
            return None;
        };
        let base = Self::base_ty(&name)?;
        self.bump();
        let mut ty = base;
        while self.try_punct("*") {
            ty = PTy::Ptr(Box::new(ty));
        }
        Some(ty)
    }

    fn suffix_ty(s: &Option<String>) -> Option<PTy> {
        s.as_deref().and_then(Self::base_ty)
    }

    // ---- expressions -------------------------------------------------------

    fn primary(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v, suf) => {
                self.bump();
                Ok(Expr::Int(v, Self::suffix_ty(&suf), pos))
            }
            Tok::Float(v, suf) => {
                self.bump();
                Ok(Expr::Float(v, Self::suffix_ty(&suf), pos))
            }
            Tok::Ident(name) => {
                if name == "true" || name == "false" {
                    self.bump();
                    return Ok(Expr::Bool(name == "true", pos));
                }
                self.bump();
                if self.try_punct("(") {
                    let mut args = Vec::new();
                    if !self.try_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.try_punct(")") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args, pos))
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            Tok::Punct("(") => {
                self.bump();
                // Could be a cast `(ty) e` or a parenthesized expression.
                let save = self.i;
                if let Some(ty) = self.try_ty() {
                    if self.try_punct(")") {
                        let e = self.unary()?;
                        return Ok(Expr::Cast(ty, Box::new(e), pos));
                    }
                    self.i = save;
                }
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            let pos = self.pos();
            if self.try_punct("[") {
                let idx = self.expr()?;
                self.eat_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx), pos);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        if self.try_punct("-") {
            return Ok(Expr::Un(UnOpKind::Neg, Box::new(self.unary()?), pos));
        }
        if self.try_punct("!") {
            return Ok(Expr::Un(UnOpKind::Not, Box::new(self.unary()?), pos));
        }
        if self.try_punct("~") {
            return Ok(Expr::Un(UnOpKind::BitNot, Box::new(self.unary()?), pos));
        }
        if self.try_punct("*") {
            return Ok(Expr::Deref(Box::new(self.unary()?), pos));
        }
        self.postfix()
    }

    fn bin_op(p: &str) -> Option<(BinOpKind, u8)> {
        // (operator, binding power); higher binds tighter
        Some(match p {
            "*" => (BinOpKind::Mul, 10),
            "/" => (BinOpKind::Div, 10),
            "%" => (BinOpKind::Rem, 10),
            "+" => (BinOpKind::Add, 9),
            "-" => (BinOpKind::Sub, 9),
            "<<" => (BinOpKind::Shl, 8),
            ">>" => (BinOpKind::Shr, 8),
            "<" => (BinOpKind::Lt, 7),
            "<=" => (BinOpKind::Le, 7),
            ">" => (BinOpKind::Gt, 7),
            ">=" => (BinOpKind::Ge, 7),
            "==" => (BinOpKind::EqEq, 6),
            "!=" => (BinOpKind::Ne, 6),
            "&" => (BinOpKind::And, 5),
            "^" => (BinOpKind::Xor, 4),
            "|" => (BinOpKind::Or, 3),
            "&&" => (BinOpKind::LAnd, 2),
            "||" => (BinOpKind::LOr, 1),
            _ => return None,
        })
    }

    fn binary(&mut self, min_bp: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let pos = self.pos();
            let Tok::Punct(p) = self.peek() else {
                return Ok(lhs);
            };
            let Some((op, bp)) = Self::bin_op(p) else {
                return Ok(lhs);
            };
            if bp < min_bp {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.binary(bp + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn expr(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        let c = self.binary(0)?;
        if self.try_punct("?") {
            let t = self.expr()?;
            self.eat_punct(":")?;
            let f = self.expr()?;
            return Ok(Expr::Ternary(Box::new(c), Box::new(t), Box::new(f), pos));
        }
        Ok(c)
    }

    // ---- statements --------------------------------------------------------

    fn place_from_expr(e: Expr) -> PResult<Place> {
        match e {
            Expr::Var(n, p) => Ok(Place::Var(n, p)),
            Expr::Index(a, i, p) => Ok(Place::Index(*a, *i, p)),
            Expr::Deref(a, p) => Ok(Place::Deref(*a, p)),
            other => Err(ParseError {
                pos: other.pos(),
                msg: "expression is not assignable".into(),
            }),
        }
    }

    fn assign_op(p: &str) -> Option<Option<BinOpKind>> {
        Some(match p {
            "=" => None,
            "+=" => Some(BinOpKind::Add),
            "-=" => Some(BinOpKind::Sub),
            "*=" => Some(BinOpKind::Mul),
            "/=" => Some(BinOpKind::Div),
            "%=" => Some(BinOpKind::Rem),
            "&=" => Some(BinOpKind::And),
            "|=" => Some(BinOpKind::Or),
            "^=" => Some(BinOpKind::Xor),
            "<<=" => Some(BinOpKind::Shl),
            ">>=" => Some(BinOpKind::Shr),
            _ => return None,
        })
    }

    fn simple_stmt(&mut self) -> PResult<Stmt> {
        // decl | assignment | expr — WITHOUT the trailing `;` (shared with for-headers)
        let pos = self.pos();
        let save = self.i;
        if let Some(ty) = self.try_ty() {
            if let Tok::Ident(_) = self.peek() {
                let name = self.eat_ident()?;
                if self.try_punct("[") {
                    let size = match self.bump() {
                        Tok::Int(v, _) if v > 0 && v <= (1 << 20) => v as u64,
                        other => {
                            return self.err(format!(
                                "array size must be a positive integer literal, found {other:?}"
                            ))
                        }
                    };
                    self.eat_punct("]")?;
                    return Ok(Stmt::DeclArray(ty, name, size, pos));
                }
                self.eat_punct("=")?;
                let init = self.expr()?;
                return Ok(Stmt::Decl(ty, name, init, pos));
            }
            self.i = save;
        }
        let e = self.expr()?;
        if let Tok::Punct(p) = self.peek() {
            if let Some(op) = Self::assign_op(p) {
                self.bump();
                let rhs = self.expr()?;
                let place = Self::place_from_expr(e)?;
                return Ok(Stmt::Assign(place, op, rhs, pos));
            }
            if *p == "++" || *p == "--" {
                let op = if *p == "++" {
                    BinOpKind::Add
                } else {
                    BinOpKind::Sub
                };
                self.bump();
                let place = Self::place_from_expr(e)?;
                return Ok(Stmt::Assign(place, Some(op), Expr::Int(1, None, pos), pos));
            }
        }
        Ok(Stmt::Expr(e, pos))
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.try_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let pos = self.pos();
        if self.try_keyword("if") {
            self.eat_punct("(")?;
            let c = self.expr()?;
            self.eat_punct(")")?;
            let then_b = self.block()?;
            let else_b = if self.try_keyword("else") {
                if matches!(self.peek(), Tok::Ident(s) if s == "if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then_b, else_b, pos));
        }
        if self.try_keyword("while") {
            self.eat_punct("(")?;
            let c = self.expr()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(c, body, pos));
        }
        if self.try_keyword("for") {
            self.eat_punct("(")?;
            let init = self.simple_stmt()?;
            self.eat_punct(";")?;
            let cond = self.expr()?;
            self.eat_punct(";")?;
            let step = self.simple_stmt()?;
            self.eat_punct(")")?;
            let mut body = self.block()?;
            body.push(step);
            return Ok(Stmt::Block(vec![init, Stmt::While(cond, body, pos)]));
        }
        if self.try_keyword("return") {
            if self.try_punct(";") {
                return Ok(Stmt::Return(None, pos));
            }
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Return(Some(e), pos));
        }
        if self.try_keyword("psim") {
            // psim gang(G) threads(N) { body }
            if !self.try_keyword("gang") {
                return self.err("expected `gang(<const>)` after `psim`");
            }
            self.eat_punct("(")?;
            let gang = match self.bump() {
                Tok::Int(v, _) if v > 0 && v <= 4096 => v as u32,
                other => {
                    return self.err(format!(
                        "gang size must be a positive integer literal, found {other:?}"
                    ))
                }
            };
            self.eat_punct(")")?;
            if !self.try_keyword("threads") {
                return self.err("expected `threads(<expr>)`");
            }
            self.eat_punct("(")?;
            let threads = self.expr()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::Psim {
                gang,
                threads,
                body,
                pos,
            });
        }
        if matches!(self.peek(), Tok::Punct("{")) {
            return Ok(Stmt::Block(self.block()?));
        }
        let s = self.simple_stmt()?;
        self.eat_punct(";")?;
        Ok(s)
    }

    fn func(&mut self) -> PResult<FnDef> {
        let pos = self.pos();
        let ret = self.try_ty().ok_or_else(|| ParseError {
            pos,
            msg: "expected return type".into(),
        })?;
        let name = self.eat_ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.try_punct(")") {
            loop {
                let ppos = self.pos();
                let ty = self.try_ty().ok_or_else(|| ParseError {
                    pos: ppos,
                    msg: "expected parameter type".into(),
                })?;
                let restrict = self.try_keyword("restrict");
                let pname = self.eat_ident()?;
                params.push(FnParam {
                    name: pname,
                    ty,
                    restrict,
                });
                if self.try_punct(")") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            ret,
            body,
            pos,
        })
    }

    fn unit(&mut self) -> PResult<Unit> {
        let mut funcs = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            funcs.push(self.func()?);
        }
        Ok(Unit { funcs })
    }
}

/// Parses a PsimC compilation unit.
///
/// # Errors
/// Returns [`ParseError`] with a source position on malformed input.
pub fn parse(src: &str) -> PResult<Unit> {
    let toks = lex(src).map_err(|e| ParseError {
        pos: e.pos,
        msg: e.msg,
    })?;
    Parser { toks, i: 0 }.unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_serial_function() {
        let u = parse(
            "void add(u8* restrict a, u8* restrict b, i64 n) {
                for (i64 i = 0; i < n; i += 1) {
                    a[i] = a[i] + b[i];
                }
            }",
        )
        .unwrap();
        assert_eq!(u.funcs.len(), 1);
        assert!(u.funcs[0].params[0].restrict);
        // for desugars to Block[Decl, While]
        match &u.funcs[0].body[0] {
            Stmt::Block(inner) => {
                assert!(matches!(inner[0], Stmt::Decl(..)));
                assert!(matches!(inner[1], Stmt::While(..)));
            }
            other => panic!("expected Block, got {other:?}"),
        }
    }

    #[test]
    fn parses_psim_region() {
        let u = parse(
            "void k(f32* a, i64 n) {
                psim gang(16) threads(n) {
                    i64 i = psim_thread_num();
                    a[i] = a[i] * 2.0f32;
                }
            }",
        )
        .unwrap();
        match &u.funcs[0].body[0] {
            Stmt::Psim { gang, .. } => assert_eq!(*gang, 16),
            other => panic!("expected Psim, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_ternary() {
        let u = parse("i32 f(i32 x) { return x + 2 * 3 < 10 ? x << 1 : x & 7; }").unwrap();
        match &u.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Ternary(c, ..)), _) => {
                assert!(matches!(**c, Expr::Bin(BinOpKind::Lt, ..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cast_vs_parenthesized() {
        let u = parse("f32 f(i32 x) { return (f32) x; } i32 g(i32 x) { return (x); }").unwrap();
        assert!(matches!(
            &u.funcs[0].body[0],
            Stmt::Return(Some(Expr::Cast(PTy::F32, ..)), _)
        ));
        assert!(matches!(
            &u.funcs[1].body[0],
            Stmt::Return(Some(Expr::Var(..)), _)
        ));
    }

    #[test]
    fn error_on_non_literal_gang() {
        let err = parse("void f(i64 n) { psim gang(n) threads(n) { } }").unwrap_err();
        assert!(err.msg.contains("gang size"));
    }

    #[test]
    fn increment_sugar() {
        let u = parse("void f() { i64 i = 0; i++; }").unwrap();
        assert!(matches!(
            &u.funcs[0].body[1],
            Stmt::Assign(Place::Var(..), Some(BinOpKind::Add), ..)
        ));
    }
}

//! Lowering from the PsimC AST to `psir`, including `#psim` region
//! outlining (§4.1).
//!
//! Variables lower to SSA directly (no allocas): structured control flow
//! makes join points explicit, so the lowerer snapshots the variable map at
//! branches and inserts φs at joins and loop headers for everything the
//! body assigns. `psim` regions are outlined into standalone SPMD-annotated
//! functions (captured variables become parameters, by value — assigning to
//! a captured scalar inside a region is a compile error) and the call site
//! becomes the Listing 6 gang loop via [`parsimony::emit_gang_loop`].

use crate::ast::*;
use crate::token::Pos;
use psir::{
    BinOp as IrBin, CastKind, CmpPred, Const, FunctionBuilder, Intrinsic, MathFn, Module, Param,
    ReduceOp, ScalarTy, SpmdInfo, ThreadCount, Ty, UnOp as IrUn, Value,
};
use std::collections::HashMap;
use std::fmt;

/// A semantic (type-check or lowering) error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Source position, when known.
    pub pos: Option<Pos>,
    /// Message.
    pub msg: String,
}

impl CompileError {
    fn at(pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError {
            pos: Some(pos),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "error at {p}: {}", self.msg),
            None => write!(f, "error: {}", self.msg),
        }
    }
}

impl std::error::Error for CompileError {}

type LResult<T> = Result<T, CompileError>;

#[derive(Clone)]
struct Var {
    ty: PTy,
    val: Value,
    captured: bool,
}

#[derive(Clone)]
struct Sig {
    params: Vec<PTy>,
    ret: PTy,
}

struct Lowerer<'u> {
    unit: &'u Unit,
    sigs: HashMap<String, Sig>,
    module: Module,
    region_counter: usize,
}

struct FnCtx {
    fb: FunctionBuilder,
    scopes: Vec<HashMap<String, Var>>,
    in_region: bool,
    terminated: bool,
    ret_ty: PTy,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<&Var> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn assign(&mut self, name: &str, val: Value) -> bool {
        for s in self.scopes.iter_mut().rev() {
            if let Some(v) = s.get_mut(name) {
                v.val = val;
                return true;
            }
        }
        false
    }

    fn declare(&mut self, name: &str, ty: PTy, val: Value, captured: bool) {
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.to_string(), Var { ty, val, captured });
    }

    /// Snapshot of every visible variable's current SSA value.
    fn snapshot(&self) -> Vec<(String, Value, PTy)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for s in self.scopes.iter().rev() {
            for (k, v) in s {
                if seen.insert(k.clone()) {
                    out.push((k.clone(), v.val, v.ty.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Names assigned (not declared) anywhere in a statement list.
fn assigned_names(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign(Place::Var(n, _), _, _, _) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Stmt::Assign(_, _, _, _)
            | Stmt::Decl(..)
            | Stmt::DeclArray(..)
            | Stmt::Return(..)
            | Stmt::Expr(..) => {}
            Stmt::If(_, a, b, _) => {
                assigned_names(a, out);
                assigned_names(b, out);
            }
            Stmt::While(_, b, _) => assigned_names(b, out),
            Stmt::Block(b) => assigned_names(b, out),
            Stmt::Psim { body, .. } => assigned_names(body, out),
        }
    }
}

/// Free variable names referenced in an expression.
fn expr_free_vars(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Var(n, _) => {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        Expr::Int(..) | Expr::Float(..) | Expr::Bool(..) => {}
        Expr::Bin(_, a, b, _) => {
            expr_free_vars(a, out);
            expr_free_vars(b, out);
        }
        Expr::Un(_, a, _) | Expr::Cast(_, a, _) | Expr::Deref(a, _) => expr_free_vars(a, out),
        Expr::Index(a, i, _) => {
            expr_free_vars(a, out);
            expr_free_vars(i, out);
        }
        Expr::Ternary(c, t, f, _) => {
            expr_free_vars(c, out);
            expr_free_vars(t, out);
            expr_free_vars(f, out);
        }
        Expr::Call(_, args, _) => {
            for a in args {
                expr_free_vars(a, out);
            }
        }
    }
}

/// Free variables of a region body: referenced names minus locally declared
/// ones, in first-reference order.
fn region_captures(body: &[Stmt]) -> Vec<String> {
    fn walk(stmts: &[Stmt], declared: &mut Vec<String>, free: &mut Vec<String>) {
        let mark = |names: &mut Vec<String>, declared: &[String], free: &mut Vec<String>| {
            for n in names.drain(..) {
                if !declared.contains(&n) && !free.contains(&n) {
                    free.push(n);
                }
            }
        };
        for s in stmts {
            match s {
                Stmt::Decl(_, name, init, _) => {
                    let mut names = Vec::new();
                    expr_free_vars(init, &mut names);
                    mark(&mut names, declared, free);
                    declared.push(name.clone());
                }
                Stmt::DeclArray(_, name, _, _) => {
                    declared.push(name.clone());
                }
                Stmt::Assign(place, _, rhs, _) => {
                    let mut names = Vec::new();
                    match place {
                        Place::Var(n, _) => {
                            if !declared.contains(n) {
                                names.push(n.clone());
                            }
                        }
                        Place::Index(a, i, _) => {
                            expr_free_vars(a, &mut names);
                            expr_free_vars(i, &mut names);
                        }
                        Place::Deref(a, _) => expr_free_vars(a, &mut names),
                    }
                    expr_free_vars(rhs, &mut names);
                    mark(&mut names, declared, free);
                }
                Stmt::If(c, a, b, _) => {
                    let mut names = Vec::new();
                    expr_free_vars(c, &mut names);
                    mark(&mut names, declared, free);
                    let depth = declared.len();
                    walk(a, declared, free);
                    declared.truncate(depth);
                    walk(b, declared, free);
                    declared.truncate(depth);
                }
                Stmt::While(c, b, _) => {
                    let mut names = Vec::new();
                    expr_free_vars(c, &mut names);
                    mark(&mut names, declared, free);
                    let depth = declared.len();
                    walk(b, declared, free);
                    declared.truncate(depth);
                }
                Stmt::Block(b) => {
                    let depth = declared.len();
                    walk(b, declared, free);
                    declared.truncate(depth);
                }
                Stmt::Return(Some(e), _) | Stmt::Expr(e, _) => {
                    let mut names = Vec::new();
                    expr_free_vars(e, &mut names);
                    mark(&mut names, declared, free);
                }
                Stmt::Return(None, _) => {}
                Stmt::Psim { threads, body, .. } => {
                    let mut names = Vec::new();
                    expr_free_vars(threads, &mut names);
                    mark(&mut names, declared, free);
                    let depth = declared.len();
                    walk(body, declared, free);
                    declared.truncate(depth);
                }
            }
        }
    }
    let mut declared = Vec::new();
    let mut free = Vec::new();
    walk(body, &mut declared, &mut free);
    free
}

impl<'u> Lowerer<'u> {
    fn lower_unit(mut self) -> LResult<Module> {
        for f in &self.unit.funcs {
            self.lower_fn(f)?;
        }
        Ok(self.module)
    }

    fn lower_fn(&mut self, def: &FnDef) -> LResult<()> {
        let params: Vec<Param> = def
            .params
            .iter()
            .map(|p| {
                let mut pp = Param::new(p.name.clone(), Ty::Scalar(p.ty.scalar_ty()));
                pp.noalias = p.restrict;
                pp
            })
            .collect();
        let ret = match def.ret {
            PTy::Void => Ty::Void,
            ref t => Ty::Scalar(t.scalar_ty()),
        };
        let fb = FunctionBuilder::new(def.name.clone(), params, ret);
        let mut cx = FnCtx {
            fb,
            scopes: vec![HashMap::new()],
            in_region: false,
            terminated: false,
            ret_ty: def.ret.clone(),
        };
        for (i, p) in def.params.iter().enumerate() {
            cx.declare(&p.name, p.ty.clone(), Value::Param(i as u32), false);
        }
        self.lower_stmts(&mut cx, &def.body)?;
        if !cx.terminated {
            if def.ret == PTy::Void {
                cx.fb.ret(None);
            } else {
                return Err(CompileError::at(
                    def.pos,
                    format!("function `{}` may end without returning a value", def.name),
                ));
            }
        }
        self.module.add_function(cx.fb.finish());
        Ok(())
    }

    fn lower_stmts(&mut self, cx: &mut FnCtx, stmts: &[Stmt]) -> LResult<()> {
        cx.scopes.push(HashMap::new());
        for s in stmts {
            if cx.terminated {
                return Err(CompileError::at(stmt_pos(s), "unreachable statement"));
            }
            self.lower_stmt(cx, s)?;
        }
        cx.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, cx: &mut FnCtx, s: &Stmt) -> LResult<()> {
        match s {
            Stmt::DeclArray(ty, name, size, pos) => {
                if ty == &PTy::Void || ty.is_ptr() {
                    return Err(CompileError::at(*pos, "array element must be a value type"));
                }
                let bytes = ty.scalar_ty().size_bytes() * size;
                let p = cx.fb.alloca_at_entry(psir::Const::i64(bytes as i64));
                cx.declare(name, PTy::Ptr(Box::new(ty.clone())), p, false);
                Ok(())
            }
            Stmt::Decl(ty, name, init, pos) => {
                let (v, vty) = self.lower_expr(cx, init, Some(ty))?;
                if &vty != ty {
                    return Err(CompileError::at(
                        *pos,
                        format!("initializer for `{name}` has type {vty}, expected {ty}"),
                    ));
                }
                cx.declare(name, ty.clone(), v, false);
                Ok(())
            }
            Stmt::Assign(place, op, rhs, pos) => self.lower_assign(cx, place, *op, rhs, *pos),
            Stmt::If(c, then_s, else_s, pos) => self.lower_if(cx, c, then_s, else_s, *pos),
            Stmt::While(c, body, pos) => self.lower_while(cx, c, body, *pos),
            Stmt::Block(b) => self.lower_stmts(cx, b),
            Stmt::Return(e, pos) => {
                if cx.in_region {
                    return Err(CompileError::at(
                        *pos,
                        "`return` is not allowed inside a psim region",
                    ));
                }
                match (e, cx.ret_ty.clone()) {
                    (None, PTy::Void) => cx.fb.ret(None),
                    (Some(e), ref t) if *t != PTy::Void => {
                        let (v, vty) = self.lower_expr(cx, e, Some(t))?;
                        if &vty != t {
                            return Err(CompileError::at(
                                *pos,
                                format!("return type mismatch: {vty} vs {t}"),
                            ));
                        }
                        cx.fb.ret(Some(v));
                    }
                    _ => {
                        return Err(CompileError::at(*pos, "return arity mismatch"));
                    }
                }
                cx.terminated = true;
                Ok(())
            }
            Stmt::Expr(e, _) => {
                let _ = self.lower_expr(cx, e, None)?;
                Ok(())
            }
            Stmt::Psim {
                gang,
                threads,
                body,
                pos,
            } => self.lower_psim(cx, *gang, threads, body, *pos),
        }
    }

    fn lower_assign(
        &mut self,
        cx: &mut FnCtx,
        place: &Place,
        op: Option<BinOpKind>,
        rhs: &Expr,
        pos: Pos,
    ) -> LResult<()> {
        match place {
            Place::Var(name, _) => {
                let var = cx
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| CompileError::at(pos, format!("unknown variable `{name}`")))?;
                if var.captured {
                    return Err(CompileError::at(
                        pos,
                        format!(
                            "cannot assign to captured variable `{name}` inside a psim region \
                             (captures are by value; write through a pointer instead)"
                        ),
                    ));
                }
                let (rv, rty) = self.lower_expr(cx, rhs, Some(&var.ty))?;
                if rty != var.ty {
                    return Err(CompileError::at(
                        pos,
                        format!("assignment type mismatch: {rty} vs {}", var.ty),
                    ));
                }
                let newv = match op {
                    None => rv,
                    Some(k) => self.emit_bin(cx, k, var.val, rv, &var.ty, pos)?.0,
                };
                cx.assign(name, newv);
                Ok(())
            }
            Place::Index(arr, idx, _) => {
                let (addr, elem) = self.lower_address(cx, arr, idx, pos)?;
                let (rv, rty) = self.lower_expr(cx, rhs, Some(&elem))?;
                if rty != elem {
                    return Err(CompileError::at(
                        pos,
                        format!("stored value has type {rty}, expected {elem}"),
                    ));
                }
                let newv = match op {
                    None => rv,
                    Some(k) => {
                        let old = cx.fb.load(Ty::Scalar(elem.scalar_ty()), addr, None);
                        self.emit_bin(cx, k, old, rv, &elem, pos)?.0
                    }
                };
                cx.fb.store(addr, newv, None);
                Ok(())
            }
            Place::Deref(p, _) => {
                let (pv, pty) = self.lower_expr(cx, p, None)?;
                let elem = pty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| CompileError::at(pos, "cannot store through non-pointer"))?;
                let (rv, rty) = self.lower_expr(cx, rhs, Some(&elem))?;
                if rty != elem {
                    return Err(CompileError::at(
                        pos,
                        format!("stored value has type {rty}, expected {elem}"),
                    ));
                }
                let newv = match op {
                    None => rv,
                    Some(k) => {
                        let old = cx.fb.load(Ty::Scalar(elem.scalar_ty()), pv, None);
                        self.emit_bin(cx, k, old, rv, &elem, pos)?.0
                    }
                };
                cx.fb.store(pv, newv, None);
                Ok(())
            }
        }
    }

    fn lower_if(
        &mut self,
        cx: &mut FnCtx,
        c: &Expr,
        then_s: &[Stmt],
        else_s: &[Stmt],
        pos: Pos,
    ) -> LResult<()> {
        let (cv, cty) = self.lower_expr(cx, c, Some(&PTy::Bool))?;
        if cty != PTy::Bool {
            return Err(CompileError::at(pos, format!("condition has type {cty}")));
        }
        let before = cx.snapshot();
        let then_blk = cx.fb.new_block("if.then");
        let else_blk = if else_s.is_empty() {
            None
        } else {
            Some(cx.fb.new_block("if.else"))
        };
        let join_blk = cx.fb.new_block("if.join");
        let pred = cx.fb.current_block();
        cx.fb.cond_br(cv, then_blk, else_blk.unwrap_or(join_blk));

        cx.fb.switch_to(then_blk);
        self.lower_stmts(cx, then_s)?;
        let then_terminated = cx.terminated;
        cx.terminated = false;
        let then_vals = cx.snapshot();
        let then_exit = cx.fb.current_block();
        if !then_terminated {
            cx.fb.br(join_blk);
        }

        // Reset variables to the pre-branch state for the else arm.
        for (name, val, _) in &before {
            cx.assign(name, *val);
        }
        let (else_exit, else_vals, else_terminated) = if let Some(eb) = else_blk {
            cx.fb.switch_to(eb);
            self.lower_stmts(cx, else_s)?;
            let t = cx.terminated;
            cx.terminated = false;
            let vals = cx.snapshot();
            let exit = cx.fb.current_block();
            if !t {
                cx.fb.br(join_blk);
            }
            (exit, vals, t)
        } else {
            (pred, before.clone(), false)
        };

        cx.fb.switch_to(join_blk);
        match (then_terminated, else_terminated) {
            (true, true) => {
                cx.terminated = true;
                // join block is unreachable; give it a terminator.
                cx.fb.ret(None);
            }
            (true, false) => {
                for (name, val, _) in &else_vals {
                    cx.assign(name, *val);
                }
            }
            (false, true) => {
                for (name, val, _) in &then_vals {
                    cx.assign(name, *val);
                }
            }
            (false, false) => {
                for ((name, tv, _), (_, ev, _)) in then_vals.iter().zip(&else_vals) {
                    if tv != ev {
                        let phi = cx.fb.phi(vec![(then_exit, *tv), (else_exit, *ev)]);
                        cx.assign(name, phi);
                    }
                }
            }
        }
        Ok(())
    }

    fn lower_while(&mut self, cx: &mut FnCtx, c: &Expr, body: &[Stmt], pos: Pos) -> LResult<()> {
        let mut assigned = Vec::new();
        assigned_names(body, &mut assigned);

        let header = cx.fb.new_block("while.header");
        let body_blk = cx.fb.new_block("while.body");
        let exit_blk = cx.fb.new_block("while.exit");
        let pre = cx.fb.current_block();
        cx.fb.br(header);
        cx.fb.switch_to(header);

        // φs for every outer variable the body assigns.
        let mut phis = Vec::new();
        for name in &assigned {
            if let Some(var) = cx.lookup(name).cloned() {
                let phi = cx
                    .fb
                    .phi_typed(Ty::Scalar(var.ty.scalar_ty()), vec![(pre, var.val)]);
                cx.assign(name, phi);
                phis.push((name.clone(), phi));
            }
        }

        let (cv, cty) = self.lower_expr(cx, c, Some(&PTy::Bool))?;
        if cty != PTy::Bool {
            return Err(CompileError::at(pos, format!("condition has type {cty}")));
        }
        cx.fb.cond_br(cv, body_blk, exit_blk);

        cx.fb.switch_to(body_blk);
        self.lower_stmts(cx, body)?;
        if cx.terminated {
            return Err(CompileError::at(
                pos,
                "`return` inside a loop body is not supported (restructure the loop)",
            ));
        }
        let latch = cx.fb.current_block();
        for (name, phi) in &phis {
            let cur = cx.lookup(name).expect("var still in scope").val;
            cx.fb.phi_add_incoming(*phi, latch, cur);
            // After the loop, the variable's value is the φ.
            cx.assign(name, *phi);
        }
        cx.fb.br(header);
        cx.fb.switch_to(exit_blk);
        Ok(())
    }

    fn lower_psim(
        &mut self,
        cx: &mut FnCtx,
        gang: u32,
        threads: &Expr,
        body: &[Stmt],
        pos: Pos,
    ) -> LResult<()> {
        if cx.in_region {
            return Err(CompileError::at(pos, "psim regions cannot nest"));
        }
        let captures = region_captures(body);
        let mut cap_vars = Vec::new();
        for name in &captures {
            let var = cx.lookup(name).cloned().ok_or_else(|| {
                CompileError::at(pos, format!("unknown variable `{name}` captured by region"))
            })?;
            cap_vars.push((name.clone(), var));
        }

        // Build the outlined region function.
        let host = cx.fb.func().name.clone();
        let region_name = format!("{host}__psim{}", self.region_counter);
        self.region_counter += 1;
        let mut params: Vec<Param> = cap_vars
            .iter()
            .map(|(n, v)| Param::new(n.clone(), Ty::Scalar(v.ty.scalar_ty())))
            .collect();
        params.push(Param::new("gang_base", Ty::scalar(ScalarTy::I64)));
        params.push(Param::new("num_threads", Ty::scalar(ScalarTy::I64)));
        let static_threads = match threads {
            Expr::Int(v, _, _) if *v > 0 => Some(*v as u64),
            _ => None,
        };
        let mut rfb = FunctionBuilder::new(region_name.clone(), params, Ty::Void);
        rfb.set_spmd(SpmdInfo {
            gang_size: gang,
            num_threads: static_threads
                .map(ThreadCount::Const)
                .unwrap_or(ThreadCount::Dynamic),
            partial: false,
        });
        let mut rcx = FnCtx {
            fb: rfb,
            scopes: vec![HashMap::new()],
            in_region: true,
            terminated: false,
            ret_ty: PTy::Void,
        };
        for (i, (name, var)) in cap_vars.iter().enumerate() {
            rcx.declare(name, var.ty.clone(), Value::Param(i as u32), true);
        }
        self.lower_stmts(&mut rcx, body)?;
        if !rcx.terminated {
            rcx.fb.ret(None);
        }
        self.module.add_function(rcx.fb.finish());

        // Emit the gang loop at the call site.
        let (nthreads, nty) = self.lower_expr(cx, threads, Some(&PTy::I64))?;
        if nty != PTy::I64 {
            return Err(CompileError::at(
                pos,
                format!("threads(..) must be i64, found {nty}"),
            ));
        }
        let captured_vals: Vec<Value> = cap_vars.iter().map(|(_, v)| v.val).collect();
        let peel_head = body_calls(body, "psim_is_head_gang");
        parsimony::region::emit_gang_loop_peeled(
            &mut cx.fb,
            &region_name,
            &captured_vals,
            nthreads,
            gang,
            static_threads,
            peel_head,
        );
        Ok(())
    }

    // ---- expressions -------------------------------------------------------

    fn lower_address(
        &mut self,
        cx: &mut FnCtx,
        arr: &Expr,
        idx: &Expr,
        pos: Pos,
    ) -> LResult<(Value, PTy)> {
        let (av, aty) = self.lower_expr(cx, arr, None)?;
        let elem = aty
            .pointee()
            .cloned()
            .ok_or_else(|| CompileError::at(pos, format!("cannot index non-pointer {aty}")))?;
        let (iv, ity) = self.lower_expr(cx, idx, Some(&PTy::I64))?;
        if !ity.is_int() {
            return Err(CompileError::at(pos, format!("index has type {ity}")));
        }
        // Indices widen to i64 implicitly (sign per the index type).
        let iv = self.widen_to_i64(cx, iv, &ity);
        let addr = cx.fb.gep(av, iv, elem.scalar_ty().size_bytes());
        Ok((addr, elem))
    }

    fn widen_to_i64(&mut self, cx: &mut FnCtx, v: Value, ty: &PTy) -> Value {
        if ty.scalar_ty() == ScalarTy::I64 {
            return v;
        }
        let kind = if ty.is_signed_int() {
            CastKind::Sext
        } else {
            CastKind::Zext
        };
        cx.fb.cast(kind, v, Ty::scalar(ScalarTy::I64))
    }

    #[allow(clippy::too_many_lines)]
    fn lower_expr(
        &mut self,
        cx: &mut FnCtx,
        e: &Expr,
        expected: Option<&PTy>,
    ) -> LResult<(Value, PTy)> {
        match e {
            Expr::Int(v, suf, pos) => {
                let ty = suf
                    .clone()
                    .or_else(|| {
                        expected.and_then(|t| {
                            if t.is_int() || t.is_float() {
                                Some(t.clone())
                            } else {
                                None
                            }
                        })
                    })
                    .unwrap_or(PTy::I32);
                if ty.is_float() {
                    let c = if ty == PTy::F32 {
                        Const::f32(*v as f32)
                    } else {
                        Const::f64(*v as f64)
                    };
                    return Ok((Value::Const(c), ty));
                }
                let bits = ty.scalar_ty().bits();
                let max_mag = 1i128 << bits;
                if *v >= max_mag || *v < -(max_mag / 2) {
                    return Err(CompileError::at(
                        *pos,
                        format!("literal {v} does not fit in {ty}"),
                    ));
                }
                Ok((Value::Const(Const::new(ty.scalar_ty(), *v as u64)), ty))
            }
            Expr::Float(v, suf, _) => {
                let ty = suf
                    .clone()
                    .or_else(|| {
                        expected.and_then(|t| if t.is_float() { Some(t.clone()) } else { None })
                    })
                    .unwrap_or(PTy::F32);
                let c = match ty {
                    PTy::F32 => Const::f32(*v as f32),
                    PTy::F64 => Const::f64(*v),
                    other => {
                        return Err(CompileError {
                            pos: Some(e.pos()),
                            msg: format!("float literal with non-float type {other}"),
                        })
                    }
                };
                Ok((Value::Const(c), ty))
            }
            Expr::Bool(b, _) => Ok((Value::Const(Const::bool(*b)), PTy::Bool)),
            Expr::Var(name, pos) => {
                let var = cx
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| CompileError::at(*pos, format!("unknown variable `{name}`")))?;
                Ok((var.val, var.ty))
            }
            Expr::Bin(op, a, b, pos) => {
                // Literal operands adapt to the other side's type.
                let a_is_lit = matches!(**a, Expr::Int(_, None, _) | Expr::Float(_, None, _));
                let b_is_lit = matches!(**b, Expr::Int(_, None, _) | Expr::Float(_, None, _));
                let arith_expected = expected.filter(|t| t.is_int() || t.is_float());
                let (av, aty, bv, bty) = if a_is_lit && !b_is_lit {
                    let (bv, bty) = self.lower_expr(cx, b, arith_expected)?;
                    let (av, aty) = self.lower_expr(cx, a, Some(&bty))?;
                    (av, aty, bv, bty)
                } else {
                    let (av, aty) = self.lower_expr(cx, a, arith_expected)?;
                    let (bv, bty) = self.lower_expr(cx, b, Some(&aty))?;
                    (av, aty, bv, bty)
                };
                // Pointer arithmetic: p + i / p - i.
                if aty.is_ptr() && matches!(op, BinOpKind::Add | BinOpKind::Sub) {
                    if !bty.is_int() {
                        return Err(CompileError::at(*pos, "pointer offset must be an integer"));
                    }
                    let elem = aty.pointee().expect("is_ptr").scalar_ty();
                    let mut off = self.widen_to_i64(cx, bv, &bty);
                    if matches!(op, BinOpKind::Sub) {
                        off = cx.fb.un(IrUn::INeg, off);
                    }
                    let addr = cx.fb.gep(av, off, elem.size_bytes());
                    return Ok((addr, aty));
                }
                if aty != bty {
                    return Err(CompileError::at(
                        *pos,
                        format!("operand types differ: {aty} vs {bty} (cast explicitly)"),
                    ));
                }
                self.emit_bin(cx, *op, av, bv, &aty, *pos)
            }
            Expr::Un(op, a, pos) => {
                let (av, aty) = self.lower_expr(cx, a, expected)?;
                match op {
                    UnOpKind::Neg => {
                        let ir = if aty.is_float() {
                            IrUn::FNeg
                        } else {
                            IrUn::INeg
                        };
                        if !(aty.is_int() || aty.is_float()) {
                            return Err(CompileError::at(*pos, format!("cannot negate {aty}")));
                        }
                        Ok((cx.fb.un(ir, av), aty))
                    }
                    UnOpKind::Not => {
                        if aty != PTy::Bool {
                            return Err(CompileError::at(
                                *pos,
                                format!("`!` needs bool, got {aty}"),
                            ));
                        }
                        Ok((cx.fb.un(IrUn::Not, av), PTy::Bool))
                    }
                    UnOpKind::BitNot => {
                        if !aty.is_int() {
                            return Err(CompileError::at(
                                *pos,
                                format!("`~` needs integer, got {aty}"),
                            ));
                        }
                        Ok((cx.fb.un(IrUn::Not, av), aty))
                    }
                }
            }
            Expr::Cast(to, a, pos) => {
                let (av, aty) = self.lower_expr(cx, a, None)?;
                let v = self.emit_cast(cx, av, &aty, to, *pos)?;
                Ok((v, to.clone()))
            }
            Expr::Index(arr, idx, pos) => {
                let (addr, elem) = self.lower_address(cx, arr, idx, *pos)?;
                let v = cx.fb.load(Ty::Scalar(elem.scalar_ty()), addr, None);
                Ok((v, elem))
            }
            Expr::Deref(p, pos) => {
                let (pv, pty) = self.lower_expr(cx, p, None)?;
                let elem = pty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| CompileError::at(*pos, "cannot dereference non-pointer"))?;
                let v = cx.fb.load(Ty::Scalar(elem.scalar_ty()), pv, None);
                Ok((v, elem))
            }
            Expr::Ternary(c, t, f, pos) => {
                let (cv, cty) = self.lower_expr(cx, c, Some(&PTy::Bool))?;
                if cty != PTy::Bool {
                    return Err(CompileError::at(*pos, "ternary condition must be bool"));
                }
                let (tv, tty) = self.lower_expr(cx, t, expected)?;
                let (fv, fty) = self.lower_expr(cx, f, Some(&tty))?;
                if tty != fty {
                    return Err(CompileError::at(
                        *pos,
                        format!("ternary arms differ: {tty} vs {fty}"),
                    ));
                }
                Ok((cx.fb.select(cv, tv, fv), tty))
            }
            Expr::Call(name, args, pos) => self.lower_call(cx, name, args, *pos),
        }
    }

    fn emit_bin(
        &mut self,
        cx: &mut FnCtx,
        op: BinOpKind,
        av: Value,
        bv: Value,
        ty: &PTy,
        pos: Pos,
    ) -> LResult<(Value, PTy)> {
        use BinOpKind::*;
        let signed = ty.is_signed_int();
        let float = ty.is_float();
        let int = ty.is_int();
        let boolean = *ty == PTy::Bool;
        let arith = |ir: IrBin| -> LResult<IrBin> { Ok(ir) };
        let result: (Value, PTy) = match op {
            Add | Sub | Mul | Div | Rem => {
                if !(int || float) {
                    return Err(CompileError::at(pos, format!("arithmetic on {ty}")));
                }
                let ir = match (op, float, signed) {
                    (Add, true, _) => IrBin::FAdd,
                    (Sub, true, _) => IrBin::FSub,
                    (Mul, true, _) => IrBin::FMul,
                    (Div, true, _) => IrBin::FDiv,
                    (Rem, true, _) => IrBin::FRem,
                    (Add, false, _) => IrBin::Add,
                    (Sub, false, _) => IrBin::Sub,
                    (Mul, false, _) => IrBin::Mul,
                    (Div, false, true) => IrBin::SDiv,
                    (Div, false, false) => IrBin::UDiv,
                    (Rem, false, true) => IrBin::SRem,
                    (Rem, false, false) => IrBin::URem,
                    _ => unreachable!(),
                };
                (cx.fb.bin(arith(ir)?, av, bv), ty.clone())
            }
            Shl | Shr => {
                if !int {
                    return Err(CompileError::at(pos, format!("shift on {ty}")));
                }
                let ir = match (op, signed) {
                    (Shl, _) => IrBin::Shl,
                    (Shr, true) => IrBin::AShr,
                    (Shr, false) => IrBin::LShr,
                    _ => unreachable!(),
                };
                (cx.fb.bin(ir, av, bv), ty.clone())
            }
            And | Or | Xor => {
                if !(int || boolean) {
                    return Err(CompileError::at(pos, format!("bitwise op on {ty}")));
                }
                let ir = match op {
                    And => IrBin::And,
                    Or => IrBin::Or,
                    Xor => IrBin::Xor,
                    _ => unreachable!(),
                };
                (cx.fb.bin(ir, av, bv), ty.clone())
            }
            LAnd | LOr => {
                if !boolean {
                    return Err(CompileError::at(
                        pos,
                        format!("`&&`/`||` need bool operands, got {ty}"),
                    ));
                }
                let ir = if op == LAnd { IrBin::And } else { IrBin::Or };
                (cx.fb.bin(ir, av, bv), PTy::Bool)
            }
            Lt | Le | Gt | Ge | EqEq | Ne => {
                let pred = match (op, float, signed || ty.is_ptr()) {
                    (EqEq, false, _) => CmpPred::Eq,
                    (Ne, false, _) => CmpPred::Ne,
                    (Lt, false, true) => CmpPred::Slt,
                    (Le, false, true) => CmpPred::Sle,
                    (Gt, false, true) => CmpPred::Sgt,
                    (Ge, false, true) => CmpPred::Sge,
                    (Lt, false, false) => CmpPred::Ult,
                    (Le, false, false) => CmpPred::Ule,
                    (Gt, false, false) => CmpPred::Ugt,
                    (Ge, false, false) => CmpPred::Uge,
                    (EqEq, true, _) => CmpPred::FOeq,
                    (Ne, true, _) => CmpPred::FOne,
                    (Lt, true, _) => CmpPred::FOlt,
                    (Le, true, _) => CmpPred::FOle,
                    (Gt, true, _) => CmpPred::FOgt,
                    (Ge, true, _) => CmpPred::FOge,
                    _ => unreachable!(),
                };
                if boolean && !matches!(op, EqEq | Ne) {
                    return Err(CompileError::at(pos, "ordering comparison on bool"));
                }
                (cx.fb.cmp(pred, av, bv), PTy::Bool)
            }
        };
        Ok(result)
    }

    fn emit_cast(
        &mut self,
        cx: &mut FnCtx,
        v: Value,
        from: &PTy,
        to: &PTy,
        pos: Pos,
    ) -> LResult<Value> {
        if from == to {
            return Ok(v);
        }
        let fs = from.scalar_ty();
        let ts = to.scalar_ty();
        let kind = match (from, to) {
            (f, t) if f.is_int() && t.is_int() => {
                if ts.bits() > fs.bits() {
                    if f.is_signed_int() {
                        CastKind::Sext
                    } else {
                        CastKind::Zext
                    }
                } else if ts.bits() < fs.bits() {
                    CastKind::Trunc
                } else {
                    // Same width, signedness change: a no-op on the payload.
                    return Ok(v);
                }
            }
            (f, t) if f.is_int() && t.is_float() => {
                if f.is_signed_int() {
                    CastKind::SiToFp
                } else {
                    CastKind::UiToFp
                }
            }
            (f, t) if f.is_float() && t.is_int() => {
                if t.is_signed_int() {
                    CastKind::FpToSi
                } else {
                    CastKind::FpToUi
                }
            }
            (PTy::F32, PTy::F64) => CastKind::FpExt,
            (PTy::F64, PTy::F32) => CastKind::FpTrunc,
            (PTy::Bool, t) if t.is_int() => CastKind::Zext,
            (f, PTy::Bool) if f.is_int() => {
                let zero = Value::Const(Const::new(fs, 0));
                return Ok(cx.fb.cmp(CmpPred::Ne, v, zero));
            }
            (PTy::Ptr(_), t) if t.is_int() => CastKind::PtrToInt,
            (f, PTy::Ptr(_)) if f.is_int() => CastKind::IntToPtr,
            (PTy::Ptr(_), PTy::Ptr(_)) => return Ok(v),
            (f, t) => {
                return Err(CompileError::at(pos, format!("unsupported cast {f} → {t}")));
            }
        };
        Ok(cx.fb.cast(kind, v, Ty::Scalar(ts)))
    }

    #[allow(clippy::too_many_lines)]
    fn lower_call(
        &mut self,
        cx: &mut FnCtx,
        name: &str,
        args: &[Expr],
        pos: Pos,
    ) -> LResult<(Value, PTy)> {
        let arity = |n: usize| -> LResult<()> {
            if args.len() != n {
                Err(CompileError::at(
                    pos,
                    format!("`{name}` takes {n} argument(s), got {}", args.len()),
                ))
            } else {
                Ok(())
            }
        };
        let need_region = |cx: &FnCtx| -> LResult<()> {
            if !cx.in_region {
                Err(CompileError::at(
                    pos,
                    format!("`{name}` is only valid inside a psim region"),
                ))
            } else {
                Ok(())
            }
        };

        // --- psim API (§3) ---------------------------------------------------
        match name {
            "psim_thread_num" | "psim_lane_num" | "psim_gang_num" | "psim_num_threads"
            | "psim_gang_size" => {
                need_region(cx)?;
                arity(0)?;
                let kind = match name {
                    "psim_thread_num" => Intrinsic::ThreadNum,
                    "psim_lane_num" => Intrinsic::LaneNum,
                    "psim_gang_num" => Intrinsic::GangNum,
                    "psim_num_threads" => Intrinsic::NumThreads,
                    _ => Intrinsic::GangSize,
                };
                let v = cx.fb.intrin(kind, vec![], Ty::scalar(ScalarTy::I64));
                return Ok((v, PTy::I64));
            }
            "psim_is_head_gang" | "psim_is_tail_gang" => {
                need_region(cx)?;
                arity(0)?;
                let kind = if name == "psim_is_head_gang" {
                    Intrinsic::IsHeadGang
                } else {
                    Intrinsic::IsTailGang
                };
                let v = cx.fb.intrin(kind, vec![], Ty::scalar(ScalarTy::I1));
                return Ok((v, PTy::Bool));
            }
            "psim_gang_sync" => {
                need_region(cx)?;
                arity(0)?;
                cx.fb.intrin(Intrinsic::GangSync, vec![], Ty::Void);
                return Ok((Value::Const(Const::i32(0)), PTy::Void));
            }
            "psim_shuffle" | "psim_broadcast" => {
                need_region(cx)?;
                arity(2)?;
                let (v, vty) = self.lower_expr(cx, &args[0], None)?;
                let (idx, ity) = self.lower_expr(cx, &args[1], Some(&PTy::I64))?;
                if !ity.is_int() {
                    return Err(CompileError::at(pos, "shuffle index must be an integer"));
                }
                let idx = self.widen_to_i64(cx, idx, &ity);
                let kind = if name == "psim_shuffle" {
                    Intrinsic::Shuffle
                } else {
                    Intrinsic::Broadcast
                };
                let r = cx
                    .fb
                    .intrin(kind, vec![v, idx], Ty::Scalar(vty.scalar_ty()));
                return Ok((r, vty));
            }
            "psim_reduce_add" | "psim_reduce_min" | "psim_reduce_max" => {
                need_region(cx)?;
                arity(1)?;
                let (v, vty) = self.lower_expr(cx, &args[0], None)?;
                let op = match (name, vty.is_float(), vty.is_signed_int()) {
                    ("psim_reduce_add", _, _) => ReduceOp::Add,
                    ("psim_reduce_min", true, _) => ReduceOp::FMin,
                    ("psim_reduce_max", true, _) => ReduceOp::FMax,
                    ("psim_reduce_min", false, true) => ReduceOp::SMin,
                    ("psim_reduce_max", false, true) => ReduceOp::SMax,
                    ("psim_reduce_min", false, false) => ReduceOp::UMin,
                    ("psim_reduce_max", false, false) => ReduceOp::UMax,
                    _ => unreachable!(),
                };
                let r = cx.fb.intrin(
                    Intrinsic::GangReduce(op),
                    vec![v],
                    Ty::Scalar(vty.scalar_ty()),
                );
                return Ok((r, vty));
            }
            "psim_sad" => {
                need_region(cx)?;
                arity(2)?;
                let (a, aty) = self.lower_expr(cx, &args[0], Some(&PTy::U8))?;
                let (b, bty) = self.lower_expr(cx, &args[1], Some(&PTy::U8))?;
                if aty != PTy::U8 || bty != PTy::U8 {
                    return Err(CompileError::at(pos, "psim_sad operates on u8 values"));
                }
                let r = cx
                    .fb
                    .intrin(Intrinsic::SadGroups, vec![a, b], Ty::scalar(ScalarTy::I64));
                return Ok((r, PTy::U64));
            }
            _ => {}
        }

        // --- math/util builtins ----------------------------------------------
        let math1 = |mf: MathFn| -> Option<MathFn> { Some(mf) };
        let mathfn = match name {
            "exp" => math1(MathFn::Exp),
            "log" => math1(MathFn::Log),
            "pow" => math1(MathFn::Pow),
            "sin" => math1(MathFn::Sin),
            "cos" => math1(MathFn::Cos),
            "tan" => math1(MathFn::Tan),
            "atan" => math1(MathFn::Atan),
            "atan2" => math1(MathFn::Atan2),
            "exp2" => math1(MathFn::Exp2),
            "log2" => math1(MathFn::Log2),
            "cdf" => math1(MathFn::Cdf),
            _ => None,
        };
        if let Some(mf) = mathfn {
            arity(mf.arity())?;
            let (a0, t0) = self.lower_expr(cx, &args[0], Some(&PTy::F32))?;
            if !t0.is_float() {
                return Err(CompileError::at(pos, format!("`{name}` needs a float")));
            }
            let mut vals = vec![a0];
            for a in &args[1..] {
                let (v, t) = self.lower_expr(cx, a, Some(&t0))?;
                if t != t0 {
                    return Err(CompileError::at(pos, "math argument types differ"));
                }
                vals.push(v);
            }
            let r = cx
                .fb
                .intrin(Intrinsic::Math(mf), vals, Ty::Scalar(t0.scalar_ty()));
            return Ok((r, t0));
        }

        match name {
            "sqrt" | "floor" | "ceil" | "round" | "fabs" => {
                arity(1)?;
                let (v, ty) = self.lower_expr(cx, &args[0], Some(&PTy::F32))?;
                if !ty.is_float() {
                    return Err(CompileError::at(pos, format!("`{name}` needs a float")));
                }
                let op = match name {
                    "sqrt" => IrUn::FSqrt,
                    "floor" => IrUn::FFloor,
                    "ceil" => IrUn::FCeil,
                    "round" => IrUn::FRound,
                    _ => IrUn::FAbs,
                };
                return Ok((cx.fb.un(op, v), ty));
            }
            "abs" => {
                arity(1)?;
                let (v, ty) = self.lower_expr(cx, &args[0], None)?;
                let op = if ty.is_float() {
                    IrUn::FAbs
                } else {
                    IrUn::IAbs
                };
                return Ok((cx.fb.un(op, v), ty));
            }
            "min" | "max" | "fmin" | "fmax" => {
                arity(2)?;
                let (a, aty) = self.lower_expr(cx, &args[0], None)?;
                let (b, bty) = self.lower_expr(cx, &args[1], Some(&aty))?;
                if aty != bty {
                    return Err(CompileError::at(pos, "min/max operand types differ"));
                }
                let ir = match (
                    name.starts_with('f') || aty.is_float(),
                    name.ends_with("min"),
                    aty.is_signed_int(),
                ) {
                    (true, true, _) => IrBin::FMin,
                    (true, false, _) => IrBin::FMax,
                    (false, true, true) => IrBin::SMin,
                    (false, false, true) => IrBin::SMax,
                    (false, true, false) => IrBin::UMin,
                    (false, false, false) => IrBin::UMax,
                };
                return Ok((cx.fb.bin(ir, a, b), aty));
            }
            "clamp" => {
                arity(3)?;
                let (v, ty) = self.lower_expr(cx, &args[0], None)?;
                let (lo, lty) = self.lower_expr(cx, &args[1], Some(&ty))?;
                let (hi, hty) = self.lower_expr(cx, &args[2], Some(&ty))?;
                if lty != ty || hty != ty {
                    return Err(CompileError::at(pos, "clamp bound types differ"));
                }
                let (minop, maxop) = if ty.is_float() {
                    (IrBin::FMin, IrBin::FMax)
                } else if ty.is_signed_int() {
                    (IrBin::SMin, IrBin::SMax)
                } else {
                    (IrBin::UMin, IrBin::UMax)
                };
                let t = cx.fb.bin(minop, v, hi);
                return Ok((cx.fb.bin(maxop, t, lo), ty));
            }
            "add_sat" | "sub_sat" => {
                arity(2)?;
                let (a, aty) = self.lower_expr(cx, &args[0], None)?;
                let (b, bty) = self.lower_expr(cx, &args[1], Some(&aty))?;
                if aty != bty || !aty.is_int() {
                    return Err(CompileError::at(
                        pos,
                        "saturating ops need equal integer types",
                    ));
                }
                let ir = match (name, aty.is_signed_int()) {
                    ("add_sat", true) => IrBin::AddSatS,
                    ("add_sat", false) => IrBin::AddSatU,
                    ("sub_sat", true) => IrBin::SubSatS,
                    _ => IrBin::SubSatU,
                };
                return Ok((cx.fb.bin(ir, a, b), aty));
            }
            "avg_u" => {
                arity(2)?;
                let (a, aty) = self.lower_expr(cx, &args[0], None)?;
                let (b, bty) = self.lower_expr(cx, &args[1], Some(&aty))?;
                if aty != bty || !aty.is_unsigned_int() {
                    return Err(CompileError::at(pos, "avg_u needs unsigned integers"));
                }
                return Ok((cx.fb.bin(IrBin::AvgU, a, b), aty));
            }
            "mulhi" => {
                arity(2)?;
                let (a, aty) = self.lower_expr(cx, &args[0], None)?;
                let (b, bty) = self.lower_expr(cx, &args[1], Some(&aty))?;
                if aty != bty || !aty.is_int() {
                    return Err(CompileError::at(pos, "mulhi needs equal integer types"));
                }
                let ir = if aty.is_signed_int() {
                    IrBin::MulHiS
                } else {
                    IrBin::MulHiU
                };
                return Ok((cx.fb.bin(ir, a, b), aty));
            }
            "fma" => {
                arity(3)?;
                let (a, aty) = self.lower_expr(cx, &args[0], Some(&PTy::F32))?;
                let (b, bty) = self.lower_expr(cx, &args[1], Some(&aty))?;
                let (c, cty) = self.lower_expr(cx, &args[2], Some(&aty))?;
                if bty != aty || cty != aty {
                    return Err(CompileError::at(pos, "fma argument types differ"));
                }
                let r = cx
                    .fb
                    .intrin(Intrinsic::Fma, vec![a, b, c], Ty::Scalar(aty.scalar_ty()));
                return Ok((r, aty));
            }
            _ => {}
        }

        // --- user function calls ----------------------------------------------
        let sig = self
            .sigs
            .get(name)
            .cloned()
            .ok_or_else(|| CompileError::at(pos, format!("unknown function `{name}`")))?;
        arity(sig.params.len())?;
        let mut vals = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&sig.params) {
            let (v, ty) = self.lower_expr(cx, a, Some(pty))?;
            if &ty != pty {
                return Err(CompileError::at(
                    pos,
                    format!("argument to `{name}` has type {ty}, expected {pty}"),
                ));
            }
            vals.push(v);
        }
        let ret_ty = match sig.ret {
            PTy::Void => Ty::Void,
            ref t => Ty::Scalar(t.scalar_ty()),
        };
        let r = cx.fb.call(name, ret_ty, vals);
        Ok((r, sig.ret))
    }
}

/// Whether any statement in the body calls the named builtin.
fn body_calls(stmts: &[Stmt], name: &str) -> bool {
    fn expr_calls(e: &Expr, name: &str) -> bool {
        match e {
            Expr::Call(n, args, _) => n == name || args.iter().any(|a| expr_calls(a, name)),
            Expr::Bin(_, a, b, _) => expr_calls(a, name) || expr_calls(b, name),
            Expr::Un(_, a, _) | Expr::Cast(_, a, _) | Expr::Deref(a, _) => expr_calls(a, name),
            Expr::Index(a, i, _) => expr_calls(a, name) || expr_calls(i, name),
            Expr::Ternary(c, t, f, _) => {
                expr_calls(c, name) || expr_calls(t, name) || expr_calls(f, name)
            }
            _ => false,
        }
    }
    stmts.iter().any(|s| match s {
        Stmt::Decl(_, _, e, _) | Stmt::Return(Some(e), _) | Stmt::Expr(e, _) => expr_calls(e, name),
        Stmt::DeclArray(..) | Stmt::Return(None, _) => false,
        Stmt::Assign(place, _, e, _) => {
            expr_calls(e, name)
                || match place {
                    Place::Index(a, i, _) => expr_calls(a, name) || expr_calls(i, name),
                    Place::Deref(a, _) => expr_calls(a, name),
                    Place::Var(..) => false,
                }
        }
        Stmt::If(c, a, b, _) => expr_calls(c, name) || body_calls(a, name) || body_calls(b, name),
        Stmt::While(c, b, _) => expr_calls(c, name) || body_calls(b, name),
        Stmt::Block(b) | Stmt::Psim { body: b, .. } => body_calls(b, name),
    })
}

fn stmt_pos(s: &Stmt) -> Pos {
    match s {
        Stmt::Decl(_, _, _, p)
        | Stmt::DeclArray(_, _, _, p)
        | Stmt::Assign(_, _, _, p)
        | Stmt::If(_, _, _, p)
        | Stmt::While(_, _, p)
        | Stmt::Return(_, p)
        | Stmt::Expr(_, p)
        | Stmt::Psim { pos: p, .. } => *p,
        Stmt::Block(b) => b.first().map(stmt_pos).unwrap_or(Pos { line: 0, col: 0 }),
    }
}

/// Compiles PsimC source into a `psir` [`Module`] with outlined,
/// SPMD-annotated region functions and Listing 6 gang loops at call sites.
///
/// # Errors
/// Returns [`CompileError`] on lexical, syntactic or semantic errors.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let unit = crate::parser::parse(src).map_err(|e| CompileError {
        pos: Some(e.pos),
        msg: e.msg,
    })?;
    let mut sigs = HashMap::new();
    for f in &unit.funcs {
        if sigs
            .insert(
                f.name.clone(),
                Sig {
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: f.ret.clone(),
                },
            )
            .is_some()
        {
            return Err(CompileError::at(
                f.pos,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    Lowerer {
        unit: &unit,
        sigs,
        module: Module::new(),
        region_counter: 0,
    }
    .lower_unit()
}

//! End-to-end: PsimC source → psir → Parsimony vectorizer → interpreter,
//! checked against plain Rust reference computations.

use parsimony::{vectorize_module, VectorizeOptions};
use psir::{Interp, Memory, Module, RtVal};
use vmath::RuntimeExterns;

static COST: psir::UnitCost = psir::UnitCost;
static EXTERNS: RuntimeExterns = RuntimeExterns::new();

fn run_main<'m>(module: &'m Module, args: &[RtVal], mem: Memory) -> Interp<'m> {
    let mut it = Interp::new(module, mem, &COST, &EXTERNS);
    it.call("main", args).expect("execution succeeds");
    it
}

fn compile_and_vectorize(src: &str) -> Module {
    let m = psimc::compile(src).expect("compiles");
    for f in m.functions() {
        psir::assert_valid(f);
    }
    let out = vectorize_module(&m, &VectorizeOptions::default()).expect("vectorizes");
    out.module
}

fn f32_buf(mem: &mut Memory, vals: &[f32]) -> u64 {
    let bytes: Vec<u8> = vals
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect();
    mem.alloc_bytes(&bytes, 64).unwrap()
}

fn read_f32s(it: &Interp<'_>, addr: u64, n: usize) -> Vec<f32> {
    it.mem
        .read_bytes(addr, (n * 4) as u64)
        .unwrap()
        .chunks(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
        .collect()
}

fn read_u8s(it: &Interp<'_>, addr: u64, n: usize) -> Vec<u8> {
    it.mem.read_bytes(addr, n as u64).unwrap().to_vec()
}

#[test]
fn saxpy_region() {
    let module = compile_and_vectorize(
        "void main(f32* x, f32* y, f32 a, i64 n) {
            psim gang(16) threads(n) {
                i64 i = psim_thread_num();
                y[i] = a * x[i] + y[i];
            }
        }",
    );
    let n = 100usize;
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    let ys: Vec<f32> = (0..n).map(|i| 100.0 - i as f32).collect();
    let mut mem = Memory::default();
    let x = f32_buf(&mut mem, &xs);
    let y = f32_buf(&mut mem, &ys);
    let it = run_main(
        &module,
        &[
            RtVal::S(x),
            RtVal::S(y),
            RtVal::from_f32(3.0),
            RtVal::S(n as u64),
        ],
        mem,
    );
    let got = read_f32s(&it, y, n);
    for i in 0..n {
        assert_eq!(got[i], 3.0 * xs[i] + ys[i], "lane {i}");
    }
}

#[test]
fn saturating_u8_brightness() {
    let module = compile_and_vectorize(
        "void main(u8* img, i64 n) {
            psim gang(64) threads(n) {
                i64 i = psim_thread_num();
                img[i] = add_sat(img[i], (u8) 100);
            }
        }",
    );
    let n = 200usize;
    let pix: Vec<u8> = (0..n).map(|i| (i * 7 % 256) as u8).collect();
    let mut mem = Memory::default();
    let p = mem.alloc_bytes(&pix, 64).unwrap();
    let it = run_main(&module, &[RtVal::S(p), RtVal::S(n as u64)], mem);
    let got = read_u8s(&it, p, n);
    for i in 0..n {
        assert_eq!(got[i], pix[i].saturating_add(100), "pixel {i}");
    }
}

#[test]
fn divergent_threshold_with_inner_loop() {
    // Per-pixel: count how many halvings bring it under 16 (divergent loop),
    // write the count.
    let module = compile_and_vectorize(
        "void main(i32* v, i64 n) {
            psim gang(8) threads(n) {
                i64 i = psim_thread_num();
                i32 x = v[i];
                i32 steps = 0;
                while (x >= 16) {
                    x = x / 2;
                    steps += 1;
                }
                v[i] = steps;
            }
        }",
    );
    let n = 37usize;
    let vals: Vec<i32> = (0..n).map(|i| (i as i32 * 97 + 3) % 1000).collect();
    let mut mem = Memory::default();
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    let p = mem.alloc_bytes(&bytes, 64).unwrap();
    let it = run_main(&module, &[RtVal::S(p), RtVal::S(n as u64)], mem);
    let got: Vec<i32> = it
        .mem
        .read_bytes(p, (n * 4) as u64)
        .unwrap()
        .chunks(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    for i in 0..n {
        let mut x = vals[i];
        let mut steps = 0;
        while x >= 16 {
            x /= 2;
            steps += 1;
        }
        assert_eq!(got[i], steps, "element {i} (input {})", vals[i]);
    }
}

#[test]
fn math_library_calls_vectorize() {
    let module = compile_and_vectorize(
        "void main(f32* x, i64 n) {
            psim gang(16) threads(n) {
                i64 i = psim_thread_num();
                x[i] = exp(x[i]) + pow(2.0, x[i]);
            }
        }",
    );
    let n = 50usize;
    let xs: Vec<f32> = (0..n).map(|i| (i as f32) * 0.1 - 2.0).collect();
    let mut mem = Memory::default();
    let x = f32_buf(&mut mem, &xs);
    let it = run_main(&module, &[RtVal::S(x), RtVal::S(n as u64)], mem);
    let got = read_f32s(&it, x, n);
    for i in 0..n {
        let want = xs[i].exp() + 2.0f32.powf(xs[i]);
        assert!(
            (got[i] - want).abs() <= want.abs() * 1e-6 + 1e-6,
            "lane {i}: {} vs {want}",
            got[i]
        );
    }
}

#[test]
fn gang_shuffle_reverse() {
    // Reverse within each gang using psim_shuffle.
    let module = compile_and_vectorize(
        "void main(i32* v, i64 n) {
            psim gang(8) threads(n) {
                i64 lane = psim_lane_num();
                i64 i = psim_thread_num();
                i32 x = v[i];
                i32 got = psim_shuffle(x, 7 - lane);
                v[i] = got;
            }
        }",
    );
    let n = 16usize;
    let vals: Vec<i32> = (0..n as i32).collect();
    let mut mem = Memory::default();
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    let p = mem.alloc_bytes(&bytes, 64).unwrap();
    let it = run_main(&module, &[RtVal::S(p), RtVal::S(n as u64)], mem);
    let got: Vec<i32> = it
        .mem
        .read_bytes(p, (n * 4) as u64)
        .unwrap()
        .chunks(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(got[..8], [7, 6, 5, 4, 3, 2, 1, 0]);
    assert_eq!(got[8..], [15, 14, 13, 12, 11, 10, 9, 8]);
}

#[test]
fn serial_functions_execute_directly() {
    // Non-psim code must also compile and run (baseline path).
    let m = psimc::compile(
        "i64 fib(i64 n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        i64 main(i64 n) {
            i64 acc = 0;
            for (i64 i = 0; i < n; i += 1) {
                acc += fib(i);
            }
            return acc;
        }",
    )
    .expect("compiles");
    for f in m.functions() {
        psir::assert_valid(f);
    }
    let mut it = Interp::with_defaults(&m, Memory::default());
    let r = it.call("main", &[RtVal::S(10)]).unwrap();
    // fib sums: 0+1+1+2+3+5+8+13+21+34 = 88
    assert_eq!(r, RtVal::S(88));
}

#[test]
fn capture_assignment_rejected() {
    let err = psimc::compile(
        "void main(i64 n) {
            i64 acc = 0;
            psim gang(8) threads(n) {
                acc = psim_thread_num();
            }
        }",
    )
    .unwrap_err();
    assert!(err.msg.contains("captured"));
}

#[test]
fn psim_intrinsic_outside_region_rejected() {
    let err = psimc::compile("void main() { i64 i = psim_thread_num(); }").unwrap_err();
    assert!(err.msg.contains("psim region"));
}

#[test]
fn local_arrays_are_thread_private() {
    // Each thread fills a private 4-element array and sums it; the
    // vectorized allocation is G× the size with per-lane offsets (§4.2.3).
    let module = compile_and_vectorize(
        "void main(f32* restrict out, i64 n) {
            psim gang(8) threads(n) {
                i64 idx = psim_thread_num();
                f32 v[4];
                for (i64 j = 0; j < 4; j += 1) { v[j] = (f32) (idx + j); }
                f32 s = 0.0;
                for (i64 j = 0; j < 4; j += 1) { s += v[j]; }
                out[idx] = s;
            }
        }",
    );
    let n = 16usize;
    let mut mem = Memory::default();
    let o = mem.alloc((n * 4) as u64, 64).unwrap();
    let it = run_main(&module, &[RtVal::S(o), RtVal::S(n as u64)], mem);
    let got = read_f32s(&it, o, n);
    for (i, v) in got.iter().enumerate() {
        assert_eq!(*v, (4 * i + 6) as f32, "lane {i}");
    }
}

#[test]
fn head_gang_peeling_specializes() {
    // A region that treats the head gang specially: the front-end peels the
    // first gang into a `__head` call whose predicate is folded to true.
    let src = "void main(i32* restrict a, i64 n) {
        psim gang(8) threads(n) {
            i64 i = psim_thread_num();
            i32 bonus = psim_is_head_gang() ? 1000 : 0;
            a[i] = a[i] + bonus + 1;
        }
    }";
    let m = psimc::compile(src).expect("compiles");
    // The driver must mention the head specialization.
    let driver = psir::print_function(m.function("main").unwrap());
    assert!(driver.contains("main__psim0__head"), "{driver}");

    let out = vectorize_module(&m, &VectorizeOptions::default()).expect("vectorizes");
    let head = out
        .module
        .function("main__psim0__head")
        .expect("head variant generated");
    psir::assert_valid(head);
    // The folded predicate leaves no is_head_gang computation behind.
    let text = psir::print_function(head);
    assert!(!text.contains("is_head_gang"), "{text}");

    // Execution is still correct across head / middle / tail gangs.
    let n = 21usize;
    let vals: Vec<i32> = (0..n as i32).collect();
    let mut mem = Memory::default();
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    let a = mem.alloc_bytes(&bytes, 64).unwrap();
    let it = run_main(&out.module, &[RtVal::S(a), RtVal::S(n as u64)], mem);
    let got: Vec<i32> = it
        .mem
        .read_bytes(a, (n * 4) as u64)
        .unwrap()
        .chunks(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    for i in 0..n {
        let want = vals[i] + if i < 8 { 1000 } else { 0 } + 1;
        assert_eq!(got[i], want, "element {i}");
    }
}

//! The parser and lexer must reject garbage gracefully (no panics).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn lexer_never_panics(src in "\\PC*") {
        let _ = psimc::parse(&src);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("void".to_string()), Just("i32".to_string()),
                Just("f32".to_string()), Just("if".to_string()),
                Just("while".to_string()), Just("for".to_string()),
                Just("psim".to_string()), Just("gang".to_string()),
                Just("threads".to_string()), Just("return".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just("{".to_string()), Just("}".to_string()),
                Just("[".to_string()), Just("]".to_string()),
                Just(";".to_string()), Just("=".to_string()),
                Just("+".to_string()), Just("*".to_string()),
                Just("x".to_string()), Just("42".to_string()),
                Just("3.5".to_string()),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = psimc::compile(&src);
    }
}

//! PsimC language-surface tests: scoping, typing rules, diagnostics.

use psir::{Interp, Memory, RtVal};

fn run_i64(src: &str, args: &[RtVal]) -> i64 {
    let m = psimc::compile(src).expect("compiles");
    for f in m.functions() {
        psir::assert_valid(f);
    }
    let mut it = Interp::with_defaults(&m, Memory::default());
    let r = it.call("main", args).expect("runs");
    psir::sext(psir::ScalarTy::I64, r.scalar().unwrap())
}

#[test]
fn shadowing_scopes() {
    let r = run_i64(
        "i64 main() {
            i64 x = 1;
            {
                i64 x = 10;
                x += 5;
            }
            return x;
        }",
        &[],
    );
    assert_eq!(r, 1, "inner declaration shadows; outer unchanged");
}

#[test]
fn loop_variable_scoping_and_updates() {
    let r = run_i64(
        "i64 main(i64 n) {
            i64 total = 0;
            for (i64 i = 0; i < n; i += 1) {
                i64 sq = i * i;
                if (sq % 2 == 0) { total += sq; } else { total -= 1; }
            }
            return total;
        }",
        &[RtVal::S(6)],
    );
    // squares: 0,1,4,9,16,25 → even: 0+4+16=20; odd count 3 → 17
    assert_eq!(r, 17);
}

#[test]
fn unsigned_vs_signed_semantics() {
    let r = run_i64(
        "i64 main() {
            u8 a = 200;
            u8 b = 100;
            u8 wrap = a + b;              // 300 wraps to 44
            i8 sa = (i8) 200;             // -56
            i64 shifted = (i64) (sa >> (i8) 1);  // arithmetic shift: -28
            u8 ushift = wrap >> (u8) 2;   // logical: 11
            return (i64) wrap + shifted + (i64) ushift;
        }",
        &[],
    );
    assert_eq!(r, 44 - 28 + 11);
}

#[test]
fn ternary_and_bool_ops() {
    let r = run_i64(
        "i64 main(i64 x) {
            bool big = x > 10;
            bool even = x % 2 == 0;
            return big && even ? 100 : (big || even ? 10 : 1);
        }",
        &[RtVal::S(12)],
    );
    assert_eq!(r, 100);
}

#[test]
fn builtins_on_ints_and_floats() {
    let r = run_i64(
        "i64 main() {
            i32 a = clamp(-5, 0, 10);
            u8 s = add_sat((u8) 250, (u8) 10);
            u16 m = mulhi((u16) 300, (u16) 300);   // 90000 >> 16 = 1
            f32 f = floor(3.7) + ceil(0.2) + abs(-2.0);
            return (i64) a + (i64) s + (i64) m + (i64) (i32) f;
        }",
        &[],
    );
    assert_eq!(r, 255 + 1 + 6);
}

// ---- diagnostics ------------------------------------------------------------

#[test]
fn type_mismatch_reports_position() {
    let err = psimc::compile("void main() { i32 x = 1; i64 y = x; }").unwrap_err();
    assert!(err.msg.contains("i32"), "{err}");
    assert!(err.pos.is_some());
}

#[test]
fn unknown_function_rejected() {
    let err = psimc::compile("void main() { i32 x = nosuch(1); }").unwrap_err();
    assert!(err.msg.contains("unknown function"));
}

#[test]
fn arity_mismatch_rejected() {
    let err = psimc::compile(
        "i32 f(i32 a, i32 b) { return a + b; }
         void main() { i32 x = f(1); }",
    )
    .unwrap_err();
    assert!(err.msg.contains("takes 2"));
}

#[test]
fn missing_return_rejected() {
    let err = psimc::compile("i32 main(i64 n) { if (n > 0) { return 1; } }").unwrap_err();
    assert!(err.msg.contains("without returning"));
}

#[test]
fn unreachable_code_rejected() {
    let err = psimc::compile("i32 main() { return 1; return 2; }").unwrap_err();
    assert!(err.msg.contains("unreachable"));
}

#[test]
fn nested_psim_rejected() {
    let err = psimc::compile(
        "void main(i64 n) {
            psim gang(8) threads(n) {
                psim gang(8) threads(n) { }
            }
        }",
    )
    .unwrap_err();
    assert!(err.msg.contains("nest"));
}

#[test]
fn duplicate_function_rejected() {
    let err = psimc::compile("void f() { } void f() { }").unwrap_err();
    assert!(err.msg.contains("duplicate"));
}

#[test]
fn pointer_arithmetic_and_deref() {
    let m = psimc::compile(
        "i32 main(i32* p, i64 n) {
            i32* q = p + 2;
            *q = 77;
            return *(p + 2) + p[1];
        }",
    )
    .expect("compiles");
    let mut mem = Memory::default();
    let data: Vec<u8> = [1i32, 5, 9].iter().flat_map(|v| v.to_le_bytes()).collect();
    let p = mem.alloc_bytes(&data, 64).unwrap();
    let mut it = Interp::with_defaults(&m, mem);
    let r = it.call("main", &[RtVal::S(p), RtVal::S(3)]).unwrap();
    assert_eq!(r, RtVal::S(82));
}

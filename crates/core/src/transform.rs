//! Instruction transformation (§4.2.3): scalar SPMD function → vector IR.
//!
//! The vectorizer walks the structurized control tree of the SPMD function
//! and emits a new function in which `G` conceptual threads execute as one
//! SIMD thread:
//!
//! * **uniform branches stay scalar branches**; varying branches are
//!   linearized under entry/active masks (§4.2.1),
//! * **indexed values stay scalar** (only their base is computed at run
//!   time); varying values become gang-width vectors,
//! * memory operations are selected by address shape: scalar loads/stores
//!   for uniform addresses, packed ops for element-stride addresses, packed
//!   + shuffle for small compile-time strides, gather/scatter otherwise,
//! * φ nodes at varying joins become `select`s driven by the then-arm mask;
//!   φ nodes at uniform joins and scalar loop headers stay φs,
//! * divergent loops run until no lane is active, with per-lane freezing of
//!   loop-carried values and exit-value accumulators,
//! * Parsimony intrinsics are eliminated: thread indexing folds into
//!   shapes, horizontal operations map onto vector shuffles/reductions, math
//!   calls go to a vector math library, `gang_sync` compiles to nothing
//!   (the SIMD thread is synchronous at instruction granularity),
//! * calls to unknown scalar functions are serialized per active lane.

use crate::shape::{analyze, gang_base_param, num_threads_param, Shape, ShapeMap};
use crate::structurize::{structurize, Node, StructurizeError};
use psir::{
    iota_bits, BinOp, BlockId, CmpPred, Const, Function, FunctionBuilder, Inst, InstId, Intrinsic,
    ReduceOp, ScalarTy, Terminator, Ty, UnOp, Value,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use telemetry::{MemOpChoice, Pass, Remark, RemarkKind, Severity};

/// Which vector math library transcendental calls resolve to (§6: the
/// Binomial Options gap is exactly this choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathLib {
    /// SLEEF-like library (what the Parsimony prototype links).
    Sleef,
    /// ispc-built-in-like library with the faster `pow`.
    Fastm,
}

impl MathLib {
    /// Symbol prefix used in generated call names.
    pub fn prefix(self) -> &'static str {
        match self {
            MathLib::Sleef => "sleef",
            MathLib::Fastm => "fastm",
        }
    }
}

/// Vectorizer configuration.
#[derive(Debug, Clone)]
pub struct VectorizeOptions {
    /// Vector math library to call for transcendental functions.
    pub math_lib: MathLib,
    /// Strided loads/stores within `stride_window × gang_size` elements are
    /// turned into packed ops plus shuffles instead of gather/scatter
    /// (the paper uses 4×, §4.2.3).
    pub stride_window: u32,
    /// Ablation hook: disable shape analysis entirely (everything varying).
    pub enable_shape: bool,
    /// Gang-synchronous (ispc-like) mode: same code generator, but calls to
    /// separately-compiled scalar functions are rejected (they cannot be
    /// made gang-synchronous, §4.2.3) and the math library defaults differ.
    pub gang_sync: bool,
    /// Branch-on-superword-condition (§4.2.3: "explicitly checking at
    /// runtime if any thread takes the branch and following the not-taken
    /// branch if none do", ispc's `cif`): guard each linearized arm of a
    /// varying `if` with a scalar any-lane-active test.
    pub boscc: bool,
}

impl Default for VectorizeOptions {
    fn default() -> VectorizeOptions {
        VectorizeOptions {
            math_lib: MathLib::Sleef,
            stride_window: 4,
            enable_shape: true,
            gang_sync: false,
            boscc: false,
        }
    }
}

impl VectorizeOptions {
    /// The configuration used for the ispc-like comparator in Figure 4.
    pub fn gang_synchronous() -> VectorizeOptions {
        VectorizeOptions {
            math_lib: MathLib::Fastm,
            gang_sync: true,
            ..VectorizeOptions::default()
        }
    }
}

/// Vectorization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorizeError {
    /// The CFG could not be structurized.
    Unstructured(StructurizeError),
    /// The function is not SPMD-annotated or malformed.
    NotSpmd(String),
    /// A construct unsupported in the requested mode.
    Unsupported(String),
    /// A located diagnostic from the fault-tolerant driver: an in-pipeline
    /// verification failure, a caught panic, or a failing region that could
    /// not be scalar-serialized.
    Invalid(telemetry::Diagnostic),
}

impl fmt::Display for VectorizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorizeError::Unstructured(e) => write!(f, "{e}"),
            VectorizeError::NotSpmd(m) => write!(f, "not an SPMD function: {m}"),
            VectorizeError::Unsupported(m) => write!(f, "unsupported: {m}"),
            VectorizeError::Invalid(d) => write!(f, "{d}"),
        }
    }
}

impl Error for VectorizeError {}

impl VectorizeError {
    /// Converts the error into a located [`telemetry::Diagnostic`] for the
    /// region `f`, attributing it to the pass that actually failed.
    pub fn diagnostic(&self, f: &Function) -> telemetry::Diagnostic {
        match self {
            VectorizeError::Unstructured(e) => {
                let mut d = telemetry::Diagnostic::new(Pass::Structurize, &f.name, e.to_string());
                if let Some(b) = e.block {
                    d = d.at_block(b);
                }
                d
            }
            VectorizeError::NotSpmd(_) | VectorizeError::Unsupported(_) => {
                telemetry::Diagnostic::new(Pass::Vectorize, &f.name, self.to_string())
            }
            VectorizeError::Invalid(d) => d.clone(),
        }
    }
}

impl From<StructurizeError> for VectorizeError {
    fn from(e: StructurizeError) -> VectorizeError {
        VectorizeError::Unstructured(e)
    }
}

/// Result of vectorizing one SPMD function.
#[derive(Debug)]
pub struct Vectorized {
    /// The vector-IR function.
    pub func: Function,
    /// Compile-time diagnostics (e.g. the §4.2.3 racy-uniform-store warning).
    /// Derived from `remarks` — the text of every warning-severity remark.
    pub warnings: Vec<String>,
    /// Structured optimization remarks for every decision the pass made.
    pub remarks: Vec<Remark>,
}

/// A mapped value in the new function: indexed values keep a scalar base;
/// varying values are vectors.
#[derive(Debug, Clone)]
enum Mv {
    Scalar { base: Value, offsets: Vec<u64> },
    Vector(Value),
}

/// The current execution predicate.
#[derive(Debug, Clone, Copy)]
enum MaskCtx {
    /// All lanes statically active.
    Full,
    /// Mask value (vector of i1) in the new function.
    Dyn(Value),
}

struct Vectorizer<'a> {
    old: &'a Function,
    shapes: ShapeMap,
    opts: &'a VectorizeOptions,
    g: u32,
    fb: FunctionBuilder,
    env: HashMap<Value, Mv>,
    /// Name of the variant being emitted (remark attribution).
    fname: String,
    remarks: Vec<Remark>,
    /// Old block set per loop header, for exit-value scans.
    old_preds: HashMap<BlockId, Vec<BlockId>>,
    dom: psir::DomTree,
    partial: bool,
    is_head: Option<bool>,
}

/// Vectorizes one SPMD-annotated scalar function. `partial` selects the
/// tail-gang specialization (threads with `thread_id ≥ num_threads` masked
/// off, Listing 6).
///
/// # Errors
/// Returns [`VectorizeError`] for unstructured control flow, a missing SPMD
/// annotation, a non-void SPMD region, or (in gang-synchronous mode) a call
/// to a separately-compiled scalar function.
pub fn vectorize_function(
    old: &Function,
    opts: &VectorizeOptions,
    partial: bool,
) -> Result<Vectorized, VectorizeError> {
    vectorize_function_with(old, opts, partial, None)
}

/// Like [`vectorize_function`], additionally folding `psim_is_head_gang()`
/// to a known value — used by the §4.1 head-gang peeling, where the driver
/// extracts the first gang into its own specialization so boundary-condition
/// checks vanish from the steady-state loop.
///
/// # Errors
/// As for [`vectorize_function`].
pub fn vectorize_function_with(
    old: &Function,
    opts: &VectorizeOptions,
    partial: bool,
    is_head: Option<bool>,
) -> Result<Vectorized, VectorizeError> {
    let spmd = old
        .spmd
        .ok_or_else(|| VectorizeError::NotSpmd(old.name.clone()))?;
    if !old.ret.is_void() {
        return Err(VectorizeError::NotSpmd(format!(
            "SPMD region @{} must return void",
            old.name
        )));
    }
    if old.params.len() < crate::shape::SPMD_EXTRA_PARAMS {
        return Err(VectorizeError::NotSpmd(format!(
            "SPMD region @{} lacks the implicit (gang_base, num_threads) parameters",
            old.name
        )));
    }
    if crate::fault::inject_error("vectorize") {
        return Err(VectorizeError::Unsupported(format!(
            "injected fault at vectorize:error in @{}",
            old.name
        )));
    }
    let tree = crate::fault::pass_scope(Pass::Structurize, || structurize(old))?;
    let g = spmd.gang_size;
    let mut shapes = crate::fault::pass_scope(Pass::Shape, || analyze(old, g, &tree));
    if !opts.enable_shape {
        shapes = crate::shape::all_varying(old, g);
    }

    let suffix = if partial {
        "__partial"
    } else if is_head == Some(true) {
        "__head"
    } else {
        "__full"
    };
    let fname = format!("{}{}", old.name, suffix);
    let fb = FunctionBuilder::new(fname.clone(), old.params.clone(), Ty::Void);

    let mut remarks = Vec::new();
    let (regions, loops) = tree.stats();
    remarks.push(Remark::new(
        Pass::Structurize,
        Severity::Analysis,
        &fname,
        RemarkKind::StructurizeSummary { regions, loops },
    ));
    let (uniform, indexed, varying) = shapes.summary();
    remarks.push(Remark::new(
        Pass::Shape,
        Severity::Analysis,
        &fname,
        RemarkKind::ShapeSummary {
            uniform,
            indexed,
            varying,
        },
    ));

    let mut v = Vectorizer {
        old,
        shapes,
        opts,
        g,
        fb,
        env: HashMap::new(),
        fname,
        remarks,
        old_preds: old.predecessors(),
        dom: psir::DomTree::compute(old),
        partial,
        is_head,
    };

    // Parameters are uniform scalars.
    for (i, _) in old.params.iter().enumerate() {
        v.env.insert(
            Value::Param(i as u32),
            Mv::Scalar {
                base: Value::Param(i as u32),
                offsets: vec![0; g as usize],
            },
        );
    }

    // Initial mask: full gangs run unmasked; the tail gang masks lanes
    // beyond num_threads (the implicit `thread_id < N` guard of Listing 6).
    let mask = if partial {
        let lanes = v.fb.const_vec(ScalarTy::I64, iota_bits(ScalarTy::I64, g));
        let nt = Value::Param(num_threads_param(old));
        let base = Value::Param(gang_base_param(old));
        let rem = v.fb.bin(BinOp::Sub, nt, base);
        let rem_v = v.fb.splat(rem, g);
        let m = v.fb.cmp(CmpPred::Slt, lanes, rem_v);
        MaskCtx::Dyn(m)
    } else {
        MaskCtx::Full
    };

    crate::fault::pass_scope(Pass::Vectorize, || {
        crate::fault::inject_panic("vectorize");
        v.emit_nodes(&tree.roots, mask)
    })?;
    let func = v.fb.finish();
    Ok(Vectorized {
        func,
        warnings: telemetry::warnings_of(&v.remarks),
        remarks: v.remarks,
    })
}

impl<'a> Vectorizer<'a> {
    /// Records a structured remark for this variant.
    fn remark(&mut self, severity: Severity, kind: RemarkKind) {
        self.remarks
            .push(Remark::new(Pass::Vectorize, severity, &self.fname, kind));
    }

    /// Records a remark attributed to one old-function instruction.
    fn remark_at(&mut self, severity: Severity, kind: RemarkKind, id: InstId) {
        self.remarks
            .push(Remark::new(Pass::Vectorize, severity, &self.fname, kind).at_inst(id.0));
    }

    fn shape(&self, v: Value) -> Shape {
        self.shapes.shape(self.old, v)
    }

    fn mv(&self, v: Value) -> Mv {
        if let Value::Const(c) = v {
            return Mv::Scalar {
                base: Value::Const(c),
                offsets: vec![0; self.g as usize],
            };
        }
        self.env
            .get(&v)
            .cloned()
            .unwrap_or_else(|| panic!("value {v:?} not yet mapped in @{}", self.old.name))
    }

    /// The vector form of an old value, materializing indexed values as
    /// `splat(base) + constvec(offsets)`.
    fn vector_of(&mut self, v: Value) -> Value {
        let g = self.g;
        match self.mv(v) {
            Mv::Vector(nv) => nv,
            Mv::Scalar { base, offsets } => {
                let elem = self
                    .old
                    .value_ty(v)
                    .elem()
                    .expect("void value has no vector form");
                let splatted = self.fb.splat(base, g);
                if offsets.iter().all(|&o| o == 0) {
                    return splatted;
                }
                match elem {
                    ScalarTy::Ptr => {
                        let idx = self.fb.const_vec(ScalarTy::I64, offsets);
                        self.fb.gep(splatted, idx, 1)
                    }
                    e if e.is_int() => {
                        let offs = self.fb.const_vec(e, offsets);
                        self.fb.bin(BinOp::Add, splatted, offs)
                    }
                    _ => unreachable!("only int/ptr values can be non-uniform indexed"),
                }
            }
        }
    }

    /// The scalar base of an old value.
    ///
    /// # Panics
    /// Panics if the value is varying (callers must check shapes).
    fn scalar_of(&mut self, v: Value) -> Value {
        match self.mv(v) {
            Mv::Scalar { base, .. } => base,
            Mv::Vector(_) => panic!(
                "internal: scalar_of on varying value {v:?} in @{}",
                self.old.name
            ),
        }
    }

    fn mask_vec(&mut self, mask: MaskCtx) -> Value {
        match mask {
            MaskCtx::Full => {
                let g = self.g;
                self.fb.const_vec(ScalarTy::I1, vec![1; g as usize])
            }
            MaskCtx::Dyn(m) => m,
        }
    }

    fn mask_opt(&mut self, mask: MaskCtx) -> Option<Value> {
        match mask {
            MaskCtx::Full => None,
            MaskCtx::Dyn(m) => Some(m),
        }
    }

    // ---- control tree walk -------------------------------------------------

    fn emit_nodes(&mut self, nodes: &[Node], mask: MaskCtx) -> Result<(), VectorizeError> {
        for n in nodes {
            match n {
                Node::Block(b) => self.emit_block(*b, mask)?,
                Node::If {
                    cond_block,
                    then_nodes,
                    else_nodes,
                    join,
                } => {
                    self.emit_block(*cond_block, mask)?;
                    let cond = match &self.old.block(*cond_block).term {
                        Terminator::CondBr { cond, .. } => *cond,
                        _ => unreachable!(),
                    };
                    if self.shape(cond).is_uniform() {
                        self.emit_uniform_if(
                            cond,
                            *cond_block,
                            then_nodes,
                            else_nodes,
                            *join,
                            mask,
                        )?;
                    } else {
                        self.emit_varying_if(
                            cond,
                            *cond_block,
                            then_nodes,
                            else_nodes,
                            *join,
                            mask,
                        )?;
                    }
                }
                Node::Loop { header, body, exit } => {
                    let cond = match &self.old.block(*header).term {
                        Terminator::CondBr { cond, .. } => *cond,
                        _ => unreachable!(),
                    };
                    if self.shape(cond).is_uniform() {
                        self.emit_uniform_loop(*header, body, *exit, cond, mask)?;
                    } else {
                        self.emit_varying_loop(*header, body, *exit, cond, mask)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn emit_block(&mut self, b: BlockId, mask: MaskCtx) -> Result<(), VectorizeError> {
        // Ret terminators are emitted here; branches are handled by parents.
        for &id in &self.old.block(b).insts.clone() {
            if self.env.contains_key(&Value::Inst(id)) {
                continue; // φ handled by the enclosing If/Loop emission
            }
            self.emit_inst(id, mask)?;
        }
        if matches!(self.old.block(b).term, Terminator::Ret(_)) {
            self.fb.ret(None);
        }
        Ok(())
    }

    /// Computes the edge value of an old φ for one incoming old block,
    /// in whatever form (scalar base / vector) the φ's shape dictates.
    /// Must be called while the corresponding new predecessor block is
    /// current (so materializations dominate the edge).
    fn phi_edge_value(&mut self, phi_id: InstId, old_pred: &dyn Fn(BlockId) -> bool) -> Value {
        let incoming = match self.old.inst(phi_id) {
            Inst::Phi { incoming } => incoming.clone(),
            _ => unreachable!(),
        };
        let (_, v) = incoming
            .iter()
            .find(|(p, _)| old_pred(*p))
            .copied()
            .unwrap_or_else(|| panic!("phi {phi_id} missing expected edge"));
        match self.shape(Value::Inst(phi_id)) {
            Shape::Indexed(_) => self.scalar_of(v),
            _ => self.vector_of(v),
        }
    }

    fn old_phis(&self, b: BlockId) -> Vec<InstId> {
        self.old
            .block(b)
            .insts
            .iter()
            .copied()
            .filter(|&i| matches!(self.old.inst(i), Inst::Phi { .. }))
            .collect()
    }

    /// Collects all old blocks inside a node list (for membership tests).
    fn blocks_in(nodes: &[Node], out: &mut Vec<BlockId>) {
        for n in nodes {
            match n {
                Node::Block(b) => out.push(*b),
                Node::If {
                    cond_block,
                    then_nodes,
                    else_nodes,
                    ..
                } => {
                    out.push(*cond_block);
                    Self::blocks_in(then_nodes, out);
                    Self::blocks_in(else_nodes, out);
                }
                Node::Loop { header, body, .. } => {
                    out.push(*header);
                    Self::blocks_in(body, out);
                }
            }
        }
    }

    fn emit_uniform_if(
        &mut self,
        cond: Value,
        cond_block: BlockId,
        then_nodes: &[Node],
        else_nodes: &[Node],
        join: BlockId,
        mask: MaskCtx,
    ) -> Result<(), VectorizeError> {
        let cnew = self.scalar_of(cond);
        let phis = self.old_phis(join);

        let mut then_blocks = Vec::new();
        Self::blocks_in(then_nodes, &mut then_blocks);

        // Empty-arm φ edge values flow along the cond_block → join edge and
        // must be materialized *before* the branch seals this block.
        let pre_then_vals: Option<Vec<Value>> = if then_nodes.is_empty() {
            Some(
                phis.iter()
                    .map(|&p| self.phi_edge_value(p, &|b| b == cond_block))
                    .collect(),
            )
        } else {
            None
        };
        let pre_else_vals: Option<Vec<Value>> = if else_nodes.is_empty() {
            Some(
                phis.iter()
                    .map(|&p| self.phi_edge_value(p, &|b| b == cond_block))
                    .collect(),
            )
        } else {
            None
        };
        let pred_block = self.fb.current_block();

        let then_blk = if then_nodes.is_empty() {
            None
        } else {
            Some(self.fb.new_block("then"))
        };
        let else_blk = if else_nodes.is_empty() {
            None
        } else {
            Some(self.fb.new_block("else"))
        };
        let join_blk = self.fb.new_block("join");

        self.fb.cond_br(
            cnew,
            then_blk.unwrap_or(join_blk),
            else_blk.unwrap_or(join_blk),
        );

        // Then arm.
        let (then_exit, then_vals) = if let Some(tb) = then_blk {
            self.fb.switch_to(tb);
            self.emit_nodes(then_nodes, mask)?;
            let exit = self.fb.current_block();
            let vals: Vec<Value> = phis
                .iter()
                .map(|&p| self.phi_edge_value(p, &|b| then_blocks.contains(&b)))
                .collect();
            self.fb.br(join_blk);
            (exit, vals)
        } else {
            (pred_block, pre_then_vals.expect("precomputed"))
        };

        // Else arm (or the fall-through edge).
        let (else_exit, else_vals) = if let Some(eb) = else_blk {
            self.fb.switch_to(eb);
            self.emit_nodes(else_nodes, mask)?;
            let exit = self.fb.current_block();
            let vals: Vec<Value> = phis
                .iter()
                .map(|&p| self.phi_edge_value(p, &|b| !then_blocks.contains(&b) && b != cond_block))
                .collect();
            self.fb.br(join_blk);
            (exit, vals)
        } else {
            (pred_block, pre_else_vals.expect("precomputed"))
        };

        self.fb.switch_to(join_blk);
        for ((p, tv), ev) in phis.iter().zip(then_vals).zip(else_vals) {
            let shape = self.shape(Value::Inst(*p));
            let new = self.fb.phi(vec![(then_exit, tv), (else_exit, ev)]);
            let mv = match shape {
                Shape::Indexed(info) => Mv::Scalar {
                    base: new,
                    offsets: info.offsets,
                },
                _ => Mv::Vector(new),
            };
            self.env.insert(Value::Inst(*p), mv);
        }
        Ok(())
    }

    fn emit_varying_if(
        &mut self,
        cond: Value,
        cond_block: BlockId,
        then_nodes: &[Node],
        else_nodes: &[Node],
        join: BlockId,
        mask: MaskCtx,
    ) -> Result<(), VectorizeError> {
        self.remark(
            Severity::Passed,
            RemarkKind::BranchLinearized {
                arms: 2 - usize::from(then_nodes.is_empty()) - usize::from(else_nodes.is_empty()),
            },
        );
        let cvec = self.vector_of(cond);
        let mvec = self.mask_vec(mask);
        let mask_then = self.fb.bin(BinOp::And, mvec, cvec);
        let not_c = self.fb.un(UnOp::Not, cvec);
        let mask_else = self.fb.bin(BinOp::And, mvec, not_c);

        let mut then_blocks = Vec::new();
        Self::blocks_in(then_nodes, &mut then_blocks);
        let phis = self.old_phis(join);

        // Linearize: both arms execute under their masks, in order.
        // With BOSCC, each non-empty arm is additionally guarded by a
        // scalar any-lane-active test (§4.2.3), so fully-converged gangs
        // skip the dead path entirely.
        let then_empty = then_nodes.is_empty();
        let else_empty = else_nodes.is_empty();
        let then_vals = self.emit_guarded_arm(then_nodes, mask_then, &phis, &|b| {
            if then_empty {
                b == cond_block
            } else {
                then_blocks.contains(&b)
            }
        })?;
        let else_vals = self.emit_guarded_arm(else_nodes, mask_else, &phis, &|b| {
            if else_empty {
                b == cond_block
            } else {
                !then_blocks.contains(&b) && b != cond_block
            }
        })?;

        // φ → select, steered by the then-arm's active mask (§4.2.3).
        if !phis.is_empty() {
            self.remark(
                Severity::Passed,
                RemarkKind::PhiToSelect { phis: phis.len() },
            );
        }
        for ((p, tv), ev) in phis.iter().zip(then_vals).zip(else_vals) {
            let sel = self.fb.select(mask_then, tv, ev);
            self.env.insert(Value::Inst(*p), Mv::Vector(sel));
        }
        Ok(())
    }

    /// Emits one arm of a varying `if` under its mask, optionally guarded
    /// by a scalar any-active test (BOSCC). Returns the φ edge values for
    /// the join selects.
    fn emit_guarded_arm(
        &mut self,
        nodes: &[Node],
        arm_mask: Value,
        phis: &[InstId],
        old_pred: &dyn Fn(BlockId) -> bool,
    ) -> Result<Vec<Value>, VectorizeError> {
        if !self.opts.boscc || nodes.is_empty() {
            self.emit_nodes(nodes, MaskCtx::Dyn(arm_mask))?;
            return Ok(phis
                .iter()
                .map(|&p| self.phi_edge_value(p, old_pred))
                .collect());
        }
        // Pre-arm φ values (used when the whole gang skips the arm — the
        // join select ignores these lanes, so any well-typed value works;
        // the current mapping is always available and well-typed).
        let pre_vals: Vec<Value> = phis.iter().map(|&p| self.phi_fallback_value(p)).collect();
        self.remark(Severity::Passed, RemarkKind::BosccGuard);
        let any = self.fb.reduce(ReduceOp::Or, arm_mask, None);
        let pred = self.fb.current_block();
        let arm_blk = self.fb.new_block("boscc.arm");
        let cont = self.fb.new_block("boscc.cont");
        self.fb.cond_br(any, arm_blk, cont);
        self.fb.switch_to(arm_blk);
        self.emit_nodes(nodes, MaskCtx::Dyn(arm_mask))?;
        let arm_vals: Vec<Value> = phis
            .iter()
            .map(|&p| self.phi_edge_value(p, old_pred))
            .collect();
        let arm_exit = self.fb.current_block();
        self.fb.br(cont);
        self.fb.switch_to(cont);
        let mut merged = Vec::with_capacity(phis.len());
        for (av, pv) in arm_vals.into_iter().zip(pre_vals) {
            merged.push(self.fb.phi(vec![(arm_exit, av), (pred, pv)]));
        }
        // Values the arm bound in the environment must be re-merged the
        // same way; anything only used through the join φs is covered by
        // `merged`, and old SSA guarantees arm-defined values cannot be
        // used elsewhere — so nothing further to patch.
        Ok(merged)
    }

    /// A well-typed stand-in for a φ's value on lanes that skipped a
    /// BOSCC-guarded arm. A zero vector is always safe: when the whole gang
    /// skips an arm, no lane has that arm's mask set, so the join `select`
    /// never reads these lanes (the same argument that makes linearized
    /// garbage lanes safe, §4.2.3).
    fn phi_fallback_value(&mut self, phi_id: InstId) -> Value {
        let e = self.old.inst_ty(phi_id).elem().expect("phi of void");
        let g = self.g;
        self.fb.const_vec(e, vec![0; g as usize])
    }

    fn emit_uniform_loop(
        &mut self,
        header: BlockId,
        body: &[Node],
        _exit: BlockId,
        cond: Value,
        mask: MaskCtx,
    ) -> Result<(), VectorizeError> {
        let phis = self.old_phis(header);
        let latch = self.latch_of(header);
        let preheader_new = self.fb.current_block();

        // Map init values in the preheader (before the branch) so they
        // dominate the header.
        let init_vals: Vec<Value> = phis
            .iter()
            .map(|&p| self.phi_edge_value(p, &move |b| b != latch))
            .collect();

        let header_blk = self.fb.new_block("loop.header");
        let body_blk = self.fb.new_block("loop.body");
        let exit_blk = self.fb.new_block("loop.exit");
        self.fb.br(header_blk);
        self.fb.switch_to(header_blk);

        let mut new_phis = Vec::new();
        for (p, init) in phis.iter().zip(&init_vals) {
            let shape = self.shape(Value::Inst(*p));
            let ty = match &shape {
                Shape::Indexed(_) => self.old.inst_ty(*p),
                _ => {
                    let e = self.old.inst_ty(*p).elem().expect("phi of void");
                    Ty::vec(e, self.g)
                }
            };
            let np = self.fb.phi_typed(ty, vec![(preheader_new, *init)]);
            let mv = match shape {
                Shape::Indexed(info) => Mv::Scalar {
                    base: np,
                    offsets: info.offsets,
                },
                _ => Mv::Vector(np),
            };
            self.env.insert(Value::Inst(*p), mv);
            new_phis.push(np);
        }

        // Header straight-line code (skips the φs we just handled).
        self.emit_block(header, mask)?;
        let cnew = self.scalar_of(cond);
        self.fb.cond_br(cnew, body_blk, exit_blk);

        self.fb.switch_to(body_blk);
        self.emit_nodes(body, mask)?;
        let latch_new = self.fb.current_block();
        let latch = self.latch_of(header);
        for (p, np) in phis.iter().zip(&new_phis) {
            let backedge = self.phi_edge_value(*p, &move |b| b == latch);
            self.fb.phi_add_incoming(*np, latch_new, backedge);
        }
        self.fb.br(header_blk);

        self.fb.switch_to(exit_blk);
        Ok(())
    }

    /// The latch (back-edge source) predecessor of a loop header: the
    /// predecessor that the header dominates.
    fn latch_of(&self, header: BlockId) -> BlockId {
        let preds = &self.old_preds[&header];
        self.dom_cached()
            .and_then(|dom| preds.iter().copied().find(|&p| dom.dominates(header, p)))
            .expect("loop header must have a dominated latch")
    }

    fn dom_cached(&self) -> Option<&psir::DomTree> {
        Some(&self.dom)
    }

    fn emit_varying_loop(
        &mut self,
        header: BlockId,
        body: &[Node],
        _exit: BlockId,
        cond: Value,
        mask: MaskCtx,
    ) -> Result<(), VectorizeError> {
        let g = self.g;
        let phis = self.old_phis(header);
        let entry_mask = self.mask_vec(mask);

        // Materialize φ init values (as vectors — divergent-loop φs are
        // varying by the divergence rule) in the preheader.
        let latch = self.latch_of(header);
        let init_vals: Vec<Value> = phis
            .iter()
            .map(|&p| self.phi_edge_value(p, &move |b| b != latch))
            .collect();

        // Exit-value accumulators for header-defined values used outside
        // the loop (lanes leave at different iterations; see module docs).
        let mut loop_blocks = vec![header];
        Self::blocks_in(body, &mut loop_blocks);
        let escaping = self.escaping_header_values(header, &loop_blocks);
        let zero_inits: Vec<Value> = escaping
            .iter()
            .map(|&id| {
                let e = self.old.inst_ty(id).elem().expect("escaping void value");
                self.fb.const_vec(e, vec![0; g as usize])
            })
            .collect();

        let preheader_new = self.fb.current_block();
        let header_blk = self.fb.new_block("vloop.header");
        let body_blk = self.fb.new_block("vloop.body");
        let exit_blk = self.fb.new_block("vloop.exit");
        self.fb.br(header_blk);
        self.fb.switch_to(header_blk);

        let live = self
            .fb
            .phi_typed(Ty::vec(ScalarTy::I1, g), vec![(preheader_new, entry_mask)]);

        let mut new_phis = Vec::new();
        for (p, init) in phis.iter().zip(&init_vals) {
            let e = self.old.inst_ty(*p).elem().expect("phi of void");
            let np = self
                .fb
                .phi_typed(Ty::vec(e, g), vec![(preheader_new, *init)]);
            self.env.insert(Value::Inst(*p), Mv::Vector(np));
            new_phis.push(np);
        }
        let mut acc_phis = Vec::new();
        for (id, zi) in escaping.iter().zip(&zero_inits) {
            let e = self.old.inst_ty(*id).elem().expect("escaping void value");
            let ap = self.fb.phi_typed(Ty::vec(e, g), vec![(preheader_new, *zi)]);
            acc_phis.push(ap);
        }

        // Header body under the live mask.
        self.emit_block(header, MaskCtx::Dyn(live))?;
        let cvec = self.vector_of(cond);
        let active = self.fb.bin(BinOp::And, live, cvec);

        // Update exit accumulators: lanes exiting this iteration record
        // their header values.
        let not_c = self.fb.un(UnOp::Not, cvec);
        let exiting = self.fb.bin(BinOp::And, live, not_c);
        let mut acc_next = Vec::new();
        for (id, ap) in escaping.iter().zip(&acc_phis) {
            let cur = self.vector_of(Value::Inst(*id));
            let nx = self.fb.select(exiting, cur, *ap);
            acc_next.push(nx);
        }

        let any = self.fb.reduce(ReduceOp::Or, active, None);
        self.fb.cond_br(any, body_blk, exit_blk);

        self.fb.switch_to(body_blk);
        self.emit_nodes(body, MaskCtx::Dyn(active))?;
        let latch_new = self.fb.current_block();
        // Freeze loop-carried values for exited lanes.
        for (p, np) in phis.iter().zip(&new_phis) {
            let backedge = self.phi_edge_value(*p, &move |b| b == latch);
            let frozen = self.fb.select(active, backedge, *np);
            self.fb.phi_add_incoming(*np, latch_new, frozen);
        }
        for (ap, nx) in acc_phis.iter().zip(&acc_next) {
            self.fb.phi_add_incoming(*ap, latch_new, *nx);
        }
        self.fb.phi_add_incoming(live, latch_new, active);
        self.fb.br(header_blk);

        self.fb.switch_to(exit_blk);
        // Rebind escaping header values to their accumulators for uses
        // after the loop. (acc_next is defined in the header, which
        // dominates the exit.)
        for (id, nx) in escaping.iter().zip(&acc_next) {
            self.env.insert(Value::Inst(*id), Mv::Vector(*nx));
        }
        Ok(())
    }

    /// Header-defined non-φ values with uses outside the loop.
    fn escaping_header_values(&self, header: BlockId, loop_blocks: &[BlockId]) -> Vec<InstId> {
        let mut out = Vec::new();
        for &id in &self.old.block(header).insts {
            if matches!(self.old.inst(id), Inst::Phi { .. }) {
                continue; // φs freeze via the latch select and stay correct
            }
            if self.old.inst_ty(id).is_void() {
                continue;
            }
            let used_outside = self.old.block_ids().any(|b| {
                if loop_blocks.contains(&b) {
                    return false;
                }
                let in_insts = self
                    .old
                    .block(b)
                    .insts
                    .iter()
                    .any(|&u| self.old.inst(u).operands().contains(&Value::Inst(id)));
                let in_term = match &self.old.block(b).term {
                    Terminator::CondBr { cond, .. } => *cond == Value::Inst(id),
                    Terminator::Ret(Some(v)) => *v == Value::Inst(id),
                    _ => false,
                };
                in_insts || in_term
            });
            if used_outside {
                out.push(id);
            }
        }
        out
    }
}

impl<'a> Vectorizer<'a> {
    /// Emits the translation of one old instruction under `mask` and binds
    /// the result in the environment.
    fn emit_inst(&mut self, id: InstId, mask: MaskCtx) -> Result<(), VectorizeError> {
        let inst = self.old.inst(id).clone();
        let ty = self.old.inst_ty(id);
        let oid = Value::Inst(id);
        let g = self.g;
        match &inst {
            Inst::Phi { .. } => unreachable!("phis handled by control-tree emission"),
            Inst::Bin { op, a, b } => {
                match self.shape(oid) {
                    Shape::Indexed(info) => {
                        // The base stays scalar; reconstruct whether the rule
                        // keeps the left base or applies the op to both.
                        let (sa, sb) = (self.shape(*a), self.shape(*b));
                        let base = if sa.is_uniform() && sb.is_uniform() {
                            let (na, nb) = (self.scalar_of(*a), self.scalar_of(*b));
                            self.fb.bin(*op, na, nb)
                        } else {
                            let ia = sa.indexed().expect("indexed result from indexed operands");
                            let ib = sb.indexed().expect("indexed result from indexed operands");
                            let elem = ty.elem().expect("void bin");
                            let rule = shapecheck::match_rule(
                                shapecheck::RuleOp::Bin(*op),
                                elem,
                                &to_oi(ia),
                                &to_oi(ib),
                            )
                            .expect("shape analysis only marks indexed when a rule matches");
                            match rule.base {
                                shapecheck::BaseComb::Left => self.scalar_of(*a),
                                shapecheck::BaseComb::Apply => {
                                    let (na, nb) = (self.scalar_of(*a), self.scalar_of(*b));
                                    self.fb.bin(*op, na, nb)
                                }
                            }
                        };
                        self.env.insert(
                            oid,
                            Mv::Scalar {
                                base,
                                offsets: info.offsets,
                            },
                        );
                    }
                    _ => {
                        let va = self.vector_of(*a);
                        let vb = self.vector_of(*b);
                        let nv = self.fb.bin(*op, va, vb);
                        self.env.insert(oid, Mv::Vector(nv));
                    }
                }
                Ok(())
            }
            Inst::Un { op, a } => {
                if self.shape(oid).is_uniform() {
                    let na = self.scalar_of(*a);
                    let nv = self.fb.un(*op, na);
                    self.env.insert(
                        oid,
                        Mv::Scalar {
                            base: nv,
                            offsets: vec![0; g as usize],
                        },
                    );
                } else {
                    let va = self.vector_of(*a);
                    let nv = self.fb.un(*op, va);
                    self.env.insert(oid, Mv::Vector(nv));
                }
                Ok(())
            }
            Inst::Cmp { pred, a, b } => {
                if self.shape(oid).is_uniform() {
                    let (na, nb) = (self.scalar_of(*a), self.scalar_of(*b));
                    let nv = self.fb.cmp(*pred, na, nb);
                    self.env.insert(
                        oid,
                        Mv::Scalar {
                            base: nv,
                            offsets: vec![0; g as usize],
                        },
                    );
                } else {
                    let (va, vb) = (self.vector_of(*a), self.vector_of(*b));
                    let nv = self.fb.cmp(*pred, va, vb);
                    self.env.insert(oid, Mv::Vector(nv));
                }
                Ok(())
            }
            Inst::Cast { kind, a } => {
                match self.shape(oid) {
                    Shape::Indexed(info) => {
                        let na = self.scalar_of(*a);
                        let nv = self.fb.cast(*kind, na, ty);
                        self.env.insert(
                            oid,
                            Mv::Scalar {
                                base: nv,
                                offsets: info.offsets,
                            },
                        );
                    }
                    _ => {
                        let va = self.vector_of(*a);
                        let elem = ty.elem().expect("void cast");
                        let nv = self.fb.cast(*kind, va, Ty::vec(elem, g));
                        self.env.insert(oid, Mv::Vector(nv));
                    }
                }
                Ok(())
            }
            Inst::Select { cond, t, f } => {
                match self.shape(oid) {
                    Shape::Indexed(info) => {
                        let nc = self.scalar_of(*cond);
                        let (nt, nf) = (self.scalar_of(*t), self.scalar_of(*f));
                        let nv = self.fb.select(nc, nt, nf);
                        self.env.insert(
                            oid,
                            Mv::Scalar {
                                base: nv,
                                offsets: info.offsets,
                            },
                        );
                    }
                    _ => {
                        let nc = if self.shape(*cond).is_uniform() {
                            self.scalar_of(*cond)
                        } else {
                            self.vector_of(*cond)
                        };
                        let (vt, vf) = (self.vector_of(*t), self.vector_of(*f));
                        let nv = self.fb.select(nc, vt, vf);
                        self.env.insert(oid, Mv::Vector(nv));
                    }
                }
                Ok(())
            }
            Inst::Gep { base, index, scale } => {
                match self.shape(oid) {
                    Shape::Indexed(info) => {
                        let (nb, ni) = (self.scalar_of(*base), self.scalar_of(*index));
                        let nv = self.fb.gep(nb, ni, *scale);
                        self.env.insert(
                            oid,
                            Mv::Scalar {
                                base: nv,
                                offsets: info.offsets,
                            },
                        );
                    }
                    _ => {
                        let nb = if self.shape(*base).is_uniform() {
                            self.scalar_of(*base)
                        } else {
                            self.vector_of(*base)
                        };
                        let ni = if self.shape(*index).is_uniform() {
                            self.scalar_of(*index)
                        } else {
                            self.vector_of(*index)
                        };
                        // Need at least one vector operand to get a vector of
                        // pointers (ablation mode can have both scalar).
                        let ni = if self.old.value_ty(*base).is_scalar()
                            && matches!(self.fb.func().value_ty(ni), Ty::Scalar(_))
                        {
                            self.fb.splat(ni, g)
                        } else {
                            ni
                        };
                        let nv = self.fb.gep(nb, ni, *scale);
                        self.env.insert(oid, Mv::Vector(nv));
                    }
                }
                Ok(())
            }
            Inst::Alloca { size } => {
                // §4.2.3: multiply the allocation by the gang size; each
                // thread's copy lives at base + lane × size.
                let ns = self.scalar_of(*size);
                let total = self
                    .fb
                    .bin(BinOp::Mul, ns, Value::Const(Const::i64(g as i64)));
                let p = self.fb.alloca(total);
                match self.shape(oid) {
                    Shape::Indexed(info) => {
                        self.env.insert(
                            oid,
                            Mv::Scalar {
                                base: p,
                                offsets: info.offsets,
                            },
                        );
                    }
                    _ => {
                        let iota = self
                            .fb
                            .const_vec(ScalarTy::I64, iota_bits(ScalarTy::I64, g));
                        let szv = self.fb.splat(ns, g);
                        let offs = self.fb.bin(BinOp::Mul, iota, szv);
                        let pv = self.fb.gep(p, offs, 1);
                        self.env.insert(oid, Mv::Vector(pv));
                    }
                }
                Ok(())
            }
            Inst::Load {
                ptr,
                mask: old_mask,
            } => {
                if old_mask.is_some() {
                    return Err(VectorizeError::Unsupported(
                        "masked loads in scalar SPMD input".into(),
                    ));
                }
                self.emit_load(id, *ptr, mask)
            }
            Inst::Store {
                ptr,
                val,
                mask: old_mask,
            } => {
                if old_mask.is_some() {
                    return Err(VectorizeError::Unsupported(
                        "masked stores in scalar SPMD input".into(),
                    ));
                }
                self.emit_store(*ptr, *val, mask)
            }
            Inst::Call { callee, args } => self.emit_serialized_call(id, callee, args, mask),
            Inst::Intrin { kind, args } => self.emit_intrinsic(id, *kind, args, mask),
            other => Err(VectorizeError::Unsupported(format!(
                "vector instruction {other:?} in scalar SPMD input"
            ))),
        }
    }

    /// Memory-operation selection for loads (§4.2.3).
    fn emit_load(&mut self, id: InstId, ptr: Value, mask: MaskCtx) -> Result<(), VectorizeError> {
        let ty = self.old.inst_ty(id);
        let elem = ty.elem().expect("void load");
        let s = elem.size_bytes() as i64;
        let g = self.g;
        let oid = Value::Inst(id);
        let pshape = self.shape(ptr);

        if pshape.is_uniform() {
            // Scalar load of a uniform value, guarded if lanes may be off.
            self.remark_at(
                Severity::Passed,
                RemarkKind::MemOp {
                    is_store: false,
                    choice: MemOpChoice::Scalar,
                    stride: None,
                },
                id,
            );
            let np = self.scalar_of(ptr);
            let loaded = match mask {
                MaskCtx::Full => self.fb.load(Ty::Scalar(elem), np, None),
                MaskCtx::Dyn(m) => {
                    let any = self.fb.reduce(ReduceOp::Or, m, None);
                    let prev = self.fb.current_block();
                    let do_blk = self.fb.new_block("uload");
                    let cont = self.fb.new_block("uload.cont");
                    self.fb.cond_br(any, do_blk, cont);
                    self.fb.switch_to(do_blk);
                    let l = self.fb.load(Ty::Scalar(elem), np, None);
                    self.fb.br(cont);
                    self.fb.switch_to(cont);
                    self.fb
                        .phi(vec![(do_blk, l), (prev, Value::Const(Const::zero(elem)))])
                }
            };
            self.env.insert(
                oid,
                Mv::Scalar {
                    base: loaded,
                    offsets: vec![0; g as usize],
                },
            );
            return Ok(());
        }

        if let Shape::Indexed(info) = &pshape {
            let offsets: Vec<i64> = info.offsets.iter().map(|&o| o as i64).collect();
            let min = *offsets.iter().min().expect("offsets nonempty");
            if info.stride(ScalarTy::Ptr) == Some(s) {
                // Element-stride: packed load (an order of magnitude faster
                // than a gather, per the paper).
                self.remark_at(
                    Severity::Passed,
                    RemarkKind::MemOp {
                        is_store: false,
                        choice: MemOpChoice::Packed,
                        stride: Some(1),
                    },
                    id,
                );
                let base = self.scalar_of(ptr);
                let adj = if min == 0 {
                    base
                } else {
                    self.fb.gep(base, Value::Const(Const::i64(min)), 1)
                };
                let mo = self.mask_opt(mask);
                let nv = self.fb.load(Ty::vec(elem, g), adj, mo);
                self.env.insert(oid, Mv::Vector(nv));
                return Ok(());
            }
            // Small compile-time strides: one wide packed load + shuffle,
            // only when all lanes are statically active (the wide load may
            // touch bytes no scalar thread would).
            let max = *offsets.iter().max().expect("offsets nonempty");
            let span_elems = (max - min) / s + 1;
            let aligned = offsets.iter().all(|&o| (o - min) % s == 0);
            if matches!(mask, MaskCtx::Full)
                && aligned
                && span_elems > 0
                && span_elems <= (self.opts.stride_window as i64) * g as i64
            {
                self.remark_at(
                    Severity::Passed,
                    RemarkKind::MemOp {
                        is_store: false,
                        choice: MemOpChoice::PackedShuffle,
                        stride: info.stride(ScalarTy::Ptr).map(|st| st / s),
                    },
                    id,
                );
                let base = self.scalar_of(ptr);
                let adj = if min == 0 {
                    base
                } else {
                    self.fb.gep(base, Value::Const(Const::i64(min)), 1)
                };
                let wide = self.fb.load(Ty::vec(elem, span_elems as u32), adj, None);
                let pattern: Vec<u32> = offsets.iter().map(|&o| ((o - min) / s) as u32).collect();
                let nv = self.fb.shuffle_const(wide, pattern);
                self.env.insert(oid, Mv::Vector(nv));
                return Ok(());
            }
        }

        // Gather.
        self.remark_at(
            Severity::Missed,
            RemarkKind::MemOp {
                is_store: false,
                choice: MemOpChoice::GatherScatter,
                stride: None,
            },
            id,
        );
        let ptrs = self.vector_of(ptr);
        let mo = self.mask_opt(mask);
        let nv = self.fb.load(Ty::vec(elem, g), ptrs, mo);
        self.env.insert(oid, Mv::Vector(nv));
        Ok(())
    }

    /// Memory-operation selection for stores (§4.2.3).
    fn emit_store(&mut self, ptr: Value, val: Value, mask: MaskCtx) -> Result<(), VectorizeError> {
        let vty = self.old.value_ty(val);
        let elem = vty.elem().expect("void store");
        let s = elem.size_bytes() as i64;
        let g = self.g;
        let pshape = self.shape(ptr);

        if pshape.is_uniform() {
            let racy = format!(
                "@{}: store to a uniform address is racy across the gang; \
                 one thread's value is kept",
                self.old.name
            );
            self.remark(Severity::Warning, RemarkKind::Note { text: racy });
            let scalar_path = self.shape(val).is_indexed() && self.shape(val).is_uniform();
            self.remark(
                Severity::Passed,
                RemarkKind::MemOp {
                    is_store: true,
                    choice: if scalar_path {
                        MemOpChoice::Scalar
                    } else {
                        MemOpChoice::GatherScatter
                    },
                    stride: None,
                },
            );
            if scalar_path {
                let np = self.scalar_of(ptr);
                let nv = self.scalar_of(val);
                match mask {
                    MaskCtx::Full => self.fb.store(np, nv, None),
                    MaskCtx::Dyn(m) => {
                        let any = self.fb.reduce(ReduceOp::Or, m, None);
                        let do_blk = self.fb.new_block("ustore");
                        let cont = self.fb.new_block("ustore.cont");
                        self.fb.cond_br(any, do_blk, cont);
                        self.fb.switch_to(do_blk);
                        self.fb.store(np, nv, None);
                        self.fb.br(cont);
                        self.fb.switch_to(cont);
                    }
                }
            } else {
                // Varying value to one address: racy; emit a masked scatter
                // to the splatted address (one active lane's value lands).
                let np = self.scalar_of(ptr);
                let ptrs = self.fb.splat(np, g);
                let nv = self.vector_of(val);
                let mo = self.mask_opt(mask);
                self.fb.store(ptrs, nv, mo);
            }
            return Ok(());
        }

        if let Shape::Indexed(info) = &pshape {
            let offsets: Vec<i64> = info.offsets.iter().map(|&o| o as i64).collect();
            let min = *offsets.iter().min().expect("offsets nonempty");
            if info.stride(ScalarTy::Ptr) == Some(s) {
                self.remark(
                    Severity::Passed,
                    RemarkKind::MemOp {
                        is_store: true,
                        choice: MemOpChoice::Packed,
                        stride: Some(1),
                    },
                );
                let base = self.scalar_of(ptr);
                let adj = if min == 0 {
                    base
                } else {
                    self.fb.gep(base, Value::Const(Const::i64(min)), 1)
                };
                let nv = self.vector_of(val);
                let mo = self.mask_opt(mask);
                self.fb.store(adj, nv, mo);
                return Ok(());
            }
            let max = *offsets.iter().max().expect("offsets nonempty");
            let span_elems = (max - min) / s + 1;
            let aligned = offsets.iter().all(|&o| (o - min) % s == 0);
            if matches!(mask, MaskCtx::Full)
                && aligned
                && span_elems > 0
                && span_elems <= (self.opts.stride_window as i64) * g as i64
            {
                // Expand the gang values into the covering window and store
                // with a compile-time mask on the written lanes.
                self.remark(
                    Severity::Passed,
                    RemarkKind::MemOp {
                        is_store: true,
                        choice: MemOpChoice::PackedShuffle,
                        stride: info.stride(ScalarTy::Ptr).map(|st| st / s),
                    },
                );
                let mut pattern = vec![0u32; span_elems as usize];
                let mut present = vec![0u64; span_elems as usize];
                for (lane, &o) in offsets.iter().enumerate() {
                    let j = ((o - min) / s) as usize;
                    pattern[j] = lane as u32;
                    present[j] = 1;
                }
                let base = self.scalar_of(ptr);
                let adj = if min == 0 {
                    base
                } else {
                    self.fb.gep(base, Value::Const(Const::i64(min)), 1)
                };
                let nv = self.vector_of(val);
                let expanded = self.fb.shuffle_const(nv, pattern);
                let write_mask = self.fb.const_vec(ScalarTy::I1, present);
                self.fb.store(adj, expanded, Some(write_mask));
                return Ok(());
            }
        }

        // Scatter.
        self.remark(
            Severity::Missed,
            RemarkKind::MemOp {
                is_store: true,
                choice: MemOpChoice::GatherScatter,
                stride: None,
            },
        );
        let ptrs = self.vector_of(ptr);
        let nv = self.vector_of(val);
        let mo = self.mask_opt(mask);
        self.fb.store(ptrs, nv, mo);
        Ok(())
    }

    /// §4.2.3: calls to scalar functions that cannot be vectorized are
    /// serialized — each active lane performs the scalar call in turn.
    fn emit_serialized_call(
        &mut self,
        id: InstId,
        callee: &str,
        args: &[Value],
        mask: MaskCtx,
    ) -> Result<(), VectorizeError> {
        if self.opts.gang_sync {
            return Err(VectorizeError::Unsupported(format!(
                "call to separately-compiled scalar function @{callee} cannot be \
                 executed in gang-synchronous mode (§4.2.3); Parsimony's \
                 non-synchronous semantics permit serialization"
            )));
        }
        let ty = self.old.inst_ty(id);
        let g = self.g;
        let oid = Value::Inst(id);
        self.remark_at(
            Severity::Missed,
            RemarkKind::CallSerialized {
                callee: callee.to_string(),
                lanes: g,
            },
            id,
        );

        // Materialize argument vectors once (uniform args stay scalar).
        enum ArgForm {
            Uniform(Value),
            PerLane(Value),
        }
        let forms: Vec<ArgForm> = args
            .iter()
            .map(|&a| {
                if self.shape(a).is_uniform() {
                    ArgForm::Uniform(self.scalar_of(a))
                } else {
                    ArgForm::PerLane(self.vector_of(a))
                }
            })
            .collect();

        let mut result: Option<Value> = if ty.is_void() {
            None
        } else {
            let e = ty.elem().expect("non-void call");
            Some(self.fb.const_vec(e, vec![0; g as usize]))
        };

        for lane in 0..g {
            let lane_c = Value::Const(Const::i64(lane as i64));
            let make_args = |me: &mut Self| -> Vec<Value> {
                forms
                    .iter()
                    .map(|f| match f {
                        ArgForm::Uniform(v) => *v,
                        ArgForm::PerLane(v) => me.fb.extract(*v, lane_c),
                    })
                    .collect()
            };
            match mask {
                MaskCtx::Full => {
                    let call_args = make_args(self);
                    let r = self
                        .fb
                        .call(callee, ty.with_lanes(1).into_scalar_or_void(), call_args);
                    if let Some(acc) = result {
                        result = Some(self.fb.insert(acc, lane_c, r));
                    }
                }
                MaskCtx::Dyn(m) => {
                    let mi = self.fb.extract(m, lane_c);
                    let prev = self.fb.current_block();
                    let do_blk = self.fb.new_block("sercall");
                    let cont = self.fb.new_block("sercall.cont");
                    self.fb.cond_br(mi, do_blk, cont);
                    self.fb.switch_to(do_blk);
                    let call_args = make_args(self);
                    let r = self
                        .fb
                        .call(callee, ty.with_lanes(1).into_scalar_or_void(), call_args);
                    let updated = result.map(|acc| self.fb.insert(acc, lane_c, r));
                    self.fb.br(cont);
                    self.fb.switch_to(cont);
                    if let (Some(acc), Some(upd)) = (result, updated) {
                        result = Some(self.fb.phi(vec![(prev, acc), (do_blk, upd)]));
                    }
                }
            }
        }
        if let Some(r) = result {
            self.env.insert(oid, Mv::Vector(r));
        }
        Ok(())
    }

    /// Lowers Parsimony intrinsics (§3 API → vector IR).
    fn emit_intrinsic(
        &mut self,
        id: InstId,
        kind: Intrinsic,
        args: &[Value],
        mask: MaskCtx,
    ) -> Result<(), VectorizeError> {
        let g = self.g;
        let oid = Value::Inst(id);
        let ty = self.old.inst_ty(id);
        let gb = Value::Param(gang_base_param(self.old));
        let nt = Value::Param(num_threads_param(self.old));
        match kind {
            Intrinsic::LaneNum => {
                if self.opts.enable_shape {
                    self.env.insert(
                        oid,
                        Mv::Scalar {
                            base: Value::Const(Const::i64(0)),
                            offsets: iota_bits(ScalarTy::I64, g),
                        },
                    );
                } else {
                    let v = self
                        .fb
                        .const_vec(ScalarTy::I64, iota_bits(ScalarTy::I64, g));
                    self.env.insert(oid, Mv::Vector(v));
                }
                Ok(())
            }
            Intrinsic::ThreadNum => {
                if self.opts.enable_shape {
                    self.env.insert(
                        oid,
                        Mv::Scalar {
                            base: gb,
                            offsets: iota_bits(ScalarTy::I64, g),
                        },
                    );
                } else {
                    let b = self.fb.splat(gb, g);
                    let iota = self
                        .fb
                        .const_vec(ScalarTy::I64, iota_bits(ScalarTy::I64, g));
                    let v = self.fb.bin(BinOp::Add, b, iota);
                    self.env.insert(oid, Mv::Vector(v));
                }
                Ok(())
            }
            Intrinsic::GangNum => {
                let n = self
                    .fb
                    .bin(BinOp::SDiv, gb, Value::Const(Const::i64(g as i64)));
                self.bind_uniform(oid, n);
                Ok(())
            }
            Intrinsic::NumThreads => {
                self.bind_uniform(oid, nt);
                Ok(())
            }
            Intrinsic::GangSize => {
                self.bind_uniform(oid, Value::Const(Const::i64(g as i64)));
                Ok(())
            }
            Intrinsic::IsHeadGang => {
                // With head-gang peeling (§3/§4.1), the predicate folds in
                // the specialized copies.
                match self.is_head {
                    Some(known) => self.bind_uniform(oid, Value::Const(Const::bool(known))),
                    None => {
                        let c = self.fb.cmp(CmpPred::Eq, gb, 0i64);
                        self.bind_uniform(oid, c);
                    }
                }
                Ok(())
            }
            Intrinsic::IsTailGang => {
                // The partial specialization only ever runs the trailing
                // gang (Listing 6), so the predicate folds to true there.
                if self.partial {
                    self.bind_uniform(oid, Value::Const(Const::bool(true)));
                } else {
                    let end = self
                        .fb
                        .bin(BinOp::Add, gb, Value::Const(Const::i64(g as i64)));
                    let c = self.fb.cmp(CmpPred::Sge, end, nt);
                    self.bind_uniform(oid, c);
                }
                Ok(())
            }
            Intrinsic::GangSync => {
                // The vectorized gang is synchronous at instruction
                // granularity; the barrier compiles to nothing. (This pass
                // performs no memory reordering, so the fence is trivially
                // respected — the §2.2 Listing 4 hazard cannot arise.)
                Ok(())
            }
            Intrinsic::Shuffle => {
                let v = self.vector_of(args[0]);
                let idx = self.vector_of(args[1]);
                let nv = self.fb.shuffle_var(v, idx);
                self.env.insert(oid, Mv::Vector(nv));
                Ok(())
            }
            Intrinsic::Broadcast => {
                let v = self.vector_of(args[0]);
                if self.shape(args[1]).is_uniform() {
                    let lane = self.scalar_of(args[1]);
                    let s = self.fb.extract(v, lane);
                    self.bind_uniform(oid, s);
                } else {
                    let idx = self.vector_of(args[1]);
                    let nv = self.fb.shuffle_var(v, idx);
                    self.env.insert(oid, Mv::Vector(nv));
                }
                Ok(())
            }
            Intrinsic::GangReduce(op) => {
                let v = self.vector_of(args[0]);
                let mo = self.mask_opt(mask);
                let r = self.fb.reduce(op, v, mo);
                self.bind_uniform(oid, r);
                Ok(())
            }
            Intrinsic::SadGroups => {
                let a = self.vector_of(args[0]);
                let b = self.vector_of(args[1]);
                let src_elem = self.old.value_ty(args[0]).elem().expect("sad args");
                let out_elem = ty.elem().expect("sad result");
                let name = format!("vmach.sad.{src_elem}x{g}.{out_elem}");
                let nv = self.fb.call(name, Ty::vec(out_elem, g), vec![a, b]);
                self.env.insert(oid, Mv::Vector(nv));
                Ok(())
            }
            Intrinsic::Math(m) => {
                let elem = ty.elem().expect("void math");
                let lib = self.opts.math_lib.prefix();
                if self.shape(oid).is_uniform() {
                    let s_args: Vec<Value> = args.iter().map(|&a| self.scalar_of(a)).collect();
                    let name = format!("{lib}.{}.{elem}", m.name());
                    self.remark_at(
                        Severity::Passed,
                        RemarkKind::MathDispatch {
                            func: m.name().to_string(),
                            lib: lib.to_string(),
                            symbol: name.clone(),
                        },
                        id,
                    );
                    let r = self.fb.call(name, Ty::Scalar(elem), s_args);
                    self.bind_uniform(oid, r);
                } else {
                    let v_args: Vec<Value> = args.iter().map(|&a| self.vector_of(a)).collect();
                    let name = format!("{lib}.{}.{elem}x{g}", m.name());
                    self.remark_at(
                        Severity::Passed,
                        RemarkKind::MathDispatch {
                            func: m.name().to_string(),
                            lib: lib.to_string(),
                            symbol: name.clone(),
                        },
                        id,
                    );
                    let r = self.fb.call(name, Ty::vec(elem, g), v_args);
                    self.env.insert(oid, Mv::Vector(r));
                }
                Ok(())
            }
            Intrinsic::Fma => {
                if self.shape(oid).is_uniform() {
                    let s_args: Vec<Value> = args.iter().map(|&a| self.scalar_of(a)).collect();
                    let r = self.fb.intrin(Intrinsic::Fma, s_args, ty);
                    self.bind_uniform(oid, r);
                } else {
                    let elem = ty.elem().expect("void fma");
                    let v_args: Vec<Value> = args.iter().map(|&a| self.vector_of(a)).collect();
                    let r = self.fb.intrin(Intrinsic::Fma, v_args, Ty::vec(elem, g));
                    self.env.insert(oid, Mv::Vector(r));
                }
                Ok(())
            }
        }
    }

    fn bind_uniform(&mut self, oid: Value, base: Value) {
        let g = self.g;
        self.env.insert(
            oid,
            Mv::Scalar {
                base,
                offsets: vec![0; g as usize],
            },
        );
    }
}

fn to_oi(i: &crate::shape::ShapeInfo) -> shapecheck::OperandInfo {
    shapecheck::OperandInfo {
        base_const: i.base_const,
        base_align: i.align,
        offsets: i.offsets.clone(),
        nowrap_unsigned: i.nowrap_u,
        nowrap_signed: i.nowrap_s,
    }
}

/// Helper on [`Ty`] used by serialized calls.
trait TyExt {
    fn into_scalar_or_void(self) -> Ty;
}

impl TyExt for Ty {
    fn into_scalar_or_void(self) -> Ty {
        match self {
            Ty::Void => Ty::Void,
            t => Ty::Scalar(t.elem().expect("non-void type")),
        }
    }
}

//! Control-flow structurization (§4.2.1).
//!
//! The paper "structurizes" the CFG so that all forward control flow
//! consists only of if-then patterns before masks are computed. This
//! reproduction recovers a *control tree* from the CFG of an SPMD region
//! function: a nest of straight-line blocks, two-armed ifs (joined at the
//! immediate post-dominator) and single-exit natural loops whose condition
//! lives in the header.
//!
//! The recognized shape is exactly what structured source (`if`/`else`,
//! `while`, `for` without `break`/`goto`) lowers to; anything else is
//! rejected with a diagnostic, mirroring the paper's reliance on the
//! pre-existing structurizer pass (unstructured control flow would need
//! partial linearization [Moll & Hack 2018], which is out of scope).

use psir::{natural_loops, BlockId, DomTree, Function, Terminator};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Structurization failure: the CFG is not in the supported structured form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructurizeError {
    /// Explanation of the unsupported shape.
    pub msg: String,
    /// Block the unsupported shape was detected at, when attributable.
    pub block: Option<u32>,
}

impl StructurizeError {
    fn new(msg: impl Into<String>) -> StructurizeError {
        StructurizeError {
            msg: msg.into(),
            block: None,
        }
    }

    fn at(msg: impl Into<String>, block: BlockId) -> StructurizeError {
        StructurizeError {
            msg: msg.into(),
            block: Some(block.0),
        }
    }
}

impl fmt::Display for StructurizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unstructured control flow: {}", self.msg)
    }
}

impl Error for StructurizeError {}

/// One node of the control tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A straight-line block (its terminator is handled by the parent).
    Block(BlockId),
    /// A two-armed conditional: `cond_block` ends in a conditional branch,
    /// the arms re-join at `join` (the immediate post-dominator).
    If {
        /// Block whose terminator is the branch.
        cond_block: BlockId,
        /// Nodes of the taken ("then") arm; may be empty.
        then_nodes: Vec<Node>,
        /// Nodes of the not-taken ("else") arm; may be empty.
        else_nodes: Vec<Node>,
        /// The join block (processed by the parent after this node).
        join: BlockId,
    },
    /// A while-shaped natural loop: `header` evaluates the condition and
    /// branches to the body or to `exit`; the body ends with a latch that
    /// branches back to `header`.
    Loop {
        /// Loop header (contains the exit condition).
        header: BlockId,
        /// Body nodes (the header itself is not included).
        body: Vec<Node>,
        /// The single exit block.
        exit: BlockId,
    },
}

/// The control tree of a function: the root sequence plus lookup tables.
#[derive(Debug, Clone)]
pub struct ControlTree {
    /// Top-level sequence of nodes, entry to return.
    pub roots: Vec<Node>,
}

impl ControlTree {
    /// Counts of `(if-regions, loops)` in the whole tree — the telemetry
    /// structurization summary.
    pub fn stats(&self) -> (usize, usize) {
        fn walk(nodes: &[Node], ifs: &mut usize, loops: &mut usize) {
            for n in nodes {
                match n {
                    Node::Block(_) => {}
                    Node::If {
                        then_nodes,
                        else_nodes,
                        ..
                    } => {
                        *ifs += 1;
                        walk(then_nodes, ifs, loops);
                        walk(else_nodes, ifs, loops);
                    }
                    Node::Loop { body, .. } => {
                        *loops += 1;
                        walk(body, ifs, loops);
                    }
                }
            }
        }
        let (mut ifs, mut loops) = (0, 0);
        walk(&self.roots, &mut ifs, &mut loops);
        (ifs, loops)
    }
}

/// Computes immediate post-dominators on the reversed CFG. Requires a single
/// `ret` block (the front-end guarantees it; hand-built IR must comply).
fn post_dominators(f: &Function) -> Result<HashMap<BlockId, BlockId>, StructurizeError> {
    let rets: Vec<BlockId> = f
        .block_ids()
        .filter(|&b| matches!(f.block(b).term, Terminator::Ret(_)))
        .collect();
    if rets.len() != 1 {
        return Err(StructurizeError::new(format!(
            "expected exactly one return block, found {}",
            rets.len()
        )));
    }
    let exit = rets[0];

    // Reverse CFG adjacency.
    let preds = f.predecessors(); // successors in the reversed graph
    let succs: HashMap<BlockId, Vec<BlockId>> = f
        .block_ids()
        .map(|b| (b, f.block(b).term.successors()))
        .collect();

    // Reverse post-order of the reversed CFG starting at `exit`.
    let mut visited = std::collections::HashSet::new();
    let mut post = Vec::new();
    let mut stack = vec![(exit, 0usize)];
    visited.insert(exit);
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let ss = &preds[&b];
        if *i < ss.len() {
            let s = ss[*i];
            *i += 1;
            if visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    let rpo_index: HashMap<BlockId, usize> =
        post.iter().enumerate().map(|(i, &b)| (b, i)).collect();

    let mut ipdom: HashMap<BlockId, BlockId> = HashMap::new();
    ipdom.insert(exit, exit);
    let intersect = |ipdom: &HashMap<BlockId, BlockId>, mut a: BlockId, mut b: BlockId| {
        while a != b {
            while rpo_index[&a] > rpo_index[&b] {
                a = ipdom[&a];
            }
            while rpo_index[&b] > rpo_index[&a] {
                b = ipdom[&b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in post.iter().skip(1) {
            let mut new_i: Option<BlockId> = None;
            for &p in &succs[&b] {
                if !ipdom.contains_key(&p) || !rpo_index.contains_key(&p) {
                    continue;
                }
                new_i = Some(match new_i {
                    None => p,
                    Some(cur) => intersect(&ipdom, cur, p),
                });
            }
            if let Some(ni) = new_i {
                if ipdom.get(&b) != Some(&ni) {
                    ipdom.insert(b, ni);
                    changed = true;
                }
            }
        }
    }
    Ok(ipdom)
}

struct Builder<'f> {
    f: &'f Function,
    ipdom: HashMap<BlockId, BlockId>,
    /// header → exit for recognized loops
    loop_exit: HashMap<BlockId, BlockId>,
    /// header → latch
    loop_latch: HashMap<BlockId, BlockId>,
}

impl<'f> Builder<'f> {
    /// Builds the node sequence from `entry` up to (exclusive) `stop`.
    fn region(
        &self,
        entry: BlockId,
        stop: Option<BlockId>,
        depth: usize,
    ) -> Result<Vec<Node>, StructurizeError> {
        // Structured source never nests anywhere near this deep; hitting
        // the cap means the CFG cycles without a dominating header
        // (irreducible flow), which must be reported — and well before the
        // recursion exhausts the stack.
        if depth > 200 {
            return Err(StructurizeError::new(
                "region nesting too deep (irreducible or malformed CFG?)",
            ));
        }
        let mut nodes = Vec::new();
        let mut cur = entry;
        loop {
            if Some(cur) == stop {
                return Ok(nodes);
            }
            if let (Some(&exit), Some(&latch)) =
                (self.loop_exit.get(&cur), self.loop_latch.get(&cur))
            {
                // `cur` is a loop header. Its body starts at the non-exit
                // successor and runs until control returns to the header.
                let header = cur;
                let body_entry = match &self.f.block(header).term {
                    Terminator::CondBr {
                        then_bb, else_bb, ..
                    } => {
                        if *else_bb == exit {
                            *then_bb
                        } else if *then_bb == exit {
                            return Err(StructurizeError::new(format!(
                                "loop at {header} exits on the taken edge; \
                                     canonicalize conditions so the body is the taken edge"
                            )));
                        } else {
                            return Err(StructurizeError::at(
                                format!("loop header {header} does not branch to its exit"),
                                header,
                            ));
                        }
                    }
                    _ => {
                        return Err(StructurizeError::at(
                            format!("loop header {header} must end in a conditional branch"),
                            header,
                        ))
                    }
                };
                let _ = latch;
                let body = self.region(body_entry, Some(header), depth + 1)?;
                nodes.push(Node::Loop { header, body, exit });
                cur = exit;
                continue;
            }
            match &self.f.block(cur).term {
                Terminator::Br(next) => {
                    nodes.push(Node::Block(cur));
                    cur = *next;
                }
                Terminator::CondBr {
                    then_bb, else_bb, ..
                } => {
                    let join = *self.ipdom.get(&cur).ok_or_else(|| {
                        StructurizeError::at(format!("no post-dominator for {cur}"), cur)
                    })?;
                    let then_nodes = if *then_bb == join {
                        Vec::new()
                    } else {
                        self.region(*then_bb, Some(join), depth + 1)?
                    };
                    let else_nodes = if *else_bb == join {
                        Vec::new()
                    } else {
                        self.region(*else_bb, Some(join), depth + 1)?
                    };
                    nodes.push(Node::If {
                        cond_block: cur,
                        then_nodes,
                        else_nodes,
                        join,
                    });
                    cur = join;
                }
                Terminator::Ret(_) => {
                    nodes.push(Node::Block(cur));
                    return Ok(nodes);
                }
            }
        }
    }
}

/// Recovers the control tree of `f`.
///
/// # Errors
/// Returns [`StructurizeError`] if the CFG is not in the supported
/// structured form (multiple returns, multi-exit loops, loops whose
/// condition is not in the header, irreducible flow).
pub fn structurize(f: &Function) -> Result<ControlTree, StructurizeError> {
    crate::fault::inject_panic("structurize");
    if crate::fault::inject_error("structurize") {
        return Err(StructurizeError::new(format!(
            "injected fault at structurize:error in @{}",
            f.name
        )));
    }
    let dom = DomTree::compute(f);
    let loops = natural_loops(f, &dom);

    let mut loop_exit = HashMap::new();
    let mut loop_latch = HashMap::new();
    for l in &loops {
        if l.latches.len() != 1 {
            return Err(StructurizeError::at(
                format!("loop at {} has {} latches", l.header, l.latches.len()),
                l.header,
            ));
        }
        // single exit, and it must leave from the header
        let exits: Vec<_> = l.exits.iter().collect();
        if exits.len() != 1 {
            return Err(StructurizeError::new(format!(
                "loop at {} has {} exit edges (break/early-exit unsupported)",
                l.header,
                exits.len()
            )));
        }
        let (from, to) = *exits[0];
        if from != l.header {
            return Err(StructurizeError::new(format!(
                "loop at {} exits from {from}, not from its header \
                     (only while-shaped loops are supported)",
                l.header
            )));
        }
        // The latch must branch unconditionally back to the header.
        let latch = l.latches[0];
        if !matches!(f.block(latch).term, Terminator::Br(t) if t == l.header) {
            return Err(StructurizeError::at(
                format!("latch {latch} of loop at {} is conditional", l.header),
                latch,
            ));
        }
        loop_exit.insert(l.header, to);
        loop_latch.insert(l.header, latch);
    }

    let ipdom = post_dominators(f)?;
    let b = Builder {
        f,
        ipdom,
        loop_exit,
        loop_latch,
    };
    let roots = b.region(f.entry, None, 0)?;
    Ok(ControlTree { roots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::{c_i64, BinOp, CmpPred, FunctionBuilder, Param, ScalarTy, Ty, Value};

    #[test]
    fn straight_line() {
        let mut fb = FunctionBuilder::new("s", vec![], Ty::Void);
        fb.ret(None);
        let t = structurize(&fb.finish()).unwrap();
        assert_eq!(t.roots, vec![Node::Block(BlockId(0))]);
    }

    #[test]
    fn if_else_diamond() {
        let mut fb = FunctionBuilder::new(
            "d",
            vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
            Ty::Void,
        );
        let t_bb = fb.new_block("t");
        let e_bb = fb.new_block("e");
        let j = fb.new_block("j");
        let c = fb.cmp(CmpPred::Sgt, Value::Param(0), 0i32);
        fb.cond_br(c, t_bb, e_bb);
        fb.switch_to(t_bb);
        fb.br(j);
        fb.switch_to(e_bb);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        let t = structurize(&fb.finish()).unwrap();
        assert_eq!(t.roots.len(), 2);
        match &t.roots[0] {
            Node::If {
                then_nodes,
                else_nodes,
                join,
                ..
            } => {
                assert_eq!(then_nodes, &vec![Node::Block(t_bb)]);
                assert_eq!(else_nodes, &vec![Node::Block(e_bb)]);
                assert_eq!(*join, j);
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn if_without_else() {
        let mut fb = FunctionBuilder::new(
            "i",
            vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
            Ty::Void,
        );
        let t_bb = fb.new_block("t");
        let j = fb.new_block("j");
        let c = fb.cmp(CmpPred::Sgt, Value::Param(0), 0i32);
        fb.cond_br(c, t_bb, j);
        fb.switch_to(t_bb);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        let t = structurize(&fb.finish()).unwrap();
        match &t.roots[0] {
            Node::If {
                then_nodes,
                else_nodes,
                ..
            } => {
                assert_eq!(then_nodes.len(), 1);
                assert!(else_nodes.is_empty());
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    fn while_loop_fn() -> Function {
        let mut fb = FunctionBuilder::new(
            "w",
            vec![Param::new("n", Ty::scalar(ScalarTy::I64))],
            Ty::Void,
        );
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, c_i64(0))]);
        let c = fb.cmp(CmpPred::Slt, i, Value::Param(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.phi_add_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn while_loop_recognized() {
        let t = structurize(&while_loop_fn()).unwrap();
        assert_eq!(t.roots.len(), 3); // entry, loop, exit
        match &t.roots[1] {
            Node::Loop { header, body, exit } => {
                assert_eq!(*header, BlockId(1));
                assert_eq!(body, &vec![Node::Block(BlockId(2))]);
                assert_eq!(*exit, BlockId(3));
            }
            other => panic!("expected Loop, got {other:?}"),
        }
    }

    #[test]
    fn nested_if_in_loop() {
        let mut fb = FunctionBuilder::new(
            "n",
            vec![Param::new("n", Ty::scalar(ScalarTy::I64))],
            Ty::Void,
        );
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let then_bb = fb.new_block("then");
        let join = fb.new_block("join");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, c_i64(0))]);
        let c = fb.cmp(CmpPred::Slt, i, Value::Param(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let odd = fb.bin(BinOp::And, i, 1i64);
        let is_odd = fb.cmp(CmpPred::Ne, odd, 0i64);
        fb.cond_br(is_odd, then_bb, join);
        fb.switch_to(then_bb);
        fb.br(join);
        fb.switch_to(join);
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.phi_add_incoming(i, join, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let t = structurize(&fb.finish()).unwrap();
        match &t.roots[1] {
            Node::Loop { body, .. } => {
                // The body entry ends in the inner conditional branch, so it
                // appears as the If's cond_block; the join follows.
                match &body[0] {
                    Node::If { .. } => {}
                    other => panic!("expected If inside loop, got {other:?}"),
                }
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected Loop, got {other:?}"),
        }
    }

    #[test]
    fn multi_exit_loop_rejected() {
        // while (c1) { if (c2) break-like edge to exit2 }
        let mut fb = FunctionBuilder::new(
            "m",
            vec![Param::new("n", Ty::scalar(ScalarTy::I64))],
            Ty::Void,
        );
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let latch = fb.new_block("latch");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, c_i64(0))]);
        let c = fb.cmp(CmpPred::Slt, i, Value::Param(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let c2 = fb.cmp(CmpPred::Eq, i, 5i64);
        fb.cond_br(c2, exit, latch); // break edge
        fb.switch_to(latch);
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.phi_add_incoming(i, latch, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let err = structurize(&fb.finish()).unwrap_err();
        assert!(err.msg.contains("exit edges"));
    }
}

//! Shape analysis (§4.2.2).
//!
//! Classifies every value of a scalar SPMD function as **indexed** (a common
//! scalar base plus compile-time per-lane offsets — uniform and strided are
//! the all-zero and arithmetic-progression special cases) or **varying**
//! (a true per-lane vector). Indexed values stay scalar through
//! vectorization, which is what makes uniform branches scalar, keeps address
//! computations out of vector registers, and lets the memory-op selector
//! pick packed accesses over gathers.
//!
//! The analysis is a forward fixpoint over the instruction graph with an
//! optimistic lattice `Top → Indexed → Varying`; transformation rules are
//! applied only when their preconditions hold, via the offline-verified
//! catalog in the `shapecheck` crate (the paper's two-phase z3 flow).

use psir::{iota_bits, BinOp, CastKind, Function, Inst, InstId, Intrinsic, ScalarTy, Ty, Value};
use shapecheck::{largest_pow2_divisor, match_rule, OperandInfo, RuleOp};
use std::collections::HashMap;

/// Facts carried by an indexed value (see [`Shape::Indexed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeInfo {
    /// Per-lane compile-time offsets (raw payload bits), length = gang size.
    pub offsets: Vec<u64>,
    /// Compile-time value of the base, if known.
    pub base_const: Option<u64>,
    /// Known power-of-two alignment of the base.
    pub align: u64,
    /// `base + offsets[i]` known not to wrap (unsigned).
    pub nowrap_u: bool,
    /// `base + offsets[i]` known not to wrap (signed).
    pub nowrap_s: bool,
}

impl ShapeInfo {
    /// A uniform value (all offsets zero). Uniform values trivially satisfy
    /// the no-wrap facts, since their offsets are zero.
    pub fn uniform(gang: u32, base_const: Option<u64>, align: u64) -> ShapeInfo {
        ShapeInfo {
            offsets: vec![0; gang as usize],
            base_const,
            align,
            nowrap_u: true,
            nowrap_s: true,
        }
    }

    /// Whether every offset is zero.
    pub fn is_uniform(&self) -> bool {
        self.offsets.iter().all(|&o| o == 0)
    }

    /// The common stride, if offsets form `o0, o0+s, o0+2s, …`.
    pub fn stride(&self, ty: ScalarTy) -> Option<i64> {
        let info = OperandInfo {
            base_const: self.base_const,
            base_align: self.align,
            offsets: self.offsets.clone(),
            nowrap_unsigned: self.nowrap_u,
            nowrap_signed: self.nowrap_s,
        };
        info.stride(ty)
    }

    fn to_operand_info(&self) -> OperandInfo {
        OperandInfo {
            base_const: self.base_const,
            base_align: self.align,
            offsets: self.offsets.clone(),
            nowrap_unsigned: self.nowrap_u,
            nowrap_signed: self.nowrap_s,
        }
    }
}

/// The shape lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// Not yet computed (optimistic initial state inside loops).
    Top,
    /// Scalar base + compile-time per-lane offsets.
    Indexed(ShapeInfo),
    /// A true vector value.
    Varying,
}

impl Shape {
    /// Whether the value is indexed with all-zero offsets.
    pub fn is_uniform(&self) -> bool {
        matches!(self, Shape::Indexed(i) if i.is_uniform())
    }

    /// Whether the value is indexed (including uniform).
    pub fn is_indexed(&self) -> bool {
        matches!(self, Shape::Indexed(_))
    }

    /// The indexed payload, if any.
    pub fn indexed(&self) -> Option<&ShapeInfo> {
        match self {
            Shape::Indexed(i) => Some(i),
            _ => None,
        }
    }
}

/// Lattice meet for φ nodes: indexed shapes merge only when their offsets
/// agree (the bases become a scalar φ); anything else degrades to varying.
fn meet(a: &Shape, b: &Shape) -> Shape {
    match (a, b) {
        (Shape::Top, x) | (x, Shape::Top) => x.clone(),
        (Shape::Varying, _) | (_, Shape::Varying) => Shape::Varying,
        (Shape::Indexed(x), Shape::Indexed(y)) => {
            if x.offsets == y.offsets {
                Shape::Indexed(ShapeInfo {
                    offsets: x.offsets.clone(),
                    base_const: match (x.base_const, y.base_const) {
                        (Some(a), Some(b)) if a == b => Some(a),
                        _ => None,
                    },
                    align: x.align.min(y.align),
                    nowrap_u: x.nowrap_u && y.nowrap_u,
                    nowrap_s: x.nowrap_s && y.nowrap_s,
                })
            } else {
                Shape::Varying
            }
        }
    }
}

/// The result of shape analysis for one SPMD function.
#[derive(Debug, Clone)]
pub struct ShapeMap {
    gang: u32,
    insts: HashMap<InstId, Shape>,
    params: Vec<Shape>,
}

impl ShapeMap {
    /// The shape of any operand value.
    pub fn shape(&self, f: &Function, v: Value) -> Shape {
        match v {
            Value::Const(c) => Shape::Indexed(ShapeInfo::uniform(
                self.gang,
                Some(c.bits),
                largest_pow2_divisor(c.bits),
            )),
            Value::Param(i) => self.params[i as usize].clone(),
            Value::Inst(id) => {
                let _ = f;
                self.insts.get(&id).cloned().unwrap_or(Shape::Varying)
            }
        }
    }

    /// Whether `v` is uniform.
    pub fn is_uniform(&self, f: &Function, v: Value) -> bool {
        self.shape(f, v).is_uniform()
    }

    /// Gang size the analysis ran at.
    pub fn gang(&self) -> u32 {
        self.gang
    }

    /// Counts of `(uniform, indexed-non-uniform, varying)` instruction
    /// classifications — the telemetry shape summary.
    pub fn summary(&self) -> (usize, usize, usize) {
        let (mut uni, mut idx, mut var) = (0, 0, 0);
        for s in self.insts.values() {
            match s {
                Shape::Indexed(i) if i.is_uniform() => uni += 1,
                Shape::Indexed(_) => idx += 1,
                _ => var += 1,
            }
        }
        (uni, idx, var)
    }
}

/// Number of implicit trailing parameters every outlined SPMD region
/// function carries: `(gang_base: i64, num_threads: i64)` — see §4.1 and
/// `crate::region`.
pub const SPMD_EXTRA_PARAMS: usize = 2;

/// Index of the implicit `gang_base` parameter.
pub fn gang_base_param(f: &Function) -> u32 {
    (f.params.len() - SPMD_EXTRA_PARAMS) as u32
}

/// Index of the implicit `num_threads` parameter.
pub fn num_threads_param(f: &Function) -> u32 {
    (f.params.len() - 1) as u32
}

/// Whether no-wrap facts are propagated for this element type. Index and
/// pointer arithmetic in well-formed SPMD programs does not wrap (the same
/// assumption LLVM encodes with `nsw`/`nuw`/`inbounds` flags emitted by
/// front-ends); narrow integer arithmetic legitimately wraps all the time,
/// so it never keeps the facts.
fn nowrap_ty(ty: ScalarTy) -> bool {
    matches!(ty, ScalarTy::I64 | ScalarTy::Ptr)
}

struct Analyzer<'f> {
    f: &'f Function,
    gang: u32,
    map: ShapeMap,
    /// For φ nodes: the branch condition controlling the join (the `If`
    /// condition for if-joins, the loop's exit condition for loop headers).
    /// A φ whose controlling condition is varying is itself varying — lanes
    /// arrive from different predecessors (§4.2.1's divergence).
    block_ctrl: HashMap<psir::BlockId, Value>,
    /// Values defined inside a loop and used outside it, keyed by the
    /// loop's exit condition: if that loop diverges (condition varying),
    /// lanes exit at different iterations, so the escaping value differs
    /// per lane and must be varying.
    escapes: HashMap<InstId, Vec<Value>>,
    /// Which block each instruction lives in.
    inst_block: HashMap<InstId, psir::BlockId>,
}

impl<'f> Analyzer<'f> {
    fn shape_of(&self, v: Value) -> Shape {
        self.map.shape(self.f, v)
    }

    fn transfer(&self, id: InstId) -> Shape {
        let f = self.f;
        let g = self.gang;
        let inst = f.inst(id);
        let ty = f.inst_ty(id);
        let uni = |align: u64| Shape::Indexed(ShapeInfo::uniform(g, None, align));
        match inst {
            Inst::Bin { op, a, b } => {
                let (sa, sb) = (self.shape_of(*a), self.shape_of(*b));
                match (&sa, &sb) {
                    (Shape::Top, _) | (_, Shape::Top) => Shape::Top,
                    (Shape::Indexed(ia), Shape::Indexed(ib)) => {
                        let elem = ty.elem().unwrap_or(ScalarTy::I64);
                        if elem.is_float() {
                            // Floats are only uniform-or-varying.
                            return if ia.is_uniform() && ib.is_uniform() {
                                uni(1)
                            } else {
                                Shape::Varying
                            };
                        }
                        if ia.is_uniform() && ib.is_uniform() {
                            // Uniform op uniform is uniform for every op.
                            let bc = match (ia.base_const, ib.base_const) {
                                (Some(x), Some(y)) => psir::eval_bin(*op, elem, x, y).ok(),
                                _ => None,
                            };
                            let align = bc
                                .map(largest_pow2_divisor)
                                .unwrap_or_else(|| uniform_align(*op, ia, ib));
                            return Shape::Indexed(ShapeInfo::uniform(g, bc, align));
                        }
                        let (oa, ob) = (ia.to_operand_info(), ib.to_operand_info());
                        match match_rule(RuleOp::Bin(*op), elem, &oa, &ob) {
                            Some(rule) => {
                                let offsets = rule.result_offsets(elem, elem, &oa, &ob);
                                let base_const = match (ia.base_const, ib.base_const) {
                                    (Some(x), Some(y)) => Some(rule.result_base(elem, elem, x, y)),
                                    _ => None,
                                };
                                let align = base_const
                                    .map(largest_pow2_divisor)
                                    .unwrap_or_else(|| rule_align(*op, ia, ib));
                                let keep_nowrap = nowrap_ty(elem)
                                    && ia.nowrap_u
                                    && ia.nowrap_s
                                    && ib.nowrap_u
                                    && ib.nowrap_s
                                    && matches!(
                                        op,
                                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl
                                    );
                                Shape::Indexed(ShapeInfo {
                                    offsets,
                                    base_const,
                                    align,
                                    nowrap_u: keep_nowrap,
                                    nowrap_s: keep_nowrap,
                                })
                            }
                            None => Shape::Varying,
                        }
                    }
                    _ => Shape::Varying,
                }
            }
            Inst::Un { a, .. } => {
                // Unary ops preserve uniformity only.
                match self.shape_of(*a) {
                    Shape::Top => Shape::Top,
                    s if s.is_uniform() => uni(1),
                    _ => Shape::Varying,
                }
            }
            Inst::Cmp { a, b, .. } => match (self.shape_of(*a), self.shape_of(*b)) {
                (Shape::Top, _) | (_, Shape::Top) => Shape::Top,
                (sa, sb) if sa.is_uniform() && sb.is_uniform() => uni(1),
                _ => Shape::Varying,
            },
            Inst::Cast { kind, a } => {
                let sa = self.shape_of(*a);
                let from = f.value_ty(*a).elem().unwrap_or(ScalarTy::I64);
                let to = ty.elem().unwrap_or(ScalarTy::I64);
                match sa {
                    Shape::Top => Shape::Top,
                    Shape::Indexed(ia) if ia.is_uniform() => Shape::Indexed(ShapeInfo::uniform(
                        g,
                        ia.base_const.map(|c| psir::eval_cast(*kind, from, to, c)),
                        1,
                    )),
                    Shape::Indexed(ia)
                        if matches!(kind, CastKind::Trunc | CastKind::Zext | CastKind::Sext) =>
                    {
                        let oa = ia.to_operand_info();
                        let dummy = OperandInfo::with_const_base(0, vec![0; g as usize]);
                        match match_rule(RuleOp::Cast(*kind), from, &oa, &dummy) {
                            Some(rule) => {
                                let offsets = rule.result_offsets(from, to, &oa, &dummy);
                                let keep = nowrap_ty(to) && ia.nowrap_u && ia.nowrap_s;
                                Shape::Indexed(ShapeInfo {
                                    offsets,
                                    base_const: ia
                                        .base_const
                                        .map(|c| rule.result_base(from, to, c, 0)),
                                    align: ia.align,
                                    nowrap_u: keep,
                                    nowrap_s: keep,
                                })
                            }
                            None => Shape::Varying,
                        }
                    }
                    Shape::Indexed(ia)
                        if matches!(kind, CastKind::PtrToInt | CastKind::IntToPtr) =>
                    {
                        // Pointer/integer reinterpretation keeps the shape.
                        Shape::Indexed(ia)
                    }
                    _ => Shape::Varying,
                }
            }
            Inst::Select { cond, t, f: fv } => {
                let (sc, st, sf) = (self.shape_of(*cond), self.shape_of(*t), self.shape_of(*fv));
                if matches!(sc, Shape::Top) || matches!(st, Shape::Top) || matches!(sf, Shape::Top)
                {
                    return Shape::Top;
                }
                if sc.is_uniform() {
                    match (&st, &sf) {
                        (Shape::Indexed(a), Shape::Indexed(b)) if a.offsets == b.offsets => {
                            meet(&st, &sf)
                        }
                        _ => Shape::Varying,
                    }
                } else {
                    Shape::Varying
                }
            }
            Inst::Gep { base, index, scale } => {
                let (sb, si) = (self.shape_of(*base), self.shape_of(*index));
                match (&sb, &si) {
                    (Shape::Top, _) | (_, Shape::Top) => Shape::Top,
                    (Shape::Indexed(ib), Shape::Indexed(ii)) => {
                        let ity = f.value_ty(*index).elem().unwrap_or(ScalarTy::I64);
                        let offsets: Vec<u64> = ib
                            .offsets
                            .iter()
                            .zip(&ii.offsets)
                            .map(|(&bo, &io)| {
                                bo.wrapping_add((psir::sext(ity, io) as u64).wrapping_mul(*scale))
                            })
                            .collect();
                        let align = ib
                            .align
                            .min(largest_pow2_divisor(*scale).max(1).saturating_mul(ii.align))
                            .min(1 << 62);
                        Shape::Indexed(ShapeInfo {
                            offsets,
                            base_const: None,
                            align,
                            // Pointer arithmetic does not wrap in valid
                            // programs (LLVM `inbounds` analogue).
                            nowrap_u: true,
                            nowrap_s: true,
                        })
                    }
                    _ => Shape::Varying,
                }
            }
            Inst::Load { ptr, .. } => match self.shape_of(*ptr) {
                Shape::Top => Shape::Top,
                s if s.is_uniform() => uni(1),
                _ => Shape::Varying,
            },
            Inst::Alloca { size } => {
                // Private per-thread allocation: the vectorized allocation is
                // G × size, and thread i's copy lives at offset i × size.
                if let Value::Const(c) = size {
                    let s = c.bits;
                    Shape::Indexed(ShapeInfo {
                        offsets: (0..g as u64).map(|i| i * s).collect(),
                        base_const: None,
                        align: 64,
                        nowrap_u: true,
                        nowrap_s: true,
                    })
                } else {
                    Shape::Varying
                }
            }
            Inst::Call { .. } => Shape::Varying,
            Inst::Intrin { kind, args } => match kind {
                Intrinsic::LaneNum => Shape::Indexed(ShapeInfo {
                    offsets: iota_bits(ScalarTy::I64, g),
                    base_const: Some(0),
                    align: 1 << 62,
                    nowrap_u: true,
                    nowrap_s: true,
                }),
                Intrinsic::ThreadNum => Shape::Indexed(ShapeInfo {
                    offsets: iota_bits(ScalarTy::I64, g),
                    base_const: None,
                    align: largest_pow2_divisor(g as u64),
                    nowrap_u: true,
                    nowrap_s: true,
                }),
                Intrinsic::GangSize => {
                    Shape::Indexed(ShapeInfo::uniform(g, Some(g as u64), g as u64))
                }
                Intrinsic::NumThreads
                | Intrinsic::GangNum
                | Intrinsic::IsHeadGang
                | Intrinsic::IsTailGang
                | Intrinsic::Broadcast
                | Intrinsic::GangReduce(_) => uni(1),
                Intrinsic::GangSync => uni(1), // void, shape unused
                Intrinsic::Shuffle | Intrinsic::SadGroups => Shape::Varying,
                Intrinsic::Math(_) | Intrinsic::Fma => {
                    if args.iter().all(|&a| self.shape_of(a).is_uniform()) {
                        uni(1)
                    } else if args.iter().any(|&a| matches!(self.shape_of(a), Shape::Top)) {
                        Shape::Top
                    } else {
                        Shape::Varying
                    }
                }
            },
            Inst::Phi { incoming } => {
                let mut s = Shape::Top;
                for (_, v) in incoming {
                    s = meet(&s, &self.shape_of(*v));
                }
                // Divergence: a φ at a join controlled by a varying branch
                // (or in the header of a divergent loop) mixes values from
                // different paths per lane.
                if let Some(block) = self.inst_block.get(&id) {
                    if let Some(ctrl) = self.block_ctrl.get(block) {
                        if matches!(self.shape_of(*ctrl), Shape::Varying) {
                            return Shape::Varying;
                        }
                    }
                }
                s
            }
            // Explicit vector instructions should not appear in scalar SPMD
            // input, but classify them defensively.
            _ => Shape::Varying,
        }
    }
}

/// Alignment of `op(a_base, b_base)` when both operands are uniform.
fn uniform_align(op: BinOp, a: &ShapeInfo, b: &ShapeInfo) -> u64 {
    rule_align(op, a, b)
}

/// Conservative alignment of the result base for rule-produced bases.
fn rule_align(op: BinOp, a: &ShapeInfo, b: &ShapeInfo) -> u64 {
    match op {
        BinOp::Add | BinOp::Sub => a.align.min(b.align),
        BinOp::Mul => {
            let factor = b
                .base_const
                .or(a.base_const)
                .map(largest_pow2_divisor)
                .unwrap_or(1);
            (a.align.max(b.align)).saturating_mul(factor).min(1 << 62)
        }
        BinOp::Shl => {
            let k = b.base_const.unwrap_or(0).min(62);
            a.align
                .checked_shl(k as u32)
                .unwrap_or(1 << 62)
                .clamp(1, 1 << 62)
        }
        BinOp::And => {
            let k = b
                .base_const
                .map(|m| {
                    if m == 0 {
                        1
                    } else {
                        1u64 << m.trailing_zeros().min(62)
                    }
                })
                .unwrap_or(1);
            a.align.max(k)
        }
        BinOp::LShr => {
            let k = b.base_const.unwrap_or(0).min(62);
            (a.align >> k).max(1)
        }
        BinOp::Or | BinOp::Xor => {
            let c = b.base_const.unwrap_or(1);
            a.align.min(largest_pow2_divisor(c))
        }
        _ => 1,
    }
}

/// Ablation helper: a shape map in which every instruction is varying
/// (parameters stay uniform — they are scalars by construction). Used by
/// the `--no-shape` experiment to quantify what shape analysis buys.
pub fn all_varying(f: &Function, gang: u32) -> ShapeMap {
    let params = f
        .params
        .iter()
        .map(|_| Shape::Indexed(ShapeInfo::uniform(gang, None, 1)))
        .collect();
    let mut insts = HashMap::new();
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            insts.insert(i, Shape::Varying);
        }
    }
    ShapeMap {
        gang,
        insts,
        params,
    }
}

/// Collects, from the control tree, (a) the controlling condition of every
/// join/header block and (b) loop membership for escape analysis.
fn divergence_context(
    f: &Function,
    tree: &crate::structurize::ControlTree,
) -> (HashMap<psir::BlockId, Value>, HashMap<InstId, Vec<Value>>) {
    use crate::structurize::Node;
    let mut block_ctrl: HashMap<psir::BlockId, Value> = HashMap::new();
    // (loop cond, set of blocks in the loop) per loop
    let mut loops: Vec<(Value, Vec<psir::BlockId>)> = Vec::new();

    fn blocks_of(nodes: &[Node], out: &mut Vec<psir::BlockId>) {
        for n in nodes {
            match n {
                Node::Block(b) => out.push(*b),
                Node::If {
                    cond_block,
                    then_nodes,
                    else_nodes,
                    ..
                } => {
                    out.push(*cond_block);
                    blocks_of(then_nodes, out);
                    blocks_of(else_nodes, out);
                }
                Node::Loop { header, body, .. } => {
                    out.push(*header);
                    blocks_of(body, out);
                }
            }
        }
    }

    fn cond_of(f: &Function, b: psir::BlockId) -> Value {
        match &f.block(b).term {
            psir::Terminator::CondBr { cond, .. } => *cond,
            _ => unreachable!("structurizer guarantees a conditional branch"),
        }
    }

    fn walk(
        f: &Function,
        nodes: &[Node],
        block_ctrl: &mut HashMap<psir::BlockId, Value>,
        loops: &mut Vec<(Value, Vec<psir::BlockId>)>,
    ) {
        for n in nodes {
            match n {
                Node::Block(_) => {}
                Node::If {
                    cond_block,
                    then_nodes,
                    else_nodes,
                    join,
                } => {
                    block_ctrl.insert(*join, cond_of(f, *cond_block));
                    walk(f, then_nodes, block_ctrl, loops);
                    walk(f, else_nodes, block_ctrl, loops);
                }
                Node::Loop { header, body, .. } => {
                    let c = cond_of(f, *header);
                    block_ctrl.insert(*header, c);
                    let mut blocks = vec![*header];
                    blocks_of(body, &mut blocks);
                    loops.push((c, blocks));
                    walk(f, body, block_ctrl, loops);
                }
            }
        }
    }
    walk(f, &tree.roots, &mut block_ctrl, &mut loops);

    // Escape analysis: instructions defined in a loop but used outside it.
    let mut inst_block: HashMap<InstId, psir::BlockId> = HashMap::new();
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            inst_block.insert(i, b);
        }
    }
    let mut escapes: HashMap<InstId, Vec<Value>> = HashMap::new();
    for (cond, blocks) in &loops {
        let inside: std::collections::HashSet<psir::BlockId> = blocks.iter().copied().collect();
        for b in f.block_ids() {
            if inside.contains(&b) {
                continue;
            }
            for &user in &f.block(b).insts {
                for op in f.inst(user).operands() {
                    if let Value::Inst(def) = op {
                        if inst_block.get(&def).is_some_and(|db| inside.contains(db)) {
                            escapes.entry(def).or_default().push(*cond);
                        }
                    }
                }
            }
            // Terminator conditions count as uses too.
            if let psir::Terminator::CondBr {
                cond: Value::Inst(def),
                ..
            } = &f.block(b).term
            {
                if inst_block.get(def).is_some_and(|db| inside.contains(db)) {
                    escapes.entry(*def).or_default().push(*cond);
                }
            }
        }
    }
    (block_ctrl, escapes)
}

/// Runs shape analysis over an SPMD function with gang size `gang`, using
/// the structurized control tree for divergence information.
///
/// # Panics
/// Panics if the function lacks the SPMD annotation.
pub fn analyze(f: &Function, gang: u32, tree: &crate::structurize::ControlTree) -> ShapeMap {
    crate::fault::inject_panic("shape");
    assert!(f.spmd.is_some(), "shape analysis needs an SPMD function");
    let nparams = f.params.len();
    let mut params = Vec::with_capacity(nparams);
    for (i, p) in f.params.iter().enumerate() {
        let align = match p.ty {
            // Buffers handed to regions come from the host allocator, which
            // is 64-byte aligned in this VM (see psir::Memory::alloc).
            Ty::Scalar(ScalarTy::Ptr) => 64,
            _ => 1,
        };
        let base_align = if i == nparams - SPMD_EXTRA_PARAMS {
            // gang_base is a multiple of the gang size.
            largest_pow2_divisor(gang as u64)
        } else {
            align
        };
        params.push(Shape::Indexed(ShapeInfo::uniform(gang, None, base_align)));
    }

    let (block_ctrl, escapes) = divergence_context(f, tree);
    let mut inst_block = HashMap::new();
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            inst_block.insert(i, b);
        }
    }
    let mut a = Analyzer {
        f,
        gang,
        map: ShapeMap {
            gang,
            insts: HashMap::new(),
            params,
        },
        block_ctrl,
        escapes,
        inst_block,
    };

    // Optimistic iteration to fixpoint: every instruction starts at Top and
    // can only move down the (finite) lattice, so this terminates.
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            a.map.insts.insert(id, Shape::Top);
        }
    }
    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds < 1000, "shape analysis failed to converge");
        for b in f.block_ids() {
            for &id in &f.block(b).insts.clone() {
                let mut new = a.transfer(id);
                // Escaping a divergent loop forces varying (lanes leave the
                // loop at different iterations).
                if let Some(conds) = a.escapes.get(&id) {
                    if conds
                        .iter()
                        .any(|&c| matches!(a.shape_of(c), Shape::Varying))
                    {
                        new = Shape::Varying;
                    }
                }
                let old = a.map.insts.get(&id).cloned().unwrap_or(Shape::Top);
                let merged = if matches!(old, Shape::Top) {
                    new
                } else {
                    meet(&old, &new)
                };
                if merged != old {
                    a.map.insts.insert(id, merged);
                    changed = true;
                }
            }
        }
    }
    // Anything still Top is dead/unreachable; treat as uniform-unknown.
    for (_, s) in a.map.insts.iter_mut() {
        if matches!(s, Shape::Top) {
            *s = Shape::Indexed(ShapeInfo::uniform(gang, None, 1));
        }
    }
    a.map
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::{CmpPred, FunctionBuilder, Param, SpmdInfo, ThreadCount, Ty, Value};

    fn spmd_fb(name: &str, user_params: Vec<Param>, gang: u32) -> FunctionBuilder {
        let mut params = user_params;
        params.push(Param::new("gang_base", Ty::scalar(ScalarTy::I64)));
        params.push(Param::new("num_threads", Ty::scalar(ScalarTy::I64)));
        let mut fb = FunctionBuilder::new(name, params, Ty::Void);
        fb.set_spmd(SpmdInfo {
            gang_size: gang,
            num_threads: ThreadCount::Dynamic,
            partial: false,
        });
        fb
    }

    #[test]
    fn lane_num_is_strided() {
        let mut fb = spmd_fb("f", vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))], 8);
        let lane = fb.lane_num();
        let addr = fb.gep(Value::Param(0), lane, 4);
        let v = fb.load(Ty::scalar(ScalarTy::I32), addr, None);
        let _ = v;
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 8, &crate::structurize::structurize(&f).unwrap());
        let s = shapes.shape(&f, lane);
        let info = s.indexed().expect("lane num is indexed");
        assert_eq!(info.offsets, (0..8).collect::<Vec<u64>>());
        assert_eq!(info.stride(ScalarTy::I64), Some(1));
        // address: stride 4 (packed-eligible for i32)
        let sa = shapes.shape(&f, addr);
        assert_eq!(sa.indexed().unwrap().stride(ScalarTy::Ptr), Some(4));
        // loaded data is varying
        assert_eq!(shapes.shape(&f, v), Shape::Varying);
    }

    #[test]
    fn uniform_arith_stays_uniform() {
        let mut fb = spmd_fb("g", vec![Param::new("n", Ty::scalar(ScalarTy::I64))], 16);
        let x = fb.bin(BinOp::Mul, Value::Param(0), 3i64);
        let c = fb.cmp(CmpPred::Slt, x, 100i64);
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 16, &crate::structurize::structurize(&f).unwrap());
        assert!(shapes.shape(&f, x).is_uniform());
        assert!(shapes.shape(&f, c).is_uniform());
    }

    #[test]
    fn lane_times_dynamic_scalar_is_varying() {
        let mut fb = spmd_fb("h", vec![Param::new("n", Ty::scalar(ScalarTy::I64))], 8);
        let lane = fb.lane_num();
        let v = fb.bin(BinOp::Mul, lane, Value::Param(0));
        let _ = v;
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 8, &crate::structurize::structurize(&f).unwrap());
        assert_eq!(shapes.shape(&f, v), Shape::Varying);
    }

    #[test]
    fn lane_times_const_is_strided() {
        let mut fb = spmd_fb("h2", vec![], 4);
        let lane = fb.lane_num();
        let v = fb.bin(BinOp::Mul, lane, 12i64);
        let _ = v;
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 4, &crate::structurize::structurize(&f).unwrap());
        let s = shapes.shape(&f, v);
        assert_eq!(s.indexed().unwrap().offsets, vec![0, 12, 24, 36]);
    }

    #[test]
    fn loop_phi_of_uniform_stays_uniform() {
        // i = 0; while (i < n) { i = i + 1 }  — i is uniform.
        let mut fb = spmd_fb("l", vec![Param::new("n", Ty::scalar(ScalarTy::I64))], 8);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, psir::c_i64(0))]);
        let c = fb.cmp(CmpPred::Slt, i, Value::Param(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.phi_add_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 8, &crate::structurize::structurize(&f).unwrap());
        assert!(shapes.shape(&f, i).is_uniform());
        assert!(shapes.shape(&f, c).is_uniform());
    }

    #[test]
    fn loop_phi_fed_by_varying_degrades() {
        // acc = 0; while (c) { acc = acc + load(gather) } — acc varying.
        let mut fb = spmd_fb(
            "lv",
            vec![
                Param::new("a", Ty::scalar(ScalarTy::Ptr)),
                Param::new("n", Ty::scalar(ScalarTy::I64)),
            ],
            8,
        );
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        let lane = fb.lane_num();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, psir::c_i64(0))]);
        let acc = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, psir::c_i64(0))]);
        let c = fb.cmp(CmpPred::Slt, i, Value::Param(1));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        // a[lane * i]: varying address
        let li = fb.bin(BinOp::Mul, lane, i);
        let addr = fb.gep(Value::Param(0), li, 8);
        let x = fb.load(Ty::scalar(ScalarTy::I64), addr, None);
        let acc2 = fb.bin(BinOp::Add, acc, x);
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.phi_add_incoming(i, body, i2);
        fb.phi_add_incoming(acc, body, acc2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 8, &crate::structurize::structurize(&f).unwrap());
        assert_eq!(shapes.shape(&f, acc), Shape::Varying);
        assert!(shapes.shape(&f, i).is_uniform());
    }

    #[test]
    fn gep_combines_strides() {
        let mut fb = spmd_fb("gp", vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))], 4);
        let lane = fb.lane_num();
        let two = fb.bin(BinOp::Mul, lane, 2i64); // 0,2,4,6
        let addr = fb.gep(Value::Param(0), two, 4); // byte offsets 0,8,16,24
        let _ = addr;
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 4, &crate::structurize::structurize(&f).unwrap());
        let info = shapes.shape(&f, addr).indexed().unwrap().clone();
        assert_eq!(info.offsets, vec![0, 8, 16, 24]);
        assert_eq!(info.stride(ScalarTy::Ptr), Some(8));
    }

    #[test]
    fn alloca_private_copies() {
        let mut fb = spmd_fb("al", vec![], 4);
        let p = fb.alloca(16i64);
        let _ = p;
        fb.ret(None);
        let f = fb.finish();
        let shapes = analyze(&f, 4, &crate::structurize::structurize(&f).unwrap());
        let info = shapes.shape(&f, p).indexed().unwrap().clone();
        assert_eq!(info.offsets, vec![0, 16, 32, 48]);
    }
}

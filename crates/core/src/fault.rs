//! Deterministic fault injection for the vectorization pipeline.
//!
//! The degradation machinery in [`crate::pipeline`] only earns its keep if
//! every recovery path is actually exercised, so this module lets a test (or
//! `psimcc --inject-fault`) force a failure at any registered pass boundary:
//!
//! * `<pass>:error` — the pass returns its ordinary error,
//! * `<pass>:panic` — the pass panics (exercising the `catch_unwind`
//!   boundary in the driver),
//! * `verify:corrupt` — the produced variant's IR is corrupted *before*
//!   in-pipeline verification runs (exercising the verify-then-degrade
//!   path; the corrupt function is discarded, never executed).
//!
//! Injection is scoped to the current thread (tests run concurrently in one
//! process), either explicitly through
//! [`PipelineOptions::inject`](crate::pipeline::PipelineOptions) or via the
//! `PSIM_INJECT_FAULT=<pass>:<site>` environment variable, which
//! [`crate::vectorize_module`] consults once per call. Firing is
//! deterministic: an active injector fires at *every* matching site, so a
//! sweep over [`SITES`] covers each recovery path without any randomness.
//!
//! Thread-locality is a feature, not a hazard, for the parallel region
//! driver: each fan-out worker re-arms the module's injector on its own
//! thread ([`with_injector`]) before building regions, so an armed site
//! fires in every region that reaches it regardless of which worker (or
//! how many workers) the scheduler picked — the set of degraded regions,
//! and therefore the output, is identical at every `-j` level. The same
//! holds for the panic machinery: [`pass_scope`] attribution and the quiet
//! hook's suppression flag are per-thread, while the installed hook itself
//! is process-global and consults the firing thread's flag.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use telemetry::Pass;

/// Environment variable holding a `<pass>:<site>` injection spec.
pub const ENV_VAR: &str = "PSIM_INJECT_FAULT";

/// Every registered injection site, as `(pass, site)` pairs. The sweep test
/// iterates this list; adding an injection point to a pass without
/// registering it here leaves it untested.
pub const SITES: &[(&str, &str)] = &[
    ("structurize", "error"),
    ("structurize", "panic"),
    ("shape", "panic"),
    ("vectorize", "error"),
    ("vectorize", "panic"),
    ("opt", "panic"),
    ("verify", "corrupt"),
];

/// Environment variable holding a serve-layer `<layer>:<site>` chaos spec
/// (consulted by `psim-serve` at startup; strictly opt-in).
pub const SERVE_ENV_VAR: &str = "PSIM_SERVE_CHAOS";

/// Every registered serve-layer chaos site, as `(layer, site)` pairs. The
/// same registry discipline as [`SITES`], one process boundary up: the
/// serve chaos sweep iterates this list, so an injection point added to
/// the daemon without registering it here is left untested. Firing is
/// deterministic — an armed site fires at *every* matching point.
///
/// * `conn:close_before_write` — the connection is dropped instead of
///   writing a response (the client sees EOF, never a partial success).
/// * `conn:truncate_write` — half the response bytes are written, no
///   newline, then the connection is dropped (a torn frame).
/// * `conn:delay_write` — a bounded delay before each response write
///   (slow-server simulation; must not be confused with a hang).
/// * `conn:close_on_read` — the connection is dropped right after a frame
///   is read, before it is processed.
/// * `worker:kill` — the worker thread executing the request panics
///   mid-request (the pool must survive and the client must get a
///   structured error).
/// * `worker:delay` — a bounded delay inside the worker before
///   compilation starts.
/// * `batch:form_delay` — a bounded delay during batch formation, before
///   the request enters the coalescing window (skews join timing so
///   window expiry and late joins are exercised).
/// * `batch:member_cancel` — at batch dissolution, the first member of
///   every sealed batch has its token cancelled as if its client had
///   disconnected; that member must detach to a structured `cancelled`
///   reply without poisoning its batchmates.
pub const SERVE_SITES: &[(&str, &str)] = &[
    ("conn", "close_before_write"),
    ("conn", "truncate_write"),
    ("conn", "delay_write"),
    ("conn", "close_on_read"),
    ("worker", "kill"),
    ("worker", "delay"),
    ("batch", "form_delay"),
    ("batch", "member_cancel"),
];

/// Parses a `<first>:<second>` spec against a `(first, second)` site
/// registry — the shared grammar of [`FaultInjector::parse`] and the serve
/// chaos parser.
///
/// # Errors
/// Reports a malformed spec or an unregistered site, listing the valid
/// ones.
pub fn parse_site_spec(spec: &str, sites: &[(&str, &str)]) -> Result<(String, String), String> {
    let valid = || {
        sites
            .iter()
            .map(|&(p, s)| format!("{p}:{s}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let Some((pass, site)) = spec.split_once(':') else {
        return Err(format!(
            "invalid fault spec `{spec}` (expected <pass>:<site>; one of: {})",
            valid()
        ));
    };
    if !sites.iter().any(|&(p, s)| p == pass && s == site) {
        return Err(format!(
            "unknown fault site `{spec}` (registered sites: {})",
            valid()
        ));
    }
    Ok((pass.to_string(), site.to_string()))
}

/// An armed fault injector: fires at every site matching `pass:site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjector {
    /// Pass name (first component of the spec).
    pub pass: String,
    /// Site name within the pass (second component).
    pub site: String,
}

impl FaultInjector {
    /// Parses a `<pass>:<site>` spec against the registered [`SITES`].
    ///
    /// # Errors
    /// Reports a malformed spec or an unregistered site, listing the valid
    /// ones.
    pub fn parse(spec: &str) -> Result<FaultInjector, String> {
        let (pass, site) = parse_site_spec(spec, SITES)?;
        Ok(FaultInjector { pass, site })
    }

    /// Reads and parses [`ENV_VAR`]; `None` when unset or invalid (the CLIs
    /// validate explicitly so a typo is reported rather than ignored).
    pub fn from_env() -> Option<FaultInjector> {
        std::env::var(ENV_VAR)
            .ok()
            .and_then(|s| FaultInjector::parse(&s).ok())
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<FaultInjector>> = const { RefCell::new(None) };
}

/// Runs `f` with `inj` armed on this thread, restoring the previous injector
/// afterwards (including on unwind, so a caught injected panic does not leak
/// the armed state into unrelated work).
pub fn with_injector<T>(inj: Option<FaultInjector>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<FaultInjector>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), inj));
    let _restore = Restore(prev);
    f()
}

/// Whether an injector armed on this thread matches `pass:site`.
pub fn armed(pass: &str, site: &str) -> bool {
    ACTIVE.with(|a| {
        a.borrow()
            .as_ref()
            .is_some_and(|i| i.pass == pass && i.site == site)
    })
}

/// True when `<pass>:error` is armed; the pass then returns its ordinary
/// error with an "injected fault" message.
pub fn inject_error(pass: &str) -> bool {
    armed(pass, "error")
}

/// Panics when `<pass>:panic` is armed, with a recognizable message.
pub fn inject_panic(pass: &str) {
    if armed(pass, "panic") {
        panic!("injected fault at {pass}:panic");
    }
}

/// When `verify:corrupt` is armed, makes `f` fail verification by pointing
/// its entry terminator at a nonexistent block. Returns whether it fired.
/// The corrupted function is only ever fed to the verifier, never executed.
pub fn corrupt_for_verify(f: &mut psir::Function) -> bool {
    if !armed("verify", "corrupt") {
        return false;
    }
    let entry = f.entry;
    f.block_mut(entry).term = psir::Terminator::Br(psir::BlockId(u32::MAX));
    true
}

thread_local! {
    static CURRENT_PASS: Cell<Pass> = const { Cell::new(Pass::Pipeline) };
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Marks `p` as the active pass for the duration of `f`, for panic
/// attribution. On normal exit the previous pass is restored; on unwind the
/// marker deliberately keeps the deepest pass that was active when the
/// panic started, so the driver's `catch_unwind` boundary can read it via
/// [`current_pass`].
pub fn pass_scope<T>(p: Pass, f: impl FnOnce() -> T) -> T {
    let prev = CURRENT_PASS.with(|c| c.replace(p));
    let r = f();
    CURRENT_PASS.with(|c| c.set(prev));
    r
}

/// The pass most recently entered via [`pass_scope`] on this thread.
pub fn current_pass() -> Pass {
    CURRENT_PASS.with(Cell::get)
}

/// Resets the pass marker to [`Pass::Pipeline`] (called by the driver after
/// it has attributed a caught panic).
pub fn reset_current_pass() {
    CURRENT_PASS.with(|c| c.set(Pass::Pipeline));
}

fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into `Err(message)` without printing the
/// default `thread panicked at …` line for this thread (other threads keep
/// the standard hook behavior). This is the driver-boundary `catch_unwind`
/// of the pipeline: residual panics deep inside a pass become located
/// diagnostics instead of aborting compilation.
pub fn catch_pass_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    let prev_quiet = QUIET.with(|q| q.replace(true));
    let r = catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(prev_quiet));
    r.map_err(|p| {
        p.downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_registered_sites_only() {
        for &(p, s) in SITES {
            let inj = FaultInjector::parse(&format!("{p}:{s}")).unwrap();
            assert_eq!((inj.pass.as_str(), inj.site.as_str()), (p, s));
        }
        assert!(FaultInjector::parse("vectorize").is_err());
        assert!(FaultInjector::parse("nosuch:error").is_err());
        assert!(FaultInjector::parse("vectorize:nosite")
            .unwrap_err()
            .contains("registered sites"));
    }

    #[test]
    fn scoping_restores_previous_injector() {
        let a = FaultInjector::parse("opt:panic").unwrap();
        let b = FaultInjector::parse("shape:panic").unwrap();
        with_injector(Some(a), || {
            assert!(armed("opt", "panic"));
            with_injector(Some(b), || {
                assert!(armed("shape", "panic"));
                assert!(!armed("opt", "panic"));
            });
            assert!(armed("opt", "panic"));
        });
        assert!(!armed("opt", "panic"));
    }

    #[test]
    fn restores_on_unwind() {
        let inj = FaultInjector::parse("vectorize:panic").unwrap();
        let r = catch_pass_panic(|| {
            with_injector(Some(inj), || inject_panic("vectorize"));
        });
        assert_eq!(r.unwrap_err(), "injected fault at vectorize:panic");
        assert!(!armed("vectorize", "panic"));
    }

    #[test]
    fn panics_are_attributed_to_the_deepest_active_pass() {
        let r = catch_pass_panic(|| {
            pass_scope(Pass::Vectorize, || {
                pass_scope(Pass::Shape, || panic!("boom"));
            })
        });
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(current_pass(), Pass::Shape);
        reset_current_pass();
        assert_eq!(current_pass(), Pass::Pipeline);
        // Normal exits restore the previous marker.
        pass_scope(Pass::Opt, || assert_eq!(current_pass(), Pass::Opt));
        assert_eq!(current_pass(), Pass::Pipeline);
    }
}

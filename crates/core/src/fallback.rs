//! Scalar gang-serialization fallback: the degradation path of the driver.
//!
//! When a region cannot be vectorized (or its vector output fails
//! in-pipeline verification), the pipeline still has to honor the front-end
//! contract of §4.1: the gang loop at the call site invokes
//! `<region>__full` / `<region>__partial` (and `__head` when peeling), and
//! *any* implementation with those names is acceptable. This module provides
//! the trivially correct one, generalizing the paper's §4.2 serialization
//! mechanism (opaque calls execute "by executing the scalar versions of
//! these functions serially for each thread in the gang") from a single call
//! to a whole region:
//!
//! * `<region>__lane` — a scalar clone of the region body parameterized by
//!   an explicit trailing `lane` argument, with every Parsimony intrinsic
//!   rewritten to its per-lane scalar meaning
//!   (`thread_num = gang_base + lane`, …),
//! * `__full`/`__head` — a loop calling `__lane` for lanes `0..G`,
//! * `__partial` — the same loop bounded by `num_threads - gang_base`.
//!
//! Serialization is only legal for regions with **no horizontal
//! operations**: `gang_sync`, `shuffle`, `broadcast`, `reduce` and
//! `sad_groups` are rendezvous points between concurrently-live lanes, and
//! a lane-at-a-time schedule cannot honor them. Such regions are reported
//! as non-degradable with a located diagnostic instead.

use crate::region::{full_name, head_name, partial_name};
use crate::shape::{gang_base_param, num_threads_param, SPMD_EXTRA_PARAMS};
use psir::{
    BinOp, BlockId, CmpPred, Const, Function, FunctionBuilder, Inst, InstId, Intrinsic, Param,
    ScalarTy, Ty, Value,
};
use telemetry::{Diagnostic, Pass};

/// Name of the per-lane scalar body backing the serialized variants.
pub fn lane_name(region: &str) -> String {
    format!("{region}__lane")
}

/// Which driver variant to emit around the `__lane` body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Full,
    Partial,
    Head,
}

/// Builds the scalar serialized variants for `region`: the `__lane` body
/// plus `__full`, `__partial` and (when `emit_head`) `__head` drivers.
///
/// # Errors
/// A located diagnostic when the region is not serializable: it contains
/// horizontal operations, lacks the SPMD annotation, or is missing the
/// implicit trailing `(gang_base, num_threads)` parameters.
pub fn serialize_region(region: &Function, emit_head: bool) -> Result<Vec<Function>, Diagnostic> {
    let Some(spmd) = region.spmd else {
        return Err(Diagnostic::new(
            Pass::Pipeline,
            &region.name,
            "cannot serialize: function is not SPMD-annotated",
        ));
    };
    if region.params.len() < SPMD_EXTRA_PARAMS {
        return Err(Diagnostic::new(
            Pass::Pipeline,
            &region.name,
            "cannot serialize: missing the implicit (gang_base, num_threads) parameters",
        ));
    }
    if let Some((b, i)) = first_horizontal(region) {
        return Err(Diagnostic::new(
            Pass::Pipeline,
            &region.name,
            "cannot serialize: region uses a horizontal operation (a rendezvous \
             between concurrently-live lanes has no lane-at-a-time schedule)",
        )
        .at_block(b)
        .at_inst(i));
    }
    let g = spmd.gang_size;
    let lane_fn = build_lane_fn(region, g);
    let mut out = vec![
        build_driver(region, g, Variant::Full),
        build_driver(region, g, Variant::Partial),
    ];
    if emit_head {
        out.push(build_driver(region, g, Variant::Head));
    }
    out.push(lane_fn);
    Ok(out)
}

/// Locates the first horizontal intrinsic, if any, for diagnostics.
fn first_horizontal(f: &Function) -> Option<(u32, u32)> {
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            if let Inst::Intrin { kind, .. } = f.inst(i) {
                if kind.is_horizontal() {
                    return Some((b.0, i.0));
                }
            }
        }
    }
    None
}

/// Clones the region body into a `__lane(params…, gang_base, num_threads,
/// lane)` scalar function, rewriting the vertical Parsimony intrinsics in
/// place to their per-lane scalar values (exactly the reference executor's
/// semantics in `spmd_ref`).
fn build_lane_fn(src: &Function, g: u32) -> Function {
    let mut f = src.clone();
    f.name = lane_name(&src.name);
    f.spmd = None;
    let gb = Value::Param(gang_base_param(src));
    let nt = Value::Param(num_threads_param(src));
    let lane = Value::Param(f.params.len() as u32);
    f.params.push(Param::new("lane", Ty::scalar(ScalarTy::I64)));
    let gconst = Value::Const(Const::i64(g as i64));
    let zero = Value::Const(Const::i64(0));

    for bi in 0..f.num_blocks() {
        let bid = BlockId(bi as u32);
        let ids: Vec<InstId> = f.block(bid).insts.clone();
        let mut rewritten: Vec<InstId> = Vec::with_capacity(ids.len());
        for id in ids {
            let kind = match f.inst(id) {
                Inst::Intrin { kind, .. } => *kind,
                _ => {
                    rewritten.push(id);
                    continue;
                }
            };
            // The replacement keeps the original InstId (so uses stay
            // valid) and the original result type: i64 for the indexing
            // queries, i1 for the gang predicates.
            let replacement = match kind {
                Intrinsic::LaneNum => Inst::Bin {
                    op: BinOp::Add,
                    a: lane,
                    b: zero,
                },
                Intrinsic::ThreadNum => Inst::Bin {
                    op: BinOp::Add,
                    a: gb,
                    b: lane,
                },
                Intrinsic::GangNum => Inst::Bin {
                    op: BinOp::SDiv,
                    a: gb,
                    b: gconst,
                },
                Intrinsic::NumThreads => Inst::Bin {
                    op: BinOp::Add,
                    a: nt,
                    b: zero,
                },
                Intrinsic::GangSize => Inst::Bin {
                    op: BinOp::Add,
                    a: gconst,
                    b: zero,
                },
                Intrinsic::IsHeadGang => Inst::Cmp {
                    pred: CmpPred::Eq,
                    a: gb,
                    b: zero,
                },
                Intrinsic::IsTailGang => {
                    // gang_base + G >= num_threads needs a helper add.
                    let sum = f.add_inst(
                        Inst::Bin {
                            op: BinOp::Add,
                            a: gb,
                            b: gconst,
                        },
                        Ty::scalar(ScalarTy::I64),
                    );
                    rewritten.push(sum);
                    Inst::Cmp {
                        pred: CmpPred::Sge,
                        a: Value::Inst(sum),
                        b: nt,
                    }
                }
                // Math and FMA already have scalar semantics; horizontal
                // intrinsics were rejected by `serialize_region`.
                Intrinsic::Math(_)
                | Intrinsic::Fma
                | Intrinsic::GangSync
                | Intrinsic::Shuffle
                | Intrinsic::Broadcast
                | Intrinsic::GangReduce(_)
                | Intrinsic::SadGroups => {
                    rewritten.push(id);
                    continue;
                }
            };
            *f.inst_mut(id) = replacement;
            rewritten.push(id);
        }
        f.block_mut(bid).insts = rewritten;
    }
    f
}

/// Emits one serialized driver: a scalar loop over lanes calling `__lane`.
fn build_driver(src: &Function, g: u32, variant: Variant) -> Function {
    let name = match variant {
        Variant::Full => full_name(&src.name),
        Variant::Partial => partial_name(&src.name),
        Variant::Head => head_name(&src.name),
    };
    let mut fb = FunctionBuilder::new(name, src.params.clone(), Ty::Void);
    let gb = Value::Param(gang_base_param(src));
    let nt = Value::Param(num_threads_param(src));
    // Full (and head) gangs run all G lanes; the tail gang runs the
    // remaining num_threads - gang_base (Listing 6's implicit guard).
    let count = match variant {
        Variant::Full | Variant::Head => Value::Const(Const::i64(g as i64)),
        Variant::Partial => fb.bin(BinOp::Sub, nt, gb),
    };

    let header = fb.new_block("lane.header");
    let body = fb.new_block("lane.body");
    let exit = fb.new_block("lane.exit");
    let pre = fb.current_block();
    fb.br(header);

    fb.switch_to(header);
    let lane = fb.phi_typed(
        Ty::scalar(ScalarTy::I64),
        vec![(pre, Value::Const(Const::i64(0)))],
    );
    let more = fb.cmp(CmpPred::Slt, lane, count);
    fb.cond_br(more, body, exit);

    fb.switch_to(body);
    let mut args: Vec<Value> = (0..src.params.len() as u32).map(Value::Param).collect();
    args.push(lane);
    fb.call(lane_name(&src.name), Ty::Void, args);
    let next = fb.bin(BinOp::Add, lane, 1i64);
    let cur = fb.current_block();
    fb.phi_add_incoming(lane, cur, next);
    fb.br(header);

    fb.switch_to(exit);
    fb.ret(None);
    fb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd_ref::SpmdRef;
    use psir::{assert_valid, Interp, Memory, Module, RtVal, SpmdInfo, ThreadCount};

    fn sample_region(gang: u32) -> Function {
        let mut fb = FunctionBuilder::new(
            "k__psim0",
            vec![
                Param::new("a", Ty::scalar(ScalarTy::Ptr)),
                Param::new("gang_base", Ty::scalar(ScalarTy::I64)),
                Param::new("num_threads", Ty::scalar(ScalarTy::I64)),
            ],
            Ty::Void,
        );
        fb.set_spmd(SpmdInfo {
            gang_size: gang,
            num_threads: ThreadCount::Dynamic,
            partial: false,
        });
        // a[tid] = tid * 3 + gang_num + is_tail_gang
        let tid = fb.thread_num();
        let gn = fb.intrin(Intrinsic::GangNum, vec![], Ty::scalar(ScalarTy::I64));
        let tail = fb.intrin(Intrinsic::IsTailGang, vec![], Ty::scalar(ScalarTy::I1));
        let tail64 = fb.cast(psir::CastKind::Zext, tail, Ty::scalar(ScalarTy::I64));
        let t3 = fb.bin(BinOp::Mul, tid, 3i64);
        let s = fb.bin(BinOp::Add, t3, gn);
        let s2 = fb.bin(BinOp::Add, s, tail64);
        let s32 = fb.cast(psir::CastKind::Trunc, s2, Ty::scalar(ScalarTy::I32));
        let addr = fb.gep(Value::Param(0), tid, 4);
        fb.store(addr, s32, None);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn serialized_variants_match_spmd_reference() {
        let region = sample_region(8);
        let variants = serialize_region(&region, false).unwrap();
        assert_eq!(variants.len(), 3); // full, partial, lane
        let mut m = Module::new();
        m.add_function(region.clone());
        for v in variants {
            assert_valid(&v);
            m.add_function(v);
        }
        let n = 13u64; // one full gang + a 5-lane tail
                       // Reference: the scalar SPMD executor.
        let mut refmem = Memory::default();
        let rbuf = refmem.alloc(4 * n, 64).unwrap();
        let mut r = SpmdRef::new(&m, refmem);
        r.run_region("k__psim0", &[RtVal::S(rbuf)], n).unwrap();
        let expect = r.mem.read_bytes(rbuf, 4 * n).unwrap().to_vec();
        // Serialized variants, driven as Listing 6 would.
        let mut mem = Memory::default();
        let buf = mem.alloc(4 * n, 64).unwrap();
        let mut it = Interp::with_defaults(&m, mem);
        it.call("k__psim0__full", &[RtVal::S(buf), RtVal::S(0), RtVal::S(n)])
            .unwrap();
        it.call(
            "k__psim0__partial",
            &[RtVal::S(buf), RtVal::S(8), RtVal::S(n)],
        )
        .unwrap();
        let got = it.mem.read_bytes(buf, 4 * n).unwrap().to_vec();
        assert_eq!(got, expect);
    }

    #[test]
    fn horizontal_regions_are_not_serializable() {
        let mut fb = FunctionBuilder::new(
            "h__psim0",
            vec![
                Param::new("gang_base", Ty::scalar(ScalarTy::I64)),
                Param::new("num_threads", Ty::scalar(ScalarTy::I64)),
            ],
            Ty::Void,
        );
        fb.set_spmd(SpmdInfo {
            gang_size: 4,
            num_threads: ThreadCount::Dynamic,
            partial: false,
        });
        let lane = fb.lane_num();
        let _ = fb.shuffle_sync(lane, 0i64);
        fb.ret(None);
        let f = fb.finish();
        let err = serialize_region(&f, false).unwrap_err();
        assert!(err.message.contains("horizontal"));
        assert!(err.block.is_some() && err.inst.is_some());
    }
}

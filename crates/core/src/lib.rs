//! # parsimony — the Parsimony SPMD vectorizer (CGO 2023)
//!
//! This crate is the paper's primary contribution: a well-specified SPMD
//! programming model plus a **standalone IR-to-IR vectorization pass** that
//! turns SPMD-annotated scalar `psir` functions into architecture-
//! independent vector IR.
//!
//! * [`structurize()`] — control-flow structurization (§4.2.1),
//! * [`analyze`] — shape analysis over the offline-verified rule catalog
//!   (§4.2.2, via the `shapecheck` crate),
//! * [`vectorize_function`] / [`vectorize_module`] — instruction
//!   transformation and driver (§4.2.3),
//! * [`SpmdRef`] — a reference executor that runs the *scalar* SPMD
//!   function as interleaved conceptual threads with real barrier
//!   semantics; the differential oracle for the vectorizer,
//! * [`emit_gang_loop`] — the front-end contract of §4.1 (Listing 6):
//!   outlined regions, the gang loop, full/partial specialization.
//!
//! The module driver is **panic-free and fault tolerant**: pass failures
//! become located [`telemetry::Diagnostic`]s, failing regions degrade to a
//! scalar gang-serialized loop ([`fallback`]) instead of aborting the
//! module, produced variants are verified in-pipeline ([`VerifyMode`]), and
//! every recovery path is exercisable deterministically through the fault
//! injection harness ([`fault`]).
//!
//! It is also **parallel**: independent SPMD regions fan out across
//! [`PipelineOptions::jobs`] worker threads and merge back in original
//! region order, so the printed module and remark stream are byte-identical
//! at every `-j` level (see `pipeline` module docs and DESIGN.md §10).

#![warn(missing_docs)]

pub mod fallback;
pub mod fault;
pub mod opt;
pub mod pipeline;
pub mod region;
pub mod shape;
pub mod spmd_ref;
pub mod structurize;
pub mod transform;

pub use fault::FaultInjector;
pub use pipeline::{
    default_jobs, vectorize_module, vectorize_module_with, PipelineOptions, PipelineOutput,
    VerifyMode, JOBS_ENV_VAR,
};
pub use region::emit_gang_loop;
pub use shape::{analyze, Shape, ShapeInfo, ShapeMap};
pub use spmd_ref::SpmdRef;
pub use structurize::{structurize, ControlTree, Node, StructurizeError};
pub use telemetry::Diagnostic;
pub use transform::{vectorize_function, MathLib, VectorizeError, VectorizeOptions, Vectorized};

//! Reference executor for the Parsimony programming model (§3).
//!
//! Runs the *scalar* SPMD-annotated function the way the model defines it:
//! `N` conceptual threads grouped into gangs of `G`, each executing the
//! function body with its own values, communicating through shared memory
//! and through explicit horizontal operations. Horizontal ops act as
//! rendezvous points: a thread reaching one blocks until every other
//! non-finished thread of its gang reaches the *same* op (anything else is
//! a divergent-barrier error, which the model leaves undefined).
//!
//! The scheduler runs threads in lane order, switching only at horizontal
//! ops or termination — a legal interleaving under the model's weak
//! forward-progress guarantee (§3). Gangs execute sequentially, which is
//! also permitted ("no guarantee of ordering among gangs").
//!
//! This executor is the differential oracle for the vectorizer: both must
//! produce identical memory effects for race-free programs.

use crate::shape::SPMD_EXTRA_PARAMS;
use psir::{
    eval_bin, eval_cast, eval_cmp, eval_math, eval_un, reduce_identity, reduce_step, sext, BinOp,
    BlockId, ExecError, Function, Inst, InstId, Interp, Intrinsic, Memory, Module, NoExterns,
    RtVal, Terminator, UnitCost, Value,
};
use std::collections::HashMap;

static UNIT: UnitCost = UnitCost;
static NOEXT: NoExterns = NoExterns;

/// Why a thread stopped stepping.
enum Stop {
    /// Reached a horizontal op; carries the instruction and operand values.
    Horizontal(InstId, Vec<u64>),
    /// Returned from the region.
    Done,
}

struct Thread {
    lane: u64,
    vals: HashMap<InstId, u64>,
    block: BlockId,
    idx: usize,
    prev: Option<BlockId>,
    done: bool,
    /// Set while blocked at a horizontal op.
    pending: Option<(InstId, Vec<u64>)>,
}

/// The reference executor. Owns the flat memory; see the module docs.
pub struct SpmdRef<'m> {
    module: &'m Module,
    /// Shared memory (inputs and outputs live here).
    pub mem: Memory,
    steps: u64,
    step_limit: u64,
    schedule: u64,
}

impl<'m> SpmdRef<'m> {
    /// Creates an executor over `module` and `mem`.
    pub fn new(module: &'m Module, mem: Memory) -> SpmdRef<'m> {
        SpmdRef {
            module,
            mem,
            steps: 0,
            step_limit: 1_000_000_000,
            schedule: 0,
        }
    }

    /// Uses a seeded pseudo-random thread-stepping order instead of lane
    /// order. The model (§3) only promises weak forward progress between
    /// synchronization points, so every schedule must give the same result
    /// for race-free programs — tests exploit this to detect hidden
    /// schedule dependence.
    pub fn with_schedule(mut self, seed: u64) -> SpmdRef<'m> {
        self.schedule = seed;
        self
    }

    /// Replaces the runaway-loop guard.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Runs an SPMD region for `num_threads` conceptual threads, gang by
    /// gang, per the Parsimony model.
    ///
    /// `user_args` are the captured variables (everything except the two
    /// implicit trailing parameters, which this function supplies).
    ///
    /// # Errors
    /// Any runtime trap, a divergent barrier, or an unsupported construct.
    pub fn run_region(
        &mut self,
        region: &str,
        user_args: &[RtVal],
        num_threads: u64,
    ) -> Result<(), ExecError> {
        let f = self
            .module
            .function(region)
            .ok_or_else(|| ExecError::UnknownFunction(region.to_string()))?;
        let spmd = f
            .spmd
            .ok_or_else(|| ExecError::Other(format!("@{region} is not SPMD-annotated")))?;
        if f.params.len() != user_args.len() + SPMD_EXTRA_PARAMS {
            return Err(ExecError::Other(format!(
                "@{region} expects {} captured arguments, got {}",
                f.params.len() - SPMD_EXTRA_PARAMS,
                user_args.len()
            )));
        }
        let g = spmd.gang_size as u64;
        let mut base = 0;
        while base < num_threads {
            let active = (num_threads - base).min(g);
            self.run_gang(f, user_args, base, num_threads, active)?;
            base += g;
        }
        Ok(())
    }

    fn run_gang(
        &mut self,
        f: &Function,
        user_args: &[RtVal],
        gang_base: u64,
        num_threads: u64,
        active: u64,
    ) -> Result<(), ExecError> {
        let mut args: Vec<u64> = Vec::with_capacity(f.params.len());
        for a in user_args {
            args.push(a.scalar()?);
        }
        args.push(gang_base);
        args.push(num_threads);

        let mut threads: Vec<Thread> = (0..active)
            .map(|lane| Thread {
                lane,
                vals: HashMap::new(),
                block: f.entry,
                idx: 0,
                prev: None,
                done: false,
                pending: None,
            })
            .collect();
        let gang_size = f
            .spmd
            .ok_or_else(|| ExecError::Other(format!("@{} is not SPMD-annotated", f.name)))?
            .gang_size as u64;

        let mut rng = self.schedule;
        loop {
            // Run every unblocked thread as far as it goes, in lane order
            // or (with a schedule seed) a per-round pseudo-random order —
            // both are legal interleavings under weak forward progress.
            let mut order: Vec<usize> = (0..threads.len()).collect();
            if self.schedule != 0 {
                for i in (1..order.len()).rev() {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    order.swap(i, (rng as usize) % (i + 1));
                }
            }
            let mut all_done = true;
            for &t in &order {
                if threads[t].done || threads[t].pending.is_some() {
                    continue;
                }
                match self.step_thread(f, &mut threads[t], &args)? {
                    Stop::Done => threads[t].done = true,
                    Stop::Horizontal(id, ops) => threads[t].pending = Some((id, ops)),
                }
            }
            for t in &threads {
                if !t.done {
                    all_done = false;
                }
            }
            if all_done {
                return Ok(());
            }

            // Everyone alive is blocked; they must agree on the op.
            let mut ids: Vec<InstId> = Vec::new();
            for t in threads.iter().filter(|t| !t.done) {
                let Some((id, _)) = &t.pending else {
                    return Err(ExecError::Other(
                        "gang thread neither finished nor blocked at a horizontal op".into(),
                    ));
                };
                ids.push(*id);
            }
            if ids.windows(2).any(|w| w[0] != w[1]) {
                return Err(ExecError::Other(
                    "divergent barrier: gang threads blocked at different horizontal ops".into(),
                ));
            }
            let id = ids[0];
            self.resolve_horizontal(f, id, gang_size, &mut threads)?;
        }
    }

    /// Executes the horizontal op all blocked threads agreed on, writing
    /// each participant's result and unblocking it.
    fn resolve_horizontal(
        &mut self,
        f: &Function,
        id: InstId,
        gang_size: u64,
        threads: &mut [Thread],
    ) -> Result<(), ExecError> {
        let kind = match f.inst(id) {
            Inst::Intrin { kind, .. } => *kind,
            other => return Err(ExecError::Other(format!("not horizontal: {other:?}"))),
        };
        // Contributions indexed by lane; non-participants contribute 0.
        let mut contrib: Vec<Vec<u64>> = vec![Vec::new(); gang_size as usize];
        for t in threads.iter() {
            if let Some((_, ops)) = &t.pending {
                contrib[t.lane as usize] = ops.clone();
            }
        }
        let elem = f.inst_ty(id).elem();
        let results: Vec<Option<u64>> = match kind {
            Intrinsic::GangSync => vec![None; gang_size as usize],
            Intrinsic::Shuffle | Intrinsic::Broadcast => {
                let mut res = Vec::with_capacity(gang_size as usize);
                for lane in 0..gang_size as usize {
                    let ops = &contrib[lane];
                    if ops.is_empty() {
                        res.push(Some(0));
                        continue;
                    }
                    let Some(&sel) = ops.get(1) else {
                        return Err(ExecError::Other(format!(
                            "{} at i{} is missing its lane-select operand",
                            kind.name(),
                            id.0
                        )));
                    };
                    let src = (sel % gang_size) as usize;
                    res.push(Some(contrib[src].first().copied().unwrap_or(0)));
                }
                res
            }
            Intrinsic::GangReduce(op) => {
                let e = elem.ok_or_else(|| ExecError::Other("void reduce".into()))?;
                let mut acc = reduce_identity(op, e);
                for ops in &contrib {
                    if let Some(&v) = ops.first() {
                        acc = reduce_step(op, e, acc, v);
                    }
                }
                vec![Some(acc); gang_size as usize]
            }
            Intrinsic::SadGroups => {
                let e = elem.ok_or_else(|| ExecError::Other("void sad".into()))?;
                let src = match f.inst(id) {
                    Inst::Intrin { args, .. } => f
                        .value_ty(args[0])
                        .elem()
                        .ok_or_else(|| ExecError::Other("void sad arg".into()))?,
                    _ => unreachable!(),
                };
                let groups = (gang_size as usize).div_ceil(8);
                let mut sums = vec![0u64; groups];
                for (lane, ops) in contrib.iter().enumerate() {
                    if ops.len() >= 2 {
                        let a = sext(src, ops[0]);
                        let b = sext(src, ops[1]);
                        // unsigned absolute difference on the raw payloads
                        let (ua, ub) = (ops[0] & src.bit_mask(), ops[1] & src.bit_mask());
                        let d = ua.abs_diff(ub);
                        let _ = (a, b);
                        sums[lane / 8] = sums[lane / 8].wrapping_add(d);
                    }
                }
                (0..gang_size as usize)
                    .map(|lane| Some(sums[lane / 8] & e.bit_mask()))
                    .collect()
            }
            other => {
                return Err(ExecError::Other(format!(
                    "{} is not horizontal",
                    other.name()
                )))
            }
        };
        for t in threads.iter_mut() {
            if t.pending.take().is_some() {
                if let Some(r) = results[t.lane as usize] {
                    t.vals.insert(id, r);
                }
            }
        }
        Ok(())
    }

    /// Runs one thread until it finishes or reaches a horizontal op.
    fn step_thread(
        &mut self,
        f: &Function,
        t: &mut Thread,
        args: &[u64],
    ) -> Result<Stop, ExecError> {
        loop {
            if self.steps >= self.step_limit {
                return Err(ExecError::StepLimit);
            }
            self.steps += 1;
            let blk = f.block(t.block);

            if t.idx == 0 {
                // Evaluate φs simultaneously on block entry.
                let mut phi_vals = Vec::new();
                for &id in &blk.insts {
                    if let Inst::Phi { incoming } = f.inst(id) {
                        let p = t
                            .prev
                            .ok_or_else(|| ExecError::Other("phi in entry block".into()))?;
                        let (_, v) = incoming
                            .iter()
                            .find(|(b, _)| *b == p)
                            .ok_or_else(|| ExecError::Other("phi missing edge".into()))?;
                        phi_vals.push((id, self.operand(f, t, args, *v)?));
                    } else {
                        break;
                    }
                }
                for (id, v) in phi_vals {
                    t.vals.insert(id, v);
                    t.idx += 1;
                }
            }

            while t.idx < blk.insts.len() {
                let id = blk.insts[t.idx];
                if matches!(f.inst(id), Inst::Phi { .. }) {
                    t.idx += 1;
                    continue;
                }
                // Horizontal ops block the thread *before* executing.
                if let Inst::Intrin { kind, args: iargs } = f.inst(id) {
                    if kind.is_horizontal() {
                        let mut ops = Vec::with_capacity(iargs.len());
                        for &a in iargs.clone().iter() {
                            ops.push(self.operand(f, t, args, a)?);
                        }
                        t.idx += 1;
                        return Ok(Stop::Horizontal(id, ops));
                    }
                }
                let r = self.exec_scalar_inst(f, t, args, id)?;
                if let Some(v) = r {
                    t.vals.insert(id, v);
                }
                t.idx += 1;
            }

            match &blk.term {
                Terminator::Br(next) => {
                    t.prev = Some(t.block);
                    t.block = *next;
                    t.idx = 0;
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.operand(f, t, args, *cond)?;
                    t.prev = Some(t.block);
                    t.block = if c & 1 != 0 { *then_bb } else { *else_bb };
                    t.idx = 0;
                }
                Terminator::Ret(_) => return Ok(Stop::Done),
            }
        }
    }

    fn operand(&self, f: &Function, t: &Thread, args: &[u64], v: Value) -> Result<u64, ExecError> {
        match v {
            Value::Const(c) => Ok(c.bits),
            Value::Param(i) => args
                .get(i as usize)
                .copied()
                .ok_or_else(|| ExecError::Other(format!("missing arg {i}"))),
            Value::Inst(id) => {
                t.vals.get(&id).copied().ok_or_else(|| {
                    ExecError::Other(format!("use of unevaluated {id} in @{}", f.name))
                })
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_scalar_inst(
        &mut self,
        f: &Function,
        t: &mut Thread,
        args: &[u64],
        id: InstId,
    ) -> Result<Option<u64>, ExecError> {
        let inst = f.inst(id).clone();
        let ty = f.inst_ty(id);
        let elem = ty.elem();
        match &inst {
            Inst::Bin { op, a, b } => {
                let e = elem.ok_or_else(|| ExecError::Other("void bin".into()))?;
                let (x, y) = (self.operand(f, t, args, *a)?, self.operand(f, t, args, *b)?);
                Ok(Some(eval_bin(*op, e, x, y)?))
            }
            Inst::Un { op, a } => {
                let e = elem.ok_or_else(|| ExecError::Other("void un".into()))?;
                Ok(Some(eval_un(*op, e, self.operand(f, t, args, *a)?)?))
            }
            Inst::Cmp { pred, a, b } => {
                let e = f
                    .value_ty(*a)
                    .elem()
                    .ok_or_else(|| ExecError::Other("void cmp".into()))?;
                let (x, y) = (self.operand(f, t, args, *a)?, self.operand(f, t, args, *b)?);
                Ok(Some(eval_cmp(*pred, e, x, y) as u64))
            }
            Inst::Cast { kind, a } => {
                let from = f
                    .value_ty(*a)
                    .elem()
                    .ok_or_else(|| ExecError::Other("void cast".into()))?;
                let to = elem.ok_or_else(|| ExecError::Other("void cast".into()))?;
                Ok(Some(eval_cast(
                    *kind,
                    from,
                    to,
                    self.operand(f, t, args, *a)?,
                )))
            }
            Inst::Select { cond, t: tv, f: fv } => {
                let c = self.operand(f, t, args, *cond)?;
                Ok(Some(if c & 1 != 0 {
                    self.operand(f, t, args, *tv)?
                } else {
                    self.operand(f, t, args, *fv)?
                }))
            }
            Inst::Gep { base, index, scale } => {
                let b = self.operand(f, t, args, *base)?;
                let i = self.operand(f, t, args, *index)?;
                let ity = f.value_ty(*index).elem().unwrap_or(psir::ScalarTy::I64);
                Ok(Some(
                    b.wrapping_add((sext(ity, i) as u64).wrapping_mul(*scale)),
                ))
            }
            Inst::Load { ptr, mask } => {
                if mask.is_some() {
                    return Err(ExecError::Other("masked load in SPMD input".into()));
                }
                let e = elem.ok_or_else(|| ExecError::Other("void load".into()))?;
                let addr = self.operand(f, t, args, *ptr)?;
                Ok(Some(self.mem.load_scalar(e, addr)?))
            }
            Inst::Store { ptr, val, mask } => {
                if mask.is_some() {
                    return Err(ExecError::Other("masked store in SPMD input".into()));
                }
                let e = f
                    .value_ty(*val)
                    .elem()
                    .ok_or_else(|| ExecError::Other("void store".into()))?;
                let addr = self.operand(f, t, args, *ptr)?;
                let v = self.operand(f, t, args, *val)?;
                self.mem.store_scalar(e, addr, v)?;
                Ok(None)
            }
            Inst::Alloca { size } => {
                let s = self.operand(f, t, args, *size)?;
                Ok(Some(self.mem.alloc(s, 64)?))
            }
            Inst::Call {
                callee,
                args: cargs,
            } => {
                let mut vals = Vec::with_capacity(cargs.len());
                for &a in cargs {
                    vals.push(RtVal::S(self.operand(f, t, args, a)?));
                }
                let callee_f = self
                    .module
                    .function(callee)
                    .ok_or_else(|| ExecError::UnknownFunction(callee.clone()))?;
                if callee_f.has_horizontal_ops() {
                    return Err(ExecError::Other(format!(
                        "@{callee}: horizontal ops inside called functions are \
                         not part of the model (calls execute per-thread)"
                    )));
                }
                // Execute the call with a plain interpreter sharing memory.
                let mem = std::mem::replace(&mut self.mem, Memory::new(0));
                let mut it = Interp::new(self.module, mem, &UNIT, &NOEXT);
                let r = it.call(callee, &vals);
                self.mem = std::mem::replace(&mut it.mem, Memory::new(0));
                match r? {
                    RtVal::Unit => Ok(None),
                    RtVal::S(v) => Ok(Some(v)),
                    RtVal::V(_) => Err(ExecError::Other("scalar call returned a vector".into())),
                }
            }
            Inst::Intrin { kind, args: iargs } => {
                let spmd = f.spmd.ok_or_else(|| {
                    ExecError::Other(format!("@{} is not SPMD-annotated", f.name))
                })?;
                let g = spmd.gang_size as u64;
                if args.len() < SPMD_EXTRA_PARAMS {
                    return Err(ExecError::Other(format!(
                        "@{}: SPMD intrinsic without the implicit gang_base/num_threads arguments",
                        f.name
                    )));
                }
                let gang_base = args[args.len() - 2];
                let num_threads = args[args.len() - 1];
                match kind {
                    Intrinsic::LaneNum => Ok(Some(t.lane)),
                    Intrinsic::ThreadNum => Ok(Some(gang_base + t.lane)),
                    Intrinsic::GangNum => Ok(Some(gang_base / g)),
                    Intrinsic::NumThreads => Ok(Some(num_threads)),
                    Intrinsic::GangSize => Ok(Some(g)),
                    Intrinsic::IsHeadGang => Ok(Some((gang_base == 0) as u64)),
                    Intrinsic::IsTailGang => Ok(Some((gang_base + g >= num_threads) as u64)),
                    Intrinsic::Math(m) => {
                        let e = elem.ok_or_else(|| ExecError::Other("void math".into()))?;
                        let mut vals = Vec::with_capacity(iargs.len());
                        for &a in iargs {
                            vals.push(self.operand(f, t, args, a)?);
                        }
                        Ok(Some(eval_math(*m, e, &vals)?))
                    }
                    Intrinsic::Fma => {
                        let e = elem.ok_or_else(|| ExecError::Other("void fma".into()))?;
                        let [a0, a1, a2] = iargs.as_slice() else {
                            return Err(ExecError::Other(format!(
                                "fma at i{} expects 3 operands, got {}",
                                id.0,
                                iargs.len()
                            )));
                        };
                        let x = self.operand(f, t, args, *a0)?;
                        let y = self.operand(f, t, args, *a1)?;
                        let z = self.operand(f, t, args, *a2)?;
                        let (mul, add) = if e.is_float() {
                            (BinOp::FMul, BinOp::FAdd)
                        } else {
                            (BinOp::Mul, BinOp::Add)
                        };
                        Ok(Some(eval_bin(add, e, eval_bin(mul, e, x, y)?, z)?))
                    }
                    horizontal => Err(ExecError::Other(format!(
                        "horizontal op {} must be handled by the scheduler",
                        horizontal.name()
                    ))),
                }
            }
            Inst::Phi { .. } => Err(ExecError::Other(format!(
                "phi at i{} reached the per-instruction path (phis are resolved at block entry)",
                id.0
            ))),
            other => Err(ExecError::Other(format!(
                "vector instruction {other:?} in scalar SPMD input"
            ))),
        }
    }
}

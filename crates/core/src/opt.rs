//! Post-vectorization cleanup passes.
//!
//! The paper's pass emits straightforward vector IR and leaves cleanup to
//! the surrounding standard pipeline ("the result can be passed to any
//! number of other optimization passes", §4.3). These are the two passes
//! that matter for the emitted code's quality here: constant folding
//! (including mask simplifications such as `x & all-ones → x` and selects
//! with constant masks) and dead-code elimination.

use psir::{
    eval_bin, eval_cast, eval_cmp, eval_un, BinOp, Function, Inst, InstId, Terminator, Ty, Value,
};
use std::collections::{HashMap, HashSet};

/// Folds constant scalar expressions and simplifies all-true/all-false mask
/// patterns. Returns the number of instructions rewritten.
pub fn fold_constants(f: &mut Function) -> usize {
    let mut replaced: HashMap<InstId, Value> = HashMap::new();
    let n = f.num_insts();
    for raw in 0..n {
        let id = InstId(raw as u32);
        let inst = f.inst(id).clone();
        let ty = f.inst_ty(id);
        // Resolve operands through prior replacements.
        let resolve = |v: Value| -> Value {
            match v {
                Value::Inst(i) => replaced.get(&i).copied().unwrap_or(v),
                other => other,
            }
        };
        let as_const = |v: Value| resolve(v).as_const();
        let folded: Option<Value> = match &inst {
            Inst::Bin { op, a, b } => match (as_const(*a), as_const(*b)) {
                (Some(ca), Some(cb)) if ty.is_scalar() => eval_bin(*op, ca.ty, ca.bits, cb.bits)
                    .ok()
                    .map(|r| Value::Const(psir::Const::new(ca.ty, r))),
                _ => {
                    // Mask identities on vectors: m & ones = m; m & zeros = 0s.
                    if let (BinOp::And | BinOp::Or, Value::Inst(ia), Value::Inst(ib)) =
                        (*op, resolve(*a), resolve(*b))
                    {
                        let all_ones = |i: InstId| match f.inst(i) {
                            Inst::ConstVec { lanes, .. } => lanes.iter().all(|&l| l == 1),
                            _ => false,
                        };
                        match *op {
                            BinOp::And if all_ones(ia) => Some(Value::Inst(ib)),
                            BinOp::And if all_ones(ib) => Some(Value::Inst(ia)),
                            _ => None,
                        }
                    } else {
                        None
                    }
                }
            },
            Inst::Un { op, a } => as_const(*a).and_then(|c| {
                if ty.is_scalar() {
                    eval_un(*op, c.ty, c.bits)
                        .ok()
                        .map(|r| Value::Const(psir::Const::new(c.ty, r)))
                } else {
                    None
                }
            }),
            Inst::Cmp { pred, a, b } => match (as_const(*a), as_const(*b)) {
                (Some(ca), Some(cb)) if ty.is_scalar() => Some(Value::Const(psir::Const::bool(
                    eval_cmp(*pred, ca.ty, ca.bits, cb.bits),
                ))),
                _ => None,
            },
            Inst::Cast { kind, a } => match (as_const(*a), ty) {
                (Some(ca), Ty::Scalar(to)) => Some(Value::Const(psir::Const::new(
                    to,
                    eval_cast(*kind, ca.ty, to, ca.bits),
                ))),
                _ => None,
            },
            Inst::Select { cond, t, f: fv } => match as_const(*cond) {
                // Scalar i1 condition folds regardless of arm types.
                Some(c) if c.ty == psir::ScalarTy::I1 => {
                    Some(resolve(if c.bits & 1 != 0 { *t } else { *fv }))
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(v) = folded {
            replaced.insert(id, v);
        } else if !replaced.is_empty() {
            // Rewrite operands through replacements.
            f.inst_mut(id).map_operands(|v| match v {
                Value::Inst(i) => replaced.get(&i).copied().unwrap_or(v),
                other => other,
            });
        }
    }
    // Rewrite terminators.
    if !replaced.is_empty() {
        for b in f.block_ids().collect::<Vec<_>>() {
            let term = f.block(b).term.clone();
            let new_term = match term {
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let cond = match cond {
                        Value::Inst(i) => replaced.get(&i).copied().unwrap_or(cond),
                        other => other,
                    };
                    Terminator::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    }
                }
                Terminator::Ret(Some(v)) => Terminator::Ret(Some(match v {
                    Value::Inst(i) => replaced.get(&i).copied().unwrap_or(v),
                    other => other,
                })),
                other => other,
            };
            f.block_mut(b).term = new_term;
        }
    }
    replaced.len()
}

/// Removes instructions whose results are unused and that have no side
/// effects. Returns the number of instructions removed.
pub fn dce(f: &mut Function) -> usize {
    let mut live: HashSet<InstId> = HashSet::new();
    let mut work: Vec<InstId> = Vec::new();

    let mark = |v: Value, live: &mut HashSet<InstId>, work: &mut Vec<InstId>| {
        if let Value::Inst(i) = v {
            if live.insert(i) {
                work.push(i);
            }
        }
    };

    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            if (f.inst(id).has_side_effects() || f.inst_ty(id).is_void()) && live.insert(id) {
                work.push(id);
            }
        }
        match &f.block(b).term {
            Terminator::CondBr { cond, .. } => mark(*cond, &mut live, &mut work),
            Terminator::Ret(Some(v)) => mark(*v, &mut live, &mut work),
            _ => {}
        }
    }
    while let Some(id) = work.pop() {
        for op in f.inst(id).operands() {
            mark(op, &mut live, &mut work);
        }
    }

    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        let before = blk.insts.len();
        blk.insts.retain(|i| live.contains(i));
        removed += before - blk.insts.len();
    }
    removed
}

/// Common-subexpression elimination over pure instructions: two identical
/// pure instructions where the first dominates the second collapse to one.
/// Essential before dependence analysis (structurally equal addresses must
/// be the *same* SSA value) and for cleaning vectorizer output. Returns the
/// number of instructions eliminated.
pub fn cse(f: &mut Function) -> usize {
    use psir::DomTree;
    use std::collections::hash_map::Entry;

    fn is_pure(i: &Inst) -> bool {
        matches!(
            i,
            Inst::Bin { .. }
                | Inst::Un { .. }
                | Inst::Cmp { .. }
                | Inst::Cast { .. }
                | Inst::Select { .. }
                | Inst::Splat { .. }
                | Inst::ConstVec { .. }
                | Inst::Extract { .. }
                | Inst::Insert { .. }
                | Inst::ShuffleConst { .. }
                | Inst::ShuffleVar { .. }
                | Inst::Gep { .. }
                | Inst::Reduce { .. }
        )
    }

    let dom = DomTree::compute(f);
    let mut canon: HashMap<Inst, Vec<(psir::BlockId, InstId)>> = HashMap::new();
    let mut replace: HashMap<InstId, InstId> = HashMap::new();
    let rpo: Vec<psir::BlockId> = dom.rpo().to_vec();
    let mut removed = 0usize;

    for &b in &rpo {
        let insts = f.block(b).insts.clone();
        let mut keep = Vec::with_capacity(insts.len());
        for id in insts {
            // Canonicalize operands first.
            f.inst_mut(id).map_operands(|v| match v {
                Value::Inst(i) => Value::Inst(replace.get(&i).copied().unwrap_or(i)),
                other => other,
            });
            let inst = f.inst(id).clone();
            if !is_pure(&inst) {
                keep.push(id);
                continue;
            }
            match canon.entry(inst) {
                Entry::Occupied(e) => {
                    if let Some(&(_, prev)) = e.get().iter().find(|(db, _)| dom.dominates(*db, b)) {
                        replace.insert(id, prev);
                        removed += 1;
                    } else {
                        e.into_mut().push((b, id));
                        keep.push(id);
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(vec![(b, id)]);
                    keep.push(id);
                }
            }
        }
        f.block_mut(b).insts = keep;
    }
    // Rewrite terminators and any later blocks not in RPO order.
    for b in f.block_ids().collect::<Vec<_>>() {
        for id in f.block(b).insts.clone() {
            f.inst_mut(id).map_operands(|v| match v {
                Value::Inst(i) => Value::Inst(replace.get(&i).copied().unwrap_or(i)),
                other => other,
            });
        }
        let mut term = f.block(b).term.clone();
        if let Terminator::CondBr { cond, .. } = &mut term {
            if let Value::Inst(i) = cond {
                if let Some(&r) = replace.get(i) {
                    *cond = Value::Inst(r);
                }
            }
        }
        if let Terminator::Ret(Some(v)) = &mut term {
            if let Value::Inst(i) = v {
                if let Some(&r) = replace.get(i) {
                    *v = Value::Inst(r);
                }
            }
        }
        f.block_mut(b).term = term;
    }
    removed
}

/// Runs the standard cleanup pipeline on a function.
pub fn cleanup(f: &mut Function) {
    // Folding can expose dead code; one round of each is enough for the
    // shapes the vectorizer emits.
    fold_constants(f);
    cse(f);
    redundant_loads(f);
    thread_empty_blocks(f);
    dce(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::{assert_valid, CmpPred, FunctionBuilder, Param, ScalarTy, UnOp};

    #[test]
    fn folds_scalar_chain() {
        let mut fb = FunctionBuilder::new("f", vec![], Ty::scalar(ScalarTy::I32));
        let a = fb.bin(BinOp::Add, 2i32, 3i32);
        let b = fb.bin(BinOp::Mul, a, 4i32);
        fb.ret(Some(b));
        let mut f = fb.finish();
        fold_constants(&mut f);
        dce(&mut f);
        assert_valid(&f);
        assert!(matches!(
            f.block(f.entry).term,
            Terminator::Ret(Some(Value::Const(c))) if c.as_i64() == 20
        ));
        assert_eq!(f.block(f.entry).insts.len(), 0);
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut fb = FunctionBuilder::new(
            "g",
            vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
            Ty::Void,
        );
        let dead = fb.bin(BinOp::Add, 1i32, 2i32);
        let _ = dead;
        fb.store(Value::Param(0), 7i32, None);
        fb.ret(None);
        let mut f = fb.finish();
        let removed = dce(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(f.block(f.entry).insts.len(), 1);
    }

    #[test]
    fn folds_cmp_and_un() {
        let mut fb = FunctionBuilder::new("h", vec![], Ty::scalar(ScalarTy::I1));
        let x = fb.un(UnOp::INeg, 5i32);
        let c = fb.cmp(CmpPred::Slt, x, 0i32);
        fb.ret(Some(c));
        let mut f = fb.finish();
        fold_constants(&mut f);
        assert!(matches!(
            f.block(f.entry).term,
            Terminator::Ret(Some(Value::Const(c))) if c.bits == 1
        ));
    }
}

/// Inlines direct calls to the named functions (§4.1: "the vectorized
/// function can later be re-inlined by the back-end in order to avoid the
/// overhead of an extra function call"). Callees must have exactly one
/// return. Returns the number of call sites inlined.
pub fn inline_calls(m: &mut psir::Module, callee_names: &[String]) -> usize {
    let mut inlined = 0;
    let caller_names: Vec<String> = m
        .functions()
        .filter(|f| !callee_names.contains(&f.name))
        .map(|f| f.name.clone())
        .collect();
    for caller in caller_names {
        loop {
            // Find one call site at a time (inlining invalidates positions).
            let site = {
                let Some(f) = m.function(&caller) else { break };
                let mut found = None;
                'outer: for b in f.block_ids() {
                    for (pos, &id) in f.block(b).insts.iter().enumerate() {
                        if let Inst::Call { callee, .. } = f.inst(id) {
                            if callee_names.contains(callee) {
                                found = Some((b, pos, id, callee.clone()));
                                break 'outer;
                            }
                        }
                    }
                }
                found
            };
            let Some((block, pos, call_id, callee)) = site else {
                break;
            };
            let Some(callee_fn) = m.function(&callee).cloned() else {
                break;
            };
            let Some(f) = m.function_mut(&caller) else {
                break;
            };
            if !inline_one(f, block, pos, call_id, &callee_fn) {
                break;
            }
            inlined += 1;
        }
    }
    inlined
}

fn inline_one(
    f: &mut Function,
    block: psir::BlockId,
    pos: usize,
    call_id: InstId,
    callee: &Function,
) -> bool {
    let args = match f.inst(call_id) {
        Inst::Call { args, .. } => args.clone(),
        // The site scan only hands us calls; a mismatch means the caller
        // mutated underneath us, and skipping the site beats aborting.
        _ => return false,
    };

    // 1. Copy the callee's instruction arena with remapped operands.
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    // Two passes: allocate ids, then rewrite operands (handles forward refs
    // from φ back edges).
    for raw in 0..callee.num_insts() as u32 {
        let old = InstId(raw);
        let new = f.add_inst(callee.inst(old).clone(), callee.inst_ty(old));
        inst_map.insert(old, new);
    }
    // 2. Copy blocks.
    let mut block_map: HashMap<psir::BlockId, psir::BlockId> = HashMap::new();
    for b in callee.block_ids() {
        let nb = f.add_block(
            format!("inl.{}", callee.block(b).name),
            Terminator::Ret(None),
        );
        block_map.insert(b, nb);
    }
    // 3. Split the call block: continuation gets the tail + old terminator.
    let cont = f.add_block("inl.cont", f.block(block).term.clone());
    {
        let blk = f.block_mut(block);
        let tail: Vec<InstId> = blk.insts.split_off(pos + 1);
        blk.insts.pop(); // drop the call itself
        blk.term = Terminator::Br(block_map[&callee.entry]);
        f.block_mut(cont).insts = tail;
    }
    // Successor φs that referenced `block` now flow from `cont`.
    for b in f.block_ids().collect::<Vec<_>>() {
        if b == cont {
            continue;
        }
        for id in f.block(b).insts.clone() {
            if let Inst::Phi { incoming } = f.inst_mut(id) {
                for (pb, _) in incoming.iter_mut() {
                    if *pb == block {
                        *pb = cont;
                    }
                }
            }
        }
    }

    // 4. Fill the copied blocks; rewrite operands and targets; route the
    // callee's return to the continuation.
    let mut ret_val: Option<Value> = None;
    for b in callee.block_ids() {
        let nb = block_map[&b];
        let insts: Vec<InstId> = callee.block(b).insts.iter().map(|i| inst_map[i]).collect();
        for &ni in &insts {
            f.inst_mut(ni).map_operands(|v| match v {
                Value::Param(i) => args[i as usize],
                Value::Inst(i) => Value::Inst(inst_map[&i]),
                other => other,
            });
            if let Inst::Phi { incoming } = f.inst_mut(ni) {
                for (pb, _) in incoming.iter_mut() {
                    *pb = block_map[pb];
                }
            }
        }
        let mut term = callee.block(b).term.clone();
        let map_val = |v: Value| -> Value {
            match v {
                Value::Param(i) => args[i as usize],
                Value::Inst(i) => Value::Inst(inst_map[&i]),
                other => other,
            }
        };
        match &mut term {
            Terminator::Ret(v) => {
                if let Some(v) = v {
                    ret_val = Some(map_val(*v));
                }
                term = Terminator::Br(cont);
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                *cond = map_val(*cond);
                *then_bb = block_map[then_bb];
                *else_bb = block_map[else_bb];
            }
            Terminator::Br(t) => *t = block_map[t],
        }
        let blk = f.block_mut(nb);
        blk.insts = insts;
        blk.term = term;
    }

    // 4b. Hoist inlined constant-size allocas into the caller's entry
    // block (the verifier requires allocas at entry; reusing one stack
    // slot across gang calls is exactly what a real frame does).
    let inlined_blocks: Vec<psir::BlockId> = block_map.values().copied().collect();
    let mut hoist = Vec::new();
    for &b in &inlined_blocks {
        for &id in &f.block(b).insts.clone() {
            if let Inst::Alloca { size } = f.inst(id) {
                if matches!(size, Value::Const(_)) {
                    hoist.push((b, id));
                }
            }
        }
    }
    for (b, id) in hoist {
        f.block_mut(b).insts.retain(|&i| i != id);
        let entry = f.entry;
        f.block_mut(entry).insts.insert(0, id);
    }

    // 5. Replace uses of the call's result.
    if let Some(rv) = ret_val {
        for b in f.block_ids().collect::<Vec<_>>() {
            for id in f.block(b).insts.clone() {
                f.inst_mut(id)
                    .map_operands(|v| if v == Value::Inst(call_id) { rv } else { v });
            }
            let mut term = f.block(b).term.clone();
            match &mut term {
                Terminator::CondBr { cond, .. } if *cond == Value::Inst(call_id) => {
                    *cond = rv;
                }
                Terminator::Ret(Some(v)) if *v == Value::Inst(call_id) => {
                    *v = rv;
                }
                _ => {}
            }
            f.block_mut(b).term = term;
        }
    }
    true
}

/// Redundant-load elimination within basic blocks: a load from the same
/// address (and mask) as an earlier load with no intervening memory write
/// or call reuses the earlier result. Returns loads removed.
pub fn redundant_loads(f: &mut Function) -> usize {
    let mut removed = 0;
    // The replacement map is function-wide: a removed load's uses can live
    // in *other* blocks (e.g. the per-lane extracts that call serialization
    // emits into its `sercall` blocks), so the final rewrite below must
    // cover every block, not just the one the load was removed from.
    let mut replace: HashMap<InstId, InstId> = HashMap::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut avail: HashMap<(Value, Option<Value>, Ty), InstId> = HashMap::new();
        let insts = f.block(b).insts.clone();
        let mut keep = Vec::with_capacity(insts.len());
        for id in insts {
            f.inst_mut(id).map_operands(|v| match v {
                Value::Inst(i) => Value::Inst(replace.get(&i).copied().unwrap_or(i)),
                other => other,
            });
            match f.inst(id).clone() {
                Inst::Load { ptr, mask } => {
                    let key = (ptr, mask, f.inst_ty(id));
                    if let Some(&prev) = avail.get(&key) {
                        replace.insert(id, prev);
                        removed += 1;
                        continue;
                    }
                    avail.insert(key, id);
                    keep.push(id);
                }
                Inst::Store { .. } | Inst::Call { .. } | Inst::Intrin { .. } => {
                    // Conservative: any write or opaque op invalidates.
                    if f.inst(id).has_side_effects() {
                        avail.clear();
                    }
                    keep.push(id);
                }
                _ => keep.push(id),
            }
        }
        f.block_mut(b).insts = keep;
    }
    // Rewrite every remaining use (any block) through the replacements.
    if !replace.is_empty() {
        for b in f.block_ids().collect::<Vec<_>>() {
            for id in f.block(b).insts.clone() {
                f.inst_mut(id).map_operands(|v| match v {
                    Value::Inst(i) => Value::Inst(replace.get(&i).copied().unwrap_or(i)),
                    other => other,
                });
            }
            let mut term = f.block(b).term.clone();
            let fix = |v: &mut Value| {
                if let Value::Inst(i) = v {
                    if let Some(&r) = replace.get(i) {
                        *v = Value::Inst(r);
                    }
                }
            };
            match &mut term {
                Terminator::CondBr { cond, .. } => fix(cond),
                Terminator::Ret(Some(v)) => fix(v),
                _ => {}
            }
            f.block_mut(b).term = term;
        }
    }
    removed
}

/// Jump threading for empty blocks: an instruction-free block ending in an
/// unconditional branch is bypassed (its predecessors branch straight to
/// the successor, with φ edges retargeted). Returns blocks threaded.
pub fn thread_empty_blocks(f: &mut Function) -> usize {
    let mut threaded = 0;
    loop {
        // Find one empty forwarding block that is not the entry and is not
        // a self-loop.
        let mut target = None;
        for b in f.block_ids() {
            if b == f.entry || !f.block(b).insts.is_empty() {
                continue;
            }
            if let Terminator::Br(t) = f.block(b).term {
                if t != b {
                    target = Some((b, t));
                    break;
                }
            }
        }
        let Some((e, t)) = target else {
            return threaded;
        };
        let preds: Vec<psir::BlockId> = f.predecessors().get(&e).cloned().unwrap_or_default();
        if preds.is_empty() {
            // Unreachable empty block; detach it by making it self-loop so
            // we don't revisit, then stop considering it.
            f.block_mut(e).term = Terminator::Br(e);
            continue;
        }
        // φs in `t` must be able to tell the new predecessors apart: if `t`
        // has φs and any pred of `e` already reaches `t`, retargeting would
        // create duplicate edges with possibly different values — skip.
        let t_preds: Vec<psir::BlockId> = f.predecessors().get(&t).cloned().unwrap_or_default();
        let has_phis = f
            .block(t)
            .insts
            .iter()
            .any(|&i| matches!(f.inst(i), Inst::Phi { .. }));
        if has_phis && preds.iter().any(|p| t_preds.contains(p)) {
            // Mark as processed by leaving it; bail out entirely to avoid
            // an infinite retry loop.
            return threaded;
        }
        for &p in &preds {
            let mut term = f.block(p).term.clone();
            term.map_successors(|s| if s == e { t } else { s });
            f.block_mut(p).term = term;
        }
        // Retarget φ edges in `t` (an edge from `e` becomes one per pred).
        for id in f.block(t).insts.clone() {
            if let Inst::Phi { incoming } = f.inst_mut(id) {
                if let Some(pos) = incoming.iter().position(|(pb, _)| *pb == e) {
                    let (_, v) = incoming.remove(pos);
                    for &p in &preds {
                        incoming.push((p, v));
                    }
                }
            }
        }
        // Detach `e`.
        f.block_mut(e).term = Terminator::Br(e);
        threaded += 1;
    }
}

#[cfg(test)]
mod opt_tests {
    use super::*;
    use psir::{
        assert_valid, CmpPred, FunctionBuilder, Interp, Memory, Module, Param, RtVal, ScalarTy,
        Value,
    };

    #[test]
    fn cse_merges_structurally_equal_addresses() {
        let mut fb = FunctionBuilder::new(
            "f",
            vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
            Ty::Void,
        );
        let a1 = fb.gep(Value::Param(0), 4i64, 4);
        let a2 = fb.gep(Value::Param(0), 4i64, 4);
        let x = fb.load(Ty::scalar(ScalarTy::I32), a1, None);
        fb.store(a2, x, None);
        fb.ret(None);
        let mut f = fb.finish();
        let removed = cse(&mut f);
        assert_eq!(removed, 1);
        assert_valid(&f);
    }

    #[test]
    fn redundant_load_elimination_respects_stores() {
        let mut fb = FunctionBuilder::new(
            "g",
            vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
            Ty::scalar(ScalarTy::I32),
        );
        let l1 = fb.load(Ty::scalar(ScalarTy::I32), Value::Param(0), None);
        let l2 = fb.load(Ty::scalar(ScalarTy::I32), Value::Param(0), None); // dup
        let s = fb.bin(psir::BinOp::Add, l1, l2);
        fb.store(Value::Param(0), s, None);
        let l3 = fb.load(Ty::scalar(ScalarTy::I32), Value::Param(0), None); // NOT dup
        fb.ret(Some(l3));
        let mut f = fb.finish();
        let removed = redundant_loads(&mut f);
        dce(&mut f);
        assert_eq!(removed, 1, "only the pre-store duplicate merges");
        assert_valid(&f);
        // Execute to prove semantics: p = 7 → store 14 → return 14.
        let mut m = Module::new();
        m.add_function(f);
        let mut mem = Memory::default();
        let p = mem.alloc_bytes(&7i32.to_le_bytes(), 64).unwrap();
        let mut it = Interp::with_defaults(&m, mem);
        assert_eq!(it.call("g", &[RtVal::S(p)]).unwrap(), RtVal::S(14));
    }

    #[test]
    fn redundant_load_elimination_rewrites_cross_block_uses() {
        // A duplicate load whose only use lives in a *different* block —
        // the shape the serialized-call path emits (the per-lane extract
        // sits in a `sercall` block, the load in the entry). The removed
        // load's uses must be rewritten function-wide, not per-block.
        let mut fb = FunctionBuilder::new(
            "h",
            vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
            Ty::scalar(ScalarTy::I32),
        );
        let l1 = fb.load(Ty::scalar(ScalarTy::I32), Value::Param(0), None);
        let l2 = fb.load(Ty::scalar(ScalarTy::I32), Value::Param(0), None); // dup
        let next = fb.new_block("next");
        fb.br(next);
        fb.switch_to(next);
        let s = fb.bin(psir::BinOp::Add, l1, l2); // cross-block use of the dup
        fb.ret(Some(s));
        let mut f = fb.finish();
        let removed = redundant_loads(&mut f);
        assert_eq!(removed, 1);
        assert_valid(&f);
        let mut m = Module::new();
        m.add_function(f);
        let mut mem = Memory::default();
        let p = mem.alloc_bytes(&21i32.to_le_bytes(), 64).unwrap();
        let mut it = Interp::with_defaults(&m, mem);
        assert_eq!(it.call("h", &[RtVal::S(p)]).unwrap(), RtVal::S(42));
    }

    #[test]
    fn empty_blocks_are_threaded() {
        let mut fb = FunctionBuilder::new(
            "h",
            vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
            Ty::Void,
        );
        let hop = fb.new_block("hop");
        let dest = fb.new_block("dest");
        let other = fb.new_block("other");
        let c = fb.cmp(CmpPred::Sgt, Value::Param(0), 0i32);
        fb.cond_br(c, hop, other);
        fb.switch_to(hop); // empty forwarding block
        fb.br(dest);
        fb.switch_to(other);
        let _side = fb.bin(psir::BinOp::Add, Value::Param(0), 1i32);
        fb.br(dest);
        fb.switch_to(dest);
        fb.ret(None);
        let mut f = fb.finish();
        let n = thread_empty_blocks(&mut f);
        assert_eq!(n, 1);
        assert_valid(&f);
        // The branch now goes straight to dest.
        match &f.block(f.entry).term {
            Terminator::CondBr { then_bb, .. } => assert_eq!(*then_bb, dest),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inliner_splices_a_callee() {
        let mut m = Module::new();
        let mut cal = FunctionBuilder::new(
            "callee",
            vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
            Ty::scalar(ScalarTy::I32),
        );
        let t = cal.bin(psir::BinOp::Mul, Value::Param(0), 3i32);
        cal.ret(Some(t));
        m.add_function(cal.finish());

        let mut car = FunctionBuilder::new(
            "caller",
            vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
            Ty::scalar(ScalarTy::I32),
        );
        let r = car.call("callee", Ty::scalar(ScalarTy::I32), vec![Value::Param(0)]);
        let r2 = car.bin(psir::BinOp::Add, r, 1i32);
        car.ret(Some(r2));
        m.add_function(car.finish());

        let n = inline_calls(&mut m, &["callee".to_string()]);
        assert_eq!(n, 1);
        let caller = m.function("caller").unwrap();
        assert_valid(caller);
        let has_call = caller
            .block_ids()
            .flat_map(|b| caller.block(b).insts.clone())
            .any(|i| matches!(caller.inst(i), Inst::Call { .. }));
        assert!(!has_call, "call must be gone");
        let mut it = Interp::with_defaults(&m, Memory::default());
        assert_eq!(it.call("caller", &[RtVal::S(13)]).unwrap(), RtVal::S(40));
    }
}

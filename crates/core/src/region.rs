//! The front-end contract (§4.1): SPMD region outlining and the gang loop.
//!
//! A `#psim gang_size(G)` region is outlined by the front-end into a
//! standalone SPMD-annotated function whose parameters are the captured
//! variables plus two implicit trailing parameters `(gang_base: i64,
//! num_threads: i64)`. The call site becomes the loop of Listing 6: iterate
//! over gangs, calling the *full* specialization for complete gangs and the
//! *partial* one for the tail.
//!
//! The names of the two specializations are derived from the region name by
//! [`full_name`] / [`partial_name`]; the vectorizer (or, for testing, any
//! other implementation strategy) must provide functions with those names.
//! The scalar gang-serialized fallback ([`crate::fallback`]) is one such
//! strategy: when a region degrades, it emits lane-loop drivers under these
//! same contract names, so the gang loop emitted here never needs to know
//! whether its callee was vectorized or serialized.

use psir::{BinOp, CmpPred, Const, FunctionBuilder, Ty, Value};

/// Name of the full-gang specialization of an outlined region.
pub fn full_name(region: &str) -> String {
    format!("{region}__full")
}

/// Name of the partial (tail-gang) specialization.
pub fn partial_name(region: &str) -> String {
    format!("{region}__partial")
}

/// Name of the peeled head-gang specialization (only generated when the
/// region uses `psim_is_head_gang()`).
pub fn head_name(region: &str) -> String {
    format!("{region}__head")
}

/// Emits the gang loop of Listing 6 into `fb` at the current insertion
/// point: calls `region__full(captured…, base, n)` for each complete gang
/// and `region__partial` for a trailing partial gang.
///
/// `num_threads` is the total SPMD thread count (a scalar `i64` value in the
/// caller); `gang` the compile-time gang size. If `static_threads` is
/// provided and is a multiple of the gang size, the partial branch is not
/// emitted at all (the §4.1 specialization).
pub fn emit_gang_loop(
    fb: &mut FunctionBuilder,
    region: &str,
    captured: &[Value],
    num_threads: Value,
    gang: u32,
    static_threads: Option<u64>,
) {
    emit_gang_loop_peeled(
        fb,
        region,
        captured,
        num_threads,
        gang,
        static_threads,
        false,
    );
}

/// [`emit_gang_loop`] with optional head-gang peeling: when the region uses
/// `psim_is_head_gang()`, the first complete gang is extracted into a call
/// to the `__head` specialization so the steady-state loop runs code with
/// the head predicate folded away (§3: "the compiler can use this
/// information to automatically extract the first and last gang into a copy
/// of the function").
#[allow(clippy::too_many_arguments)]
pub fn emit_gang_loop_peeled(
    fb: &mut FunctionBuilder,
    region: &str,
    captured: &[Value],
    num_threads: Value,
    gang: u32,
    static_threads: Option<u64>,
    peel_head: bool,
) {
    let g = Const::i64(gang as i64);
    let only_full = static_threads.is_some_and(|n| n % gang as u64 == 0);

    // Specialized driver: a main loop over complete gangs with no
    // per-iteration full/partial test, then at most one partial (tail) call.
    let full_end = if only_full {
        num_threads
    } else {
        let rem = fb.bin(BinOp::SRem, num_threads, Value::Const(g));
        fb.bin(BinOp::Sub, num_threads, rem)
    };

    // Optional head peel: if at least one complete gang exists, run it
    // through the __head specialization and start the loop at G.
    let loop_start: Value = if peel_head {
        let head_blk = fb.new_block("gang.head");
        let cont = fb.new_block("gang.head.cont");
        let has_full = fb.cmp(CmpPred::Sle, Value::Const(g), full_end);
        let pre = fb.current_block();
        fb.cond_br(has_full, head_blk, cont);
        fb.switch_to(head_blk);
        let mut hargs: Vec<Value> = captured.to_vec();
        hargs.push(Value::Const(Const::i64(0)));
        hargs.push(num_threads);
        fb.call(head_name(region), Ty::Void, hargs);
        fb.br(cont);
        fb.switch_to(cont);

        fb.phi(vec![
            (head_blk, Value::Const(g)),
            (pre, Value::Const(Const::i64(0))),
        ])
    } else {
        Value::Const(Const::i64(0))
    };

    let header = fb.new_block("gang.header");
    let body = fb.new_block("gang.body");
    let exit = fb.new_block("gang.exit");
    let pre = fb.current_block();
    fb.br(header);

    fb.switch_to(header);
    let base = fb.phi_typed(Ty::scalar(psir::ScalarTy::I64), vec![(pre, loop_start)]);
    let more = fb.cmp(CmpPred::Slt, base, full_end);
    fb.cond_br(more, body, exit);

    fb.switch_to(body);
    let mut args: Vec<Value> = captured.to_vec();
    args.push(base);
    args.push(num_threads);
    fb.call(full_name(region), Ty::Void, args.clone());
    let next = fb.bin(BinOp::Add, base, Value::Const(g));
    let cur = fb.current_block();
    fb.phi_add_incoming(base, cur, next);
    fb.br(header);

    fb.switch_to(exit);
    if !only_full {
        let tail = fb.new_block("gang.tail");
        let done = fb.new_block("gang.done");
        let has_tail = fb.cmp(CmpPred::Slt, full_end, num_threads);
        fb.cond_br(has_tail, tail, done);
        fb.switch_to(tail);
        let mut targs: Vec<Value> = captured.to_vec();
        targs.push(full_end);
        targs.push(num_threads);
        fb.call(partial_name(region), Ty::Void, targs);
        fb.br(done);
        fb.switch_to(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::{assert_valid, Param, ScalarTy};

    #[test]
    fn gang_loop_shape() {
        let mut fb = FunctionBuilder::new(
            "driver",
            vec![
                Param::new("a", Ty::scalar(ScalarTy::Ptr)),
                Param::new("n", Ty::scalar(ScalarTy::I64)),
            ],
            Ty::Void,
        );
        emit_gang_loop(
            &mut fb,
            "kernel__psim0",
            &[Value::Param(0)],
            Value::Param(1),
            16,
            None,
        );
        fb.ret(None);
        let f = fb.finish();
        assert_valid(&f);
        let text = psir::print_function(&f);
        assert!(text.contains("kernel__psim0__full"));
        assert!(text.contains("kernel__psim0__partial"));
    }

    #[test]
    fn static_multiple_skips_partial() {
        let mut fb = FunctionBuilder::new(
            "driver2",
            vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
            Ty::Void,
        );
        emit_gang_loop(
            &mut fb,
            "k",
            &[Value::Param(0)],
            Value::Const(Const::i64(64)),
            16,
            Some(64),
        );
        fb.ret(None);
        let f = fb.finish();
        assert_valid(&f);
        let text = psir::print_function(&f);
        assert!(text.contains("k__full"));
        assert!(!text.contains("k__partial"));
    }
}

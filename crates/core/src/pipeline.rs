//! Module-level driver: run the Parsimony pass over every SPMD-annotated
//! function in a module, exactly as the paper inserts its single IR-to-IR
//! pass into an existing pipeline (§4).
//!
//! The driver is **fault tolerant**: a region that fails vectorization, or
//! whose vector output fails in-pipeline verification, does not abort the
//! module. Instead it is emitted as a scalar gang-serialized loop (the
//! §4.2 serialization mechanism, see [`crate::fallback`]), a
//! warning-severity [`RemarkKind::Degraded`] remark carries the located
//! diagnostic, and compilation continues with the remaining regions.
//! Residual panics deep inside a pass are caught at this boundary
//! ([`crate::fault::catch_pass_panic`]) and attributed to the active pass.
//! Only two things are hard errors: `--verify=strict`, and a failing region
//! that cannot be serialized (it uses horizontal operations, which have no
//! lane-at-a-time schedule).
//!
//! The driver is also **parallel**: each SPMD region is built independently
//! (a region's vectorization reads only the immutable input module), so the
//! driver fans the regions out across [`PipelineOptions::jobs`] scoped
//! worker threads and merges the per-region results back **in original
//! region order**. The printed module, the remark stream, the
//! vectorized/degraded lists, and the error returned for a fatal region are
//! all byte-identical to a serial (`jobs = 1`) run; only the wall-clock
//! attribution in [`PipelineOutput::timings`] reflects the schedule. Fault
//! injection stays deterministic because each worker re-arms the injector
//! on its own thread (see [`crate::fault`]): an armed site fires in every
//! region that reaches it, on whatever thread builds that region.

use crate::fallback;
use crate::fault::{self, FaultInjector};
use crate::transform::{vectorize_function_with, VectorizeError, VectorizeOptions};
use psir::{Function, Inst, Intrinsic, Module};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use telemetry::{CompileTimings, Diagnostic, Pass, RegionTiming, Remark, RemarkKind, Severity};

/// When the pipeline runs `psir::verify` on its own output, and what a
/// verification failure does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// No in-pipeline verification.
    Off,
    /// Verify every produced variant; a failure degrades the region to the
    /// scalar serialized fallback (the default).
    #[default]
    Fallback,
    /// Verify every produced variant; any failure — verification or
    /// vectorization — is a hard located error.
    Strict,
}

impl VerifyMode {
    /// Parses the `--verify=` flag value.
    pub fn parse(s: &str) -> Option<VerifyMode> {
        Some(match s {
            "off" => VerifyMode::Off,
            "fallback" => VerifyMode::Fallback,
            "strict" => VerifyMode::Strict,
            _ => return None,
        })
    }

    /// Stable flag-value name.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Fallback => "fallback",
            VerifyMode::Strict => "strict",
        }
    }
}

/// Environment variable overriding the default worker count (the `-j` flag
/// of the CLIs takes precedence over it).
pub const JOBS_ENV_VAR: &str = "PSIM_JOBS";

/// The default worker count: `PSIM_JOBS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::env::var(JOBS_ENV_VAR)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Driver-level configuration, separate from the per-function
/// [`VectorizeOptions`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// In-pipeline verification mode.
    pub verify: VerifyMode,
    /// Armed fault injector, if any (tests pass one explicitly; the
    /// [`Default`] impl consults the `PSIM_INJECT_FAULT` environment
    /// variable).
    pub inject: Option<FaultInjector>,
    /// Worker threads for the region fan-out. Values are clamped to at
    /// least 1 and at most the region count; `1` is the serial path (no
    /// threads spawned). The [`Default`] impl uses [`default_jobs`].
    pub jobs: usize,
    /// The machine the compiled module will be *costed* against. An
    /// explicit, required field: compilation itself is target-independent
    /// (gang size and emitted module text never depend on it — the
    /// `target-contract` CI job machine-checks that), but every downstream
    /// consumer prices execution against exactly this machine, so no pass
    /// or runner can accidentally cost against the wrong one. The
    /// [`Default`] impl delegates to the one documented defaulting site,
    /// [`vmach::Target::reference_default`].
    pub target: vmach::Target,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            verify: VerifyMode::Fallback,
            inject: FaultInjector::from_env(),
            jobs: default_jobs(),
            target: vmach::Target::reference_default(),
        }
    }
}

impl PipelineOptions {
    /// Returns the options with the worker count replaced.
    pub fn with_jobs(mut self, jobs: usize) -> PipelineOptions {
        self.jobs = jobs;
        self
    }

    /// Returns the options with the costing target replaced.
    pub fn with_target(mut self, target: vmach::Target) -> PipelineOptions {
        self.target = target;
        self
    }
}

/// Result of vectorizing a module.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The module with `<region>__full` / `<region>__partial` vector
    /// functions added (scalar functions, including the annotated
    /// originals, are preserved). Degraded regions contribute scalar
    /// serialized functions under the same names instead.
    pub module: Module,
    /// All compile-time warnings across regions (derived from `remarks` —
    /// the text of every warning-severity remark, kept for compatibility).
    pub warnings: Vec<String>,
    /// Structured optimization remarks from every pass, across regions.
    pub remarks: Vec<Remark>,
    /// Names of the regions that were vectorized.
    pub vectorized: Vec<String>,
    /// Names of the regions that fell back to the scalar gang-serialized
    /// loop; each has a matching [`RemarkKind::Degraded`] warning remark.
    pub degraded: Vec<String>,
    /// Wall-clock compile-time attribution: per-region build times (in
    /// original region order) plus the worker count and total wall time.
    /// Unlike every other field, this is measurement metadata and varies
    /// run to run.
    pub timings: CompileTimings,
}

/// Vectorizes every SPMD function in `m`, adding the full and partial
/// specializations the gang loop (Listing 6) calls, then re-inlines the
/// *full* specialization into its call sites (§4.1: the back-end re-inlines
/// the vectorized function to avoid the call overhead; the cold tail call
/// stays out of line). Uses [`PipelineOptions::default`]: verification in
/// fallback mode, fault injection from the environment, worker count from
/// [`default_jobs`].
///
/// # Errors
/// Fails only for a failing region that cannot be scalar-serialized (it
/// uses horizontal operations); all other region failures degrade to the
/// serialized fallback and are reported through `degraded`/`remarks`.
pub fn vectorize_module(
    m: &Module,
    opts: &VectorizeOptions,
) -> Result<PipelineOutput, VectorizeError> {
    vectorize_module_with(m, opts, &PipelineOptions::default())
}

/// [`vectorize_module`] with explicit driver options.
///
/// # Errors
/// In [`VerifyMode::Strict`], any region failure is a hard located error.
/// Otherwise only a non-serializable failing region fails the module.
pub fn vectorize_module_with(
    m: &Module,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
) -> Result<PipelineOutput, VectorizeError> {
    fault::with_injector(popts.inject.clone(), || drive(m, opts, popts))
}

/// One region's successfully built vector variants.
struct BuiltRegion {
    funcs: Vec<Function>,
    remarks: Vec<Remark>,
    inline_targets: Vec<String>,
}

/// Everything the merge phase needs to know about one region, produced
/// independently (possibly on a worker thread) by [`region_outcome`].
enum RegionOutcome {
    /// All vector variants built and verified.
    Built(BuiltRegion),
    /// The region failed but was serialized to the scalar fallback; `funcs`
    /// are already verified.
    Degraded {
        funcs: Vec<Function>,
        diag: Diagnostic,
    },
    /// The region was skipped with a remark (non-strict missing-function
    /// path).
    Skipped(Remark),
    /// A hard error: strict-mode failure, or a failing region that cannot
    /// be serialized. The merge phase returns the first fatal outcome **in
    /// region order**, matching what a serial run would have reported.
    Fatal(Box<VectorizeError>),
}

/// A region outcome plus its wall-clock attribution.
struct RegionReport {
    outcome: RegionOutcome,
    nanos: u64,
    worker: usize,
}

fn drive(
    m: &Module,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
) -> Result<PipelineOutput, VectorizeError> {
    let t0 = Instant::now();
    let names = m.spmd_functions();
    let jobs = popts.jobs.clamp(1, names.len().max(1));

    // Gather phase: build every region independently. `jobs = 1` runs on
    // the calling thread (and short-circuits on a fatal region, like the
    // historical serial driver); otherwise the regions fan out over a
    // scoped worker pool pulling indices from a shared queue.
    let reports: Vec<RegionReport> = if jobs <= 1 {
        let mut reports = Vec::with_capacity(names.len());
        for name in &names {
            let t = Instant::now();
            let outcome = region_outcome(m, name, opts, popts);
            let fatal = matches!(outcome, RegionOutcome::Fatal(_));
            reports.push(RegionReport {
                outcome,
                nanos: t.elapsed().as_nanos() as u64,
                worker: 0,
            });
            if fatal {
                break;
            }
        }
        reports
    } else {
        fan_out(m, &names, opts, popts, jobs)
    };

    // Merge phase: single-owner mutation of the output module and the
    // telemetry streams, strictly in original region order, so the result
    // is byte-identical to a serial run.
    let mut out = m.clone();
    let mut remarks = Vec::new();
    let mut vectorized = Vec::new();
    let mut degraded = Vec::new();
    let mut inline_targets = Vec::new();
    let mut timings = CompileTimings {
        jobs,
        wall_nanos: 0,
        regions: Vec::with_capacity(reports.len()),
    };
    for (name, report) in names.iter().zip(reports) {
        timings.regions.push(RegionTiming {
            region: name.clone(),
            nanos: report.nanos,
            worker: report.worker,
        });
        match report.outcome {
            RegionOutcome::Built(b) => {
                for func in b.funcs {
                    out.add_function(func);
                }
                remarks.extend(b.remarks);
                inline_targets.extend(b.inline_targets);
                vectorized.push(name.clone());
            }
            RegionOutcome::Skipped(r) => remarks.push(r),
            RegionOutcome::Degraded { funcs, diag } => {
                for func in funcs {
                    out.add_function(func);
                }
                remarks.push(Remark::new(
                    Pass::Pipeline,
                    Severity::Warning,
                    name,
                    RemarkKind::Degraded {
                        region: name.clone(),
                        reason: diag.to_string(),
                    },
                ));
                degraded.push(name.clone());
            }
            RegionOutcome::Fatal(e) => return Err(*e),
        }
    }

    fault::pass_scope(Pass::Opt, || {
        crate::opt::inline_calls(&mut out, &inline_targets);
        let caller_names: Vec<String> = out
            .functions()
            .filter(|f| f.spmd.is_none())
            .map(|f| f.name.clone())
            .collect();
        for name in caller_names {
            // Degraded regions' fallback bodies are cold correctness paths;
            // leave them as emitted.
            if degraded.iter().any(|r| name.starts_with(r.as_str())) {
                continue;
            }
            if let Some(f) = out.function_mut(&name) {
                crate::opt::cleanup(f);
            }
        }
    });
    timings.wall_nanos = t0.elapsed().as_nanos() as u64;
    Ok(PipelineOutput {
        module: out,
        warnings: telemetry::warnings_of(&remarks),
        remarks,
        vectorized,
        degraded,
        timings,
    })
}

/// Fans the regions out across `jobs` scoped worker threads. Workers pull
/// region indices from a shared atomic queue and deposit their report in a
/// per-region slot, so the returned vector is in region order regardless of
/// completion order. Each worker re-arms the fault injector on its own
/// thread (injection state is thread-local) so `PSIM_INJECT_FAULT` fires at
/// the same sites a serial run would hit.
fn fan_out(
    m: &Module,
    names: &[String],
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
    jobs: usize,
) -> Vec<RegionReport> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RegionReport>>> = names.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for worker in 0..jobs {
            let next = &next;
            let slots = &slots;
            s.spawn(move || {
                fault::with_injector(popts.inject.clone(), || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(name) = names.get(i) else { break };
                    let t = Instant::now();
                    let outcome = region_outcome(m, name, opts, popts);
                    let report = RegionReport {
                        outcome,
                        nanos: t.elapsed().as_nanos() as u64,
                        worker,
                    };
                    match slots[i].lock() {
                        Ok(mut slot) => *slot = Some(report),
                        Err(poisoned) => *poisoned.into_inner() = Some(report),
                    }
                })
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let filled = match slot.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Every index handed out is filled before its worker exits; an
            // empty slot would be a driver bug, reported as a located
            // diagnostic rather than a panic.
            filled.unwrap_or_else(|| RegionReport {
                outcome: RegionOutcome::Fatal(Box::new(VectorizeError::Invalid(Diagnostic::new(
                    Pass::Pipeline,
                    &names[i],
                    "internal error: worker produced no outcome for region",
                )))),
                nanos: 0,
                worker: 0,
            })
        })
        .collect()
}

/// Builds one region end to end — vectorize + cleanup + verify, degrading
/// to the scalar serialized fallback on failure — without touching any
/// shared state. This is the unit of work of the fan-out; its behavior per
/// region is exactly the historical serial driver's.
fn region_outcome(
    m: &Module,
    name: &str,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
) -> RegionOutcome {
    let fatal = |e: VectorizeError| RegionOutcome::Fatal(Box::new(e));
    let Some(f) = m.function(name) else {
        // Unreachable from `spmd_functions`, but a lookup mismatch must
        // not take down the driver (it used to be an `.expect`).
        let d = Diagnostic::new(
            Pass::Pipeline,
            name,
            "listed SPMD function missing from module",
        );
        if popts.verify == VerifyMode::Strict {
            return fatal(VectorizeError::Invalid(d));
        }
        return RegionOutcome::Skipped(d.to_remark());
    };
    // Head-gang peeling applies when the region queries the predicate.
    let uses_head = f.block_ids().any(|b| {
        f.block(b).insts.iter().any(|&i| {
            matches!(
                f.inst(i),
                Inst::Intrin {
                    kind: Intrinsic::IsHeadGang,
                    ..
                }
            )
        })
    });

    // Everything pass-shaped runs behind the catch_unwind boundary so a
    // panic anywhere inside structurize/shape/transform/opt/verify is
    // attributed and handled like an ordinary pass error.
    let built = fault::catch_pass_panic(|| build_region(f, opts, popts, uses_head));
    let diag = match built {
        Ok(Ok(b)) => return RegionOutcome::Built(b),
        Ok(Err(d)) => d,
        Err(msg) => {
            let pass = fault::current_pass();
            fault::reset_current_pass();
            Diagnostic::new(pass, name, format!("internal error (caught panic): {msg}"))
        }
    };
    if popts.verify == VerifyMode::Strict {
        return fatal(VectorizeError::Invalid(diag));
    }
    // Graceful degradation: emit the region as a scalar gang-serialized
    // loop under the same __full/__partial/__head names, record the
    // diagnostic on a warning remark, and keep compiling.
    let fb_funcs = match fallback::serialize_region(f, uses_head) {
        Ok(funcs) => funcs,
        Err(mut d2) => {
            d2.message = format!("{} (region failed with: {diag})", d2.message);
            return fatal(VectorizeError::Invalid(d2));
        }
    };
    for func in &fb_funcs {
        // The fallback generator is simple enough to verify its own
        // output unconditionally; a failure here is a driver bug, not
        // user input, so it is a hard error even in fallback mode.
        if let Some(e) = psir::verify_function(func).first() {
            let mut d = Diagnostic::new(
                Pass::Pipeline,
                &func.name,
                format!("serialized fallback failed verification: {}", e.msg),
            );
            if let Some(b) = e.block {
                d = d.at_block(b.0);
            }
            if let Some(i) = e.inst {
                d = d.at_inst(i.0);
            }
            return fatal(VectorizeError::Invalid(d));
        }
    }
    RegionOutcome::Degraded {
        funcs: fb_funcs,
        diag,
    }
}

/// Builds every vector variant of one region: vectorize, clean up, verify.
/// Any failure comes back as a located [`Diagnostic`].
fn build_region(
    f: &Function,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
    uses_head: bool,
) -> Result<BuiltRegion, Diagnostic> {
    let mut variants = Vec::new();
    if uses_head {
        // The peeled specialization folds the predicate; the plain __full
        // keeps the runtime check so non-peeling drivers (or the n < G
        // case) remain correct.
        variants.push(
            vectorize_function_with(f, opts, false, Some(true)).map_err(|e| e.diagnostic(f))?,
        );
    }
    variants.push(vectorize_function_with(f, opts, false, None).map_err(|e| e.diagnostic(f))?);
    variants.push(vectorize_function_with(f, opts, true, None).map_err(|e| e.diagnostic(f))?);
    let mut built = BuiltRegion {
        funcs: Vec::new(),
        remarks: Vec::new(),
        inline_targets: Vec::new(),
    };
    for v in variants {
        let mut func = v.func;
        fault::pass_scope(Pass::Opt, || {
            fault::inject_panic("opt");
            crate::opt::cleanup(&mut func);
        });
        if popts.verify != VerifyMode::Off {
            let verdict = fault::pass_scope(Pass::Verify, || {
                fault::corrupt_for_verify(&mut func);
                psir::verify_function(&func)
            });
            if let Some(e) = verdict.first() {
                let mut d = Diagnostic::new(Pass::Verify, &func.name, e.msg.clone());
                if let Some(b) = e.block {
                    d = d.at_block(b.0);
                }
                if let Some(i) = e.inst {
                    d = d.at_inst(i.0);
                }
                return Err(d);
            }
        }
        built.remarks.extend(v.remarks);
        if func.name.ends_with("__full") || func.name.ends_with("__head") {
            built.inline_targets.push(func.name.clone());
        }
        built.funcs.push(func);
    }
    Ok(built)
}

//! Module-level driver: run the Parsimony pass over every SPMD-annotated
//! function in a module, exactly as the paper inserts its single IR-to-IR
//! pass into an existing pipeline (§4).
//!
//! The driver is **fault tolerant**: a region that fails vectorization, or
//! whose vector output fails in-pipeline verification, does not abort the
//! module. Instead it is emitted as a scalar gang-serialized loop (the
//! §4.2 serialization mechanism, see [`crate::fallback`]), a
//! warning-severity [`RemarkKind::Degraded`] remark carries the located
//! diagnostic, and compilation continues with the remaining regions.
//! Residual panics deep inside a pass are caught at this boundary
//! ([`crate::fault::catch_pass_panic`]) and attributed to the active pass.
//! Only two things are hard errors: `--verify=strict`, and a failing region
//! that cannot be serialized (it uses horizontal operations, which have no
//! lane-at-a-time schedule).

use crate::fallback;
use crate::fault::{self, FaultInjector};
use crate::transform::{vectorize_function_with, VectorizeError, VectorizeOptions};
use psir::{Function, Inst, Intrinsic, Module};
use telemetry::{Diagnostic, Pass, Remark, RemarkKind, Severity};

/// When the pipeline runs `psir::verify` on its own output, and what a
/// verification failure does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// No in-pipeline verification.
    Off,
    /// Verify every produced variant; a failure degrades the region to the
    /// scalar serialized fallback (the default).
    #[default]
    Fallback,
    /// Verify every produced variant; any failure — verification or
    /// vectorization — is a hard located error.
    Strict,
}

impl VerifyMode {
    /// Parses the `--verify=` flag value.
    pub fn parse(s: &str) -> Option<VerifyMode> {
        Some(match s {
            "off" => VerifyMode::Off,
            "fallback" => VerifyMode::Fallback,
            "strict" => VerifyMode::Strict,
            _ => return None,
        })
    }

    /// Stable flag-value name.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Fallback => "fallback",
            VerifyMode::Strict => "strict",
        }
    }
}

/// Driver-level configuration, separate from the per-function
/// [`VectorizeOptions`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// In-pipeline verification mode.
    pub verify: VerifyMode,
    /// Armed fault injector, if any (tests pass one explicitly; the
    /// [`Default`] impl consults the `PSIM_INJECT_FAULT` environment
    /// variable).
    pub inject: Option<FaultInjector>,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            verify: VerifyMode::Fallback,
            inject: FaultInjector::from_env(),
        }
    }
}

/// Result of vectorizing a module.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The module with `<region>__full` / `<region>__partial` vector
    /// functions added (scalar functions, including the annotated
    /// originals, are preserved). Degraded regions contribute scalar
    /// serialized functions under the same names instead.
    pub module: Module,
    /// All compile-time warnings across regions (derived from `remarks` —
    /// the text of every warning-severity remark, kept for compatibility).
    pub warnings: Vec<String>,
    /// Structured optimization remarks from every pass, across regions.
    pub remarks: Vec<Remark>,
    /// Names of the regions that were vectorized.
    pub vectorized: Vec<String>,
    /// Names of the regions that fell back to the scalar gang-serialized
    /// loop; each has a matching [`RemarkKind::Degraded`] warning remark.
    pub degraded: Vec<String>,
}

/// Vectorizes every SPMD function in `m`, adding the full and partial
/// specializations the gang loop (Listing 6) calls, then re-inlines the
/// *full* specialization into its call sites (§4.1: the back-end re-inlines
/// the vectorized function to avoid the call overhead; the cold tail call
/// stays out of line). Uses [`PipelineOptions::default`]: verification in
/// fallback mode, fault injection from the environment.
///
/// # Errors
/// Fails only for a failing region that cannot be scalar-serialized (it
/// uses horizontal operations); all other region failures degrade to the
/// serialized fallback and are reported through `degraded`/`remarks`.
pub fn vectorize_module(
    m: &Module,
    opts: &VectorizeOptions,
) -> Result<PipelineOutput, VectorizeError> {
    vectorize_module_with(m, opts, &PipelineOptions::default())
}

/// [`vectorize_module`] with explicit driver options.
///
/// # Errors
/// In [`VerifyMode::Strict`], any region failure is a hard located error.
/// Otherwise only a non-serializable failing region fails the module.
pub fn vectorize_module_with(
    m: &Module,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
) -> Result<PipelineOutput, VectorizeError> {
    fault::with_injector(popts.inject.clone(), || drive(m, opts, popts))
}

/// One region's successfully built vector variants.
struct BuiltRegion {
    funcs: Vec<Function>,
    remarks: Vec<Remark>,
    inline_targets: Vec<String>,
}

fn drive(
    m: &Module,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
) -> Result<PipelineOutput, VectorizeError> {
    let mut out = m.clone();
    let mut remarks = Vec::new();
    let mut vectorized = Vec::new();
    let mut degraded = Vec::new();
    let mut inline_targets = Vec::new();
    for name in m.spmd_functions() {
        let Some(f) = m.function(&name) else {
            // Unreachable from `spmd_functions`, but a lookup mismatch must
            // not take down the driver (it used to be an `.expect`).
            let d = Diagnostic::new(
                Pass::Pipeline,
                &name,
                "listed SPMD function missing from module",
            );
            if popts.verify == VerifyMode::Strict {
                return Err(VectorizeError::Invalid(d));
            }
            remarks.push(d.to_remark());
            continue;
        };
        // Head-gang peeling applies when the region queries the predicate.
        let uses_head = f.block_ids().any(|b| {
            f.block(b).insts.iter().any(|&i| {
                matches!(
                    f.inst(i),
                    Inst::Intrin {
                        kind: Intrinsic::IsHeadGang,
                        ..
                    }
                )
            })
        });

        // Everything pass-shaped runs behind the catch_unwind boundary so a
        // panic anywhere inside structurize/shape/transform/opt/verify is
        // attributed and handled like an ordinary pass error.
        let built = fault::catch_pass_panic(|| build_region(f, opts, popts, uses_head));
        let failure = match built {
            Ok(Ok(b)) => {
                for func in b.funcs {
                    out.add_function(func);
                }
                remarks.extend(b.remarks);
                inline_targets.extend(b.inline_targets);
                vectorized.push(name.clone());
                None
            }
            Ok(Err(d)) => Some(d),
            Err(msg) => {
                let pass = fault::current_pass();
                fault::reset_current_pass();
                Some(Diagnostic::new(
                    pass,
                    &name,
                    format!("internal error (caught panic): {msg}"),
                ))
            }
        };

        let Some(diag) = failure else { continue };
        if popts.verify == VerifyMode::Strict {
            return Err(VectorizeError::Invalid(diag));
        }
        // Graceful degradation: emit the region as a scalar gang-serialized
        // loop under the same __full/__partial/__head names, record the
        // diagnostic on a warning remark, and keep compiling.
        let fb_funcs = fallback::serialize_region(f, uses_head).map_err(|mut d2| {
            d2.message = format!("{} (region failed with: {diag})", d2.message);
            VectorizeError::Invalid(d2)
        })?;
        for func in &fb_funcs {
            // The fallback generator is simple enough to verify its own
            // output unconditionally; a failure here is a driver bug, not
            // user input, so it is a hard error even in fallback mode.
            if let Some(e) = psir::verify_function(func).first() {
                let mut d = Diagnostic::new(
                    Pass::Pipeline,
                    &func.name,
                    format!("serialized fallback failed verification: {}", e.msg),
                );
                if let Some(b) = e.block {
                    d = d.at_block(b.0);
                }
                if let Some(i) = e.inst {
                    d = d.at_inst(i.0);
                }
                return Err(VectorizeError::Invalid(d));
            }
        }
        for func in fb_funcs {
            out.add_function(func);
        }
        remarks.push(Remark::new(
            Pass::Pipeline,
            Severity::Warning,
            &name,
            RemarkKind::Degraded {
                region: name.clone(),
                reason: diag.to_string(),
            },
        ));
        degraded.push(name.clone());
    }
    fault::pass_scope(Pass::Opt, || {
        crate::opt::inline_calls(&mut out, &inline_targets);
        let caller_names: Vec<String> = out
            .functions()
            .filter(|f| f.spmd.is_none())
            .map(|f| f.name.clone())
            .collect();
        for name in caller_names {
            // Degraded regions' fallback bodies are cold correctness paths;
            // leave them as emitted.
            if degraded.iter().any(|r| name.starts_with(r.as_str())) {
                continue;
            }
            if let Some(f) = out.function_mut(&name) {
                crate::opt::cleanup(f);
            }
        }
    });
    Ok(PipelineOutput {
        module: out,
        warnings: telemetry::warnings_of(&remarks),
        remarks,
        vectorized,
        degraded,
    })
}

/// Builds every vector variant of one region: vectorize, clean up, verify.
/// Any failure comes back as a located [`Diagnostic`].
fn build_region(
    f: &Function,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
    uses_head: bool,
) -> Result<BuiltRegion, Diagnostic> {
    let mut variants = Vec::new();
    if uses_head {
        // The peeled specialization folds the predicate; the plain __full
        // keeps the runtime check so non-peeling drivers (or the n < G
        // case) remain correct.
        variants.push(
            vectorize_function_with(f, opts, false, Some(true)).map_err(|e| e.diagnostic(f))?,
        );
    }
    variants.push(vectorize_function_with(f, opts, false, None).map_err(|e| e.diagnostic(f))?);
    variants.push(vectorize_function_with(f, opts, true, None).map_err(|e| e.diagnostic(f))?);
    let mut built = BuiltRegion {
        funcs: Vec::new(),
        remarks: Vec::new(),
        inline_targets: Vec::new(),
    };
    for v in variants {
        let mut func = v.func;
        fault::pass_scope(Pass::Opt, || {
            fault::inject_panic("opt");
            crate::opt::cleanup(&mut func);
        });
        if popts.verify != VerifyMode::Off {
            let verdict = fault::pass_scope(Pass::Verify, || {
                fault::corrupt_for_verify(&mut func);
                psir::verify_function(&func)
            });
            if let Some(e) = verdict.first() {
                let mut d = Diagnostic::new(Pass::Verify, &func.name, e.msg.clone());
                if let Some(b) = e.block {
                    d = d.at_block(b.0);
                }
                if let Some(i) = e.inst {
                    d = d.at_inst(i.0);
                }
                return Err(d);
            }
        }
        built.remarks.extend(v.remarks);
        if func.name.ends_with("__full") || func.name.ends_with("__head") {
            built.inline_targets.push(func.name.clone());
        }
        built.funcs.push(func);
    }
    Ok(built)
}

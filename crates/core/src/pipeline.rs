//! Module-level driver: run the Parsimony pass over every SPMD-annotated
//! function in a module, exactly as the paper inserts its single IR-to-IR
//! pass into an existing pipeline (§4).

use crate::transform::{
    vectorize_function, vectorize_function_with, VectorizeError, VectorizeOptions,
};
use psir::{Inst, Intrinsic, Module};
use telemetry::Remark;

/// Result of vectorizing a module.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The module with `<region>__full` / `<region>__partial` vector
    /// functions added (scalar functions, including the annotated
    /// originals, are preserved).
    pub module: Module,
    /// All compile-time warnings across regions (derived from `remarks` —
    /// the text of every warning-severity remark, kept for compatibility).
    pub warnings: Vec<String>,
    /// Structured optimization remarks from every pass, across regions.
    pub remarks: Vec<Remark>,
    /// Names of the regions that were vectorized.
    pub vectorized: Vec<String>,
}

/// Vectorizes every SPMD function in `m`, adding the full and partial
/// specializations the gang loop (Listing 6) calls, then re-inlines the
/// *full* specialization into its call sites (§4.1: the back-end re-inlines
/// the vectorized function to avoid the call overhead; the cold tail call
/// stays out of line).
///
/// # Errors
/// Fails if any region cannot be vectorized; the module is not partially
/// updated in that case.
pub fn vectorize_module(
    m: &Module,
    opts: &VectorizeOptions,
) -> Result<PipelineOutput, VectorizeError> {
    let mut out = m.clone();
    let mut remarks = Vec::new();
    let mut vectorized = Vec::new();
    let mut inline_targets = Vec::new();
    for name in m.spmd_functions() {
        let f = m.function(&name).expect("listed function exists");
        // Head-gang peeling applies when the region queries the predicate.
        let uses_head = f.block_ids().any(|b| {
            f.block(b).insts.iter().any(|&i| {
                matches!(
                    f.inst(i),
                    Inst::Intrin {
                        kind: Intrinsic::IsHeadGang,
                        ..
                    }
                )
            })
        });
        let mut variants = Vec::new();
        if uses_head {
            // The peeled specialization folds the predicate; the plain
            // __full keeps the runtime check so non-peeling drivers (or the
            // n < G case) remain correct.
            variants.push(vectorize_function_with(f, opts, false, Some(true))?);
        }
        variants.push(vectorize_function(f, opts, false)?);
        variants.push(vectorize_function(f, opts, true)?);
        for v in variants {
            let mut func = v.func;
            crate::opt::cleanup(&mut func);
            remarks.extend(v.remarks);
            if func.name.ends_with("__full") || func.name.ends_with("__head") {
                inline_targets.push(func.name.clone());
            }
            out.add_function(func);
        }
        vectorized.push(name);
    }
    crate::opt::inline_calls(&mut out, &inline_targets);
    let caller_names: Vec<String> = out
        .functions()
        .filter(|f| f.spmd.is_none())
        .map(|f| f.name.clone())
        .collect();
    for name in caller_names {
        if let Some(f) = out.function_mut(&name) {
            crate::opt::cleanup(f);
        }
    }
    Ok(PipelineOutput {
        module: out,
        warnings: telemetry::warnings_of(&remarks),
        remarks,
        vectorized,
    })
}

//! Graceful-degradation semantics of the fault-tolerant driver: a region
//! that fails vectorization is emitted as a scalar gang-serialized loop
//! under the same `__full`/`__partial`/`__head` names (so the gang-loop
//! contract of §4.1 is still satisfied), a warning remark carries the
//! located diagnostic, and every *other* region still vectorizes.

use parsimony::{
    emit_gang_loop, vectorize_module, vectorize_module_with, PipelineOptions, SpmdRef,
    VectorizeOptions, VerifyMode,
};
use psir::{
    assert_valid, BinOp, FunctionBuilder, Memory, Module, Param, RtVal, ScalarTy, SpmdInfo,
    ThreadCount, Ty, Value,
};
use telemetry::{RemarkKind, Severity};

fn region_fb(name: &str, user_params: Vec<Param>, gang: u32) -> FunctionBuilder {
    let mut params = user_params;
    params.push(Param::new("gang_base", Ty::scalar(ScalarTy::I64)));
    params.push(Param::new("num_threads", Ty::scalar(ScalarTy::I64)));
    let mut fb = FunctionBuilder::new(name, params, Ty::Void);
    fb.set_spmd(SpmdInfo {
        gang_size: gang,
        num_threads: ThreadCount::Dynamic,
        partial: false,
    });
    fb
}

/// A module with two regions over the same gang size:
/// * `good` — `a[i] = a[i] * 3`, trivially vectorizable;
/// * `bad`  — `b[i] = opaque(b[i])`, which gang-synchronous mode cannot
///   vectorize (§4.2.3: separately-compiled scalar calls).
fn mixed_module(gang: u32) -> Module {
    let mut m = Module::new();

    let mut helper = FunctionBuilder::new(
        "opaque",
        vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
        Ty::scalar(ScalarTy::I32),
    );
    let r = helper.bin(BinOp::Mul, Value::Param(0), 7i32);
    let r = helper.bin(BinOp::Add, r, 1i32);
    helper.ret(Some(r));
    m.add_function(helper.finish());

    let mut fb = region_fb(
        "good",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let y = fb.bin(BinOp::Mul, x, 3i32);
    fb.store(ai, y, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    m.add_function(f);

    let mut fb = region_fb(
        "bad",
        vec![Param::new("b", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let i = fb.thread_num();
    let bi = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), bi, None);
    let y = fb.call("opaque", Ty::scalar(ScalarTy::I32), vec![x]);
    fb.store(bi, y, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    m.add_function(f);

    m
}

fn i32_buf(mem: &mut Memory, vals: &[i32]) -> u64 {
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    mem.alloc_bytes(&bytes, 64).expect("alloc")
}

/// The headline acceptance test: a module with one failing region returns
/// `Ok`, the failing region is scalar-serialized with a warning remark, and
/// the other region is vectorized.
#[test]
fn mixed_module_degrades_only_the_failing_region() {
    let gang = 8u32;
    let m = mixed_module(gang);
    let out = vectorize_module(&m, &VectorizeOptions::gang_synchronous())
        .expect("a failing region must not abort the module");

    assert_eq!(out.vectorized, vec!["good".to_string()]);
    assert_eq!(out.degraded, vec!["bad".to_string()]);

    // The degradation remark is warning-severity and carries the located
    // vectorizer diagnostic as its reason.
    let deg: Vec<_> = out
        .remarks
        .iter()
        .filter(|r| matches!(r.kind, RemarkKind::Degraded { .. }))
        .collect();
    assert_eq!(deg.len(), 1);
    assert_eq!(deg[0].severity, Severity::Warning);
    let RemarkKind::Degraded { region, reason } = &deg[0].kind else {
        unreachable!()
    };
    assert_eq!(region, "bad");
    assert!(reason.contains("@bad"), "diagnostic not located: {reason}");
    assert!(reason.contains("gang-synchronous"), "{reason}");

    // Both regions satisfy the gang-loop naming contract, and everything
    // the driver emitted verifies.
    for name in ["good__full", "good__partial", "bad__full", "bad__partial"] {
        let f = out.module.function(name).expect(name);
        assert_valid(f);
    }
    // The good region really was vectorized (vector IR present), the bad
    // one really was serialized (still calls the scalar helper per lane).
    let lane = out.module.function("bad__lane").expect("serialized body");
    assert!(lane
        .block_ids()
        .flat_map(|b| lane.block(b).insts.clone())
        .any(|i| matches!(lane.inst(i), psir::Inst::Call { callee, .. } if callee == "opaque")));
}

/// Differential check: the scalar-serialized fallback computes exactly what
/// the SPMD reference executor computes, including a partial tail gang
/// (n = 13 with gang 8 exercises __full once and __partial for 5 lanes).
#[test]
fn degraded_region_matches_scalar_reference_with_tail() {
    let gang = 8u32;
    let n: u64 = 13;
    let m = mixed_module(gang);
    let vals: Vec<i32> = (0..n as i32 + 3).collect();

    // (a) reference execution of the scalar SPMD region.
    let mut mem_a = Memory::default();
    let buf_a = i32_buf(&mut mem_a, &vals);
    let mut r = SpmdRef::new(&m, mem_a);
    r.run_region("bad", &[RtVal::S(buf_a)], n).expect("ref ok");

    // (b) the degraded module through the gang-loop driver.
    let out = vectorize_module(&m, &VectorizeOptions::gang_synchronous()).expect("degrades");
    assert_eq!(out.degraded, vec!["bad".to_string()]);
    let mut module_v = out.module;
    let mut fb = FunctionBuilder::new(
        "main",
        vec![
            Param::new("b", Ty::scalar(ScalarTy::Ptr)),
            Param::new("n", Ty::scalar(ScalarTy::I64)),
        ],
        Ty::Void,
    );
    emit_gang_loop(
        &mut fb,
        "bad",
        &[Value::Param(0)],
        Value::Param(1),
        gang,
        None,
    );
    fb.ret(None);
    let driver = fb.finish();
    assert_valid(&driver);
    module_v.add_function(driver);

    let mut mem_b = Memory::default();
    let buf_b = i32_buf(&mut mem_b, &vals);
    let mut it = psir::Interp::with_defaults(&module_v, mem_b);
    it.call("main", &[RtVal::S(buf_b), RtVal::S(n)])
        .expect("degraded run ok");

    let a = r.mem.read_bytes(buf_a, (n + 3) * 4).expect("range a");
    let b = it.mem.read_bytes(buf_b, (n + 3) * 4).expect("range b");
    assert_eq!(a, b, "degraded region diverged from the SPMD reference");
}

/// Strict mode turns the same failing region into a hard located error.
#[test]
fn strict_mode_is_a_hard_error() {
    let m = mixed_module(8);
    let err = vectorize_module_with(
        &m,
        &VectorizeOptions::gang_synchronous(),
        &PipelineOptions {
            verify: VerifyMode::Strict,
            inject: None,
            jobs: 1,
            ..PipelineOptions::default()
        },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("@bad"), "error not located: {msg}");
    assert!(msg.contains("gang-synchronous"), "{msg}");
}

/// Off mode skips verification but still degrades vectorization failures —
/// robustness is not tied to paying the verifier.
#[test]
fn verify_off_still_degrades() {
    let m = mixed_module(8);
    let out = vectorize_module_with(
        &m,
        &VectorizeOptions::gang_synchronous(),
        &PipelineOptions {
            verify: VerifyMode::Off,
            inject: None,
            jobs: 1,
            ..PipelineOptions::default()
        },
    )
    .expect("degrades with verification off");
    assert_eq!(out.degraded, vec!["bad".to_string()]);
    assert_eq!(out.vectorized, vec!["good".to_string()]);
}

/// A region that *cannot* be serialized (it uses horizontal operations,
/// which have no lane-at-a-time schedule) is the one case where a failing
/// region is a hard error even in fallback mode.
#[test]
fn non_serializable_failure_is_a_hard_error() {
    let gang = 8u32;
    let mut m = mixed_module(gang);
    // A region that both calls the opaque helper (fails gang-sync mode)
    // and uses a gang barrier (cannot be serialized).
    let mut fb = region_fb(
        "sync",
        vec![Param::new("c", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let i = fb.thread_num();
    let ci = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ci, None);
    let y = fb.call("opaque", Ty::scalar(ScalarTy::I32), vec![x]);
    fb.gang_sync();
    fb.store(ci, y, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    m.add_function(f);

    let err = vectorize_module(&m, &VectorizeOptions::gang_synchronous()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("horizontal"), "{msg}");
    assert!(msg.contains("@sync"), "error not located: {msg}");
}

/// The head-peeled variant of a degraded region: a region querying
/// `psim_is_head_gang()` still gets a `__head` specialization from the
/// fallback, and the peeled driver matches the reference.
#[test]
fn degraded_head_peeled_region_matches_reference() {
    let gang = 4u32;
    let n: u64 = 11; // head gang + one full gang + 3-lane tail
    let mut m = Module::new();

    let mut helper = FunctionBuilder::new(
        "opaque",
        vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
        Ty::scalar(ScalarTy::I32),
    );
    let r = helper.bin(BinOp::Add, Value::Param(0), 5i32);
    helper.ret(Some(r));
    m.add_function(helper.finish());

    // a[i] = is_head_gang ? opaque(a[i]) : a[i] + thread_num
    let mut fb = region_fb("hp", vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))], gang);
    let then_bb = fb.new_block("then");
    let else_bb = fb.new_block("else");
    let join = fb.new_block("join");
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let is_head = fb.intrin(
        psir::Intrinsic::IsHeadGang,
        vec![],
        Ty::scalar(ScalarTy::I1),
    );
    fb.cond_br(is_head, then_bb, else_bb);
    fb.switch_to(then_bb);
    let a = fb.call("opaque", Ty::scalar(ScalarTy::I32), vec![x]);
    fb.br(join);
    fb.switch_to(else_bb);
    let i32v = fb.cast(psir::CastKind::Trunc, i, Ty::scalar(ScalarTy::I32));
    let b = fb.bin(BinOp::Add, x, i32v);
    fb.br(join);
    fb.switch_to(join);
    let y = fb.phi(vec![(then_bb, a), (else_bb, b)]);
    fb.store(ai, y, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    m.add_function(f);

    let vals: Vec<i32> = (0..n as i32 + 2).map(|v| v * 3).collect();

    let mut mem_a = Memory::default();
    let buf_a = i32_buf(&mut mem_a, &vals);
    let mut r = SpmdRef::new(&m, mem_a);
    r.run_region("hp", &[RtVal::S(buf_a)], n).expect("ref ok");

    let out = vectorize_module(&m, &VectorizeOptions::gang_synchronous()).expect("degrades");
    assert_eq!(out.degraded, vec!["hp".to_string()]);
    let head = out.module.function("hp__head").expect("__head emitted");
    assert_valid(head);

    let mut module_v = out.module;
    let mut fb = FunctionBuilder::new(
        "main",
        vec![
            Param::new("a", Ty::scalar(ScalarTy::Ptr)),
            Param::new("n", Ty::scalar(ScalarTy::I64)),
        ],
        Ty::Void,
    );
    parsimony::region::emit_gang_loop_peeled(
        &mut fb,
        "hp",
        &[Value::Param(0)],
        Value::Param(1),
        gang,
        None,
        true,
    );
    fb.ret(None);
    let driver = fb.finish();
    assert_valid(&driver);
    module_v.add_function(driver);

    let mut mem_b = Memory::default();
    let buf_b = i32_buf(&mut mem_b, &vals);
    let mut it = psir::Interp::with_defaults(&module_v, mem_b);
    it.call("main", &[RtVal::S(buf_b), RtVal::S(n)])
        .expect("peeled degraded run ok");

    let a = r.mem.read_bytes(buf_a, (n + 2) * 4).expect("range a");
    let b = it.mem.read_bytes(buf_b, (n + 2) * 4).expect("range b");
    assert_eq!(a, b, "head-peeled degraded region diverged from reference");
}

//! The fault-injection sweep: for every registered injection site, the
//! pipeline must (a) not panic, (b) return a valid module, (c) degrade the
//! region rather than abort (except strict mode), and (d) the degraded
//! output must be differentially equal to the SPMD reference — i.e. every
//! recovery path in the driver actually preserves semantics.

use parsimony::{
    emit_gang_loop, fault, vectorize_module_with, FaultInjector, PipelineOptions, SpmdRef,
    VectorizeOptions, VerifyMode,
};
use psir::{
    assert_valid, BinOp, FunctionBuilder, Memory, Module, Param, RtVal, ScalarTy, SpmdInfo,
    ThreadCount, Ty, Value,
};

const GANG: u32 = 8;
const N: u64 = 13; // one full gang + a 5-lane tail

/// A small but non-trivial region: divergent if/else over element parity
/// with a loop-free body — enough to exercise structurize, shape analysis,
/// and masked emission at every injection point.
fn build_module() -> Module {
    let mut params = vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))];
    params.push(Param::new("gang_base", Ty::scalar(ScalarTy::I64)));
    params.push(Param::new("num_threads", Ty::scalar(ScalarTy::I64)));
    let mut fb = FunctionBuilder::new("k", params, Ty::Void);
    fb.set_spmd(SpmdInfo {
        gang_size: GANG,
        num_threads: ThreadCount::Dynamic,
        partial: false,
    });
    let then_bb = fb.new_block("then");
    let else_bb = fb.new_block("else");
    let join = fb.new_block("join");
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let parity = fb.bin(BinOp::And, x, 1i32);
    let is_odd = fb.cmp(psir::CmpPred::Ne, parity, 0i32);
    fb.cond_br(is_odd, then_bb, else_bb);
    fb.switch_to(then_bb);
    let a = fb.bin(BinOp::Mul, x, 3i32);
    fb.br(join);
    fb.switch_to(else_bb);
    let b = fb.bin(BinOp::Add, x, 100i32);
    fb.br(join);
    fb.switch_to(join);
    let y = fb.phi(vec![(then_bb, a), (else_bb, b)]);
    fb.store(ai, y, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);
    m
}

fn i32_buf(mem: &mut Memory, vals: &[i32]) -> u64 {
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    mem.alloc_bytes(&bytes, 64).expect("alloc")
}

/// Reference memory image after running the region on the SPMD executor.
fn reference_bytes(m: &Module, vals: &[i32]) -> Vec<u8> {
    let mut mem = Memory::default();
    let buf = i32_buf(&mut mem, vals);
    let mut r = SpmdRef::new(m, mem);
    r.run_region("k", &[RtVal::S(buf)], N).expect("ref ok");
    r.mem
        .read_bytes(buf, vals.len() as u64 * 4)
        .expect("range")
        .to_vec()
}

/// Memory image after running the (possibly degraded) compiled module
/// through the gang-loop driver.
fn compiled_bytes(module: &Module, vals: &[i32]) -> Vec<u8> {
    let mut module_v = module.clone();
    let mut fb = FunctionBuilder::new(
        "main",
        vec![
            Param::new("a", Ty::scalar(ScalarTy::Ptr)),
            Param::new("n", Ty::scalar(ScalarTy::I64)),
        ],
        Ty::Void,
    );
    emit_gang_loop(
        &mut fb,
        "k",
        &[Value::Param(0)],
        Value::Param(1),
        GANG,
        None,
    );
    fb.ret(None);
    let driver = fb.finish();
    assert_valid(&driver);
    module_v.add_function(driver);

    let mut mem = Memory::default();
    let buf = i32_buf(&mut mem, vals);
    let mut it = psir::Interp::with_defaults(&module_v, mem);
    it.call("main", &[RtVal::S(buf), RtVal::S(N)])
        .expect("compiled run ok");
    it.mem
        .read_bytes(buf, vals.len() as u64 * 4)
        .expect("range")
        .to_vec()
}

/// The sweep itself: every registered site, in one process, with the
/// injector passed explicitly (no environment mutation, so the test is
/// parallel-safe and deterministic).
#[test]
fn sweep_every_registered_site() {
    let m = build_module();
    let vals: Vec<i32> = (0..N as i32 + 2).map(|v| v * 5 - 3).collect();
    let want = reference_bytes(&m, &vals);

    for &(pass, site) in fault::SITES {
        let spec = format!("{pass}:{site}");
        let inj = FaultInjector::parse(&spec).expect("registered spec parses");
        let out = vectorize_module_with(
            &m,
            &VectorizeOptions::default(),
            &PipelineOptions {
                verify: VerifyMode::Fallback,
                inject: Some(inj),
                jobs: 1,
                ..PipelineOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{spec}: module must degrade, got Err({e})"));

        // (b) valid module out: every emitted function verifies.
        for f in out.module.functions() {
            let errs = psir::verify_function(f);
            assert!(errs.is_empty(), "{spec}: @{} invalid: {:?}", f.name, errs);
        }
        // (c) the region degraded rather than vectorized, with a warning
        // remark naming the injected fault.
        assert_eq!(out.degraded, vec!["k".to_string()], "{spec}");
        assert!(out.vectorized.is_empty(), "{spec}");
        assert!(
            out.warnings
                .iter()
                .any(|w| w.contains("degraded") && w.contains("injected fault")
                    || w.contains("degraded") && site == "corrupt"),
            "{spec}: expected a degradation warning, got {:?}",
            out.warnings
        );
        // (d) differential equality against the scalar reference.
        let got = compiled_bytes(&out.module, &vals);
        assert_eq!(got, want, "{spec}: degraded output diverged from reference");
    }
}

/// Injected panics are attributed to the pass that was active when they
/// fired, not generically to the pipeline.
#[test]
fn injected_panics_are_attributed_to_their_pass() {
    let m = build_module();
    for &(pass, site) in fault::SITES {
        if site != "panic" {
            continue;
        }
        let spec = format!("{pass}:{site}");
        let err = vectorize_module_with(
            &m,
            &VectorizeOptions::default(),
            &PipelineOptions {
                verify: VerifyMode::Strict,
                inject: Some(FaultInjector::parse(&spec).unwrap()),
                jobs: 1,
                ..PipelineOptions::default()
            },
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("[{pass}]")),
            "{spec}: panic not attributed to its pass: {msg}"
        );
        assert!(msg.contains("caught panic"), "{spec}: {msg}");
        assert!(msg.contains("@k"), "{spec}: not located: {msg}");
    }
}

/// The verify:corrupt site proves the in-pipeline verifier actually gates
/// what the driver emits: with verification off, corruption is not even
/// attempted (the knob controls the verify stage, the output stays clean).
#[test]
fn corrupt_site_is_caught_by_the_verifier() {
    let m = build_module();
    let inj = FaultInjector::parse("verify:corrupt").unwrap();

    // Strict: the verifier reports the planted corruption as a located error.
    let err = vectorize_module_with(
        &m,
        &VectorizeOptions::default(),
        &PipelineOptions {
            verify: VerifyMode::Strict,
            inject: Some(inj.clone()),
            jobs: 1,
            ..PipelineOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("[verify]"), "{err}");

    // Off: verification (and therefore the corruption hook) never runs, so
    // the region vectorizes normally.
    let out = vectorize_module_with(
        &m,
        &VectorizeOptions::default(),
        &PipelineOptions {
            verify: VerifyMode::Off,
            inject: Some(inj),
            jobs: 1,
            ..PipelineOptions::default()
        },
    )
    .expect("no verification, no corruption");
    assert_eq!(out.vectorized, vec!["k".to_string()]);
    assert!(out.degraded.is_empty());
}

/// The environment-variable path: `PSIM_INJECT_FAULT` is picked up by
/// `PipelineOptions::default()`. Kept to a single test (and a single spec)
/// because it mutates process state.
#[test]
fn env_var_arms_the_injector() {
    let m = build_module();
    // Safety: this is the only test in this binary that touches the
    // variable, and it restores it before returning.
    std::env::set_var(fault::ENV_VAR, "vectorize:error");
    let opts = PipelineOptions::default();
    std::env::remove_var(fault::ENV_VAR);
    assert_eq!(
        opts.inject,
        Some(FaultInjector::parse("vectorize:error").unwrap())
    );
    let out = vectorize_module_with(&m, &VectorizeOptions::default(), &opts)
        .expect("env-armed fault degrades");
    assert_eq!(out.degraded, vec!["k".to_string()]);
}

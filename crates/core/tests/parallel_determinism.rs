//! Determinism contract of the parallel region driver: for any worker
//! count, the printed module, the remark stream, the vectorized/degraded
//! lists, and hard errors are byte-identical to a serial run — including
//! under fault injection and `--verify=strict`, where every recovery and
//! error path must pick the same region-ordered answer regardless of which
//! worker got there first.

use parsimony::fault::{FaultInjector, SITES};
use parsimony::{
    vectorize_module_with, PipelineOptions, PipelineOutput, VectorizeOptions, VerifyMode,
};
use psir::{
    assert_valid, BinOp, CmpPred, FunctionBuilder, Module, Param, ScalarTy, SpmdInfo, ThreadCount,
    Ty, Value,
};

fn region_fb(name: &str, gang: u32) -> FunctionBuilder {
    let mut fb = FunctionBuilder::new(
        name,
        vec![
            Param::new("a", Ty::scalar(ScalarTy::Ptr)),
            Param::new("gang_base", Ty::scalar(ScalarTy::I64)),
            Param::new("num_threads", Ty::scalar(ScalarTy::I64)),
        ],
        Ty::Void,
    );
    fb.set_spmd(SpmdInfo {
        gang_size: gang,
        num_threads: ThreadCount::Dynamic,
        partial: false,
    });
    fb
}

/// A module with `n` regions of varied shape: straight-line arithmetic,
/// a data-dependent branch, and an opaque-call region, cycled. The opaque
/// call vectorizes (per-lane serialization) under default options but
/// degrades under gang-synchronous mode, giving the mixed
/// vectorized/degraded module the determinism tests want.
fn many_region_module(n: usize) -> Module {
    let mut m = Module::new();
    let mut helper = FunctionBuilder::new(
        "opaque",
        vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
        Ty::scalar(ScalarTy::I32),
    );
    let r = helper.bin(BinOp::Mul, Value::Param(0), 7i32);
    helper.ret(Some(r));
    m.add_function(helper.finish());

    for i in 0..n {
        let mut fb = region_fb(&format!("k{i:03}"), 8);
        let tid = fb.thread_num();
        let addr = fb.gep(Value::Param(0), tid, 4);
        let x = fb.load(Ty::scalar(ScalarTy::I32), addr, None);
        match i % 3 {
            0 => {
                let y = fb.bin(BinOp::Mul, x, (i as i32) + 2);
                let y = fb.bin(BinOp::Add, y, 1i32);
                fb.store(addr, y, None);
                fb.ret(None);
            }
            1 => {
                // if (x > i) a[tid] = x * 2; else a[tid] = x - 1;
                let c = fb.cmp(CmpPred::Sgt, x, i as i32);
                let then_b = fb.new_block("then");
                let else_b = fb.new_block("else");
                let join = fb.new_block("join");
                fb.cond_br(c, then_b, else_b);
                fb.switch_to(then_b);
                let t = fb.bin(BinOp::Mul, x, 2i32);
                fb.store(addr, t, None);
                fb.br(join);
                fb.switch_to(else_b);
                let e = fb.bin(BinOp::Sub, x, 1i32);
                fb.store(addr, e, None);
                fb.br(join);
                fb.switch_to(join);
                fb.ret(None);
            }
            _ => {
                let y = fb.call("opaque", Ty::scalar(ScalarTy::I32), vec![x]);
                fb.store(addr, y, None);
                fb.ret(None);
            }
        }
        let f = fb.finish();
        assert_valid(&f);
        m.add_function(f);
    }
    m
}

/// The byte-comparable fingerprint of a pipeline run.
fn fingerprint(out: &PipelineOutput) -> (String, String, Vec<String>, Vec<String>, Vec<String>) {
    (
        psir::print_module(&out.module),
        telemetry::remarks_to_text(&out.remarks),
        out.warnings.clone(),
        out.vectorized.clone(),
        out.degraded.clone(),
    )
}

fn run_at(
    m: &Module,
    opts: &VectorizeOptions,
    base: &PipelineOptions,
    jobs: usize,
) -> Result<PipelineOutput, String> {
    let popts = base.clone().with_jobs(jobs);
    vectorize_module_with(m, opts, &popts).map_err(|e| e.to_string())
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let m = many_region_module(13);
    let opts = VectorizeOptions::default();
    let base = PipelineOptions {
        verify: VerifyMode::Fallback,
        inject: None,
        jobs: 1,
        ..PipelineOptions::default()
    };
    let serial = run_at(&m, &opts, &base, 1).expect("serial run succeeds");
    assert_eq!(serial.vectorized.len(), 13);
    for jobs in [2, 4, 8] {
        let par = run_at(&m, &opts, &base, jobs).expect("parallel run succeeds");
        assert_eq!(
            fingerprint(&par),
            fingerprint(&serial),
            "jobs={jobs} output differs from serial"
        );
        // Timings are the only field allowed to vary: still one entry per
        // region, in region order, with the clamped worker count recorded.
        assert_eq!(par.timings.regions.len(), 13);
        assert_eq!(par.timings.jobs, jobs.min(13));
        let regions: Vec<&str> = par
            .timings
            .regions
            .iter()
            .map(|t| t.region.as_str())
            .collect();
        let mut sorted = regions.clone();
        sorted.sort_unstable();
        assert_eq!(regions, sorted, "timings must stay in region order");
    }
}

#[test]
fn mixed_degradation_is_deterministic_across_jobs() {
    // Gang-synchronous mode cannot vectorize the opaque-call regions, so a
    // third of the regions degrade; the degraded set and every remark must
    // not depend on the worker count.
    let m = many_region_module(12);
    let opts = VectorizeOptions::gang_synchronous();
    let base = PipelineOptions {
        verify: VerifyMode::Fallback,
        inject: None,
        jobs: 1,
        ..PipelineOptions::default()
    };
    let serial = run_at(&m, &opts, &base, 1).expect("serial run succeeds");
    assert_eq!(serial.degraded.len(), 4, "opaque-call regions degrade");
    assert_eq!(serial.vectorized.len(), 8);
    for jobs in [2, 4, 8] {
        let par = run_at(&m, &opts, &base, jobs).expect("parallel run succeeds");
        assert_eq!(
            fingerprint(&par),
            fingerprint(&serial),
            "jobs={jobs} degradation outcome differs from serial"
        );
    }
}

#[test]
fn fault_injection_fires_identically_on_every_worker_count() {
    let m = many_region_module(9);
    let opts = VectorizeOptions::default();
    for &(pass, site) in SITES {
        let spec = format!("{pass}:{site}");
        let base = PipelineOptions {
            verify: VerifyMode::Fallback,
            inject: Some(FaultInjector::parse(&spec).expect("registered site")),
            jobs: 1,
            ..PipelineOptions::default()
        };
        let serial = run_at(&m, &opts, &base, 1).expect("degrades, never errors");
        assert!(
            !serial.degraded.is_empty(),
            "{spec}: injection must degrade at least one region"
        );
        for jobs in [2, 4, 8] {
            let par = run_at(&m, &opts, &base, jobs).expect("degrades, never errors");
            assert_eq!(
                fingerprint(&par),
                fingerprint(&serial),
                "{spec}: jobs={jobs} output differs from serial"
            );
        }
    }
}

#[test]
fn strict_mode_reports_the_same_first_error_at_every_worker_count() {
    let m = many_region_module(9);
    let opts = VectorizeOptions::default();
    for &(pass, site) in SITES {
        let spec = format!("{pass}:{site}");
        let base = PipelineOptions {
            verify: VerifyMode::Strict,
            inject: Some(FaultInjector::parse(&spec).expect("registered site")),
            jobs: 1,
            ..PipelineOptions::default()
        };
        let serial_err = run_at(&m, &opts, &base, 1).expect_err("strict + injection must fail");
        for jobs in [2, 4, 8] {
            let par_err = run_at(&m, &opts, &base, jobs).expect_err("strict + injection must fail");
            assert_eq!(
                par_err, serial_err,
                "{spec}: jobs={jobs} strict error differs from serial"
            );
        }
    }
}

#[test]
fn job_count_is_clamped_to_region_count() {
    let m = many_region_module(2);
    let opts = VectorizeOptions::default();
    let base = PipelineOptions {
        verify: VerifyMode::Fallback,
        inject: None,
        jobs: 1,
        ..PipelineOptions::default()
    };
    let out = run_at(&m, &opts, &base, 64).expect("runs");
    assert_eq!(out.timings.jobs, 2, "jobs clamp to the region count");
    // And a zero request falls back to the serial path rather than hanging.
    let out0 = run_at(&m, &opts, &base, 0).expect("runs");
    assert_eq!(out0.timings.jobs, 1);
    assert_eq!(
        psir::print_module(&out.module),
        psir::print_module(&out0.module)
    );
}

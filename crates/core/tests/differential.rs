//! Differential tests: the vectorized region must produce exactly the same
//! memory effects as the SPMD reference executor for race-free programs.
//!
//! Each test builds a scalar SPMD region, runs it (a) through [`SpmdRef`]
//! and (b) through the Parsimony pass plus the gang-loop driver on the
//! plain interpreter, and compares the output buffers byte for byte.

use parsimony::{emit_gang_loop, vectorize_module, SpmdRef, VectorizeOptions};
use psir::{
    assert_valid, c_i64, BinOp, CmpPred, FunctionBuilder, Intrinsic, Memory, Module, Param,
    ReduceOp, RtVal, ScalarTy, SpmdInfo, ThreadCount, Ty, Value,
};

/// Builds an SPMD region builder with the implicit trailing params.
fn region_fb(name: &str, user_params: Vec<Param>, gang: u32) -> FunctionBuilder {
    let mut params = user_params;
    params.push(Param::new("gang_base", Ty::scalar(ScalarTy::I64)));
    params.push(Param::new("num_threads", Ty::scalar(ScalarTy::I64)));
    let mut fb = FunctionBuilder::new(name, params, Ty::Void);
    fb.set_spmd(SpmdInfo {
        gang_size: gang,
        num_threads: ThreadCount::Dynamic,
        partial: false,
    });
    fb
}

/// Adds a driver function `main` that runs the gang loop over the region.
fn add_driver(m: &mut Module, region: &str, n_user_params: usize, gang: u32) {
    let mut params: Vec<Param> = (0..n_user_params)
        .map(|i| Param::new(format!("p{i}"), Ty::scalar(ScalarTy::Ptr)))
        .collect();
    params.push(Param::new("n", Ty::scalar(ScalarTy::I64)));
    let mut fb = FunctionBuilder::new("main", params, Ty::Void);
    let captured: Vec<Value> = (0..n_user_params as u32).map(Value::Param).collect();
    let n = Value::Param(n_user_params as u32);
    emit_gang_loop(&mut fb, region, &captured, n, gang, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    m.add_function(f);
}

/// Runs both executions and compares the given byte ranges of memory.
fn compare(
    module: &Module,
    region: &str,
    gang: u32,
    setup: impl Fn(&mut Memory) -> (Vec<u64>, Vec<(u64, u64)>),
    num_threads: u64,
    opts: &VectorizeOptions,
) {
    // (a) reference execution
    let mut mem_a = Memory::default();
    let (args_a, ranges) = setup(&mut mem_a);
    let rt_args: Vec<RtVal> = args_a.iter().map(|&a| RtVal::S(a)).collect();
    let mut r = SpmdRef::new(module, mem_a);
    r.run_region(region, &rt_args, num_threads)
        .expect("spmd ref ok");

    // (b) vectorized execution through the driver
    let out = vectorize_module(module, opts).expect("vectorization ok");
    for name in [format!("{region}__full"), format!("{region}__partial")] {
        assert_valid(out.module.function(&name).expect("vectorized fn exists"));
    }
    let mut module_v = out.module;
    add_driver(&mut module_v, region, args_a.len(), gang);
    let mut mem_b = Memory::default();
    let (args_b, _) = setup(&mut mem_b);
    let mut it = psir::Interp::with_defaults(&module_v, mem_b);
    let mut call_args: Vec<RtVal> = args_b.iter().map(|&a| RtVal::S(a)).collect();
    call_args.push(RtVal::S(num_threads));
    it.call("main", &call_args).expect("vectorized run ok");

    for &(addr, len) in &ranges {
        let a = r.mem.read_bytes(addr, len).expect("range a");
        let b = it.mem.read_bytes(addr, len).expect("range b");
        assert_eq!(a, b, "memory mismatch in range {addr:#x}+{len}");
    }
}

fn i32_buf(mem: &mut Memory, vals: &[i32]) -> u64 {
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    mem.alloc_bytes(&bytes, 64).expect("alloc")
}

// ---------------------------------------------------------------------------

/// Listing 3: `tmp = a[i]; psim_gang_sync(); a[i+1] = tmp`.
/// Every gang shifts its window one to the right — the motivating example.
#[test]
fn listing3_shift_with_gang_sync() {
    let gang = 8u32;
    let mut fb = region_fb(
        "shift",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let tmp = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    fb.gang_sync();
    let i1 = fb.bin(BinOp::Add, i, 1i64);
    let ai1 = fb.gep(Value::Param(0), i1, 4);
    fb.store(ai1, tmp, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 32; // exact multiple of the gang size
    compare(
        &m,
        "shift",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..(n as i32 + 1)).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, (n + 1) * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// Divergent if/else over element parity, with a partial tail gang.
#[test]
fn divergent_if_else_with_tail_gang() {
    let gang = 8u32;
    let mut fb = region_fb(
        "diverge",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let then_bb = fb.new_block("then");
    let else_bb = fb.new_block("else");
    let join = fb.new_block("join");
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let parity = fb.bin(BinOp::And, x, 1i32);
    let is_odd = fb.cmp(CmpPred::Ne, parity, 0i32);
    fb.cond_br(is_odd, then_bb, else_bb);
    fb.switch_to(then_bb);
    let xo = fb.bin(BinOp::Add, x, 10i32);
    fb.br(join);
    fb.switch_to(else_bb);
    let xe = fb.bin(BinOp::Sub, x, 1i32);
    fb.br(join);
    fb.switch_to(join);
    let merged = fb.phi(vec![(then_bb, xo), (else_bb, xe)]);
    fb.store(ai, merged, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 27; // 3 full gangs + tail of 3
    compare(
        &m,
        "diverge",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).map(|v| v * 7 - 13).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// A uniform inner loop (same trip count for all threads) stays a scalar
/// loop; functional equivalence checked here.
#[test]
fn uniform_inner_loop() {
    let gang = 4u32;
    let mut fb = region_fb(
        "uloop",
        vec![
            Param::new("a", Ty::scalar(ScalarTy::Ptr)),
            Param::new("k", Ty::scalar(ScalarTy::Ptr)),
        ],
        gang,
    );
    let header = fb.new_block("header");
    let body = fb.new_block("body");
    let exit = fb.new_block("exit");
    let i = fb.thread_num();
    let kp = fb.load(Ty::scalar(ScalarTy::I64), Value::Param(1), None); // uniform bound
    let ai = fb.gep(Value::Param(0), i, 4);
    let x0 = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let entry = fb.current_block();
    fb.br(header);
    fb.switch_to(header);
    let j = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, c_i64(0))]);
    let acc = fb.phi_typed(Ty::scalar(ScalarTy::I32), vec![(entry, x0)]);
    let c = fb.cmp(CmpPred::Slt, j, kp);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let acc2 = fb.bin(BinOp::Add, acc, 3i32);
    let j2 = fb.bin(BinOp::Add, j, 1i64);
    fb.phi_add_incoming(j, body, j2);
    fb.phi_add_incoming(acc, body, acc2);
    fb.br(header);
    fb.switch_to(exit);
    fb.store(ai, acc, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 16;
    compare(
        &m,
        "uloop",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).collect();
            let a = i32_buf(mem, &vals);
            let k = mem.alloc_bytes(&5i64.to_le_bytes(), 8).expect("alloc");
            (vec![a, k], vec![(a, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// A divergent loop: each thread iterates `a[i] % 11` times. Exercises the
/// live-mask machinery, φ freezing, and the any-lane-active exit.
#[test]
fn divergent_loop_per_lane_trip_counts() {
    let gang = 8u32;
    let mut fb = region_fb(
        "vloop",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let header = fb.new_block("header");
    let body = fb.new_block("body");
    let exit = fb.new_block("exit");
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x0 = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let trips = fb.bin(BinOp::URem, x0, 11i32);
    let entry = fb.current_block();
    fb.br(header);
    fb.switch_to(header);
    let j = fb.phi_typed(Ty::scalar(ScalarTy::I32), vec![(entry, psir::c_i32(0))]);
    let acc = fb.phi_typed(Ty::scalar(ScalarTy::I32), vec![(entry, x0)]);
    let c = fb.cmp(CmpPred::Slt, j, trips);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let doubled = fb.bin(BinOp::Mul, acc, 2i32);
    let plus = fb.bin(BinOp::Add, doubled, 1i32);
    let j2 = fb.bin(BinOp::Add, j, 1i32);
    fb.phi_add_incoming(j, body, j2);
    fb.phi_add_incoming(acc, body, plus);
    fb.br(header);
    fb.switch_to(exit);
    fb.store(ai, acc, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 24;
    compare(
        &m,
        "vloop",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).map(|v| v * 31 + 7).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// Horizontal shuffle: rotate values one lane to the left within each gang
/// (Listing 5's psim_shuffle_sync pattern).
#[test]
fn shuffle_rotate_within_gang() {
    let gang = 8u32;
    let mut fb = region_fb(
        "rot",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let i = fb.thread_num();
    let lane = fb.lane_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let lp1 = fb.bin(BinOp::Add, lane, 1i64);
    let got = fb.shuffle_sync(x, lp1);
    fb.store(ai, got, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 16;
    compare(
        &m,
        "rot",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).map(|v| v * v + 3).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// Gang reduction: every thread writes the gang-wide sum.
#[test]
fn gang_reduce_sum() {
    let gang = 8u32;
    let mut fb = region_fb(
        "gsum",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let total = fb.intrin(
        Intrinsic::GangReduce(ReduceOp::Add),
        vec![x],
        Ty::scalar(ScalarTy::I32),
    );
    fb.store(ai, total, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    // Tail gang included: reduction must only cover live threads.
    let n: u64 = 19;
    compare(
        &m,
        "gsum",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).map(|v| v + 1).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// Strided access: thread i reads a[2*i] and a[2*i+1] (stride-2 pattern →
/// wide packed load + shuffle under a full mask) and writes their sum.
#[test]
fn strided_deinterleave_sum() {
    let gang = 8u32;
    let mut fb = region_fb(
        "deint",
        vec![
            Param::new("a", Ty::scalar(ScalarTy::Ptr)),
            Param::new("o", Ty::scalar(ScalarTy::Ptr)),
        ],
        gang,
    );
    let i = fb.thread_num();
    let two_i = fb.bin(BinOp::Mul, i, 2i64);
    let p0 = fb.gep(Value::Param(0), two_i, 4);
    let x0 = fb.load(Ty::scalar(ScalarTy::I32), p0, None);
    let two_i1 = fb.bin(BinOp::Add, two_i, 1i64);
    let p1 = fb.gep(Value::Param(0), two_i1, 4);
    let x1 = fb.load(Ty::scalar(ScalarTy::I32), p1, None);
    let s = fb.bin(BinOp::Add, x0, x1);
    let po = fb.gep(Value::Param(1), i, 4);
    fb.store(po, s, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 16;
    compare(
        &m,
        "deint",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..(2 * n) as i32).map(|v| v * 3 - 5).collect();
            let a = i32_buf(mem, &vals);
            let o = i32_buf(mem, &vec![0; n as usize]);
            (vec![a, o], vec![(o, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// Serialized scalar call: the region calls a module-local helper that the
/// vectorizer cannot inline, so it is serialized per active lane (§4.2.3).
#[test]
fn serialized_scalar_call() {
    let gang = 4u32;
    let mut m = Module::new();

    // Helper: doubles its argument and adds 7.
    let mut hb = FunctionBuilder::new(
        "helper",
        vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
        Ty::scalar(ScalarTy::I32),
    );
    let d = hb.bin(BinOp::Mul, Value::Param(0), 2i32);
    let r = hb.bin(BinOp::Add, d, 7i32);
    hb.ret(Some(r));
    m.add_function(hb.finish());

    let mut fb = region_fb(
        "sercall",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let y = fb.call("helper", Ty::scalar(ScalarTy::I32), vec![x]);
    fb.store(ai, y, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    m.add_function(f);

    let n: u64 = 11; // tail gang exercises the per-lane guards
    compare(
        &m,
        "sercall",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).map(|v| v - 4).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// The no-shape ablation must still be functionally correct (just slower).
#[test]
fn no_shape_ablation_is_correct() {
    let gang = 8u32;
    let mut fb = region_fb(
        "abl",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let then_bb = fb.new_block("then");
    let join = fb.new_block("join");
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let c = fb.cmp(CmpPred::Sgt, x, 50i32);
    fb.cond_br(c, then_bb, join);
    fb.switch_to(then_bb);
    let halved = fb.bin(BinOp::SDiv, x, 2i32);
    fb.br(join);
    fb.switch_to(join);
    let merged = fb.phi(vec![(then_bb, halved), (fb.func().entry, x)]);
    fb.store(ai, merged, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 21;
    let opts = VectorizeOptions {
        enable_shape: false,
        ..VectorizeOptions::default()
    };
    compare(
        &m,
        "abl",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).map(|v| v * 13 % 101).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &opts,
    );
}

/// Head/tail gang intrinsics: the head gang zeroes its first element, the
/// tail gang writes a sentinel at its first element.
#[test]
fn head_and_tail_gang_intrinsics() {
    let gang = 4u32;
    let mut fb = region_fb("ht", vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))], gang);
    let then_bb = fb.new_block("head");
    let join = fb.new_block("join");
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let is_head = fb.intrin(Intrinsic::IsHeadGang, vec![], Ty::scalar(ScalarTy::I1));
    fb.cond_br(is_head, then_bb, join);
    fb.switch_to(then_bb);
    let plus100 = fb.bin(BinOp::Add, x, 100i32);
    fb.br(join);
    fb.switch_to(join);
    let entry = fb.func().entry;
    let merged = fb.phi(vec![(then_bb, plus100), (entry, x)]);
    let is_tail = fb.intrin(Intrinsic::IsTailGang, vec![], Ty::scalar(ScalarTy::I1));
    let neg = fb.bin(BinOp::Sub, psir::c_i32(0), merged);
    let fin = fb.select(is_tail, neg, merged);
    fb.store(ai, fin, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);

    let n: u64 = 14; // head gang, middle gangs, tail gang of 2
    compare(
        &m,
        "ht",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32).map(|v| v + 1).collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &VectorizeOptions::default(),
    );
}

/// The §4.2.3 BOSCC optimization (guard linearized arms with an any-active
/// test) must be a pure optimization: identical results on divergent code.
#[test]
fn boscc_is_semantics_preserving() {
    let gang = 8u32;
    let mut fb = region_fb(
        "bos",
        vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))],
        gang,
    );
    let then_bb = fb.new_block("then");
    let else_bb = fb.new_block("else");
    let join = fb.new_block("join");
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let c = fb.cmp(CmpPred::Sgt, x, 500i32);
    fb.cond_br(c, then_bb, else_bb);
    fb.switch_to(then_bb);
    let xt = fb.bin(BinOp::Sub, x, 1000i32);
    fb.br(join);
    fb.switch_to(else_bb);
    let xe = fb.bin(BinOp::Add, x, 5i32);
    fb.br(join);
    fb.switch_to(join);
    let m = fb.phi(vec![(then_bb, xt), (else_bb, xe)]);
    fb.store(ai, m, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut module = Module::new();
    module.add_function(f);

    // Inputs chosen so some gangs are fully converged (all ≤ 500) and some
    // diverge — BOSCC's skip path and taken path both execute.
    let n: u64 = 40;
    let opts = parsimony::VectorizeOptions {
        boscc: true,
        ..parsimony::VectorizeOptions::default()
    };
    compare(
        &module,
        "bos",
        gang,
        |mem| {
            let vals: Vec<i32> = (0..n as i32)
                .map(|v| if v / 8 % 2 == 0 { v } else { v * 100 })
                .collect();
            let a = i32_buf(mem, &vals);
            (vec![a], vec![(a, n * 4)])
        },
        n,
        &opts,
    );
}

//! Diagnostic paths of the vectorizer: things the pass must *refuse* or
//! *warn about*, per the paper's semantics.

use parsimony::{vectorize_function, vectorize_module, SpmdRef, VectorizeError, VectorizeOptions};
use psir::{
    assert_valid, BinOp, CmpPred, FunctionBuilder, Memory, Module, Param, RtVal, ScalarTy,
    SpmdInfo, ThreadCount, Ty, Value,
};

fn region_fb(name: &str, user_params: Vec<Param>, gang: u32) -> FunctionBuilder {
    let mut params = user_params;
    params.push(Param::new("gang_base", Ty::scalar(ScalarTy::I64)));
    params.push(Param::new("num_threads", Ty::scalar(ScalarTy::I64)));
    let mut fb = FunctionBuilder::new(name, params, Ty::Void);
    fb.set_spmd(SpmdInfo {
        gang_size: gang,
        num_threads: ThreadCount::Dynamic,
        partial: false,
    });
    fb
}

/// §4.2.3: "separately-compiled scalar functions cannot be transformed to
/// execute in gang-synchronous fashion" — the ispc-like mode cannot
/// vectorize them, while Parsimony serializes them. Under the fault-tolerant
/// driver the gang-synchronous failure no longer aborts the module: the
/// region degrades to a scalar gang-serialized loop with a warning remark
/// carrying the gang-synchronous diagnostic. `--verify=strict` keeps the
/// old hard-error behavior.
#[test]
fn gang_sync_mode_rejects_scalar_calls() {
    let mut m = Module::new();
    let mut helper = FunctionBuilder::new(
        "opaque",
        vec![Param::new("x", Ty::scalar(ScalarTy::I32))],
        Ty::scalar(ScalarTy::I32),
    );
    let r = helper.bin(BinOp::Add, Value::Param(0), 1i32);
    helper.ret(Some(r));
    m.add_function(helper.finish());

    let mut fb = region_fb("k", vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))], 8);
    let i = fb.thread_num();
    let ai = fb.gep(Value::Param(0), i, 4);
    let x = fb.load(Ty::scalar(ScalarTy::I32), ai, None);
    let y = fb.call("opaque", Ty::scalar(ScalarTy::I32), vec![x]);
    fb.store(ai, y, None);
    fb.ret(None);
    m.add_function(fb.finish());

    // Parsimony mode: fine (serialized per lane), nothing degraded.
    let out = vectorize_module(&m, &VectorizeOptions::default()).expect("parsimony serializes");
    assert!(out.degraded.is_empty());
    assert_eq!(out.vectorized, vec!["k".to_string()]);

    // Gang-synchronous mode: the region cannot be vectorized, so the driver
    // degrades it to the scalar gang-serialized fallback and keeps going.
    let out = vectorize_module(&m, &VectorizeOptions::gang_synchronous())
        .expect("failing region degrades instead of aborting the module");
    assert_eq!(out.degraded, vec!["k".to_string()]);
    assert!(out.vectorized.is_empty());
    assert!(
        out.warnings
            .iter()
            .any(|w| w.contains("gang-synchronous") && w.contains("degraded")),
        "expected a degradation warning carrying the diagnostic, got {:?}",
        out.warnings
    );
    // The gang-loop contract is still satisfied: __full/__partial exist.
    assert!(out.module.function("k__full").is_some());
    assert!(out.module.function("k__partial").is_some());

    // Strict mode keeps the hard error.
    let err = parsimony::vectorize_module_with(
        &m,
        &VectorizeOptions::gang_synchronous(),
        &parsimony::PipelineOptions {
            verify: parsimony::VerifyMode::Strict,
            inject: None,
            jobs: 1,
            ..parsimony::PipelineOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, VectorizeError::Invalid(_)));
    assert!(err.to_string().contains("gang-synchronous"));
}

/// §4.2.3: a store to a uniform address is racy — the compiler emits a
/// compile-time warning (and picks one thread's store).
#[test]
fn uniform_store_warns() {
    let mut fb = region_fb("w", vec![Param::new("out", Ty::scalar(ScalarTy::Ptr))], 8);
    fb.store(Value::Param(0), 42i32, None);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let v = vectorize_function(&f, &VectorizeOptions::default(), false).unwrap();
    assert!(
        v.warnings.iter().any(|w| w.contains("racy")),
        "expected the racy-store warning, got {:?}",
        v.warnings
    );
    // And it still executes: exactly one 42 lands.
    let mut m = Module::new();
    m.add_function(v.func);
    let mut mem = Memory::default();
    let out = mem.alloc(4, 64).unwrap();
    let mut it = psir::Interp::with_defaults(&m, mem);
    it.call("w__full", &[RtVal::S(out), RtVal::S(0), RtVal::S(8)])
        .unwrap();
    let got = i32::from_le_bytes(it.mem.read_bytes(out, 4).unwrap().try_into().unwrap());
    assert_eq!(got, 42);
}

/// Multi-exit loops (break) are outside the supported structured subset and
/// must be rejected with a diagnostic, not miscompiled.
#[test]
fn multi_exit_loop_rejected() {
    let mut fb = region_fb("me", vec![Param::new("n", Ty::scalar(ScalarTy::I64))], 8);
    let header = fb.new_block("header");
    let body = fb.new_block("body");
    let latch = fb.new_block("latch");
    let exit = fb.new_block("exit");
    let entry = fb.current_block();
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, psir::c_i64(0))]);
    let c = fb.cmp(CmpPred::Slt, i, Value::Param(0));
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let brk = fb.cmp(CmpPred::Eq, i, 3i64);
    fb.cond_br(brk, exit, latch); // break edge
    fb.switch_to(latch);
    let i2 = fb.bin(BinOp::Add, i, 1i64);
    fb.phi_add_incoming(i, latch, i2);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(None);
    let f = fb.finish();
    let err = vectorize_function(&f, &VectorizeOptions::default(), false).unwrap_err();
    assert!(matches!(err, VectorizeError::Unstructured(_)));
}

/// Regions must return void (outputs flow through memory, §3).
#[test]
fn non_void_region_rejected() {
    let mut params = vec![Param::new("gang_base", Ty::scalar(ScalarTy::I64))];
    params.push(Param::new("num_threads", Ty::scalar(ScalarTy::I64)));
    let mut fb = FunctionBuilder::new("nv", params, Ty::scalar(ScalarTy::I32));
    fb.set_spmd(SpmdInfo {
        gang_size: 8,
        num_threads: ThreadCount::Dynamic,
        partial: false,
    });
    fb.ret(Some(psir::c_i32(0)));
    let f = fb.finish();
    let err = vectorize_function(&f, &VectorizeOptions::default(), false).unwrap_err();
    assert!(err.to_string().contains("void"));
}

/// The SPMD reference executor detects divergent barriers (threads blocked
/// at different horizontal ops), which the model leaves undefined.
#[test]
fn spmd_ref_detects_divergent_barrier() {
    // if (lane even) { shuffle } else { gang_sync } — a divergent barrier.
    let mut fb = region_fb("db", vec![Param::new("a", Ty::scalar(ScalarTy::Ptr))], 4);
    let then_bb = fb.new_block("then");
    let else_bb = fb.new_block("else");
    let join = fb.new_block("join");
    let lane = fb.lane_num();
    let par = fb.bin(BinOp::And, lane, 1i64);
    let even = fb.cmp(CmpPred::Eq, par, 0i64);
    fb.cond_br(even, then_bb, else_bb);
    fb.switch_to(then_bb);
    let _s = fb.shuffle_sync(lane, 0i64);
    fb.br(join);
    fb.switch_to(else_bb);
    fb.gang_sync();
    fb.br(join);
    fb.switch_to(join);
    fb.ret(None);
    let f = fb.finish();
    assert_valid(&f);
    let mut m = Module::new();
    m.add_function(f);
    let mut r = SpmdRef::new(&m, Memory::default());
    let err = r
        .run_region("db", &[RtVal::S(64)], 4)
        .expect_err("divergent barrier must be reported");
    assert!(err.to_string().contains("divergent barrier"));
}

/// Runaway divergent loops hit the reference executor's step limit instead
/// of hanging the test suite.
#[test]
fn spmd_ref_step_limit() {
    let mut fb = region_fb("inf", vec![], 4);
    let header = fb.new_block("header");
    let body = fb.new_block("body");
    let exit = fb.new_block("exit");
    let entry = fb.current_block();
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(entry, psir::c_i64(0))]);
    let c = fb.cmp(CmpPred::Sge, i, 0i64); // always true
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let i2 = fb.bin(BinOp::Add, i, 1i64);
    fb.phi_add_incoming(i, body, i2);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(None);
    let mut m = Module::new();
    m.add_function(fb.finish());
    let mut r = SpmdRef::new(&m, Memory::default());
    r.set_step_limit(10_000);
    let err = r.run_region("inf", &[], 4).unwrap_err();
    assert!(matches!(err, psir::ExecError::StepLimit));
}

/// Irreducible control flow (a loop entered from two places) is outside the
/// structured subset and must be rejected with a diagnostic.
#[test]
fn irreducible_cfg_rejected() {
    let mut fb = region_fb("irr", vec![Param::new("n", Ty::scalar(ScalarTy::I64))], 4);
    let a = fb.new_block("a");
    let b = fb.new_block("b");
    let exit = fb.new_block("exit");
    let c0 = fb.cmp(CmpPred::Sgt, Value::Param(0), 0i64);
    // Two entries into the a↔b cycle: classic irreducibility.
    fb.cond_br(c0, a, b);
    fb.switch_to(a);
    let ca = fb.cmp(CmpPred::Sgt, Value::Param(0), 5i64);
    fb.cond_br(ca, b, exit);
    fb.switch_to(b);
    let cb = fb.cmp(CmpPred::Sgt, Value::Param(0), 10i64);
    fb.cond_br(cb, a, exit);
    fb.switch_to(exit);
    fb.ret(None);
    let f = fb.finish();
    let err = vectorize_function(&f, &VectorizeOptions::default(), false).unwrap_err();
    assert!(matches!(err, VectorizeError::Unstructured(_)), "{err}");
}

//! Ablation benches for the design choices DESIGN.md calls out:
//! shape analysis on/off (gather pressure), the strided-shuffle window,
//! and gang-size choice.

use criterion::{criterion_group, criterion_main, Criterion};
use suite::runner::{run_kernel, Config};
use suite::simdlib::kernels;

fn bench_shape_ablation(c: &mut Criterion) {
    let ks = kernels(2048);
    for name in ["add_sat_u8", "bgr_to_gray", "blur3_u8"] {
        let k = ks.iter().find(|k| k.name == name).expect("kernel exists");
        let mut g = c.benchmark_group(format!("ablation/shape/{name}"));
        g.sample_size(10);
        g.bench_function("with-shape", |b| {
            b.iter(|| run_kernel(k, Config::Parsimony).expect("runs"));
        });
        g.bench_function("no-shape", |b| {
            b.iter(|| run_kernel(k, Config::ParsimonyNoShape).expect("runs"));
        });
        g.finish();
    }
}

fn bench_boscc(c: &mut Criterion) {
    // §4.2.3's branch-on-superword-condition: pays a scalar any-test per
    // arm, wins when gangs are often fully converged.
    use parsimony::{vectorize_module, VectorizeOptions};
    let ks = kernels(2048);
    let k = ks
        .iter()
        .find(|k| k.name == "background_u8")
        .expect("kernel exists");
    let mut g = c.benchmark_group("ablation/boscc/background_u8");
    g.sample_size(10);
    for (label, boscc) in [("linearized", false), ("boscc", true)] {
        let m = psimc::compile(&k.psim_src).expect("compiles");
        let opts = VectorizeOptions {
            boscc,
            ..VectorizeOptions::default()
        };
        let _ = vectorize_module(&m, &opts).expect("vectorizes");
        g.bench_function(label, |b| {
            b.iter(|| {
                let m = psimc::compile(&k.psim_src).expect("compiles");
                vectorize_module(&m, &opts).expect("vectorizes")
            });
        });
    }
    g.finish();
}

fn bench_gang_sizes(c: &mut Criterion) {
    // §1's argument: gang size is a per-region program constant; the sweet
    // spot depends on the element width.
    let base = kernels(2048)
        .into_iter()
        .find(|k| k.name == "add_sat_u8")
        .expect("kernel exists");
    let mut g = c.benchmark_group("ablation/gang-size/add_sat_u8");
    g.sample_size(10);
    for gang in [16u32, 32, 64, 128] {
        let mut k = suite::Kernel::new(
            format!("add_sat_u8_g{gang}"),
            "ablation",
            gang,
            base.psim_src
                .replace("psim gang(64)", &format!("psim gang({gang})")),
            base.serial_src.clone(),
            base.buffers.clone(),
            base.n,
        );
        k.extra_args = base.extra_args.clone();
        g.bench_function(format!("gang{gang}"), |b| {
            b.iter(|| run_kernel(&k, Config::Parsimony).expect("runs"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shape_ablation, bench_boscc, bench_gang_sizes);
criterion_main!(benches);

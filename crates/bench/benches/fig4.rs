//! Criterion timing of the Figure 4 configurations (one ispc workload per
//! group; the value measured is the wall time of the cost-model simulation,
//! which is proportional to simulated work).

use criterion::{criterion_group, criterion_main, Criterion};
use suite::ispc::{kernels, IspcSizes};
use suite::runner::{run_kernel, Config};

fn bench_fig4(c: &mut Criterion) {
    let ks = kernels(IspcSizes::tiny());
    for k in &ks {
        let mut g = c.benchmark_group(format!("fig4/{}", k.name));
        g.sample_size(10);
        for cfg in [Config::Autovec, Config::Parsimony, Config::GangSync] {
            g.bench_function(cfg.label(), |b| {
                b.iter(|| run_kernel(k, cfg).expect("runs"));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

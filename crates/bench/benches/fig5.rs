//! Criterion timing of the Figure 5 configurations over a representative
//! subset of the 72 Simd Library kernels (the full sweep is the `fig5`
//! binary; Criterion's statistics over all 72×4 runs would take hours).

use criterion::{criterion_group, criterion_main, Criterion};
use suite::runner::{run_kernel, Config};
use suite::simdlib::kernels;

fn bench_fig5(c: &mut Criterion) {
    let ks = kernels(2048);
    // One representative per mechanism: native saturating ops, the
    // sat-sub absolute-difference trick, strided loads (packed + shuffle),
    // the vector math library, the vpsadbw reduction, and compare/select.
    let names = [
        "add_sat_u8",
        "abs_diff_u8",
        "bgr_to_gray",
        "sigmoid_f32",
        "abs_diff_sum_u8",
        "binarize_u8",
    ];
    for name in names {
        let k = ks.iter().find(|k| k.name == name).expect("kernel exists");
        let mut g = c.benchmark_group(format!("fig5/{name}"));
        g.sample_size(10);
        for cfg in [
            Config::Scalar,
            Config::Autovec,
            Config::Parsimony,
            Config::Handwritten,
        ] {
            g.bench_function(cfg.label(), |b| {
                b.iter(|| run_kernel(k, cfg).expect("runs"));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

//! Figure 5: speedup over scalar compilation on 72 Simd Library benchmarks.
//!
//! Paper numbers (Xeon Gold 6258R, AVX-512): auto-vectorization geomean
//! 3.46×, Parsimony 7.70×, hand-written intrinsics 7.91×; Parsimony reaches
//! 0.97× of hand-written. This harness prints the same three series from
//! the simulated-cycle cost model, plus the shape-analysis ablation when
//! requested.
//!
//! Usage:
//!   cargo run --release -p psim-bench --bin fig5 `[-- --n N] [--no-shape] [--avx2] [--stride-window] [--profile[=json]] [-j N]`
//!
//! `-j N` / `--jobs N` sets the region-compilation worker count for every
//! kernel build (default: `PSIM_JOBS` or the available parallelism);
//! results are identical at every level, only compile time changes.

use psim_bench::{
    apply_engine_flag, apply_target_flag, cell, geomean_speedup, measure_iters, parse_profile_flag,
    profile_kernels, total_wall_ms, ProfileMode,
};
use suite::runner::{run_kernel_with, Config};
use suite::simdlib::{kernels, DEFAULT_N};
use telemetry::cli::Help;
use vmach::{Target, TargetCost};

const HELP: Help = Help {
    bin: "fig5",
    about: "Reproduces Figure 5: speedup over scalar compilation on the 72 Simd Library \
            kernels (autovec, Parsimony, hand-written intrinsics).",
    usage: "[options]",
    flags: &[
        ("--n N", "element count (positive multiple of 256)"),
        ("--iters N", "best-of-N wall-clock measurement (default: 1)"),
        ("--no-shape", "add the shape-analysis ablation column"),
        ("--avx2", "add the 256-bit legalization portability table"),
        ("--stride-window", "add the strided-shuffle window ablation"),
        ("--profile[=json]", "print the cycle-attribution profile"),
        (
            "--engine E",
            "interpreter engine: fast (default), reference, or native",
        ),
        (
            "--target T",
            "costing machine: x86-avx512 (default), x86-avx2, or sve-vla[:VL]",
        ),
        (
            "--target-matrix",
            "add the target×config matrix table (all targets, same IR)",
        ),
        ("-j, --jobs N", "region-compilation worker count"),
        ("-h, --help", "print this help"),
        (
            "-V, --version",
            "print version, protocol, and toolchain info",
        ),
    ],
};

fn usage() -> ! {
    eprintln!(
        "usage: fig5 [--n N] [--iters N] [--no-shape] [--avx2] [--stride-window] \
         [--profile[=json]] [--engine fast|reference|native] \
         [--target x86-avx512|x86-avx2|sve-vla[:VL]] [--target-matrix] [-j N | --jobs N]"
    );
    std::process::exit(2);
}

/// Applies `-j`: the kernel builders compile through default
/// [`parsimony::PipelineOptions`], which honor `PSIM_JOBS`, so the flag is
/// delivered through the environment before any compilation starts.
fn set_jobs(tool: &str, v: Option<&String>) {
    let Some(v) = v else { usage() };
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => std::env::set_var(parsimony::JOBS_ENV_VAR, v),
        _ => {
            eprintln!("{tool}: --jobs takes a positive integer, got {v:?}");
            usage();
        }
    }
}

fn main() {
    // As in fig4: failures become a one-line formatted error and a nonzero
    // exit, never a Rust panic backtrace.
    if let Err(msg) = parsimony::fault::catch_pass_panic(run) {
        eprintln!("fig5: error: {msg}");
        std::process::exit(1);
    }
}

fn run() {
    let args: Vec<String> = std::env::args().collect();
    for a in args.iter().skip(1) {
        HELP.intercept(a, env!("CARGO_PKG_VERSION"));
    }
    let mut n = DEFAULT_N;
    let mut with_noshape = false;
    let mut iters = 1usize;
    let mut with_avx2 = false;
    let mut with_window = false;
    let mut with_target_matrix = false;
    let mut profile_mode = ProfileMode::Off;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("fig5: --n takes an element count");
                    usage();
                };
                n = v.parse().unwrap_or_else(|_| {
                    eprintln!("fig5: --n takes an element count, got {v:?}");
                    usage();
                });
                if n == 0 || !n.is_multiple_of(256) {
                    eprintln!("fig5: --n must be a positive multiple of 256, got {n}");
                    usage();
                }
            }
            "--iters" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                match v.parse::<usize>() {
                    Ok(x) if x >= 1 => iters = x,
                    _ => {
                        eprintln!("fig5: --iters takes a positive integer, got {v:?}");
                        usage();
                    }
                }
            }
            "--no-shape" => with_noshape = true,
            "--avx2" => with_avx2 = true,
            "--stride-window" => with_window = true,
            "--engine" => {
                i += 1;
                if !apply_engine_flag("fig5", args.get(i)) {
                    usage();
                }
            }
            "--target" => {
                i += 1;
                if !apply_target_flag("fig5", args.get(i)) {
                    usage();
                }
            }
            flag if flag.starts_with("--target=") => {
                let v = flag["--target=".len()..].to_string();
                if !apply_target_flag("fig5", Some(&v)) {
                    usage();
                }
            }
            "--target-matrix" => with_target_matrix = true,
            "-j" | "--jobs" => {
                i += 1;
                set_jobs("fig5", args.get(i));
            }
            other => match parse_profile_flag(other) {
                Some(m) => profile_mode = m,
                None => {
                    eprintln!("fig5: unknown flag {other}");
                    usage();
                }
            },
        }
        i += 1;
    }

    if profile_mode == ProfileMode::Json {
        let profile = profile_kernels(&kernels(n), &[Config::Parsimony]);
        println!("{}", profile.to_json().to_string_pretty());
        return;
    }

    let mut cfgs = vec![
        Config::Scalar,
        Config::Autovec,
        Config::Parsimony,
        Config::Handwritten,
    ];
    if with_noshape {
        cfgs.push(Config::ParsimonyNoShape);
    }

    eprintln!("figure 5: 72 Simd Library kernels, n = {n} elements");
    let ks = kernels(n);
    let rows = measure_iters(&ks, &cfgs, iters);

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>9}{}",
        "kernel",
        "autovec",
        "parsim",
        "hand",
        "wall(ms)",
        if with_noshape { "  noshape" } else { "" }
    );
    println!("{}", "-".repeat(if with_noshape { 70 } else { 60 }));
    for r in &rows {
        let a = r.speedup(Config::Autovec, Config::Scalar);
        let p = r.speedup(Config::Parsimony, Config::Scalar);
        let h = r.speedup(Config::Handwritten, Config::Scalar);
        print!(
            "{:<22} {} {} {} {:>9.2}",
            r.name,
            cell(a),
            cell(p),
            cell(h),
            r.wall_ms(Config::Parsimony)
        );
        if with_noshape {
            let ns = r.speedup(Config::ParsimonyNoShape, Config::Scalar);
            print!(" {}", cell(ns));
        }
        println!();
    }
    println!("{}", "-".repeat(if with_noshape { 70 } else { 60 }));
    println!(
        "wall time (parsimony, best of {iters}): {:.1} ms total",
        total_wall_ms(&rows, Config::Parsimony)
    );

    let ga = geomean_speedup(&rows, Config::Autovec, Config::Scalar);
    let gp = geomean_speedup(&rows, Config::Parsimony, Config::Scalar);
    let gh = geomean_speedup(&rows, Config::Handwritten, Config::Scalar);
    println!("geomean speedup over scalar:");
    println!("  LLVM-style auto-vectorization : {ga:5.2}x   (paper: 3.46x)");
    println!("  Parsimony                     : {gp:5.2}x   (paper: 7.70x)");
    println!("  hand-written vector code      : {gh:5.2}x   (paper: 7.91x)");
    if with_noshape {
        let gn = geomean_speedup(&rows, Config::ParsimonyNoShape, Config::Scalar);
        println!("  Parsimony without shape analysis : {gn:5.2}x   (ablation)");
    }
    let ratio = gp / gh;
    println!(
        "Parsimony / hand-written              : {ratio:5.2}   (paper: 0.97; artifact gate: > 0.90)"
    );
    println!(
        "Parsimony / auto-vectorization        : {:5.2}   (paper: 2.23x)",
        gp / ga
    );
    assert!(
        ratio > 0.90,
        "artifact acceptance requires Parsimony ≥ 90% of hand-written"
    );
    assert!(gp > ga, "Parsimony must beat the auto-vectorizer overall");

    if profile_mode == ProfileMode::Text {
        let profile = profile_kernels(&ks, &[Config::Parsimony]);
        println!("\ncycle-attribution profile (per kernel/config/function):");
        print!("{}", profile.render_text());
    }

    if with_window {
        // §4.2.3 ablation: the strided-shuffle window (default 4× the gang
        // size). Window 0 forces gather/scatter on every non-unit stride;
        // the difference is the packed+shuffle payoff.
        use parsimony::VectorizeOptions;
        use suite::runner::run_kernel_custom;
        println!("\nstride-window ablation (Parsimony cycles):");
        println!(
            "{:<22} {:>12} {:>12} {:>8}",
            "kernel", "window=4", "window=0", "ratio"
        );
        for name in [
            "deinterleave2_u8",
            "interleave2_u8",
            "bgr_to_gray",
            "gray_to_bgr",
            "extract_g_u8",
            "reverse_u8",
        ] {
            let k = ks.iter().find(|k| k.name == name).expect("kernel");
            let w4 = run_kernel_custom(k, &VectorizeOptions::default()).expect("runs");
            let w0 = run_kernel_custom(
                k,
                &VectorizeOptions {
                    stride_window: 0,
                    ..VectorizeOptions::default()
                },
            )
            .expect("runs");
            assert_eq!(
                w4.outputs, w0.outputs,
                "{name}: window must not change results"
            );
            println!(
                "{:<22} {:>12} {:>12} {:>8.2}",
                name,
                w4.cycles,
                w0.cycles,
                w0.cycles as f64 / w4.cycles as f64
            );
        }
    }

    if with_target_matrix {
        // The target×config matrix: the *same* compiled IR priced on every
        // modeled machine, fixed-width and scalable. Outputs are identical
        // by construction (targets never change semantics); only cycle
        // attribution moves. A subset of kernels keeps it quick.
        let targets = [
            Target::avx512(),
            Target::avx2(),
            Target::sve(128),
            Target::sve(512),
            Target::sve(2048),
        ];
        let matrix_cfgs = [Config::Autovec, Config::Parsimony, Config::Handwritten];
        println!("\ntarget×config matrix (speedup over scalar, same IR):");
        print!("{:<22} {:<14}", "kernel", "target");
        for c in matrix_cfgs {
            print!(" {:>9}", c.label());
        }
        println!();
        for k in ks.iter().take(8) {
            for t in &targets {
                let cost = TargetCost::for_target(t.clone());
                let scalar = run_kernel_with(k, Config::Scalar, &cost).expect("runs");
                print!("{:<22} {:<14}", k.name, t.flag_name());
                let mut outputs = scalar.outputs.clone();
                for c in matrix_cfgs {
                    let r = run_kernel_with(k, c, &cost).expect("runs");
                    assert_eq!(
                        r.outputs,
                        outputs,
                        "{}: target {} changed results under {}",
                        k.name,
                        t.flag_name(),
                        c.label()
                    );
                    outputs = r.outputs;
                    print!(" {:>9.2}", scalar.cycles as f64 / r.cycles as f64);
                }
                println!();
            }
        }
    }

    if with_avx2 {
        // §4.3 portability: the *same* gang-width vector IR legalizes onto
        // a narrower (256-bit) machine — no recompilation of the SPMD
        // program, only a different back-end cost. A subset keeps it quick.
        println!("\nvector-width portability (Parsimony cycles, same IR):");
        println!(
            "{:<22} {:>12} {:>12} {:>8}",
            "kernel", "avx512", "avx2", "ratio"
        );
        let avx512 = TargetCost::for_target(Target::avx512());
        let avx2 = TargetCost::for_target(Target::avx2());
        for k in ks.iter().take(8) {
            let a = run_kernel_with(k, Config::Parsimony, &avx512).expect("runs");
            let b = run_kernel_with(k, Config::Parsimony, &avx2).expect("runs");
            println!(
                "{:<22} {:>12} {:>12} {:>8.2}",
                k.name,
                a.cycles,
                b.cycles,
                b.cycles as f64 / a.cycles as f64
            );
        }
    }
}

//! `runbench` — wall-clock execution benchmark and identity gate for the
//! interpreter's fast engine.
//!
//! ```text
//! runbench [--engine fast|native] [--n N] [--iters K] [--check]
//!          [--min-speedup X] [--json[=FILE]]
//! ```
//!
//! Executes the suite kernels (the Figure 5 Simd-Library set at workload
//! size `N`, plus the Figure 4 ispc set at tiny sizes) through the subject
//! engine and its baseline — `fast` (the precompiled `FramePlan` path) is
//! measured against the retained reference step loop, `native` (fused
//! block kernels) against `fast` — and reports per-kernel best-of-`K`
//! wall times, the geomean speedup, and whether the engines were
//! byte-identical in simulated cycles, checked outputs, execution
//! statistics, and profile JSON.
//!
//! * `--check` — gate mode: exit 1 unless every kernel is engine-identical
//!   (and, when `--min-speedup X` is given, the geomean speedup is at
//!   least X).
//! * `--json` — print the JSON report on stdout instead of the text
//!   summary; `--json=FILE` writes it to FILE and keeps the text summary
//!   on stdout (the CI artifact and `BENCH_runbench.json` baseline mode).
//!
//! Exit contract (as for every tool in this repo): 0 success, 1 gate or
//! runtime failure, 2 usage error.

use psim_bench::runbench::{run, RunBenchConfig};
use telemetry::cli::Help;

const HELP: Help = Help {
    bin: "runbench",
    about: "Times the suite kernels under a subject interpreter engine and its \
            baseline, gating on the byte-identity contract and the wall-clock \
            speedup.",
    usage: "[options]",
    flags: &[
        (
            "--engine E",
            "engine under test: fast (vs reference; default) or native (vs fast)",
        ),
        (
            "--target T",
            "costing machine: x86-avx512 (default), x86-avx2, or sve-vla[:VL]",
        ),
        (
            "--n N",
            "Simd-Library workload size (positive multiple of 256)",
        ),
        ("--iters K", "best-of-K wall-clock measurement (default: 3)"),
        (
            "--check",
            "gate: exit 1 unless every kernel is engine-identical",
        ),
        (
            "--min-speedup X",
            "with --check, also require geomean speedup >= X",
        ),
        ("--json[=FILE]", "emit the JSON report to stdout or FILE"),
        (
            "--baseline FILE",
            "validate FILE's bench-schema/meta against this build",
        ),
        ("-h, --help", "print this help"),
        (
            "-V, --version",
            "print version, protocol, and toolchain info",
        ),
    ],
};

fn usage() -> ! {
    eprintln!(
        "usage: runbench [--engine fast|native] \
         [--target x86-avx512|x86-avx2|sve-vla[:VL]] [--n N] [--iters K] [--check] \
         [--min-speedup X] [--json[=FILE]] [--baseline FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        HELP.intercept(a, env!("CARGO_PKG_VERSION"));
    }
    let mut cfg = RunBenchConfig::default();
    let mut check = false;
    let mut min_speedup: Option<f64> = None;
    let mut json_out: Option<Option<String>> = None;
    let mut baseline: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--engine" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                match psir::Engine::from_flag(v) {
                    Some(e) if e != psir::Engine::Reference => cfg.engine = e,
                    Some(_) => {
                        eprintln!(
                            "runbench: the reference engine is the baseline; \
                             --engine takes fast or native"
                        );
                        usage();
                    }
                    None => {
                        eprintln!(
                            "runbench: unknown engine {v:?}; valid engines: {}",
                            psir::Engine::ALL.map(psir::Engine::flag_name).join(", ")
                        );
                        usage();
                    }
                }
            }
            "--target" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!(
                        "runbench: --target requires a value; valid targets: {}",
                        vmach::VALID_TARGETS
                    );
                    usage();
                };
                match vmach::Target::parse(v) {
                    Ok(t) => cfg.target = t,
                    Err(e) => {
                        eprintln!("runbench: {e}");
                        usage();
                    }
                }
            }
            "--n" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                match v.parse::<u64>() {
                    Ok(n) if n >= 1 && n.is_multiple_of(256) => cfg.n = n,
                    _ => {
                        eprintln!("runbench: --n takes a positive multiple of 256, got {v:?}");
                        usage();
                    }
                }
            }
            "--iters" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cfg.iters = n,
                    _ => {
                        eprintln!("runbench: --iters takes a positive integer, got {v:?}");
                        usage();
                    }
                }
            }
            "--check" => check = true,
            "--min-speedup" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                match v.parse::<f64>() {
                    Ok(x) if x > 0.0 => min_speedup = Some(x),
                    _ => {
                        eprintln!("runbench: --min-speedup takes a positive number, got {v:?}");
                        usage();
                    }
                }
            }
            "--json" => json_out = Some(None),
            flag if flag.starts_with("--json=") => {
                json_out = Some(Some(flag["--json=".len()..].to_string()));
            }
            "--baseline" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                baseline = Some(v.clone());
            }
            other => {
                eprintln!("runbench: unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }

    // Baselines must be self-describing: reject version/tool skew loudly
    // before any numbers are compared against them.
    if let Some(path) = &baseline {
        if let Err(e) = psim_bench::check_baseline(path, "runbench") {
            eprintln!("runbench: GATE FAILED: baseline {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("runbench: baseline {path} schema ok");
    }

    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("runbench: error: {e}");
            std::process::exit(1);
        }
    };

    let json = report.to_json().to_string_pretty();
    match &json_out {
        Some(None) => println!("{json}"),
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("runbench: cannot write {path}: {e}");
                std::process::exit(1);
            }
            print!("{}", report.render_text());
        }
        None => print!("{}", report.render_text()),
    }

    if check {
        if !report.all_identical() {
            let bad: Vec<String> = report
                .rows
                .iter()
                .filter(|r| !r.identical)
                .map(|r| format!("{}/{}", r.kernel, r.config))
                .collect();
            let (subject, baseline) = match cfg.engine {
                psir::Engine::Native => ("native", "fast"),
                _ => ("fast", "reference"),
            };
            eprintln!(
                "runbench: GATE FAILED: {subject} engine differs from {baseline} on: {}",
                bad.join(", ")
            );
            std::process::exit(1);
        }
        if let Some(min) = min_speedup {
            let s = report.geomean_speedup();
            if s < min {
                eprintln!(
                    "runbench: GATE FAILED: geomean speedup {s:.2}x below required {min:.2}x"
                );
                std::process::exit(1);
            }
        }
        eprintln!(
            "runbench: gate ok (engines identical on {} kernel runs, {:.2}x geomean speedup)",
            report.rows.len(),
            report.geomean_speedup()
        );
    }
}

//! `compbench` — compile-time benchmark and determinism gate for the
//! parallel region driver.
//!
//! ```text
//! compbench [--regions M] [-j N | --jobs N] [--iters K]
//!           [--check] [--min-speedup X] [--json[=FILE]]
//! ```
//!
//! Synthesizes a module with `M` independent SPMD regions, compiles it with
//! the pipeline serially and with `N` workers, and reports the wall times,
//! the speedup ratio, and whether the parallel output (printed module +
//! canonical remark stream) is byte-identical to the serial one.
//!
//! * `--check` — gate mode: exit 1 unless the outputs are identical (and,
//!   when `--min-speedup X` is given, the measured speedup is at least X).
//! * `--json` — print the JSON report on stdout instead of the text
//!   summary; `--json=FILE` writes it to FILE and keeps the text summary
//!   on stdout (the CI artifact mode).
//!
//! Exit contract (as for every tool in this repo): 0 success, 1 gate or
//! pipeline failure, 2 usage error.

use psim_bench::compbench::{run, CompBenchConfig};
use telemetry::cli::Help;

const HELP: Help = Help {
    bin: "compbench",
    about: "Times serial vs parallel region compilation over a synthesized module, gating \
            on byte-identical output and the compile-time speedup.",
    usage: "[options]",
    flags: &[
        ("--regions M", "synthesized SPMD region count (default: 64)"),
        (
            "-j, --jobs N",
            "parallel worker count (default: available parallelism)",
        ),
        ("--iters K", "best-of-K wall-clock measurement (default: 3)"),
        (
            "--check",
            "gate: exit 1 unless parallel output is byte-identical",
        ),
        ("--min-speedup X", "with --check, also require speedup >= X"),
        ("--json[=FILE]", "emit the JSON report to stdout or FILE"),
        (
            "--baseline FILE",
            "validate FILE's bench-schema/meta against this build",
        ),
        ("-h, --help", "print this help"),
        (
            "-V, --version",
            "print version, protocol, and toolchain info",
        ),
    ],
};

fn usage() -> ! {
    eprintln!(
        "usage: compbench [--regions M] [-j N | --jobs N] [--iters K] \
         [--check] [--min-speedup X] [--json[=FILE]] [--baseline FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        HELP.intercept(a, env!("CARGO_PKG_VERSION"));
    }
    let mut cfg = CompBenchConfig::default();
    let mut check = false;
    let mut min_speedup: Option<f64> = None;
    let mut json_out: Option<Option<String>> = None;
    let mut baseline: Option<String> = None;

    let parse_usize = |v: Option<&String>, what: &str| -> usize {
        let Some(v) = v else { usage() };
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("compbench: {what} takes a positive integer, got {v:?}");
                usage();
            }
        }
    };

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--regions" => {
                i += 1;
                cfg.regions = parse_usize(args.get(i), "--regions");
            }
            "-j" | "--jobs" => {
                i += 1;
                cfg.jobs = parse_usize(args.get(i), "--jobs");
            }
            flag if flag.starts_with("--jobs=") => {
                cfg.jobs = parse_usize(Some(&flag["--jobs=".len()..].to_string()), "--jobs");
            }
            "--iters" => {
                i += 1;
                cfg.iters = parse_usize(args.get(i), "--iters");
            }
            "--check" => check = true,
            "--min-speedup" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                match v.parse::<f64>() {
                    Ok(x) if x > 0.0 => min_speedup = Some(x),
                    _ => {
                        eprintln!("compbench: --min-speedup takes a positive number, got {v:?}");
                        usage();
                    }
                }
            }
            "--json" => json_out = Some(None),
            flag if flag.starts_with("--json=") => {
                json_out = Some(Some(flag["--json=".len()..].to_string()));
            }
            "--baseline" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                baseline = Some(v.clone());
            }
            other => {
                eprintln!("compbench: unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }

    // Reject version/tool skew in the baseline loudly before comparing.
    if let Some(path) = &baseline {
        if let Err(e) = psim_bench::check_baseline(path, "compbench") {
            eprintln!("compbench: GATE FAILED: baseline {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("compbench: baseline {path} schema ok");
    }

    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compbench: error: {e}");
            std::process::exit(1);
        }
    };

    let json = report.to_json().to_string_pretty();
    match &json_out {
        Some(None) => println!("{json}"),
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("compbench: cannot write {path}: {e}");
                std::process::exit(1);
            }
            print!("{}", report.render_text());
        }
        None => print!("{}", report.render_text()),
    }

    if check {
        if !report.identical {
            eprintln!(
                "compbench: GATE FAILED: parallel (jobs={}) output differs from serial",
                report.config.jobs
            );
            std::process::exit(1);
        }
        if let Some(min) = min_speedup {
            let s = report.speedup();
            if s < min {
                eprintln!("compbench: GATE FAILED: speedup {s:.2}x below required {min:.2}x");
                std::process::exit(1);
            }
        }
        eprintln!(
            "compbench: gate ok (identical output, {:.2}x speedup at jobs={})",
            report.speedup(),
            report.config.jobs
        );
    }
}

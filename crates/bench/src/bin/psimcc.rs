//! `psimcc` — a command-line driver for the PsimC → Parsimony toolchain.
//!
//! ```text
//! psimcc FILE.psim [--emit scalar|vector] [--gang-sync] [--no-shape]
//!        [--boscc] [--run ENTRY [ARG…]] [--cycles]
//! ```
//!
//! * `--emit scalar` prints the front-end's IR (outlined regions + gang
//!   loops); `--emit vector` (default) prints the module after the
//!   Parsimony pass.
//! * `--run ENTRY` executes the named function on the virtual AVX-512
//!   machine. Integer arguments are passed as `i64`; an argument of the
//!   form `buf:N` allocates a zeroed N-byte buffer and passes its address
//!   (its contents are hex-dumped after the run).
//! * `--cycles` prints the simulated cycle count.
//! * `--remarks text|json` prints the pipeline's structured optimization
//!   remarks (shape summaries, memory-op selection, linearization, math
//!   dispatch, …) in deterministic order instead of the vector IR.
//! * `--verify off|fallback|strict` controls in-pipeline IR verification
//!   (default `fallback`: a variant that fails verification degrades its
//!   region to a scalar gang-serialized loop; `strict` makes any region
//!   failure a hard located error).
//! * `--inject-fault PASS:SITE` deterministically injects a fault at a
//!   registered pipeline site (see `--inject-fault help`), exercising the
//!   degradation machinery end to end.
//! * `-j N` / `--jobs N` sets the region-compilation worker count (default:
//!   `PSIM_JOBS` or the available parallelism). Output is byte-identical at
//!   every level; `-j` only changes compile time.

use parsimony::{
    vectorize_module_with, FaultInjector, PipelineOptions, VectorizeOptions, VerifyMode,
};
use psir::{Interp, Memory, RtVal};
use telemetry::cli::Help;
use vmach::{Target, TargetCost};
use vmath::RuntimeExterns;

const HELP: Help = Help {
    bin: "psimcc",
    about: "Compiles PsimC through the Parsimony SPMD vectorizer; optionally runs the result \
            on the simulated AVX-512 machine.",
    usage: "FILE [options] [--run ENTRY [ARG…]]",
    flags: &[
        (
            "--emit scalar|vector",
            "print front-end IR or vectorized IR (default: vector)",
        ),
        ("--gang-sync", "gang-synchronous (ispc-like) mode"),
        ("--no-shape", "disable shape analysis"),
        ("--boscc", "insert branch-on-superword-condition guards"),
        (
            "--remarks text|json",
            "print structured optimization remarks",
        ),
        (
            "--verify off|fallback|strict",
            "in-pipeline IR verification mode (default: fallback)",
        ),
        (
            "--inject-fault PASS:SITE",
            "deterministically inject a pipeline fault",
        ),
        ("-j, --jobs N", "region-compilation worker count"),
        (
            "--run ENTRY [ARG…]",
            "execute ENTRY (ints, floats, or buf:N buffer args)",
        ),
        (
            "--engine E",
            "interpreter engine for --run: fast (default), reference, or native",
        ),
        (
            "--target T",
            "machine for --run costing: x86-avx512 (default), x86-avx2, or sve-vla[:VL]",
        ),
        ("--cycles", "print the simulated cycle count"),
        ("-h, --help", "print this help"),
        (
            "-V, --version",
            "print version, protocol, and toolchain info",
        ),
    ],
};

fn usage() -> ! {
    eprintln!(
        "usage: psimcc FILE [--emit scalar|vector] [--gang-sync] [--no-shape] \
         [--boscc] [--remarks text|json] [--verify off|fallback|strict] \
         [--inject-fault PASS:SITE] [-j N | --jobs N] \
         [--engine fast|reference|native] [--target x86-avx512|x86-avx2|sve-vla[:VL]] \
         [--run ENTRY [ARG…]] [--cycles]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        HELP.intercept(a, env!("CARGO_PKG_VERSION"));
    }
    let mut file = None;
    let mut emit = "vector".to_string();
    let mut opts = VectorizeOptions::default();
    let mut run: Option<(String, Vec<String>)> = None;
    let mut engine = psir::Engine::default();
    let mut show_cycles = false;
    let mut remarks_mode: Option<String> = None;
    let mut popts = PipelineOptions::default();

    let parse_verify = |s: &str| {
        VerifyMode::parse(s).unwrap_or_else(|| {
            eprintln!("psimcc: invalid --verify mode `{s}` (expected off, fallback, or strict)");
            std::process::exit(2);
        })
    };
    let parse_inject = |s: &str| -> FaultInjector {
        FaultInjector::parse(s).unwrap_or_else(|e| {
            eprintln!("psimcc: {e}");
            std::process::exit(2);
        })
    };
    let parse_target = |s: &str| -> Target {
        Target::parse(s).unwrap_or_else(|e| {
            eprintln!("psimcc: {e}");
            std::process::exit(2);
        })
    };
    let parse_jobs = |s: &str| -> usize {
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("psimcc: --jobs takes a positive integer, got {s:?}");
                std::process::exit(2);
            }
        }
    };

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--emit" => {
                i += 1;
                emit = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--gang-sync" => opts = VectorizeOptions::gang_synchronous(),
            "--no-shape" => opts.enable_shape = false,
            "--boscc" => opts.boscc = true,
            "--cycles" => show_cycles = true,
            "--remarks" => {
                i += 1;
                let mode = args.get(i).cloned().unwrap_or_else(|| usage());
                if mode != "text" && mode != "json" {
                    usage();
                }
                remarks_mode = Some(mode);
            }
            flag if flag.starts_with("--remarks=") => {
                let mode = &flag["--remarks=".len()..];
                if mode != "text" && mode != "json" {
                    usage();
                }
                remarks_mode = Some(mode.to_string());
            }
            "--verify" => {
                i += 1;
                let mode = args.get(i).cloned().unwrap_or_else(|| usage());
                popts.verify = parse_verify(&mode);
            }
            flag if flag.starts_with("--verify=") => {
                popts.verify = parse_verify(&flag["--verify=".len()..]);
            }
            "--inject-fault" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| usage());
                popts.inject = Some(parse_inject(&spec));
            }
            flag if flag.starts_with("--inject-fault=") => {
                popts.inject = Some(parse_inject(&flag["--inject-fault=".len()..]));
            }
            "--engine" => {
                i += 1;
                let v = args.get(i).cloned().unwrap_or_else(|| usage());
                engine = psir::Engine::from_flag(&v).unwrap_or_else(|| {
                    eprintln!(
                        "psimcc: unknown engine {v:?}; valid engines: {}",
                        psir::Engine::ALL.map(psir::Engine::flag_name).join(", ")
                    );
                    std::process::exit(2);
                });
            }
            flag if flag.starts_with("--engine=") => {
                let v = &flag["--engine=".len()..];
                engine = psir::Engine::from_flag(v).unwrap_or_else(|| {
                    eprintln!(
                        "psimcc: unknown engine {v:?}; valid engines: {}",
                        psir::Engine::ALL.map(psir::Engine::flag_name).join(", ")
                    );
                    std::process::exit(2);
                });
            }
            "--target" => {
                i += 1;
                let v = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!(
                        "psimcc: --target requires a value; valid targets: {}",
                        vmach::VALID_TARGETS
                    );
                    std::process::exit(2);
                });
                popts.target = parse_target(&v);
            }
            flag if flag.starts_with("--target=") => {
                popts.target = parse_target(&flag["--target=".len()..]);
            }
            "-j" | "--jobs" => {
                i += 1;
                let v = args.get(i).cloned().unwrap_or_else(|| usage());
                popts.jobs = parse_jobs(&v);
            }
            flag if flag.starts_with("--jobs=") => {
                popts.jobs = parse_jobs(&flag["--jobs=".len()..]);
            }
            "--run" => {
                i += 1;
                let entry = args.get(i).cloned().unwrap_or_else(|| usage());
                let mut rest = Vec::new();
                for a in &args[i + 1..] {
                    if a == "--cycles" {
                        show_cycles = true;
                    } else {
                        rest.push(a.clone());
                    }
                }
                run = Some((entry, rest));
                i = args.len();
            }
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(other.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(file) = file else { usage() };

    let src = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("psimcc: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let scalar = psimc::compile(&src).unwrap_or_else(|e| {
        eprintln!("psimcc: {e}");
        std::process::exit(1);
    });

    if emit == "scalar" {
        print!("{}", psir::print_module(&scalar));
        return;
    }

    let out = vectorize_module_with(&scalar, &opts, &popts).unwrap_or_else(|e| {
        // A formatted, located diagnostic ([pass] @func:bN:iN: message) —
        // never a Rust panic backtrace.
        eprintln!("psimcc: error: {e}");
        std::process::exit(1);
    });
    for w in &out.warnings {
        eprintln!("warning: {w}");
    }

    if let Some(mode) = remarks_mode {
        let mut remarks = out.remarks.clone();
        telemetry::sort_remarks(&mut remarks);
        if mode == "json" {
            println!(
                "{}",
                telemetry::remarks_to_json(&remarks).to_string_pretty()
            );
        } else {
            print!("{}", telemetry::remarks_to_text(&remarks));
        }
        if run.is_none() {
            return;
        }
    }

    if let Some((entry, raw_args)) = run {
        static EXT: RuntimeExterns = RuntimeExterns::new();
        let cost = TargetCost::for_target(popts.target.clone());
        let mut mem = Memory::default();
        let mut call_args = Vec::new();
        let mut bufs: Vec<(u64, u64)> = Vec::new();
        for a in &raw_args {
            if let Some(n) = a.strip_prefix("buf:") {
                let n: u64 = n.parse().unwrap_or_else(|_| usage());
                let addr = mem.alloc(n, 64).expect("buffer fits");
                bufs.push((addr, n));
                call_args.push(RtVal::S(addr));
            } else if let Ok(v) = a.parse::<i64>() {
                call_args.push(RtVal::S(v as u64));
            } else if let Ok(v) = a.parse::<f32>() {
                call_args.push(RtVal::from_f32(v));
            } else {
                usage();
            }
        }
        let mut it = Interp::new(&out.module, mem, &cost, &EXT);
        it.set_engine(engine);
        match it.call(&entry, &call_args) {
            Ok(RtVal::Unit) => {}
            Ok(RtVal::S(v)) => println!("=> {v} (as i64: {})", v as i64),
            Ok(RtVal::V(v)) => println!("=> {v:?}"),
            Err(e) => {
                eprintln!("psimcc: runtime error: {e}");
                std::process::exit(1);
            }
        }
        for (k, (addr, n)) in bufs.iter().enumerate() {
            let bytes = it.mem.read_bytes(*addr, (*n).min(64)).expect("readback");
            let hex: Vec<String> = bytes.iter().map(|b| format!("{b:02x}")).collect();
            println!(
                "buf{k} [{} bytes{}]: {}",
                n,
                if *n > 64 { ", first 64 shown" } else { "" },
                hex.join(" ")
            );
        }
        if show_cycles {
            println!("cycles: {}", it.cycles);
        }
    } else {
        print!("{}", psir::print_module(&out.module));
    }
}

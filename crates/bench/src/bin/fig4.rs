//! Figure 4: Parsimony and the gang-synchronous (ispc-like) comparator on
//! the 7 ispc benchmarks, normalized to the auto-vectorized serial
//! implementation.
//!
//! Paper numbers: geomean 5.9× (Parsimony) vs 6.0× (ispc); every benchmark
//! ties except Binomial Options, where Parsimony reaches 0.71× of ispc
//! because SLEEF's AVX-512 `pow` is 2.6× slower than ispc's built-in (§6).
//!
//! Usage:
//!   cargo run --release -p psim-bench --bin fig4 `[-- --tiny] [--gang-sweep] [--profile[=json]] [-j N]`
//!
//! `-j N` / `--jobs N` sets the region-compilation worker count for every
//! kernel build (default: `PSIM_JOBS` or the available parallelism);
//! results are identical at every level, only compile time changes.

use psim_bench::{
    apply_engine_flag, apply_target_flag, cell, geomean_speedup, measure_iters, module_fingerprint,
    parse_profile_flag, profile_kernel, total_wall_ms, ProfileMode,
};
use suite::ispc::{kernels, IspcSizes};
use suite::runner::{build_module, run_kernel, run_kernel_with, Config};
use telemetry::cli::Help;
use telemetry::Profile;

const HELP: Help = Help {
    bin: "fig4",
    about: "Reproduces Figure 4: Parsimony vs the gang-synchronous (ispc-like) comparator on \
            the 7 ispc benchmarks, normalized to auto-vectorized serial code.",
    usage: "[options]",
    flags: &[
        ("--tiny", "use the tiny workload sizes"),
        ("--gang-sweep", "also run the gang-size sweep ablation"),
        ("--iters N", "best-of-N wall-clock measurement (default: 1)"),
        ("--profile[=json]", "print the cycle-attribution profile"),
        (
            "--engine E",
            "interpreter engine: fast (default), reference, or native",
        ),
        (
            "--target T",
            "costing machine: x86-avx512 (default), x86-avx2, or sve-vla[:VL]",
        ),
        (
            "--target-matrix",
            "add the target×config matrix table (all targets, same IR)",
        ),
        (
            "--contract",
            "print per-benchmark gang size and module fingerprint, then exit \
             (the target-contract gate diffs this across SVE vector lengths)",
        ),
        ("-j, --jobs N", "region-compilation worker count"),
        ("-h, --help", "print this help"),
        (
            "-V, --version",
            "print version, protocol, and toolchain info",
        ),
    ],
};

fn usage() -> ! {
    eprintln!(
        "usage: fig4 [--tiny] [--gang-sweep] [--iters N] [--profile[=json]] \
         [--engine fast|reference|native] [--target x86-avx512|x86-avx2|sve-vla[:VL]] \
         [--target-matrix] [--contract] [-j N | --jobs N]"
    );
    std::process::exit(2);
}

/// Applies `-j`: the kernel builders compile through default
/// [`parsimony::PipelineOptions`], which honor `PSIM_JOBS`, so the flag is
/// delivered through the environment before any compilation starts.
fn set_jobs(tool: &str, v: Option<&String>) {
    let Some(v) = v else { usage() };
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => std::env::set_var(parsimony::JOBS_ENV_VAR, v),
        _ => {
            eprintln!("{tool}: --jobs takes a positive integer, got {v:?}");
            usage();
        }
    }
}

fn main() {
    // Tool-quality failure reporting: anything that goes wrong below —
    // including a pipeline diagnostic surfaced as a panic message — exits
    // nonzero with a one-line formatted error, never a Rust backtrace.
    if let Err(msg) = parsimony::fault::catch_pass_panic(run) {
        eprintln!("fig4: error: {msg}");
        std::process::exit(1);
    }
}

fn run() {
    let args: Vec<String> = std::env::args().collect();
    for a in args.iter().skip(1) {
        HELP.intercept(a, env!("CARGO_PKG_VERSION"));
    }
    let mut sizes = IspcSizes::default();
    let mut gang_sweep = false;
    let mut profile_mode = ProfileMode::Off;
    let mut iters = 1usize;
    let mut with_target_matrix = false;
    let mut contract = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tiny" => sizes = IspcSizes::tiny(),
            "--gang-sweep" => gang_sweep = true,
            "--target-matrix" => with_target_matrix = true,
            "--contract" => contract = true,
            "--iters" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => iters = n,
                    _ => {
                        eprintln!("fig4: --iters takes a positive integer, got {v:?}");
                        usage();
                    }
                }
            }
            "--engine" => {
                i += 1;
                if !apply_engine_flag("fig4", args.get(i)) {
                    usage();
                }
            }
            "--target" => {
                i += 1;
                if !apply_target_flag("fig4", args.get(i)) {
                    usage();
                }
            }
            t if t.starts_with("--target=") => {
                let v = t["--target=".len()..].to_string();
                if !apply_target_flag("fig4", Some(&v)) {
                    usage();
                }
            }
            "-j" | "--jobs" => {
                i += 1;
                set_jobs("fig4", args.get(i));
            }
            other => match parse_profile_flag(other) {
                Some(m) => profile_mode = m,
                None => {
                    eprintln!("fig4: unknown flag {other}");
                    usage();
                }
            },
        }
        i += 1;
    }

    if contract {
        print_contract(sizes);
        return;
    }

    if profile_mode == ProfileMode::Json {
        let profile = profile_all(sizes);
        check_pow_gap(&profile);
        println!("{}", profile.to_json().to_string_pretty());
        return;
    }

    let cfgs = [Config::Autovec, Config::Parsimony, Config::GangSync];
    eprintln!(
        "figure 4: 7 ispc workloads ({}x{} image-class, {} options, dim {})",
        sizes.width,
        sizes.width / 2,
        sizes.options,
        sizes.dim
    );
    let ks = kernels(sizes);
    let rows = measure_iters(&ks, &cfgs, iters);

    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "parsimony", "ispc-like", "ratio", "wall(ms)"
    );
    println!("{}", "-".repeat(60));
    for r in &rows {
        let p = r.speedup(Config::Parsimony, Config::Autovec);
        let g = r.speedup(Config::GangSync, Config::Autovec);
        println!(
            "{:<18} {}x {}x {} {:>9.2}",
            r.name,
            cell(p),
            cell(g),
            cell(p / g),
            r.wall_ms(Config::Parsimony)
        );
    }
    println!("{}", "-".repeat(60));
    println!(
        "wall time (parsimony, best of {iters}): {:.1} ms total",
        total_wall_ms(&rows, Config::Parsimony)
    );
    let gp = geomean_speedup(&rows, Config::Parsimony, Config::Autovec);
    let gg = geomean_speedup(&rows, Config::GangSync, Config::Autovec);
    println!("geomean speedup over auto-vectorization:");
    println!("  Parsimony (SLEEF-like math)     : {gp:5.2}x   (paper: 5.9x)");
    println!("  gang-synchronous / ispc-like    : {gg:5.2}x   (paper: 6.0x)");
    println!(
        "  Parsimony / ispc-like            : {:5.2}   (paper: ~0.98; artifact gate: > 0.90)",
        gp / gg
    );

    // The paper's single gap: Binomial Options, from the pow cost.
    let bin = rows
        .iter()
        .find(|r| r.name == "binomial_options")
        .expect("binomial present");
    let bin_ratio = bin.speedup(Config::Parsimony, Config::Autovec)
        / bin.speedup(Config::GangSync, Config::Autovec);
    println!(
        "binomial options: Parsimony/ispc-like = {bin_ratio:4.2} (paper: 0.71, from SLEEF pow)"
    );
    assert!(
        bin_ratio < 0.9,
        "the SLEEF-pow gap must reproduce on binomial options"
    );
    assert!(
        gp / gg > 0.9,
        "overall parity (the paper's headline claim) must hold"
    );

    if profile_mode == ProfileMode::Text {
        let profile = profile_all(sizes);
        println!("\ncycle-attribution profile (per kernel/config/function):");
        print!("{}", profile.render_text());
        check_pow_gap(&profile);
    }

    if with_target_matrix {
        target_matrix(sizes);
    }

    if gang_sweep {
        gang_size_sweep(sizes);
    }
}

/// The `target-contract` gate's machine-checkable output: one line per
/// benchmark with its chosen gang size and the FNV fingerprint of the
/// compiled Parsimony module. The costing target is deliberately absent
/// from both the computation and the output — CI runs this at several SVE
/// vector lengths and diffs the lines byte-for-byte, proving that the
/// gang-size choice and the emitted module are vector-length-invariant
/// (Parsimony picks gangs at the program level, never from the machine).
fn print_contract(sizes: IspcSizes) {
    for k in kernels(sizes) {
        let module =
            build_module(&k, Config::Parsimony).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        println!(
            "{} gang={} module_fnv={:016x}",
            k.name,
            k.gang,
            module_fingerprint(&module)
        );
    }
}

/// The target×config matrix: the same compiled IR priced on every modeled
/// machine, fixed-width and scalable. Outputs are asserted identical
/// across every cell — targets move cycle attribution, never semantics.
fn target_matrix(sizes: IspcSizes) {
    use vmach::{Target, TargetCost};
    let targets = [
        Target::avx512(),
        Target::avx2(),
        Target::sve(128),
        Target::sve(512),
        Target::sve(2048),
    ];
    let matrix_cfgs = [Config::Parsimony, Config::GangSync];
    println!("\ntarget×config matrix (speedup over autovec, same IR):");
    print!("{:<18} {:<14}", "benchmark", "target");
    for c in matrix_cfgs {
        print!(" {:>9}", c.label());
    }
    println!();
    for k in kernels(sizes) {
        for t in &targets {
            let cost = TargetCost::for_target(t.clone());
            let base = run_kernel_with(&k, Config::Autovec, &cost).expect("runs");
            print!("{:<18} {:<14}", k.name, t.flag_name());
            let mut outputs = base.outputs.clone();
            for c in matrix_cfgs {
                let r = run_kernel_with(&k, c, &cost).expect("runs");
                assert_eq!(
                    r.outputs,
                    outputs,
                    "{}: target {} changed results under {}",
                    k.name,
                    t.flag_name(),
                    c.label()
                );
                outputs = r.outputs;
                print!(" {:>9.2}", base.cycles as f64 / r.cycles as f64);
            }
            println!();
        }
    }
}

/// Profiles every Figure 4 kernel under Parsimony (SLEEF-like math) and the
/// gang-synchronous comparator (fast built-in math), namespaced per
/// kernel/config.
fn profile_all(sizes: IspcSizes) -> Profile {
    let mut merged = Profile::new();
    for k in kernels(sizes) {
        for cfg in [Config::Parsimony, Config::GangSync] {
            merged.merge(&profile_kernel(&k, cfg));
        }
    }
    merged
}

/// The paper's one gap, derived from telemetry rather than end-to-end
/// cycles: Binomial Options spends ≥2× more cycles in SLEEF's `pow` than
/// the gang-synchronous mode spends in the fast built-in `pow` (§6 says
/// 2.6× on real AVX-512 hardware).
fn check_pow_gap(profile: &Profile) {
    let mut binomial = Profile::new();
    for (name, fp) in &profile.functions {
        if name.starts_with("binomial_options/") {
            binomial.functions.insert(name.clone(), fp.clone());
        }
    }
    let sleef = binomial.extern_cycles_matching("sleef.pow");
    let fastm = binomial.extern_cycles_matching("fastm.pow");
    eprintln!(
        "binomial options extern pow cycles: sleef {sleef}, fastm {fastm} ({:.2}x)",
        sleef as f64 / fastm as f64
    );
    assert!(
        sleef > 0 && fastm > 0,
        "both math libraries must be exercised"
    );
    assert!(
        sleef >= 2 * fastm,
        "telemetry must show the SLEEF pow gap (≥2x the fast built-in)"
    );
}

/// §1 ablation: the same kernel at different gang sizes. ispc fixes the
/// gang to the hardware width per compilation unit; Parsimony makes it a
/// per-region program-level constant — this sweep shows why that matters.
fn gang_size_sweep(sizes: IspcSizes) {
    println!("\ngang-size sweep (mandelbrot, cycles; lower is better):");
    let base = kernels(sizes)
        .into_iter()
        .find(|k| k.name == "mandelbrot")
        .expect("mandelbrot present");
    for gang in [8u32, 16, 32, 64] {
        let mut k = suite::Kernel::new(
            format!("mandelbrot_g{gang}"),
            "ispc",
            gang,
            base.psim_src
                .replace("psim gang(16)", &format!("psim gang({gang})")),
            base.serial_src.clone(),
            base.buffers.clone(),
            base.n,
        );
        k.extra_args = base.extra_args.clone();
        let r = run_kernel(&k, Config::Parsimony).expect("sweep runs");
        println!("  gang {gang:>3}: {:>12} cycles", r.cycles);
    }
}

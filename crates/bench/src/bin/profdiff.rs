//! `profdiff` — compares two cycle-attribution profile JSON documents
//! (as emitted by `fig4 --profile=json` / `fig5 --profile=json`) and exits
//! nonzero when the geometric-mean cycle ratio across shared functions
//! regresses past a threshold. Intended as a CI perf gate:
//!
//! ```text
//! fig5 --n 1024 --profile=json > before.json
//! # ... apply a change ...
//! fig5 --n 1024 --profile=json > after.json
//! profdiff before.json after.json --threshold 0.05
//! ```
//!
//! Exit codes: 0 = within threshold, 1 = regression, 2 = usage/IO error.

use psim_bench::profdiff;

fn usage() -> ! {
    eprintln!("usage: profdiff BEFORE.json AFTER.json [--threshold FRACTION]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut threshold = 0.05f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("profdiff: --threshold takes a fraction (e.g. 0.05)");
                    usage();
                };
                threshold = v.parse().unwrap_or_else(|_| {
                    eprintln!("profdiff: --threshold takes a fraction, got {v:?}");
                    usage();
                });
            }
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => {
                eprintln!("profdiff: unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }
    if files.len() != 2 {
        usage();
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("profdiff: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let before = read(&files[0]);
    let after = read(&files[1]);

    match profdiff(&before, &after, threshold) {
        Ok((table, regressed)) => {
            print!("{table}");
            if regressed {
                eprintln!("profdiff: REGRESSION past the {threshold} threshold");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("profdiff: {e}");
            std::process::exit(2);
        }
    }
}

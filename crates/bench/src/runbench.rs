//! Wall-clock execution benchmark for the interpreter's fast engine.
//!
//! Every Figure 4/5 cycle count comes from dynamically executing vector IR
//! through the `psir` interpreter, so the interpreter's *wall-clock* speed
//! bounds how large a workload the harnesses can afford. This module times
//! the suite kernels end-to-end under both execution engines — the
//! precompiled `FramePlan` fast path and the retained reference step loop
//! — reporting best-of-`iters` wall time per kernel, the geomean speedup,
//! and whether the two engines were **byte-identical** in simulated
//! cycles, checked outputs, execution statistics, and profile JSON (the
//! identity contract CI gates on with `--check`).
//!
//! Used by the `runbench` binary and the CI `run-time` job; the committed
//! `BENCH_runbench.json` baseline records the perf trajectory.

use psir::Engine;
use std::time::Instant;
use suite::runner::{build_module, geomean, run_module_engine, Config, RunResult};
use suite::Kernel;
use telemetry::Json;
use vmach::Avx512Cost;

/// Configuration of one execution-time measurement.
#[derive(Debug, Clone)]
pub struct RunBenchConfig {
    /// Workload size for the Simd-Library kernel set (elements; must be a
    /// positive multiple of 256).
    pub n: u64,
    /// Timed repetitions per kernel and engine; the best (minimum) wall
    /// time is reported to suppress scheduler noise.
    pub iters: usize,
}

impl Default for RunBenchConfig {
    fn default() -> RunBenchConfig {
        RunBenchConfig { n: 4096, iters: 3 }
    }
}

/// Per-kernel timing of the fast engine against the reference engine.
#[derive(Debug, Clone)]
pub struct RunBenchRow {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label (the vectorized module that was executed).
    pub config: &'static str,
    /// Simulated cycles (identical for both engines when `identical`).
    pub cycles: u64,
    /// Best fast-engine wall time, nanoseconds.
    pub fast_nanos: u64,
    /// Best reference-engine wall time, nanoseconds.
    pub reference_nanos: u64,
    /// Whether cycles, checked outputs, execution statistics, and profile
    /// JSON were byte-identical between the engines.
    pub identical: bool,
}

impl RunBenchRow {
    /// Reference wall time over fast wall time (higher = fast engine
    /// faster).
    pub fn speedup(&self) -> f64 {
        self.reference_nanos as f64 / self.fast_nanos.max(1) as f64
    }
}

/// Result of a full suite sweep.
#[derive(Debug, Clone)]
pub struct RunBenchReport {
    /// The configuration measured.
    pub config: RunBenchConfig,
    /// Per-kernel timings.
    pub rows: Vec<RunBenchRow>,
}

impl RunBenchReport {
    /// Geomean of per-kernel wall-clock speedups (reference / fast).
    pub fn geomean_speedup(&self) -> f64 {
        let xs: Vec<f64> = self.rows.iter().map(RunBenchRow::speedup).collect();
        geomean(&xs)
    }

    /// Whether every kernel was engine-identical.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Serializes the report to a JSON object (the CI artifact and
    /// `BENCH_runbench.json` baseline format).
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("kernel", Json::Str(r.kernel.clone())),
                    ("config", Json::Str(r.config.to_string())),
                    ("cycles", Json::u64(r.cycles)),
                    ("fast_nanos", Json::u64(r.fast_nanos)),
                    ("reference_nanos", Json::u64(r.reference_nanos)),
                    ("speedup", Json::Num(r.speedup())),
                    ("identical", Json::Bool(r.identical)),
                ])
            })
            .collect();
        Json::obj(vec![
            (
                "meta",
                telemetry::cli::bench_meta(
                    "runbench",
                    vec![
                        ("n", Json::u64(self.config.n)),
                        ("iters", Json::u64(self.config.iters as u64)),
                        // Cache-relevant sweep description: which kernel
                        // sets and gang configurations the rows cover.
                        (
                            "gang_config",
                            Json::Str("simdlib×parsimony + ispc(tiny)×{parsimony,gangsync}".into()),
                        ),
                        ("engine", Json::Str("fast-vs-reference".into())),
                    ],
                ),
            ),
            ("n", Json::u64(self.config.n)),
            ("iters", Json::u64(self.config.iters as u64)),
            ("geomean_speedup", Json::Num(self.geomean_speedup())),
            ("identical", Json::Bool(self.all_identical())),
            ("kernels", Json::u64(self.rows.len() as u64)),
            ("rows", Json::Arr(rows)),
        ])
    }

    /// Renders the human-readable summary (worst and best kernels plus the
    /// aggregate line; the full per-kernel table lives in the JSON).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "runbench: {} kernel(s), n={}, {} iteration(s) per engine\n",
            self.rows.len(),
            self.config.n,
            self.config.iters
        ));
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>8}  identical\n",
            "kernel", "fast (us)", "ref (us)", "speedup"
        ));
        let mut ranked: Vec<&RunBenchRow> = self.rows.iter().collect();
        ranked.sort_by(|a, b| {
            a.speedup()
                .partial_cmp(&b.speedup())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let shown: Vec<&RunBenchRow> = if ranked.len() > 10 {
            ranked
                .iter()
                .take(5)
                .chain(ranked.iter().rev().take(5).rev())
                .copied()
                .collect()
        } else {
            ranked
        };
        for r in &shown {
            out.push_str(&format!(
                "{:<28} {:>12.1} {:>12.1} {:>7.2}x  {}\n",
                format!("{}/{}", r.kernel, r.config),
                r.fast_nanos as f64 / 1e3,
                r.reference_nanos as f64 / 1e3,
                r.speedup(),
                if r.identical { "yes" } else { "NO" }
            ));
        }
        if shown.len() < self.rows.len() {
            out.push_str(&format!(
                "  ... ({} more kernels in the JSON report)\n",
                self.rows.len() - shown.len()
            ));
        }
        out.push_str(&format!(
            "geomean speedup      : {:>7.2}x\n",
            self.geomean_speedup()
        ));
        out.push_str(&format!(
            "engines identical    : {}\n",
            if self.all_identical() { "yes" } else { "NO" }
        ));
        out
    }
}

/// One timed execution of a built module under `engine` (unprofiled, the
/// configuration the harnesses run in).
fn timed_run(
    module: &psir::Module,
    k: &Kernel,
    cost: &Avx512Cost,
    engine: Engine,
) -> Result<(u64, RunResult), String> {
    let t = Instant::now();
    let r = run_module_engine(module, k, cost, false, engine)?;
    Ok((t.elapsed().as_nanos() as u64, r))
}

/// Benchmarks one kernel/config pair: best-of-`iters` wall time per
/// engine, plus a profiled identity run per engine.
fn bench_kernel(
    k: &Kernel,
    cfg_label: &'static str,
    config: Config,
    iters: usize,
) -> Result<RunBenchRow, String> {
    let module = build_module(k, config).map_err(|e| format!("{}: {e}", k.name))?;
    let cost = Avx512Cost::new();

    let mut best: [Option<(u64, RunResult)>; 2] = [None, None];
    for (slot, engine) in [(0, Engine::Fast), (1, Engine::Reference)] {
        for _ in 0..iters {
            let (nanos, r) = timed_run(&module, k, &cost, engine)
                .map_err(|e| format!("{}[{engine:?}]: {e}", k.name))?;
            if best[slot].as_ref().is_none_or(|(b, _)| nanos < *b) {
                best[slot] = Some((nanos, r));
            }
        }
    }
    let [fast, reference] = best;
    let (fast_nanos, fast_r) = fast.ok_or("runbench: no fast run completed")?;
    let (reference_nanos, ref_r) = reference.ok_or("runbench: no reference run completed")?;

    // Identity: cycles / outputs / stats from the timed runs, profile JSON
    // from one profiled run per engine.
    let profile_json = |engine: Engine| -> Result<String, String> {
        let r = run_module_engine(&module, k, &cost, true, engine)
            .map_err(|e| format!("{}[{engine:?}]: {e}", k.name))?;
        Ok(r.profile
            .map(|p| p.to_json().to_string_pretty())
            .unwrap_or_default())
    };
    let identical = fast_r.cycles == ref_r.cycles
        && fast_r.outputs == ref_r.outputs
        && fast_r.stats == ref_r.stats
        && profile_json(Engine::Fast)? == profile_json(Engine::Reference)?;

    Ok(RunBenchRow {
        kernel: k.name.clone(),
        config: cfg_label,
        cycles: fast_r.cycles,
        fast_nanos,
        reference_nanos,
        identical,
    })
}

/// Runs the full suite sweep: every Simd-Library kernel (Figure 5's set)
/// executed as its Parsimony-vectorized module, plus the ispc suite
/// (Figure 4's set, tiny sizes) under both the Parsimony and
/// gang-synchronous configurations.
///
/// # Errors
/// Reports build failures and runtime traps with kernel context.
pub fn run(cfg: &RunBenchConfig) -> Result<RunBenchReport, String> {
    if cfg.iters == 0 {
        return Err("runbench: iters must be >= 1".into());
    }
    if cfg.n == 0 || !cfg.n.is_multiple_of(256) {
        return Err("runbench: n must be a positive multiple of 256".into());
    }
    let mut rows = Vec::new();
    for k in suite::simdlib::kernels(cfg.n) {
        rows.push(bench_kernel(
            &k,
            Config::Parsimony.label(),
            Config::Parsimony,
            cfg.iters,
        )?);
    }
    for k in suite::ispc::kernels(suite::ispc::IspcSizes::tiny()) {
        for config in [Config::Parsimony, Config::GangSync] {
            rows.push(bench_kernel(&k, config.label(), config, cfg.iters)?);
        }
    }
    Ok(RunBenchReport {
        config: cfg.clone(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_kernel_is_identical_and_reports() {
        let k = suite::simdlib::kernels(256)
            .into_iter()
            .next()
            .expect("suite has kernels");
        let row = bench_kernel(&k, Config::Parsimony.label(), Config::Parsimony, 1)
            .expect("kernel benches");
        assert!(row.identical, "engines must agree on {}", row.kernel);
        assert!(row.cycles > 0);
        let report = RunBenchReport {
            config: RunBenchConfig { n: 256, iters: 1 },
            rows: vec![row],
        };
        let j = report.to_json().to_string_pretty();
        assert!(j.contains("\"geomean_speedup\""));
        assert!(j.contains("\"identical\": true"));
        assert!(report.render_text().contains("geomean speedup"));
    }

    #[test]
    fn rejects_bad_config() {
        assert!(run(&RunBenchConfig { n: 100, iters: 1 }).is_err());
        assert!(run(&RunBenchConfig { n: 256, iters: 0 }).is_err());
    }
}

//! Wall-clock execution benchmark for the interpreter's optimized engines.
//!
//! Every Figure 4/5 cycle count comes from dynamically executing vector IR
//! through the `psir` interpreter, so the interpreter's *wall-clock* speed
//! bounds how large a workload the harnesses can afford. This module times
//! the suite kernels end-to-end under a **subject** engine and its
//! **baseline**:
//!
//! * `--engine fast` (the default): the precompiled `FramePlan` fast path
//!   against the retained reference step loop.
//! * `--engine native`: the native tier (fused block kernels over a
//!   compacted register file) against the fast engine, additionally
//!   reporting how many blocks dynamically bailed out to the exact path
//!   (zero on the hot suite kernels).
//!
//! Each mode reports best-of-`iters` wall time per kernel, the geomean
//! speedup, and whether the engines were **byte-identical** in simulated
//! cycles, checked outputs, execution statistics, and profile JSON (the
//! identity contract CI gates on with `--check`).
//!
//! Used by the `runbench` binary and the CI `run-time`/`native` jobs; the
//! committed `BENCH_runbench.json` and `BENCH_runbench_native.json`
//! baselines record the perf trajectory.

use psir::Engine;
use std::time::Instant;
use suite::runner::{
    build_module, geomean, run_module_engine, run_module_engine_shared, Config, RunResult,
};
use suite::Kernel;
use telemetry::Json;
use vmach::{Target, TargetCost};

/// Configuration of one execution-time measurement.
#[derive(Debug, Clone)]
pub struct RunBenchConfig {
    /// Workload size for the Simd-Library kernel set (elements; must be a
    /// positive multiple of 256).
    pub n: u64,
    /// Timed repetitions per kernel and engine; the best (minimum) wall
    /// time is reported to suppress scheduler noise.
    pub iters: usize,
    /// The engine under test. [`Engine::Fast`] is timed against the
    /// reference engine, [`Engine::Native`] against the fast engine;
    /// [`Engine::Reference`] *is* the baseline and is rejected.
    pub engine: Engine,
    /// The machine simulated cycles are priced against. Subject and
    /// baseline engines share it (the identity contract is per target),
    /// and it is recorded in the report meta so per-target baseline files
    /// cannot be compared across targets by accident.
    pub target: Target,
}

impl Default for RunBenchConfig {
    fn default() -> RunBenchConfig {
        RunBenchConfig {
            n: 4096,
            iters: 3,
            engine: Engine::Fast,
            target: Target::reference_default(),
        }
    }
}

impl RunBenchConfig {
    /// The engine the subject is timed against.
    ///
    /// # Errors
    /// [`Engine::Reference`] has no baseline (it is the baseline).
    pub fn baseline_engine(&self) -> Result<Engine, String> {
        match self.engine {
            Engine::Fast => Ok(Engine::Reference),
            Engine::Native => Ok(Engine::Fast),
            Engine::Reference => Err("runbench: the reference engine is the baseline; \
                 --engine takes fast or native"
                .into()),
        }
    }

    /// JSON field names for the subject and baseline wall times. The
    /// default mode keeps the historical `fast_nanos`/`reference_nanos`
    /// schema of `BENCH_runbench.json`.
    fn nanos_keys(&self) -> (&'static str, &'static str) {
        match self.engine {
            Engine::Native => ("native_nanos", "fast_nanos"),
            _ => ("fast_nanos", "reference_nanos"),
        }
    }

    /// The mode tag recorded in the report meta.
    fn mode(&self) -> &'static str {
        match self.engine {
            Engine::Native => "native-vs-fast",
            _ => "fast-vs-reference",
        }
    }
}

/// Per-kernel timing of the subject engine against its baseline.
#[derive(Debug, Clone)]
pub struct RunBenchRow {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label (the vectorized module that was executed).
    pub config: &'static str,
    /// Simulated cycles (identical for both engines when `identical`).
    pub cycles: u64,
    /// Best subject-engine wall time, nanoseconds.
    pub subject_nanos: u64,
    /// Best baseline-engine wall time, nanoseconds.
    pub baseline_nanos: u64,
    /// Native-tier blocks that dynamically bailed out to the exact path
    /// during one subject run (0 in the default mode).
    pub native_bailouts: u64,
    /// Whether cycles, checked outputs, execution statistics, and profile
    /// JSON were byte-identical between the engines.
    pub identical: bool,
}

impl RunBenchRow {
    /// Baseline wall time over subject wall time (higher = subject engine
    /// faster).
    pub fn speedup(&self) -> f64 {
        self.baseline_nanos as f64 / self.subject_nanos.max(1) as f64
    }
}

/// Result of a full suite sweep.
#[derive(Debug, Clone)]
pub struct RunBenchReport {
    /// The configuration measured.
    pub config: RunBenchConfig,
    /// Per-kernel timings.
    pub rows: Vec<RunBenchRow>,
}

impl RunBenchReport {
    /// Geomean of per-kernel wall-clock speedups (baseline / subject).
    pub fn geomean_speedup(&self) -> f64 {
        let xs: Vec<f64> = self.rows.iter().map(RunBenchRow::speedup).collect();
        geomean(&xs)
    }

    /// Whether every kernel was engine-identical.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Total native-tier bailouts across all kernels (0 in the default
    /// mode).
    pub fn total_bailouts(&self) -> u64 {
        self.rows.iter().map(|r| r.native_bailouts).sum()
    }

    /// Serializes the report to a JSON object (the CI artifact and
    /// `BENCH_runbench[_native].json` baseline format).
    pub fn to_json(&self) -> Json {
        let (subject_key, baseline_key) = self.config.nanos_keys();
        let native = self.config.engine == Engine::Native;
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("kernel", Json::Str(r.kernel.clone())),
                    ("config", Json::Str(r.config.to_string())),
                    ("cycles", Json::u64(r.cycles)),
                    (subject_key, Json::u64(r.subject_nanos)),
                    (baseline_key, Json::u64(r.baseline_nanos)),
                    ("speedup", Json::Num(r.speedup())),
                    ("identical", Json::Bool(r.identical)),
                ];
                if native {
                    fields.push(("bailouts", Json::u64(r.native_bailouts)));
                }
                Json::obj(fields)
            })
            .collect();
        let mut fields = vec![
            (
                "meta",
                telemetry::cli::bench_meta(
                    "runbench",
                    vec![
                        ("n", Json::u64(self.config.n)),
                        ("iters", Json::u64(self.config.iters as u64)),
                        // Cache-relevant sweep description: which kernel
                        // sets and gang configurations the rows cover.
                        (
                            "gang_config",
                            Json::Str("simdlib×parsimony + ispc(tiny)×{parsimony,gangsync}".into()),
                        ),
                        ("engine", Json::Str(self.config.mode().into())),
                        ("target", Json::Str(self.config.target.flag_name())),
                    ],
                ),
            ),
            ("n", Json::u64(self.config.n)),
            ("iters", Json::u64(self.config.iters as u64)),
            ("geomean_speedup", Json::Num(self.geomean_speedup())),
            ("identical", Json::Bool(self.all_identical())),
            ("kernels", Json::u64(self.rows.len() as u64)),
        ];
        if native {
            fields.push(("bailouts", Json::u64(self.total_bailouts())));
        }
        fields.push(("rows", Json::Arr(rows)));
        Json::obj(fields)
    }

    /// Renders the human-readable summary (worst and best kernels plus the
    /// aggregate line; the full per-kernel table lives in the JSON).
    pub fn render_text(&self) -> String {
        let native = self.config.engine == Engine::Native;
        let (subject_col, baseline_col) = if native {
            ("native (us)", "fast (us)")
        } else {
            ("fast (us)", "ref (us)")
        };
        let mut out = String::new();
        out.push_str(&format!(
            "runbench[{}]: {} kernel(s), n={}, {} iteration(s) per engine\n",
            self.config.mode(),
            self.rows.len(),
            self.config.n,
            self.config.iters
        ));
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>8}  identical\n",
            "kernel", subject_col, baseline_col, "speedup"
        ));
        let mut ranked: Vec<&RunBenchRow> = self.rows.iter().collect();
        ranked.sort_by(|a, b| {
            a.speedup()
                .partial_cmp(&b.speedup())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let shown: Vec<&RunBenchRow> = if ranked.len() > 10 {
            ranked
                .iter()
                .take(5)
                .chain(ranked.iter().rev().take(5).rev())
                .copied()
                .collect()
        } else {
            ranked
        };
        for r in &shown {
            out.push_str(&format!(
                "{:<28} {:>12.1} {:>12.1} {:>7.2}x  {}\n",
                format!("{}/{}", r.kernel, r.config),
                r.subject_nanos as f64 / 1e3,
                r.baseline_nanos as f64 / 1e3,
                r.speedup(),
                if r.identical { "yes" } else { "NO" }
            ));
        }
        if shown.len() < self.rows.len() {
            out.push_str(&format!(
                "  ... ({} more kernels in the JSON report)\n",
                self.rows.len() - shown.len()
            ));
        }
        out.push_str(&format!(
            "geomean speedup      : {:>7.2}x\n",
            self.geomean_speedup()
        ));
        out.push_str(&format!(
            "engines identical    : {}\n",
            if self.all_identical() { "yes" } else { "NO" }
        ));
        if native {
            out.push_str(&format!(
                "native bailouts      : {}\n",
                self.total_bailouts()
            ));
        }
        out
    }
}

/// One timed execution of a built module under `engine` (unprofiled, the
/// configuration the harnesses run in). All runs of one kernel share a
/// plan cache, so the measurement amortizes plan construction (frame
/// plans, and through them the native tier's lowering) across iterations
/// exactly as the serving path's warm runs do — both engines benefit
/// identically, keeping the comparison fair.
fn timed_run(
    module: &psir::Module,
    k: &Kernel,
    cost: &TargetCost,
    engine: Engine,
    plans: &std::sync::Arc<psir::PlanCache>,
) -> Result<(u64, RunResult), String> {
    let t = Instant::now();
    let r = run_module_engine_shared(module, k, cost, false, engine, plans, 0)?;
    Ok((t.elapsed().as_nanos() as u64, r))
}

/// Benchmarks one kernel/config pair: best-of-`iters` wall time per
/// engine, plus a profiled identity run per engine.
fn bench_kernel(
    k: &Kernel,
    cfg_label: &'static str,
    config: Config,
    iters: usize,
    subject: Engine,
    baseline: Engine,
    target: &Target,
) -> Result<RunBenchRow, String> {
    let module = build_module(k, config).map_err(|e| format!("{}: {e}", k.name))?;
    let cost = TargetCost::for_target(target.clone());
    // One cache per kernel (module_id 0): subject and baseline share the
    // same frame plans, so neither engine pays plan construction inside
    // the timed region after its first iteration.
    let plans = std::sync::Arc::new(psir::PlanCache::new(1 << 20));

    let mut best: [Option<(u64, RunResult)>; 2] = [None, None];
    for (slot, engine) in [(0, subject), (1, baseline)] {
        for _ in 0..iters {
            let (nanos, r) = timed_run(&module, k, &cost, engine, &plans)
                .map_err(|e| format!("{}[{engine:?}]: {e}", k.name))?;
            if best[slot].as_ref().is_none_or(|(b, _)| nanos < *b) {
                best[slot] = Some((nanos, r));
            }
        }
    }
    let [subj, base] = best;
    let (subject_nanos, subj_r) = subj.ok_or("runbench: no subject run completed")?;
    let (baseline_nanos, base_r) = base.ok_or("runbench: no baseline run completed")?;

    // Identity: cycles / outputs / stats from the timed runs, profile JSON
    // from one profiled run per engine.
    let profile_json = |engine: Engine| -> Result<String, String> {
        let r = run_module_engine(&module, k, &cost, true, engine)
            .map_err(|e| format!("{}[{engine:?}]: {e}", k.name))?;
        Ok(r.profile
            .map(|p| p.to_json().to_string_pretty())
            .unwrap_or_default())
    };
    let identical = subj_r.cycles == base_r.cycles
        && subj_r.outputs == base_r.outputs
        && subj_r.stats == base_r.stats
        && profile_json(subject)? == profile_json(baseline)?;

    Ok(RunBenchRow {
        kernel: k.name.clone(),
        config: cfg_label,
        cycles: subj_r.cycles,
        subject_nanos,
        baseline_nanos,
        native_bailouts: subj_r.native_bailouts,
        identical,
    })
}

/// Runs the full suite sweep: every Simd-Library kernel (Figure 5's set)
/// executed as its Parsimony-vectorized module, plus the ispc suite
/// (Figure 4's set, tiny sizes) under both the Parsimony and
/// gang-synchronous configurations.
///
/// # Errors
/// Reports build failures and runtime traps with kernel context.
pub fn run(cfg: &RunBenchConfig) -> Result<RunBenchReport, String> {
    if cfg.iters == 0 {
        return Err("runbench: iters must be >= 1".into());
    }
    if cfg.n == 0 || !cfg.n.is_multiple_of(256) {
        return Err("runbench: n must be a positive multiple of 256".into());
    }
    let baseline = cfg.baseline_engine()?;
    let mut rows = Vec::new();
    for k in suite::simdlib::kernels(cfg.n) {
        rows.push(bench_kernel(
            &k,
            Config::Parsimony.label(),
            Config::Parsimony,
            cfg.iters,
            cfg.engine,
            baseline,
            &cfg.target,
        )?);
    }
    for k in suite::ispc::kernels(suite::ispc::IspcSizes::tiny()) {
        for config in [Config::Parsimony, Config::GangSync] {
            rows.push(bench_kernel(
                &k,
                config.label(),
                config,
                cfg.iters,
                cfg.engine,
                baseline,
                &cfg.target,
            )?);
        }
    }
    Ok(RunBenchReport {
        config: cfg.clone(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_kernel_is_identical_and_reports() {
        let k = suite::simdlib::kernels(256)
            .into_iter()
            .next()
            .expect("suite has kernels");
        let row = bench_kernel(
            &k,
            Config::Parsimony.label(),
            Config::Parsimony,
            1,
            Engine::Fast,
            Engine::Reference,
            &Target::reference_default(),
        )
        .expect("kernel benches");
        assert!(row.identical, "engines must agree on {}", row.kernel);
        assert!(row.cycles > 0);
        let report = RunBenchReport {
            config: RunBenchConfig {
                n: 256,
                iters: 1,
                engine: Engine::Fast,
                target: Target::reference_default(),
            },
            rows: vec![row],
        };
        let j = report.to_json().to_string_pretty();
        assert!(j.contains("\"geomean_speedup\""));
        assert!(j.contains("\"identical\": true"));
        assert!(j.contains("\"fast_nanos\""));
        assert!(j.contains("\"reference_nanos\""));
        assert!(!j.contains("\"bailouts\""));
        assert!(report.render_text().contains("geomean speedup"));
    }

    #[test]
    fn native_mode_reports_bailouts_and_identity() {
        let k = suite::simdlib::kernels(256)
            .into_iter()
            .next()
            .expect("suite has kernels");
        let row = bench_kernel(
            &k,
            Config::Parsimony.label(),
            Config::Parsimony,
            1,
            Engine::Native,
            Engine::Fast,
            &Target::reference_default(),
        )
        .expect("kernel benches");
        assert!(row.identical, "native must match fast on {}", row.kernel);
        assert_eq!(row.native_bailouts, 0, "suite kernels must run fully fused");
        let report = RunBenchReport {
            config: RunBenchConfig {
                n: 256,
                iters: 1,
                engine: Engine::Native,
                target: Target::reference_default(),
            },
            rows: vec![row],
        };
        let j = report.to_json().to_string_pretty();
        assert!(j.contains("\"native_nanos\""));
        assert!(j.contains("\"fast_nanos\""));
        assert!(j.contains("\"bailouts\": 0"));
        assert!(j.contains("native-vs-fast"));
        assert!(report.render_text().contains("native bailouts"));
    }

    #[test]
    fn rejects_bad_config() {
        assert!(run(&RunBenchConfig {
            n: 100,
            iters: 1,
            ..RunBenchConfig::default()
        })
        .is_err());
        assert!(run(&RunBenchConfig {
            n: 256,
            iters: 0,
            ..RunBenchConfig::default()
        })
        .is_err());
        assert!(run(&RunBenchConfig {
            n: 256,
            iters: 1,
            engine: Engine::Reference,
            ..RunBenchConfig::default()
        })
        .is_err());
    }
}

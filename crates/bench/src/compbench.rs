//! Compile-time benchmark for the parallel region driver.
//!
//! Parsimony's pitch is a self-contained IR-to-IR pass that drops into a
//! standard compiler flow, which makes *compile time* a first-class metric.
//! This module synthesizes a PsimC translation unit with `M` independent
//! SPMD regions, runs the vectorization pipeline serially (`jobs = 1`) and
//! with a worker pool (`jobs = N`), and reports:
//!
//! * wall-clock compile time for both (best of `iters` runs),
//! * the speedup ratio,
//! * whether the parallel output is **byte-identical** to the serial one
//!   (printed module and canonical remark stream) — the determinism
//!   contract CI gates on,
//! * the per-region wall-time attribution of both runs.
//!
//! Used by the `compbench` binary and the CI `compile-time` job.

use parsimony::{vectorize_module_with, PipelineOptions, VectorizeOptions};
use psir::Module;
use std::time::Instant;
use telemetry::{CompileTimings, Json};

/// Configuration of one compile-time measurement.
#[derive(Debug, Clone)]
pub struct CompBenchConfig {
    /// Number of synthesized SPMD regions.
    pub regions: usize,
    /// Worker count for the parallel run (the serial run always uses 1).
    pub jobs: usize,
    /// Timed repetitions per configuration; the best (minimum) wall time
    /// is reported to suppress scheduler noise.
    pub iters: usize,
}

impl Default for CompBenchConfig {
    fn default() -> CompBenchConfig {
        CompBenchConfig {
            regions: 64,
            jobs: parsimony::default_jobs(),
            iters: 3,
        }
    }
}

/// Result of one serial-vs-parallel compile-time comparison.
#[derive(Debug, Clone)]
pub struct CompBenchReport {
    /// The configuration measured.
    pub config: CompBenchConfig,
    /// Best serial (`jobs = 1`) wall time, nanoseconds.
    pub serial_nanos: u64,
    /// Best parallel (`jobs = config.jobs`) wall time, nanoseconds.
    pub parallel_nanos: u64,
    /// Whether the parallel printed module and canonical remark stream are
    /// byte-identical to the serial ones.
    pub identical: bool,
    /// Regions vectorized (same for both runs when `identical`).
    pub vectorized: usize,
    /// Regions degraded to the scalar fallback.
    pub degraded: usize,
    /// Per-region attribution of the best serial run.
    pub serial_timings: CompileTimings,
    /// Per-region attribution of the best parallel run.
    pub parallel_timings: CompileTimings,
}

impl CompBenchReport {
    /// Serial wall time over parallel wall time (higher = parallel faster).
    pub fn speedup(&self) -> f64 {
        self.serial_nanos as f64 / self.parallel_nanos.max(1) as f64
    }

    /// Serializes the report to a JSON object (the CI artifact format).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "meta",
                telemetry::cli::bench_meta(
                    "compbench",
                    vec![
                        ("regions", Json::u64(self.config.regions as u64)),
                        ("jobs", Json::u64(self.config.jobs as u64)),
                    ],
                ),
            ),
            ("regions", Json::u64(self.config.regions as u64)),
            ("jobs", Json::u64(self.config.jobs as u64)),
            ("iters", Json::u64(self.config.iters as u64)),
            ("serial_nanos", Json::u64(self.serial_nanos)),
            ("parallel_nanos", Json::u64(self.parallel_nanos)),
            ("speedup", Json::Num(self.speedup())),
            ("identical", Json::Bool(self.identical)),
            ("vectorized", Json::u64(self.vectorized as u64)),
            ("degraded", Json::u64(self.degraded as u64)),
            ("serial", self.serial_timings.to_json()),
            ("parallel", self.parallel_timings.to_json()),
        ])
    }

    /// Renders the human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compbench: {} region(s), {} iteration(s) per config\n",
            self.config.regions, self.config.iters
        ));
        out.push_str(&format!(
            "  serial   (jobs=1)  : {:>10.3} ms\n",
            self.serial_nanos as f64 / 1e6
        ));
        out.push_str(&format!(
            "  parallel (jobs={:<2}) : {:>10.3} ms\n",
            self.config.jobs,
            self.parallel_nanos as f64 / 1e6
        ));
        out.push_str(&format!(
            "  speedup            : {:>10.2}x\n",
            self.speedup()
        ));
        out.push_str(&format!(
            "  output identical   : {}\n",
            if self.identical { "yes" } else { "NO" }
        ));
        out.push_str(&format!(
            "  vectorized/degraded: {}/{}\n",
            self.vectorized, self.degraded
        ));
        out.push_str(&self.parallel_timings.render_text());
        out
    }
}

/// Region body templates, cycled so the synthesized module mixes shapes
/// (pure arithmetic, math-library dispatch, data-dependent control flow,
/// gathers) the way a real translation unit would.
const BODIES: &[&str] = &[
    // Straight-line arithmetic over two streams.
    "    f32 x = a[i];\n    f32 y = b[i];\n    f32 z = x * y + x - y * 0.5;\n    z = z * z + x;\n    out[i] = z;\n",
    // Math-library dispatch (SLEEF-like vector calls).
    "    f32 x = a[i] + 1.5;\n    f32 y = sqrt(x) + exp(b[i] * 0.01);\n    out[i] = log(x + y + 2.0);\n",
    // Data-dependent branch (linearization + phi-to-select).
    "    f32 x = a[i];\n    f32 y = b[i];\n    f32 r = 0.0;\n    if (x > y) {\n      r = x - y;\n    } else {\n      r = (y - x) * 2.0;\n    }\n    out[i] = r;\n",
    // Data-dependent loop (structurization work).
    "    f32 x = a[i];\n    i32 it = 0;\n    while (x < 100.0 && it < 12) {\n      x = x * 1.7 + 1.0;\n      it += 1;\n    }\n    out[i] = x + (f32) it;\n",
    // Indexed gather through a computed address.
    "    i64 j = (i * 7 + 3) % n;\n    out[i] = a[j] * 0.25 + b[i];\n",
];

/// Synthesizes a PsimC translation unit with `regions` independent SPMD
/// functions (`k0 … k{regions-1}`), cycling body templates for shape
/// variety. Deterministic: the same `regions` always yields the same
/// source.
pub fn synth_source(regions: usize) -> String {
    let mut src = String::new();
    for r in 0..regions {
        let body = BODIES[r % BODIES.len()];
        src.push_str(&format!(
            "void k{r}(f32* restrict a, f32* restrict b, f32* restrict out, i64 n) {{\n  \
             psim gang(16) threads(n) {{\n    i64 i = psim_thread_num();\n{body}  }}\n}}\n\n"
        ));
    }
    src
}

/// Compiles the synthesized source to the scalar module the pipeline runs
/// on.
///
/// # Errors
/// Propagates front-end failures (which would be a bug in [`synth_source`]).
pub fn synth_module(regions: usize) -> Result<Module, String> {
    psimc::compile(&synth_source(regions)).map_err(|e| e.to_string())
}

/// One timed pipeline run; returns the wall time and the full output.
fn timed_run(
    m: &Module,
    opts: &VectorizeOptions,
    popts: &PipelineOptions,
) -> Result<(u64, parsimony::PipelineOutput), String> {
    let t = Instant::now();
    let out = vectorize_module_with(m, opts, popts).map_err(|e| e.to_string())?;
    Ok((t.elapsed().as_nanos() as u64, out))
}

/// Runs the full serial-vs-parallel comparison.
///
/// # Errors
/// Reports front-end or pipeline failures (the synthesized module is
/// expected to vectorize cleanly; degradation is reported, not an error).
pub fn run(cfg: &CompBenchConfig) -> Result<CompBenchReport, String> {
    if cfg.regions == 0 || cfg.iters == 0 || cfg.jobs == 0 {
        return Err("compbench: regions, jobs, and iters must all be >= 1".into());
    }
    let m = synth_module(cfg.regions)?;
    let opts = VectorizeOptions::default();
    let serial_popts = PipelineOptions::default().with_jobs(1);
    let parallel_popts = PipelineOptions::default().with_jobs(cfg.jobs);

    let mut best: [Option<(u64, parsimony::PipelineOutput)>; 2] = [None, None];
    for (slot, popts) in [(0, &serial_popts), (1, &parallel_popts)] {
        for _ in 0..cfg.iters {
            let (nanos, out) = timed_run(&m, &opts, popts)?;
            if best[slot].as_ref().is_none_or(|(b, _)| nanos < *b) {
                best[slot] = Some((nanos, out));
            }
        }
    }
    let [serial, parallel] = best;
    let (serial_nanos, serial_out) = serial.ok_or("compbench: no serial run completed")?;
    let (parallel_nanos, parallel_out) = parallel.ok_or("compbench: no parallel run completed")?;

    let identical = psir::print_module(&serial_out.module)
        == psir::print_module(&parallel_out.module)
        && telemetry::remarks_to_text(&serial_out.remarks)
            == telemetry::remarks_to_text(&parallel_out.remarks)
        && serial_out.vectorized == parallel_out.vectorized
        && serial_out.degraded == parallel_out.degraded;

    Ok(CompBenchReport {
        config: cfg.clone(),
        serial_nanos,
        parallel_nanos,
        identical,
        vectorized: serial_out.vectorized.len(),
        degraded: serial_out.degraded.len(),
        serial_timings: serial_out.timings,
        parallel_timings: parallel_out.timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_source_is_deterministic_and_compiles() {
        assert_eq!(synth_source(7), synth_source(7));
        let m = synth_module(11).expect("synthesized source compiles");
        assert_eq!(m.spmd_functions().len(), 11);
    }

    #[test]
    fn small_run_is_identical_and_fully_vectorized() {
        let report = run(&CompBenchConfig {
            regions: 10,
            jobs: 4,
            iters: 1,
        })
        .expect("compbench runs");
        assert!(report.identical, "parallel output must match serial");
        assert_eq!(report.vectorized, 10);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.serial_timings.regions.len(), 10);
        assert_eq!(report.parallel_timings.regions.len(), 10);
        assert_eq!(report.parallel_timings.jobs, 4);
        let j = report.to_json().to_string_pretty();
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"identical\": true"));
    }
}

//! # psim-bench — the experiment harnesses
//!
//! Binaries `fig4` and `fig5` regenerate the paper's two results figures
//! (run them with `cargo run --release -p psim-bench --bin fig4` / `fig5`);
//! the Criterion benches under `benches/` time the same configurations.
//! See `EXPERIMENTS.md` at the repository root for recorded outputs.

#![warn(missing_docs)]

pub mod compbench;
pub mod runbench;

use suite::runner::{
    build_module, geomean, run_kernel_profiled, run_module_engine, Config, RunResult,
};
use suite::Kernel;
use telemetry::{Json, Profile, ProfileDiff};
use vmach::{Target, TargetCost};

/// Reads a committed `BENCH_*.json` baseline and validates its
/// self-describing `meta` block (schema version, producing tool) against
/// this build — the shared front door of every `--baseline` gate flag.
///
/// # Errors
/// Explains what failed to read, parse, or match; gates print this and
/// exit 1 so stale baselines fail loudly.
pub fn check_baseline(path: &str, tool: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    telemetry::cli::check_bench_meta(&json, tool)?;
    Ok(json)
}

/// One row of a speedup table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// `(config, cycles)` pairs in presentation order.
    pub cycles: Vec<(Config, u64)>,
    /// `(config, best-of-iters wall nanoseconds)` pairs: how long the
    /// interpreter itself took, as opposed to the simulated cycles it
    /// reported.
    pub wall_nanos: Vec<(Config, u64)>,
}

impl Row {
    /// Speedup of `cfg` relative to `base` (higher = faster than base).
    pub fn speedup(&self, cfg: Config, base: Config) -> f64 {
        let get = |c: Config| {
            self.cycles
                .iter()
                .find(|(k, _)| *k == c)
                .map(|(_, v)| *v as f64)
                .expect("config measured")
        };
        get(base) / get(cfg)
    }

    /// Best-of-iters wall time of one configuration, in milliseconds.
    pub fn wall_ms(&self, cfg: Config) -> f64 {
        self.wall_nanos
            .iter()
            .find(|(k, _)| *k == cfg)
            .map(|(_, v)| *v as f64 / 1e6)
            .expect("config measured")
    }
}

/// Runs every configuration of every kernel once, returning the rows.
///
/// # Panics
/// Panics on any build or runtime failure (harness inputs are trusted).
pub fn measure(kernels: &[Kernel], cfgs: &[Config]) -> Vec<Row> {
    measure_iters(kernels, cfgs, 1)
}

/// Like [`measure`], repeating each kernel/config execution `iters` times
/// and recording the best (minimum) wall time — the simulated cycles are
/// deterministic across repetitions, only the wall clock varies.
///
/// # Panics
/// Panics on any build or runtime failure (harness inputs are trusted),
/// and if `iters` is zero.
pub fn measure_iters(kernels: &[Kernel], cfgs: &[Config], iters: usize) -> Vec<Row> {
    assert!(iters >= 1, "iters must be >= 1");
    kernels
        .iter()
        .map(|k| {
            let mut cycles = Vec::with_capacity(cfgs.len());
            let mut wall_nanos = Vec::with_capacity(cfgs.len());
            for &c in cfgs {
                // Build once; the wall clock times execution, not
                // compilation (compbench owns compile time).
                let module = build_module(k, c).unwrap_or_else(|e| panic!("{}: {e}", k.name));
                let cost = TargetCost::for_target(suite::runner::default_target());
                let mut best = u64::MAX;
                let mut got = 0u64;
                let engine = suite::runner::default_engine();
                for _ in 0..iters {
                    let t = std::time::Instant::now();
                    let r: RunResult = run_module_engine(&module, k, &cost, false, engine)
                        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
                    best = best.min(t.elapsed().as_nanos() as u64);
                    got = r.cycles;
                }
                cycles.push((c, got));
                wall_nanos.push((c, best));
            }
            Row {
                name: k.name.clone(),
                cycles,
                wall_nanos,
            }
        })
        .collect()
}

/// Total best-of-iters wall time of one configuration across all rows, in
/// milliseconds.
pub fn total_wall_ms(rows: &[Row], cfg: Config) -> f64 {
    rows.iter().map(|r| r.wall_ms(cfg)).sum()
}

/// Geomean of per-row speedups of `cfg` over `base`.
pub fn geomean_speedup(rows: &[Row], cfg: Config, base: Config) -> f64 {
    let xs: Vec<f64> = rows.iter().map(|r| r.speedup(cfg, base)).collect();
    geomean(&xs)
}

/// Formats a fixed-width table cell.
pub fn cell(v: f64) -> String {
    format!("{v:8.2}")
}

/// How a harness should report its cycle-attribution profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMode {
    /// No profiling (the default).
    Off,
    /// Human-readable per-kernel breakdown after the speedup tables.
    Text,
    /// A single profile JSON document on stdout (tables suppressed so the
    /// output can be piped straight into `profdiff`).
    Json,
}

/// Parses a `--profile` / `--profile=json` flag; `None` if `arg` is not a
/// profile flag at all.
pub fn parse_profile_flag(arg: &str) -> Option<ProfileMode> {
    match arg {
        "--profile" | "--profile=text" => Some(ProfileMode::Text),
        "--profile=json" => Some(ProfileMode::Json),
        _ => None,
    }
}

/// Parses and applies a figure harness's `--engine VALUE`: routes every
/// default-engine kernel run through the chosen interpreter engine (the
/// engines are result-identical by contract, so the figures are a
/// cross-check, not a different experiment). Returns `false` — after
/// printing the exit-2 diagnostic — on a missing or unknown value, so the
/// caller can fall through to its usage line.
pub fn apply_engine_flag(tool: &str, v: Option<&String>) -> bool {
    let Some(v) = v else {
        eprintln!("{tool}: --engine requires a value");
        return false;
    };
    match psir::Engine::from_flag(v) {
        Some(e) => {
            suite::runner::set_engine_override(e);
            true
        }
        None => {
            eprintln!(
                "{tool}: unknown engine {v:?}; valid engines: {}",
                psir::Engine::ALL.map(psir::Engine::flag_name).join(", ")
            );
            false
        }
    }
}

/// Parses and applies a figure harness's `--target VALUE`: routes every
/// default-cost kernel run through [`suite::runner::set_target_override`]
/// so the whole process prices against the chosen machine. Returns
/// `false` — after printing the exit-2 diagnostic naming the valid
/// targets — on a missing or unknown value, so the caller can fall
/// through to its usage line.
pub fn apply_target_flag(tool: &str, v: Option<&String>) -> bool {
    let Some(v) = v else {
        eprintln!(
            "{tool}: --target requires a value; valid targets: {}",
            vmach::VALID_TARGETS
        );
        return false;
    };
    match Target::parse(v) {
        Ok(t) => {
            suite::runner::set_target_override(t);
            true
        }
        Err(e) => {
            eprintln!("{tool}: {e}");
            false
        }
    }
}

/// FNV-1a fingerprint of a module's printed text. The `target-contract`
/// gate (fig4 `--contract`) prints this so CI can diff compilations at
/// different SVE vector lengths: the fingerprints must match because
/// compilation is target-independent.
pub fn module_fingerprint(module: &psir::Module) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in psir::print_module(module).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs one kernel configuration with profiling and namespaces every
/// function as `{kernel}/{target}/{config}/{function}` so profiles from
/// many kernels (and many targets, since the telemetry is a target×config
/// matrix) can be merged into one document without key collisions.
///
/// # Panics
/// Panics on build or runtime failure (harness inputs are trusted).
pub fn profile_kernel(k: &Kernel, cfg: Config) -> Profile {
    let r = run_kernel_profiled(k, cfg).unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let p = r.profile.expect("profiled run returns a profile");
    let target = suite::runner::default_target().flag_name();
    let mut out = Profile::new();
    for (fname, fp) in p.functions {
        out.functions
            .insert(format!("{}/{target}/{}/{fname}", k.name, cfg.label()), fp);
    }
    out
}

/// Profiles every kernel under every configuration into one merged,
/// namespaced [`Profile`].
///
/// # Panics
/// Panics on build or runtime failure (harness inputs are trusted).
pub fn profile_kernels(kernels: &[Kernel], cfgs: &[Config]) -> Profile {
    let mut merged = Profile::new();
    for k in kernels {
        for &c in cfgs {
            merged.merge(&profile_kernel(k, c));
        }
    }
    merged
}

/// Core of the `profdiff` binary: parse two profile JSON documents and
/// compare `after` against the `before` baseline.
///
/// Returns the rendered diff table and whether the geomean cycle ratio
/// regressed past `threshold` (the binary turns that into a nonzero exit).
///
/// # Errors
/// Reports malformed JSON or JSON that is not a profile document.
pub fn profdiff(
    before_json: &str,
    after_json: &str,
    threshold: f64,
) -> Result<(String, bool), String> {
    let parse = |src: &str, which: &str| -> Result<Profile, String> {
        let j = telemetry::Json::parse(src).map_err(|e| format!("{which}: {e}"))?;
        Profile::from_json(&j).ok_or_else(|| format!("{which}: not a profile document"))
    };
    let before = parse(before_json, "before")?;
    let after = parse(after_json, "after")?;
    let diff = ProfileDiff::compute(&before, &after, threshold);
    Ok((diff.render_text(), diff.regressed))
}

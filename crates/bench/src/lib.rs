//! # psim-bench — the experiment harnesses
//!
//! Binaries `fig4` and `fig5` regenerate the paper's two results figures
//! (run them with `cargo run --release -p psim-bench --bin fig4` / `fig5`);
//! the Criterion benches under `benches/` time the same configurations.
//! See `EXPERIMENTS.md` at the repository root for recorded outputs.

#![warn(missing_docs)]

use suite::runner::{geomean, run_kernel, Config, RunResult};
use suite::Kernel;

/// One row of a speedup table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// `(config, cycles)` pairs in presentation order.
    pub cycles: Vec<(Config, u64)>,
}

impl Row {
    /// Speedup of `cfg` relative to `base` (higher = faster than base).
    pub fn speedup(&self, cfg: Config, base: Config) -> f64 {
        let get = |c: Config| {
            self.cycles
                .iter()
                .find(|(k, _)| *k == c)
                .map(|(_, v)| *v as f64)
                .expect("config measured")
        };
        get(base) / get(cfg)
    }
}

/// Runs every configuration of every kernel, returning the rows.
///
/// # Panics
/// Panics on any build or runtime failure (harness inputs are trusted).
pub fn measure(kernels: &[Kernel], cfgs: &[Config]) -> Vec<Row> {
    kernels
        .iter()
        .map(|k| {
            let cycles = cfgs
                .iter()
                .map(|&c| {
                    let r: RunResult = run_kernel(k, c)
                        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
                    (c, r.cycles)
                })
                .collect();
            Row {
                name: k.name.clone(),
                cycles,
            }
        })
        .collect()
}

/// Geomean of per-row speedups of `cfg` over `base`.
pub fn geomean_speedup(rows: &[Row], cfg: Config, base: Config) -> f64 {
    let xs: Vec<f64> = rows.iter().map(|r| r.speedup(cfg, base)).collect();
    geomean(&xs)
}

/// Formats a fixed-width table cell.
pub fn cell(v: f64) -> String {
    format!("{v:8.2}")
}

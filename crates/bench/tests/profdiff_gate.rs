//! The `profdiff` CI gate: a regression past the threshold must be flagged
//! (the binary turns the flag into a nonzero exit), parity must pass, and
//! malformed input must be rejected rather than trusted.

use psim_bench::{profdiff, profile_kernel};
use suite::runner::Config;
use suite::simdlib::kernels;
use telemetry::{Json, Profile};

/// A small real profile, serialized the way `fig5 --profile=json` emits it.
fn sample_profile_json() -> String {
    let ks = kernels(256);
    let k = ks.iter().find(|k| k.name == "saxpy_f32").expect("kernel");
    profile_kernel(k, Config::Parsimony)
        .to_json()
        .to_string_pretty()
}

/// Doubles every cycle count in a profile document (a 2× regression).
fn doubled(json_src: &str) -> String {
    let j = Json::parse(json_src).expect("valid profile json");
    let p = Profile::from_json(&j).expect("profile document");
    let mut slow = p.clone();
    slow.merge(&p);
    slow.to_json().to_string_pretty()
}

#[test]
fn self_diff_passes_the_gate() {
    let j = sample_profile_json();
    let (table, regressed) = profdiff(&j, &j, 0.05).expect("diff runs");
    assert!(!regressed, "identical profiles must not regress");
    assert!(table.contains("<total>"));
    assert!(table.contains("ok"));
}

#[test]
fn doubling_cycles_trips_the_gate() {
    let before = sample_profile_json();
    let after = doubled(&before);
    let (table, regressed) = profdiff(&before, &after, 0.05).expect("diff runs");
    assert!(regressed, "a 2x slowdown must trip the 5% gate");
    assert!(table.contains("REGRESSED"));

    // The gate is directional: the same pair reversed is an improvement.
    let (_, improved_regressed) = profdiff(&after, &before, 0.05).expect("diff runs");
    assert!(!improved_regressed, "an improvement must pass the gate");
}

#[test]
fn wide_threshold_tolerates_the_same_regression() {
    let before = sample_profile_json();
    let after = doubled(&before);
    let (_, regressed) = profdiff(&before, &after, 1.5).expect("diff runs");
    assert!(!regressed, "a 150% threshold tolerates a 2x ratio");
}

#[test]
fn malformed_input_is_an_error_not_a_pass() {
    assert!(profdiff("{not json", "{}", 0.05).is_err());
    assert!(profdiff("[1, 2, 3]", "[4]", 0.05).is_err());
}

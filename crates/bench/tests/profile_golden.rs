//! Golden-file check on the cycle-attribution profile: the data-dependent
//! lookup-table kernel (`lut_u8`) with shape analysis disabled must produce
//! a gather/scatter-dominated profile — every address is treated as
//! arbitrary, so loads gather and stores scatter. Shape analysis recovers
//! the consecutive accesses, shrinking those buckets.

use suite::runner::{run_kernel_profiled, Config};
use suite::simdlib::kernels;
use telemetry::{CostClass, Profile};

const N: u64 = 1024;

fn profile_of(cfg: Config) -> Profile {
    let ks = kernels(N);
    let k = ks
        .iter()
        .find(|k| k.name == "lut_u8")
        .expect("lut_u8 present");
    run_kernel_profiled(k, cfg)
        .expect("kernel runs")
        .profile
        .expect("profiled run returns a profile")
}

#[test]
fn lut_without_shape_analysis_matches_golden_dominance() {
    let profile = profile_of(Config::ParsimonyNoShape);
    let ranked: Vec<String> = profile
        .dominance()
        .iter()
        .map(|&(c, _)| c.name().to_string())
        .collect();
    let golden = include_str!("golden/lut_u8_noshape_dominance.txt");
    let expected: Vec<String> = golden.lines().map(str::to_string).collect();
    assert_eq!(
        ranked, expected,
        "dominance ranking drifted from the golden file \
         (tests/golden/lut_u8_noshape_dominance.txt)"
    );
    assert_eq!(ranked[0], "gather", "gathers must dominate without shapes");
    assert_eq!(ranked[1], "scatter", "scatters must rank second");
}

#[test]
fn shape_analysis_shrinks_the_gather_scatter_buckets() {
    let noshape = profile_of(Config::ParsimonyNoShape);
    let shaped = profile_of(Config::Parsimony);

    // The LUT load is genuinely data-dependent, so a gather bucket remains
    // even with shapes — but the consecutive `a[idx]` load stops gathering.
    assert!(
        shaped.class_cycles(CostClass::Gather) < noshape.class_cycles(CostClass::Gather),
        "shape analysis must reduce gather cycles"
    );
    assert!(
        shaped.class_cycles(CostClass::Gather) > 0,
        "the true LUT gather remains"
    );
    // The consecutive store is fully recovered: the scatter bucket empties.
    assert!(noshape.class_cycles(CostClass::Scatter) > 0);
    assert_eq!(
        shaped.class_cycles(CostClass::Scatter),
        0,
        "shape analysis must turn the consecutive store back into a packed store"
    );
}

//! # psim-telemetry
//!
//! Structured optimization remarks and cycle-attribution profiling for the
//! Parsimony reproduction, in the spirit of LLVM's `-Rpass` /
//! `-fsave-optimization-record` machinery.
//!
//! Two artifact families live here:
//!
//! * [`Remark`] — a structured record of one vectorizer decision (shape
//!   classification, memory-op selection, branch linearization, BOSCC
//!   guarding, φ→select conversion, opaque-call serialization, math-library
//!   dispatch, …). Every pass that makes a policy decision emits remarks
//!   instead of ad-hoc strings; the old `warnings: Vec<String>` surface is
//!   derived from the remark stream for compatibility.
//! * [`Profile`] — an accumulator attributing simulated cycles to
//!   [`CostClass`] buckets per function, fed by the `psir` interpreter's
//!   cost-model hooks and rendered by the bench binaries (`--profile`) and
//!   the `profdiff` CI gate.
//! * [`CompileTimings`] — wall-clock attribution for the parallel
//!   region-compilation driver: per-region build times plus fan-out
//!   metadata, reported by the `compbench` harness and its CI gate.
//!
//! Both serialize through the hand-rolled [`Json`] value type in
//! [`json`] — this crate deliberately has **zero** dependencies.

#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod profile;
pub mod timing;

pub use json::Json;
pub use profile::{CostClass, FnProfile, Profile, ProfileDiff};
pub use timing::{CompileTimings, RegionTiming};

use std::fmt;

/// The pipeline pass that produced a remark.
///
/// Variant order defines the deterministic sort order of remark streams
/// (pipeline order: front-end shape analysis first, auto-vectorizer last).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// `core::shape` — shape (uniform/indexed/varying) inference.
    Shape,
    /// `core::structurize` — CFG structurization ahead of linearization.
    Structurize,
    /// `core::transform` — the SPMD-to-vector transform proper.
    Vectorize,
    /// `autovec::loopvec` — the baseline inner-loop auto-vectorizer.
    Autovec,
    /// `core::opt` — the post-vectorization cleanup pipeline.
    Opt,
    /// `psir::verify` run inside the pipeline (in-pipeline IR verification).
    Verify,
    /// `vmach::legalize` — vector-IR-to-µop legalization.
    Legalize,
    /// `core::pipeline` — the module driver itself (lookups, fallback
    /// emission, caught panics attributed to no narrower pass).
    Pipeline,
}

impl Pass {
    /// Stable lower-case name used in JSON and text output.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Shape => "shape",
            Pass::Structurize => "structurize",
            Pass::Vectorize => "vectorize",
            Pass::Autovec => "autovec",
            Pass::Opt => "opt",
            Pass::Verify => "verify",
            Pass::Legalize => "legalize",
            Pass::Pipeline => "pipeline",
        }
    }

    /// Parses the stable name back into a pass.
    pub fn from_name(s: &str) -> Option<Pass> {
        Some(match s {
            "shape" => Pass::Shape,
            "structurize" => Pass::Structurize,
            "vectorize" => Pass::Vectorize,
            "autovec" => Pass::Autovec,
            "opt" => Pass::Opt,
            "verify" => Pass::Verify,
            "legalize" => Pass::Legalize,
            "pipeline" => Pass::Pipeline,
            _ => return None,
        })
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Severity of a remark, mirroring LLVM's passed/missed/analysis split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An optimization was applied.
    Passed,
    /// An optimization opportunity was declined or impossible.
    Missed,
    /// Neutral information about what the pass saw.
    Analysis,
    /// Something the user should look at (kept out of `Missed` so the
    /// legacy `warnings` shim can be derived as exactly this class).
    Warning,
    /// An unrecoverable failure; only [`Diagnostic`]s travelling in `Err`
    /// returns carry this, never remarks in the ordinary stream.
    Error,
}

impl Severity {
    /// Stable lower-case name used in JSON and text output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Passed => "passed",
            Severity::Missed => "missed",
            Severity::Analysis => "analysis",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the stable name back into a severity.
    pub fn from_name(s: &str) -> Option<Severity> {
        Some(match s {
            "passed" => Severity::Passed,
            "missed" => Severity::Missed,
            "analysis" => Severity::Analysis,
            "warning" => Severity::Warning,
            "error" => Severity::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a varying memory access was lowered (Parsimony §4.3's ladder:
/// contiguous packed ops, packed+shuffle for small constant strides,
/// gather/scatter otherwise, plus the scalar path for uniform addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOpChoice {
    /// Uniform address: one scalar op, splat/extract as needed.
    Scalar,
    /// Element stride 1: a single packed vector op.
    Packed,
    /// Small constant stride: packed loads plus shuffles.
    PackedShuffle,
    /// Arbitrary addresses: hardware gather/scatter.
    GatherScatter,
}

impl MemOpChoice {
    /// Stable snake_case name used in JSON and text output.
    pub fn name(self) -> &'static str {
        match self {
            MemOpChoice::Scalar => "scalar",
            MemOpChoice::Packed => "packed",
            MemOpChoice::PackedShuffle => "packed_shuffle",
            MemOpChoice::GatherScatter => "gather_scatter",
        }
    }

    /// Parses the stable name back into a choice.
    pub fn from_name(s: &str) -> Option<MemOpChoice> {
        Some(match s {
            "scalar" => MemOpChoice::Scalar,
            "packed" => MemOpChoice::Packed,
            "packed_shuffle" => MemOpChoice::PackedShuffle,
            "gather_scatter" => MemOpChoice::GatherScatter,
            _ => return None,
        })
    }
}

impl fmt::Display for MemOpChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of decision a remark records, with its structured payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RemarkKind {
    /// Shape-analysis summary for one function.
    ShapeSummary {
        /// Values classified uniform.
        uniform: usize,
        /// Values classified indexed (affine in the lane index).
        indexed: usize,
        /// Values classified varying.
        varying: usize,
    },
    /// Structurizer summary for one function.
    StructurizeSummary {
        /// Single-entry/single-exit regions discovered.
        regions: usize,
        /// Loops contained in those regions.
        loops: usize,
    },
    /// One load or store was lowered.
    MemOp {
        /// True for store, false for load.
        is_store: bool,
        /// The lowering the cost ladder chose.
        choice: MemOpChoice,
        /// Element stride when a constant stride was proven.
        stride: Option<i64>,
    },
    /// A varying branch was linearized into masked execution.
    BranchLinearized {
        /// Number of conditional arms merged into the linear schedule.
        arms: usize,
    },
    /// An any-lane (BOSCC) guard was wrapped around a linearized arm.
    BosccGuard,
    /// A φ node at a join became a mask-driven select.
    PhiToSelect {
        /// φ nodes converted at this join.
        phis: usize,
    },
    /// An opaque call was serialized per lane.
    CallSerialized {
        /// Callee symbol.
        callee: String,
        /// Gang size (number of scalar calls emitted).
        lanes: u32,
    },
    /// A math intrinsic was dispatched to a vector math library.
    MathDispatch {
        /// Intrinsic name (`pow`, `exp`, …).
        func: String,
        /// Library prefix (`sleef` or `fastm`).
        lib: String,
        /// Full mangled vector symbol.
        symbol: String,
    },
    /// A whole-loop verdict from the auto-vectorizer.
    LoopVectorized,
    /// The auto-vectorizer declined a loop.
    LoopRejected {
        /// Why the loop was left scalar.
        reason: String,
    },
    /// A region fell back to the scalar gang-serialized loop instead of
    /// being vectorized (the §4.2 serialization mechanism applied to the
    /// whole region), because vectorization failed or its output failed
    /// in-pipeline verification.
    Degraded {
        /// The region (SPMD function) that was serialized.
        region: String,
        /// Rendered diagnostic explaining why vectorization was abandoned.
        reason: String,
    },
    /// Free-form message (the legacy warning channel and anything that does
    /// not yet merit a dedicated variant).
    Note {
        /// The message text.
        text: String,
    },
}

impl RemarkKind {
    /// Stable snake_case kind tag used in JSON output and sorting.
    pub fn tag(&self) -> &'static str {
        match self {
            RemarkKind::ShapeSummary { .. } => "shape_summary",
            RemarkKind::StructurizeSummary { .. } => "structurize_summary",
            RemarkKind::MemOp { .. } => "mem_op",
            RemarkKind::BranchLinearized { .. } => "branch_linearized",
            RemarkKind::BosccGuard => "boscc_guard",
            RemarkKind::PhiToSelect { .. } => "phi_to_select",
            RemarkKind::CallSerialized { .. } => "call_serialized",
            RemarkKind::MathDispatch { .. } => "math_dispatch",
            RemarkKind::LoopVectorized => "loop_vectorized",
            RemarkKind::LoopRejected { .. } => "loop_rejected",
            RemarkKind::Degraded { .. } => "degraded",
            RemarkKind::Note { .. } => "note",
        }
    }

    fn payload(&self) -> Vec<(&'static str, Json)> {
        match self {
            RemarkKind::ShapeSummary {
                uniform,
                indexed,
                varying,
            } => vec![
                ("uniform", Json::u64(*uniform as u64)),
                ("indexed", Json::u64(*indexed as u64)),
                ("varying", Json::u64(*varying as u64)),
            ],
            RemarkKind::StructurizeSummary { regions, loops } => vec![
                ("regions", Json::u64(*regions as u64)),
                ("loops", Json::u64(*loops as u64)),
            ],
            RemarkKind::MemOp {
                is_store,
                choice,
                stride,
            } => {
                let mut p = vec![
                    (
                        "op",
                        Json::Str(if *is_store { "store" } else { "load" }.into()),
                    ),
                    ("choice", Json::Str(choice.name().into())),
                ];
                if let Some(s) = stride {
                    p.push(("stride", Json::Int(*s)));
                }
                p
            }
            RemarkKind::BranchLinearized { arms } => {
                vec![("arms", Json::u64(*arms as u64))]
            }
            RemarkKind::BosccGuard => vec![],
            RemarkKind::PhiToSelect { phis } => vec![("phis", Json::u64(*phis as u64))],
            RemarkKind::CallSerialized { callee, lanes } => vec![
                ("callee", Json::Str(callee.clone())),
                ("lanes", Json::u64(*lanes as u64)),
            ],
            RemarkKind::MathDispatch { func, lib, symbol } => vec![
                ("func", Json::Str(func.clone())),
                ("lib", Json::Str(lib.clone())),
                ("symbol", Json::Str(symbol.clone())),
            ],
            RemarkKind::LoopVectorized => vec![],
            RemarkKind::LoopRejected { reason } => {
                vec![("reason", Json::Str(reason.clone()))]
            }
            RemarkKind::Degraded { region, reason } => vec![
                ("region", Json::Str(region.clone())),
                ("reason", Json::Str(reason.clone())),
            ],
            RemarkKind::Note { text } => vec![("text", Json::Str(text.clone()))],
        }
    }

    fn from_payload(tag: &str, j: &Json) -> Option<RemarkKind> {
        let u = |k: &str| j.get(k).and_then(Json::as_u64);
        let s = |k: &str| j.get(k).and_then(Json::as_str).map(str::to_string);
        Some(match tag {
            "shape_summary" => RemarkKind::ShapeSummary {
                uniform: u("uniform")? as usize,
                indexed: u("indexed")? as usize,
                varying: u("varying")? as usize,
            },
            "structurize_summary" => RemarkKind::StructurizeSummary {
                regions: u("regions")? as usize,
                loops: u("loops")? as usize,
            },
            "mem_op" => RemarkKind::MemOp {
                is_store: s("op")? == "store",
                choice: MemOpChoice::from_name(&s("choice")?)?,
                stride: j.get("stride").and_then(|v| match v {
                    Json::Int(i) => Some(*i),
                    _ => None,
                }),
            },
            "branch_linearized" => RemarkKind::BranchLinearized {
                arms: u("arms")? as usize,
            },
            "boscc_guard" => RemarkKind::BosccGuard,
            "phi_to_select" => RemarkKind::PhiToSelect {
                phis: u("phis")? as usize,
            },
            "call_serialized" => RemarkKind::CallSerialized {
                callee: s("callee")?,
                lanes: u("lanes")? as u32,
            },
            "math_dispatch" => RemarkKind::MathDispatch {
                func: s("func")?,
                lib: s("lib")?,
                symbol: s("symbol")?,
            },
            "loop_vectorized" => RemarkKind::LoopVectorized,
            "loop_rejected" => RemarkKind::LoopRejected {
                reason: s("reason")?,
            },
            "degraded" => RemarkKind::Degraded {
                region: s("region")?,
                reason: s("reason")?,
            },
            "note" => RemarkKind::Note { text: s("text")? },
            _ => return None,
        })
    }
}

/// One structured optimization remark.
#[derive(Debug, Clone, PartialEq)]
pub struct Remark {
    /// Pass that emitted the remark.
    pub pass: Pass,
    /// Severity class.
    pub severity: Severity,
    /// Function the remark is about.
    pub function: String,
    /// Basic block index within the function, when attributable.
    pub block: Option<u32>,
    /// Instruction index within the function, when attributable.
    pub inst: Option<u32>,
    /// The decision payload.
    pub kind: RemarkKind,
}

impl Remark {
    /// Builds a remark with no block/instruction attribution.
    pub fn new(
        pass: Pass,
        severity: Severity,
        function: impl Into<String>,
        kind: RemarkKind,
    ) -> Remark {
        Remark {
            pass,
            severity,
            function: function.into(),
            block: None,
            inst: None,
            kind,
        }
    }

    /// Attaches a block index.
    pub fn at_block(mut self, block: u32) -> Remark {
        self.block = Some(block);
        self
    }

    /// Attaches an instruction index.
    pub fn at_inst(mut self, inst: u32) -> Remark {
        self.inst = Some(inst);
        self
    }

    /// A plain-text warning remark (legacy channel).
    pub fn warning(pass: Pass, function: impl Into<String>, text: impl Into<String>) -> Remark {
        Remark::new(
            pass,
            Severity::Warning,
            function,
            RemarkKind::Note { text: text.into() },
        )
    }

    /// The key used for deterministic ordering: pass, then function, then
    /// block, then instruction, then kind tag.
    ///
    /// Remarks are sorted by this key before serialization so output is
    /// independent of traversal order inside the passes.
    pub fn sort_key(&self) -> (Pass, &str, u32, u32, &'static str) {
        (
            self.pass,
            self.function.as_str(),
            self.block.unwrap_or(u32::MAX),
            self.inst.unwrap_or(u32::MAX),
            self.kind.tag(),
        )
    }

    /// Renders the remark as one human-readable line.
    pub fn render_text(&self) -> String {
        let mut loc = self.function.clone();
        if let Some(b) = self.block {
            loc.push_str(&format!(":b{b}"));
        }
        if let Some(i) = self.inst {
            loc.push_str(&format!(":i{i}"));
        }
        let detail = match &self.kind {
            RemarkKind::ShapeSummary {
                uniform,
                indexed,
                varying,
            } => format!("shapes: {uniform} uniform, {indexed} indexed, {varying} varying"),
            RemarkKind::StructurizeSummary { regions, loops } => {
                format!("structurized {regions} region(s), {loops} loop(s)")
            }
            RemarkKind::MemOp {
                is_store,
                choice,
                stride,
            } => {
                let op = if *is_store { "store" } else { "load" };
                match stride {
                    Some(s) => format!("{op} lowered as {choice} (stride {s})"),
                    None => format!("{op} lowered as {choice}"),
                }
            }
            RemarkKind::BranchLinearized { arms } => {
                format!("varying branch linearized ({arms} arm(s))")
            }
            RemarkKind::BosccGuard => "BOSCC any-lane guard inserted".to_string(),
            RemarkKind::PhiToSelect { phis } => {
                format!("{phis} phi(s) converted to mask select")
            }
            RemarkKind::CallSerialized { callee, lanes } => {
                format!("opaque call to `{callee}` serialized over {lanes} lane(s)")
            }
            RemarkKind::MathDispatch { func, lib, symbol } => {
                format!("math intrinsic `{func}` dispatched to {lib} ({symbol})")
            }
            RemarkKind::LoopVectorized => "loop vectorized".to_string(),
            RemarkKind::LoopRejected { reason } => format!("loop not vectorized: {reason}"),
            RemarkKind::Degraded { region, reason } => {
                format!("region `{region}` degraded to a scalar gang-serialized loop: {reason}")
            }
            RemarkKind::Note { text } => text.clone(),
        };
        format!("[{}] {} @ {}: {}", self.pass, self.severity, loc, detail)
    }

    /// Serializes the remark to a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("pass", Json::Str(self.pass.name().into())),
            ("severity", Json::Str(self.severity.name().into())),
            ("function", Json::Str(self.function.clone())),
        ];
        if let Some(b) = self.block {
            pairs.push(("block", Json::u64(b as u64)));
        }
        if let Some(i) = self.inst {
            pairs.push(("inst", Json::u64(i as u64)));
        }
        pairs.push(("kind", Json::Str(self.kind.tag().into())));
        let payload = self.kind.payload();
        if !payload.is_empty() {
            pairs.push(("args", Json::obj(payload)));
        }
        Json::obj(pairs)
    }

    /// Deserializes a remark from a JSON object.
    pub fn from_json(j: &Json) -> Option<Remark> {
        let tag = j.get("kind")?.as_str()?.to_string();
        let args = j.get("args").cloned().unwrap_or(Json::Obj(vec![]));
        Some(Remark {
            pass: Pass::from_name(j.get("pass")?.as_str()?)?,
            severity: Severity::from_name(j.get("severity")?.as_str()?)?,
            function: j.get("function")?.as_str()?.to_string(),
            block: j.get("block").and_then(Json::as_u64).map(|v| v as u32),
            inst: j.get("inst").and_then(Json::as_u64).map(|v| v as u32),
            kind: RemarkKind::from_payload(&tag, &args)?,
        })
    }
}

/// A located compiler diagnostic: the unified error currency of the
/// pipeline. Every pass failure — a rejected CFG shape, an unsupported
/// construct, an in-pipeline verification failure, or a panic caught at the
/// driver boundary — is carried as one of these, so CLIs can print a
/// `pass @function:bN:iN: message` line instead of a Rust backtrace and the
/// driver can attach it to a warning remark when it degrades the region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Pass that reported the failure (a caught panic is attributed to the
    /// pass that was active when it unwound).
    pub pass: Pass,
    /// Severity: `Warning` when the driver recovered (degradation),
    /// effectively an error when it could not.
    pub severity: Severity,
    /// Function the failure is located in.
    pub function: String,
    /// Basic block index, when attributable.
    pub block: Option<u32>,
    /// Instruction index, when attributable.
    pub inst: Option<u32>,
    /// Human-readable description of the failure.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with no block/instruction attribution and
    /// warning severity (the driver upgrades or downgrades as it decides
    /// whether the failure is recoverable).
    pub fn new(pass: Pass, function: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pass,
            severity: Severity::Warning,
            function: function.into(),
            block: None,
            inst: None,
            message: message.into(),
        }
    }

    /// Attaches a block index.
    pub fn at_block(mut self, block: u32) -> Diagnostic {
        self.block = Some(block);
        self
    }

    /// Attaches an instruction index.
    pub fn at_inst(mut self, inst: u32) -> Diagnostic {
        self.inst = Some(inst);
        self
    }

    /// Upgrades the diagnostic to error severity (unrecoverable failures).
    pub fn error(mut self) -> Diagnostic {
        self.severity = Severity::Error;
        self
    }

    /// The `@function:bN:iN` location suffix used in rendered output.
    pub fn location(&self) -> String {
        let mut loc = format!("@{}", self.function);
        if let Some(b) = self.block {
            loc.push_str(&format!(":b{b}"));
        }
        if let Some(i) = self.inst {
            loc.push_str(&format!(":i{i}"));
        }
        loc
    }

    /// Converts the diagnostic into a remark so it travels with the
    /// pipeline's ordinary telemetry stream.
    pub fn to_remark(&self) -> Remark {
        Remark {
            pass: self.pass,
            severity: self.severity,
            function: self.function.clone(),
            block: self.block,
            inst: self.inst,
            kind: RemarkKind::Note {
                text: self.message.clone(),
            },
        }
    }

    /// Serializes the diagnostic to a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("pass", Json::Str(self.pass.name().into())),
            ("severity", Json::Str(self.severity.name().into())),
            ("function", Json::Str(self.function.clone())),
        ];
        if let Some(b) = self.block {
            pairs.push(("block", Json::u64(b as u64)));
        }
        if let Some(i) = self.inst {
            pairs.push(("inst", Json::u64(i as u64)));
        }
        pairs.push(("message", Json::Str(self.message.clone())));
        Json::obj(pairs)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.pass, self.location(), self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Sorts a remark stream into its canonical deterministic order.
///
/// The sort is stable, so remarks with identical keys (e.g. repeated
/// identical warnings) keep their emission order.
pub fn sort_remarks(remarks: &mut [Remark]) {
    remarks.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// Serializes a remark stream as a JSON array (canonically ordered).
pub fn remarks_to_json(remarks: &[Remark]) -> Json {
    let mut sorted: Vec<Remark> = remarks.to_vec();
    sort_remarks(&mut sorted);
    Json::Arr(sorted.iter().map(Remark::to_json).collect())
}

/// Parses a remark stream serialized by [`remarks_to_json`].
pub fn remarks_from_json(j: &Json) -> Option<Vec<Remark>> {
    j.as_arr()?.iter().map(Remark::from_json).collect()
}

/// Renders a remark stream as human-readable text, one line per remark,
/// in canonical order.
pub fn remarks_to_text(remarks: &[Remark]) -> String {
    let mut sorted: Vec<Remark> = remarks.to_vec();
    sort_remarks(&mut sorted);
    let mut out = String::new();
    for r in &sorted {
        out.push_str(&r.render_text());
        out.push('\n');
    }
    out
}

/// Derives the legacy `warnings: Vec<String>` surface from a remark
/// stream: the text of every [`Severity::Warning`] remark, in emission
/// order.
pub fn warnings_of(remarks: &[Remark]) -> Vec<String> {
    remarks
        .iter()
        .filter(|r| r.severity == Severity::Warning)
        .map(|r| match &r.kind {
            RemarkKind::Note { text } => text.clone(),
            other => Remark {
                pass: r.pass,
                severity: r.severity,
                function: r.function.clone(),
                block: r.block,
                inst: r.inst,
                kind: other.clone(),
            }
            .render_text(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_remarks() -> Vec<Remark> {
        vec![
            Remark::new(
                Pass::Vectorize,
                Severity::Passed,
                "binomial",
                RemarkKind::MathDispatch {
                    func: "pow".into(),
                    lib: "sleef".into(),
                    symbol: "sleef.pow.f32x8".into(),
                },
            )
            .at_block(2)
            .at_inst(17),
            Remark::new(
                Pass::Shape,
                Severity::Analysis,
                "binomial",
                RemarkKind::ShapeSummary {
                    uniform: 10,
                    indexed: 3,
                    varying: 21,
                },
            ),
            Remark::warning(
                Pass::Vectorize,
                "binomial",
                "store to a uniform address is racy",
            ),
            Remark::new(
                Pass::Vectorize,
                Severity::Passed,
                "aobench",
                RemarkKind::MemOp {
                    is_store: false,
                    choice: MemOpChoice::GatherScatter,
                    stride: None,
                },
            )
            .at_block(0)
            .at_inst(4),
            Remark::new(
                Pass::Autovec,
                Severity::Missed,
                "mandelbrot",
                RemarkKind::LoopRejected {
                    reason: "loop-carried dependence".into(),
                },
            )
            .at_block(1),
        ]
    }

    #[test]
    fn json_roundtrip_preserves_all_fields() {
        let remarks = sample_remarks();
        let j = remarks_to_json(&remarks);
        let text = j.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = remarks_from_json(&parsed).unwrap();
        let mut expect = remarks;
        sort_remarks(&mut expect);
        assert_eq!(back, expect);
    }

    #[test]
    fn ordering_is_deterministic_across_emission_orders() {
        let a = sample_remarks();
        let mut b = sample_remarks();
        b.reverse();
        assert_eq!(remarks_to_json(&a), remarks_to_json(&b));
        assert_eq!(remarks_to_text(&a), remarks_to_text(&b));
        // Pipeline order: shape remarks precede vectorize remarks.
        let text = remarks_to_text(&a);
        let shape_pos = text.find("[shape]").unwrap();
        let vec_pos = text.find("[vectorize]").unwrap();
        let autovec_pos = text.find("[autovec]").unwrap();
        assert!(shape_pos < vec_pos && vec_pos < autovec_pos);
    }

    #[test]
    fn warnings_shim_extracts_warning_text() {
        let remarks = sample_remarks();
        let warnings = warnings_of(&remarks);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("racy"));
    }

    #[test]
    fn degraded_remark_roundtrips_and_renders() {
        let r = Remark::new(
            Pass::Pipeline,
            Severity::Warning,
            "k__psim0",
            RemarkKind::Degraded {
                region: "k__psim0".into(),
                reason: "[structurize] @k__psim0: unstructured control flow".into(),
            },
        );
        let j = remarks_to_json(std::slice::from_ref(&r));
        let back = remarks_from_json(&Json::parse(&j.to_string_pretty()).unwrap()).unwrap();
        assert_eq!(back, vec![r.clone()]);
        let text = r.render_text();
        assert!(text.contains("degraded to a scalar gang-serialized loop"));
        assert!(text.contains("unstructured control flow"));
        // The legacy warnings shim surfaces degradations too.
        let w = warnings_of(&[r]);
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("degraded"));
    }

    #[test]
    fn diagnostic_renders_location_and_converts_to_remark() {
        let d = Diagnostic::new(Pass::Verify, "k__psim0__full", "terminator targets b9999")
            .at_block(3)
            .at_inst(11);
        let line = d.to_string();
        assert!(line.contains("[verify]"));
        assert!(line.contains("@k__psim0__full:b3:i11"));
        assert!(line.contains("terminator targets b9999"));
        let r = d.to_remark();
        assert_eq!(r.pass, Pass::Verify);
        assert_eq!(r.block, Some(3));
        assert_eq!(r.inst, Some(11));
        // New pass names parse back (JSON round-trip of the remark stream).
        for p in [Pass::Opt, Pass::Verify, Pass::Legalize, Pass::Pipeline] {
            assert_eq!(Pass::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn render_text_mentions_key_facts() {
        let remarks = sample_remarks();
        let text = remarks_to_text(&remarks);
        assert!(text.contains("sleef.pow.f32x8"));
        assert!(text.contains("gather_scatter"));
        assert!(text.contains("binomial:b2:i17"));
        assert!(text.contains("loop-carried dependence"));
    }
}

//! A minimal JSON value type with a hand-rolled serializer and parser.
//!
//! The repository's no-new-dependencies rule forbids `serde`, and the
//! telemetry formats are simple, so this module implements exactly what
//! they need: objects with **insertion-ordered** keys (serialization is
//! deterministic), arrays, strings with full escape handling, `u64`-exact
//! integers, floats, booleans and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact — cycle counts exceed f32 precision).
    Int(i64),
    /// A non-integer number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An integer value (cycle counts fit i64 comfortably).
    pub fn u64(v: u64) -> Json {
        Json::Int(v as i64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an f64 number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's key/value pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad integer at byte {start}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().expect("peeked nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj(vec![
            ("name", Json::Str("gather \"heavy\"\n".into())),
            ("cycles", Json::u64(18_446_744_073_709)),
            ("ratio", Json::Num(2.58)),
            (
                "classes",
                Json::Arr(vec![Json::Str("vec_mem".into()), Json::Int(-3)]),
            ),
            ("empty", Json::Obj(vec![])),
            ("nullish", Json::Null),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}

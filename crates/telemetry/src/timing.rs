//! Compile-time attribution: where the pipeline's wall-clock time went.
//!
//! The parallel region driver (`parsimony::pipeline`) builds every SPMD
//! region independently and merges the results in original region order, so
//! the interesting compile-time questions become per-region: which region
//! was slow, how well did the fan-out pack onto the workers, and what was
//! the critical path? [`CompileTimings`] answers those. It is measurement
//! metadata, not part of the deterministic output contract — the printed
//! module and the remark stream are byte-identical across `-j` levels, the
//! timings are whatever the clock said.

use crate::json::Json;

/// Wall-clock attribution for one region's build (all variants: vectorize,
/// cleanup, verify, and — on the degradation path — fallback serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTiming {
    /// The SPMD region (function) name.
    pub region: String,
    /// Wall-clock nanoseconds spent building this region.
    pub nanos: u64,
    /// Index of the worker that built the region (0 for the serial path).
    pub worker: usize,
}

impl RegionTiming {
    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("region", Json::Str(self.region.clone())),
            ("nanos", Json::u64(self.nanos)),
            ("worker", Json::u64(self.worker as u64)),
        ])
    }

    /// Deserializes from a JSON object.
    pub fn from_json(j: &Json) -> Option<RegionTiming> {
        Some(RegionTiming {
            region: j.get("region")?.as_str()?.to_string(),
            nanos: j.get("nanos")?.as_u64()?,
            worker: j.get("worker")?.as_u64()? as usize,
        })
    }
}

/// Compile-time report for one [`vectorize_module`] call: total wall time,
/// the worker count, and per-region attribution in original region order.
///
/// [`vectorize_module`]: https://docs.rs/parsimony
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileTimings {
    /// Worker threads the driver actually used.
    pub jobs: usize,
    /// Wall-clock nanoseconds for the whole module (fan-out + merge +
    /// post-merge optimization).
    pub wall_nanos: u64,
    /// Per-region build times, in original region order.
    pub regions: Vec<RegionTiming>,
}

impl CompileTimings {
    /// Sum of all per-region build times — an estimate of the serial cost
    /// of the fan-out phase (merge and post-merge work excluded).
    pub fn region_nanos_total(&self) -> u64 {
        self.regions.iter().map(|r| r.nanos).sum()
    }

    /// The slowest single region — a lower bound on the parallel fan-out
    /// phase's wall time (its critical path).
    pub fn critical_path_nanos(&self) -> u64 {
        self.regions.iter().map(|r| r.nanos).max().unwrap_or(0)
    }

    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("jobs", Json::u64(self.jobs as u64)),
            ("wall_nanos", Json::u64(self.wall_nanos)),
            (
                "regions",
                Json::Arr(self.regions.iter().map(RegionTiming::to_json).collect()),
            ),
        ])
    }

    /// Deserializes from a JSON object.
    pub fn from_json(j: &Json) -> Option<CompileTimings> {
        Some(CompileTimings {
            jobs: j.get("jobs")?.as_u64()? as usize,
            wall_nanos: j.get("wall_nanos")?.as_u64()?,
            regions: j
                .get("regions")?
                .as_arr()?
                .iter()
                .map(RegionTiming::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    /// Renders a short human-readable summary: totals plus the slowest
    /// regions first.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "compile: {:.3} ms wall on {} worker(s); {} region(s), {:.3} ms summed, {:.3} ms critical path\n",
            self.wall_nanos as f64 / 1e6,
            self.jobs,
            self.regions.len(),
            self.region_nanos_total() as f64 / 1e6,
            self.critical_path_nanos() as f64 / 1e6,
        );
        let mut by_cost: Vec<&RegionTiming> = self.regions.iter().collect();
        by_cost.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.region.cmp(&b.region)));
        for r in by_cost.iter().take(5) {
            out.push_str(&format!(
                "  {:<32} {:>10.3} ms  (worker {})\n",
                r.region,
                r.nanos as f64 / 1e6,
                r.worker
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompileTimings {
        CompileTimings {
            jobs: 4,
            wall_nanos: 5_000_000,
            regions: vec![
                RegionTiming {
                    region: "a__psim0".into(),
                    nanos: 1_000_000,
                    worker: 0,
                },
                RegionTiming {
                    region: "b__psim0".into(),
                    nanos: 3_000_000,
                    worker: 2,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let j = t.to_json();
        let parsed = Json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(CompileTimings::from_json(&parsed).unwrap(), t);
    }

    #[test]
    fn totals_and_critical_path() {
        let t = sample();
        assert_eq!(t.region_nanos_total(), 4_000_000);
        assert_eq!(t.critical_path_nanos(), 3_000_000);
        let text = t.render_text();
        assert!(text.contains("2 region(s)"));
        // Slowest region is listed first.
        assert!(text.find("b__psim0").unwrap() < text.find("a__psim0").unwrap());
    }
}

//! Cycle-attribution profiling.
//!
//! A [`Profile`] attributes the interpreter's simulated cycles to
//! [`CostClass`] buckets per function, plus a per-symbol ledger of extern
//! (math-library) calls. The bench binaries render profiles with
//! `--profile`, and `profdiff` compares two serialized profiles as a CI
//! performance gate ([`ProfileDiff`]).

use crate::json::Json;
use std::collections::BTreeMap;

/// Coarse cost classes that simulated cycles are attributed to.
///
/// These are the profiling-visible grouping of the virtual machine's
/// micro-op kinds; the mapping from uops to classes lives in `vmach` so
/// this crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostClass {
    /// Scalar integer ALU work.
    ScalarAlu,
    /// Scalar floating-point work (including scalar divides).
    ScalarFp,
    /// Scalar loads/stores.
    ScalarMem,
    /// Packed vector ALU work.
    VecAlu,
    /// Packed vector multiplies.
    VecMul,
    /// Packed vector divides / square roots.
    VecDiv,
    /// Contiguous packed vector loads/stores.
    VecMem,
    /// Hardware gather.
    Gather,
    /// Hardware scatter.
    Scatter,
    /// Shuffles / permutes (including variable shuffles).
    Shuffle,
    /// Mask register manipulation.
    MaskOp,
    /// Cross-lane reductions.
    Reduce,
    /// Lane extract/insert traffic.
    LaneXfer,
    /// Broadcasts.
    Splat,
    /// Branches and other control flow.
    Branch,
    /// Direct (non-extern) calls, allocas, φ bookkeeping.
    Other,
    /// Extern math-library calls (sleef/fastm dispatch targets).
    ExternCall,
}

/// All classes, in the fixed order used for serialization and rendering.
pub const COST_CLASSES: [CostClass; 17] = [
    CostClass::ScalarAlu,
    CostClass::ScalarFp,
    CostClass::ScalarMem,
    CostClass::VecAlu,
    CostClass::VecMul,
    CostClass::VecDiv,
    CostClass::VecMem,
    CostClass::Gather,
    CostClass::Scatter,
    CostClass::Shuffle,
    CostClass::MaskOp,
    CostClass::Reduce,
    CostClass::LaneXfer,
    CostClass::Splat,
    CostClass::Branch,
    CostClass::Other,
    CostClass::ExternCall,
];

impl CostClass {
    /// Stable snake_case name used in JSON and text output.
    pub fn name(self) -> &'static str {
        match self {
            CostClass::ScalarAlu => "scalar_alu",
            CostClass::ScalarFp => "scalar_fp",
            CostClass::ScalarMem => "scalar_mem",
            CostClass::VecAlu => "vec_alu",
            CostClass::VecMul => "vec_mul",
            CostClass::VecDiv => "vec_div",
            CostClass::VecMem => "vec_mem",
            CostClass::Gather => "gather",
            CostClass::Scatter => "scatter",
            CostClass::Shuffle => "shuffle",
            CostClass::MaskOp => "mask_op",
            CostClass::Reduce => "reduce",
            CostClass::LaneXfer => "lane_xfer",
            CostClass::Splat => "splat",
            CostClass::Branch => "branch",
            CostClass::Other => "other",
            CostClass::ExternCall => "extern_call",
        }
    }

    /// Parses the stable name back into a class.
    pub fn from_name(s: &str) -> Option<CostClass> {
        COST_CLASSES.iter().copied().find(|c| c.name() == s)
    }

    fn index(self) -> usize {
        COST_CLASSES
            .iter()
            .position(|c| *c == self)
            .expect("class listed in COST_CLASSES")
    }
}

impl std::fmt::Display for CostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-function cycle attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnProfile {
    /// Cycles per cost class, indexed by position in [`COST_CLASSES`].
    cycles: [u64; COST_CLASSES.len()],
    /// Extern-call ledger: symbol → (call count, total cycles).
    pub externs: BTreeMap<String, (u64, u64)>,
}

impl FnProfile {
    /// Cycles attributed to one class.
    pub fn class_cycles(&self, class: CostClass) -> u64 {
        self.cycles[class.index()]
    }

    /// Total cycles across all classes.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Classes ranked by cycles, descending, zero buckets omitted. Ties
    /// break on the fixed class order, so the ranking is deterministic.
    pub fn dominance(&self) -> Vec<(CostClass, u64)> {
        let mut ranked: Vec<(CostClass, u64)> = COST_CLASSES
            .iter()
            .map(|&c| (c, self.class_cycles(c)))
            .filter(|&(_, cy)| cy > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

/// A cycle-attribution profile over a whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Per-function breakdowns, keyed (and therefore serialized) in sorted
    /// function-name order.
    pub functions: BTreeMap<String, FnProfile>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Attributes `cycles` of class `class` to `function`.
    pub fn record(&mut self, function: &str, class: CostClass, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let f = self.functions.entry(function.to_string()).or_default();
        f.cycles[class.index()] += cycles;
    }

    /// Attributes a precomputed classed cost list to `function` with a
    /// single map lookup — the bulk variant of [`Profile::record`] used by
    /// the interpreter's memoized cost tables. Effect is identical to
    /// calling `record` once per entry (zero-cycle entries contribute
    /// nothing and never create a function row on their own).
    pub fn record_classed(&mut self, function: &str, classed: &[(CostClass, u64)]) {
        if classed.iter().all(|&(_, cy)| cy == 0) {
            return;
        }
        let f = self.functions.entry(function.to_string()).or_default();
        for &(class, cy) in classed {
            f.cycles[class.index()] += cy;
        }
    }

    /// Attributes one extern call to `function`, both in the
    /// [`CostClass::ExternCall`] bucket and in the per-symbol ledger.
    pub fn record_extern(&mut self, function: &str, symbol: &str, cycles: u64) {
        let f = self.functions.entry(function.to_string()).or_default();
        f.cycles[CostClass::ExternCall.index()] += cycles;
        let e = f.externs.entry(symbol.to_string()).or_insert((0, 0));
        e.0 += 1;
        e.1 += cycles;
    }

    /// Total cycles across every function.
    pub fn total_cycles(&self) -> u64 {
        self.functions.values().map(FnProfile::total_cycles).sum()
    }

    /// Cycles in one class, summed over every function.
    pub fn class_cycles(&self, class: CostClass) -> u64 {
        self.functions.values().map(|f| f.class_cycles(class)).sum()
    }

    /// Total extern cycles for symbols whose name contains `pat`
    /// (e.g. `"sleef.pow"` matches `sleef.pow.f32x8`).
    pub fn extern_cycles_matching(&self, pat: &str) -> u64 {
        self.functions
            .values()
            .flat_map(|f| f.externs.iter())
            .filter(|(sym, _)| sym.contains(pat))
            .map(|(_, (_, cy))| *cy)
            .sum()
    }

    /// Folds another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (name, fp) in &other.functions {
            let f = self.functions.entry(name.clone()).or_default();
            for (i, cy) in fp.cycles.iter().enumerate() {
                f.cycles[i] += cy;
            }
            for (sym, (calls, cy)) in &fp.externs {
                let e = f.externs.entry(sym.clone()).or_insert((0, 0));
                e.0 += calls;
                e.1 += cy;
            }
        }
    }

    /// Whole-profile dominance ranking (see [`FnProfile::dominance`]).
    pub fn dominance(&self) -> Vec<(CostClass, u64)> {
        let mut sum = FnProfile::default();
        for f in self.functions.values() {
            for (i, cy) in f.cycles.iter().enumerate() {
                sum.cycles[i] += cy;
            }
        }
        sum.dominance()
    }

    /// Serializes to a JSON object. Output is deterministic: functions in
    /// name order, classes in [`COST_CLASSES`] order (zero buckets
    /// omitted), extern symbols in name order.
    pub fn to_json(&self) -> Json {
        let mut fns = Vec::new();
        for (name, fp) in &self.functions {
            let classes: Vec<(String, Json)> = COST_CLASSES
                .iter()
                .filter(|&&c| fp.class_cycles(c) > 0)
                .map(|&c| (c.name().to_string(), Json::u64(fp.class_cycles(c))))
                .collect();
            let externs: Vec<(String, Json)> = fp
                .externs
                .iter()
                .map(|(sym, (calls, cy))| {
                    (
                        sym.clone(),
                        Json::obj(vec![
                            ("calls", Json::u64(*calls)),
                            ("cycles", Json::u64(*cy)),
                        ]),
                    )
                })
                .collect();
            let mut pairs = vec![
                ("total_cycles".to_string(), Json::u64(fp.total_cycles())),
                ("classes".to_string(), Json::Obj(classes)),
            ];
            if !externs.is_empty() {
                pairs.push(("externs".to_string(), Json::Obj(externs)));
            }
            fns.push((name.clone(), Json::Obj(pairs)));
        }
        Json::obj(vec![
            ("total_cycles", Json::u64(self.total_cycles())),
            ("functions", Json::Obj(fns)),
        ])
    }

    /// Parses a profile serialized by [`to_json`](Profile::to_json).
    pub fn from_json(j: &Json) -> Option<Profile> {
        let mut p = Profile::new();
        for (name, fj) in j.get("functions")?.as_obj()? {
            let f = p.functions.entry(name.clone()).or_default();
            for (cname, cy) in fj.get("classes")?.as_obj()? {
                let class = CostClass::from_name(cname)?;
                f.cycles[class.index()] += cy.as_u64()?;
            }
            if let Some(ext) = fj.get("externs") {
                for (sym, e) in ext.as_obj()? {
                    f.externs.insert(
                        sym.clone(),
                        (e.get("calls")?.as_u64()?, e.get("cycles")?.as_u64()?),
                    );
                }
            }
        }
        Some(p)
    }

    /// Renders a per-function, per-class table for terminals.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let grand = self.total_cycles();
        out.push_str(&format!("total cycles: {grand}\n"));
        for (name, fp) in &self.functions {
            let total = fp.total_cycles();
            out.push_str(&format!("  fn {name}: {total} cycles\n"));
            for (class, cy) in fp.dominance() {
                let pct = if total > 0 {
                    100.0 * cy as f64 / total as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "    {:<12} {:>12}  {:5.1}%\n",
                    class.name(),
                    cy,
                    pct
                ));
            }
            for (sym, (calls, cy)) in &fp.externs {
                out.push_str(&format!("    extern {sym}: {calls} call(s), {cy} cycles\n"));
            }
        }
        out
    }
}

/// One row of a profile comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Function name (or `"<total>"` for the whole-run row).
    pub name: String,
    /// Cycles in the baseline profile.
    pub before: u64,
    /// Cycles in the new profile.
    pub after: u64,
    /// `after / before`; `f64::INFINITY` when a function is new.
    pub ratio: f64,
}

/// The result of diffing two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Per-function rows in name order, followed by a `"<total>"` row.
    pub rows: Vec<DiffRow>,
    /// Geometric mean of per-function ratios (functions present in both).
    pub geomean_ratio: f64,
    /// The regression threshold the diff was evaluated against.
    pub threshold: f64,
    /// True when `geomean_ratio > 1 + threshold`.
    pub regressed: bool,
}

impl ProfileDiff {
    /// Compares `after` against the `before` baseline.
    ///
    /// `threshold` is a fraction: `0.05` flags a regression when the
    /// geometric-mean cycle ratio across shared functions exceeds 1.05.
    pub fn compute(before: &Profile, after: &Profile, threshold: f64) -> ProfileDiff {
        let mut names: Vec<&String> = before
            .functions
            .keys()
            .chain(after.functions.keys())
            .collect();
        names.sort();
        names.dedup();

        let mut rows = Vec::new();
        let mut log_sum = 0.0f64;
        let mut shared = 0usize;
        for name in names {
            let b = before
                .functions
                .get(name)
                .map(FnProfile::total_cycles)
                .unwrap_or(0);
            let a = after
                .functions
                .get(name)
                .map(FnProfile::total_cycles)
                .unwrap_or(0);
            let ratio = if b > 0 {
                a as f64 / b as f64
            } else {
                f64::INFINITY
            };
            if b > 0 && a > 0 {
                log_sum += (a as f64 / b as f64).ln();
                shared += 1;
            }
            rows.push(DiffRow {
                name: name.clone(),
                before: b,
                after: a,
                ratio,
            });
        }
        let bt = before.total_cycles();
        let at = after.total_cycles();
        rows.push(DiffRow {
            name: "<total>".to_string(),
            before: bt,
            after: at,
            ratio: if bt > 0 {
                at as f64 / bt as f64
            } else {
                f64::INFINITY
            },
        });
        let geomean_ratio = if shared > 0 {
            (log_sum / shared as f64).exp()
        } else if at > bt {
            f64::INFINITY
        } else {
            1.0
        };
        ProfileDiff {
            rows,
            geomean_ratio,
            threshold,
            regressed: geomean_ratio > 1.0 + threshold,
        }
    }

    /// Renders the diff as a terminal table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>14} {:>14} {:>8}\n",
            "function", "before", "after", "ratio"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>14} {:>14} {:>8.3}\n",
                row.name, row.before, row.after, row.ratio
            ));
        }
        out.push_str(&format!(
            "geomean ratio {:.4} vs threshold {:.2} -> {}\n",
            self.geomean_ratio,
            1.0 + self.threshold,
            if self.regressed { "REGRESSED" } else { "ok" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let mut p = Profile::new();
        p.record("binomial", CostClass::VecMul, 4000);
        p.record("binomial", CostClass::VecMem, 1200);
        p.record("binomial", CostClass::MaskOp, 90);
        p.record_extern("binomial", "sleef.pow.f32x8", 248);
        p.record_extern("binomial", "sleef.pow.f32x8", 248);
        p.record("aobench", CostClass::Gather, 9000);
        p.record("aobench", CostClass::VecAlu, 500);
        p
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let p = sample_profile();
        let text = p.to_json().to_string_pretty();
        let back = Profile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.total_cycles(), p.total_cycles());
    }

    #[test]
    fn extern_ledger_counts_calls_and_cycles() {
        let p = sample_profile();
        let (calls, cycles) = p.functions["binomial"].externs["sleef.pow.f32x8"];
        assert_eq!((calls, cycles), (2, 496));
        assert_eq!(p.extern_cycles_matching("sleef.pow"), 496);
        assert_eq!(p.extern_cycles_matching("fastm.pow"), 0);
        assert_eq!(p.class_cycles(CostClass::ExternCall), 496);
    }

    #[test]
    fn dominance_ranks_by_cycles() {
        let p = sample_profile();
        let ranked = p.functions["aobench"].dominance();
        assert_eq!(ranked[0].0, CostClass::Gather);
        let overall = p.dominance();
        assert_eq!(overall[0], (CostClass::Gather, 9000));
    }

    #[test]
    fn diff_flags_regressions_past_threshold() {
        let before = sample_profile();
        let mut after = sample_profile();
        after.record("binomial", CostClass::VecDiv, 5000);
        let d = ProfileDiff::compute(&before, &after, 0.05);
        assert!(d.geomean_ratio > 1.05);
        assert!(d.regressed);
        // Unchanged profile is never a regression.
        let same = ProfileDiff::compute(&before, &before, 0.05);
        assert!((same.geomean_ratio - 1.0).abs() < 1e-12);
        assert!(!same.regressed);
        // An improvement is not a regression either.
        let better = ProfileDiff::compute(&after, &before, 0.05);
        assert!(!better.regressed);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample_profile();
        let b = sample_profile();
        a.merge(&b);
        assert_eq!(a.total_cycles(), 2 * b.total_cycles());
        assert_eq!(a.functions["binomial"].externs["sleef.pow.f32x8"].0, 4);
    }
}

//! Shared command-line surface for the repository's binaries.
//!
//! Every tool (`psimcc`, `fig4`, `fig5`, `runbench`, `compbench`,
//! `profdiff`, `psim-fuzz`, `psim-serve`, `servebench`) answers
//! `--version` and `--help` through this module so the output format, the
//! advertised protocol/schema versions, and the exit-status contract stay
//! consistent — the shared exit-contract test in `crates/serve` asserts
//! them across binaries.
//!
//! Version surfaces carried here:
//!
//! * [`PROTOCOL_VERSION`] — the `psim-serve` line-delimited JSON wire
//!   protocol. Bumped on any incompatible request/response change; servers
//!   report it in `--version`, `ping` responses, and error messages.
//! * [`BENCH_SCHEMA_VERSION`] — the schema of every `BENCH_*.json`
//!   artifact (`runbench`, `compbench`, `servebench`). Baselines embed it
//!   in a `meta` object together with the toolchain pin, making them
//!   self-describing; gates call [`check_bench_meta`] and fail loudly on a
//!   mismatch instead of comparing numbers that mean different things.

use crate::Json;

/// Version of the `psim-serve` wire protocol (requests, responses, and
/// their field semantics).
///
/// History:
/// * 1 — initial protocol (PR 6): `run`/`ping`/`stats`/`shutdown`,
///   statuses `ok`/`pong`/`stats`/`overloaded`/`error`/`shutting_down`.
/// * 2 — request lifecycle robustness: per-request budgets on `run`
///   (`deadline_ms`, `max_steps`, `max_mem_bytes`), the structured
///   failure statuses in [`STRUCTURED_FAILURE_STATUSES`], and
///   `steps`/`mem_bytes` accounting fields on `ok` responses.
/// * 3 — plan-sharing request batching: the `stats` response gains a
///   `batch` object (enabled flag, window/max knobs, and the
///   batches-formed / batched / coalesced / max-size / window-timeout
///   counters). `run` requests and responses are unchanged — batched
///   responses are byte-identical to unbatched ones.
/// * 4 — costing targets: `run` requests carry an optional `target`
///   (`x86-avx512`, `x86-avx2`, `sve-vla[:VL]`; absent = `x86-avx512`)
///   that prices the response's simulated cycles and joins the module
///   cache key. Default requests stay wire-identical to protocol 3.
pub const PROTOCOL_VERSION: u64 = 4;

/// Every structured failure status a `psim-serve` response can carry.
/// "Structured" is the robustness contract: whatever goes wrong — budget
/// exhaustion, deadline, disconnect, shutdown, overload, or a plain error
/// — the client receives one of these statuses, never a hang or a
/// byte-different success. The chaos sweep asserts against this list.
pub const STRUCTURED_FAILURE_STATUSES: &[&str] = &[
    "error",
    "overloaded",
    "shutting_down",
    "deadline_exceeded",
    "cancelled",
    "resource_exhausted",
];

/// Version of the bench-report JSON schema shared by `runbench`,
/// `compbench`, and `servebench` (the `meta` object itself plus the
/// report fields the CI gates read).
///
/// History:
/// * 1 — initial versioned schema (PR 8).
/// * 2 — servebench splits client-observed latency into queue-wait and
///   service time, adds the `plan_share` batching phase (on/off rps and
///   the batch counters), and records the batching knobs plus the
///   engine in `meta`. Baselines written under schema 1 are rejected by
///   the `--baseline` gate and must be regenerated.
/// * 3 — costing targets: `runbench` and `servebench` record the target
///   in `meta`, and cycle-derived numbers are priced against it (the
///   target×engine CI matrix keeps one baseline file per leg). Schema-2
///   baselines must be regenerated.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// The exit-status contract every binary follows (also asserted by the
/// shared exit-contract test): printed at the end of `--help`.
pub const EXIT_CONTRACT: &str = "exit status:\n  \
     0  success (including gracefully degraded compilations)\n  \
     1  runtime error, compile error, or gate failure\n  \
     2  usage error (unknown flag, missing argument)";

/// The toolchain channel pinned by `rust-toolchain.toml` (baked in at
/// compile time so the binaries report the pin they were built under).
pub fn toolchain_channel() -> &'static str {
    static PIN: &str = include_str!("../../../rust-toolchain.toml");
    for line in PIN.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("channel") {
            if let Some(v) = rest.split('"').nth(1) {
                return v;
            }
        }
    }
    "unknown"
}

/// The one-line `--version` output: binary name, crate version, protocol
/// and bench-schema versions, and the toolchain pin. Callers pass their
/// own `env!("CARGO_PKG_VERSION")`.
pub fn version_line(bin: &str, pkg_version: &str) -> String {
    format!(
        "{bin} {pkg_version} (protocol {PROTOCOL_VERSION}, bench-schema {BENCH_SCHEMA_VERSION}, toolchain {})",
        toolchain_channel()
    )
}

/// A structured `--help` description: rendered identically by every
/// binary (usage line, about text, aligned flag table, exit contract).
pub struct Help {
    /// Binary name as invoked.
    pub bin: &'static str,
    /// One-line description of what the tool does.
    pub about: &'static str,
    /// Usage synopsis (everything after the binary name).
    pub usage: &'static str,
    /// Flag table: (`--flag[=ARG]`, description).
    pub flags: &'static [(&'static str, &'static str)],
}

impl Help {
    /// Renders the full help text.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n\nusage: {} {}\n", self.about, self.bin, self.usage);
        if !self.flags.is_empty() {
            let width = self.flags.iter().map(|(f, _)| f.len()).max().unwrap_or(0);
            out.push_str("\noptions:\n");
            for (flag, desc) in self.flags {
                out.push_str(&format!("  {flag:width$}  {desc}\n"));
            }
        }
        out.push('\n');
        out.push_str(EXIT_CONTRACT);
        out.push('\n');
        out
    }

    /// Handles `--help`/`-h`/`--version`/`-V` if `arg` is one of them:
    /// prints the requested text to stdout and exits 0. Returns `false`
    /// for any other argument so callers keep their own parsing loop.
    pub fn intercept(&self, arg: &str, pkg_version: &str) -> bool {
        match arg {
            "--help" | "-h" => {
                println!("{}", self.render());
                std::process::exit(0);
            }
            "--version" | "-V" => {
                println!("{}", version_line(self.bin, pkg_version));
                std::process::exit(0);
            }
            _ => false,
        }
    }
}

/// The self-describing `meta` object embedded in every bench JSON report:
/// schema version, toolchain pin, and the tool that produced it. Harnesses
/// append their own cache-relevant pairs (gang configuration, engine,
/// client counts) via `extra`.
pub fn bench_meta(tool: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("schema_version", Json::u64(BENCH_SCHEMA_VERSION)),
        ("tool", Json::Str(tool.to_string())),
        ("toolchain", Json::Str(toolchain_channel().to_string())),
    ];
    pairs.extend(extra);
    Json::obj(pairs)
}

/// Validates the `meta` object of a bench baseline against this build.
///
/// # Errors
/// Explains exactly what is missing or mismatched — gates print this and
/// exit nonzero, so stale or foreign baselines fail loudly rather than
/// producing nonsense comparisons.
pub fn check_bench_meta(report: &Json, tool: &str) -> Result<(), String> {
    let meta = report
        .get("meta")
        .ok_or_else(|| format!("baseline has no `meta` object (pre-versioned {tool} schema?); regenerate it with this build"))?;
    let ver = meta
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| "baseline `meta.schema_version` is missing or not an integer".to_string())?;
    if ver != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "baseline schema_version {ver} does not match this build's {BENCH_SCHEMA_VERSION}; regenerate the baseline"
        ));
    }
    let got_tool = meta.get("tool").and_then(Json::as_str).unwrap_or("");
    if got_tool != tool {
        return Err(format!(
            "baseline was produced by `{got_tool}`, expected `{tool}`"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toolchain_pin_is_parsed() {
        assert_eq!(toolchain_channel(), "stable");
    }

    #[test]
    fn version_line_carries_all_surfaces() {
        let line = version_line("psimcc", "0.1.0");
        assert!(line.starts_with("psimcc 0.1.0"));
        assert!(line.contains(&format!("protocol {PROTOCOL_VERSION}")));
        assert!(line.contains(&format!("bench-schema {BENCH_SCHEMA_VERSION}")));
        assert!(line.contains("toolchain stable"));
    }

    #[test]
    fn help_renders_flags_and_exit_contract() {
        let h = Help {
            bin: "demo",
            about: "Does demo things.",
            usage: "[--json[=FILE]] INPUT",
            flags: &[
                ("--json[=FILE]", "emit JSON"),
                ("--check", "verify outputs"),
            ],
        };
        let text = h.render();
        assert!(text.contains("usage: demo [--json[=FILE]] INPUT"));
        assert!(text.contains("--json[=FILE]  emit JSON"));
        assert!(text.contains("exit status:"));
        assert!(text.contains("2  usage error"));
        assert!(!h.intercept("--json", "0.1.0"));
    }

    #[test]
    fn bench_meta_roundtrips_and_gates() {
        let report = Json::obj(vec![
            ("meta", bench_meta("runbench", vec![("n", Json::u64(1024))])),
            ("geomean_speedup", Json::Num(3.0)),
        ]);
        let text = report.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert!(check_bench_meta(&parsed, "runbench").is_ok());
        // Wrong tool and missing meta both fail loudly.
        let err = check_bench_meta(&parsed, "compbench").unwrap_err();
        assert!(err.contains("runbench"));
        let bare = Json::obj(vec![("geomean_speedup", Json::Num(3.0))]);
        let err = check_bench_meta(&bare, "runbench").unwrap_err();
        assert!(err.contains("meta"));
        // Version skew fails loudly.
        let skewed = Json::obj(vec![(
            "meta",
            Json::obj(vec![
                ("schema_version", Json::u64(BENCH_SCHEMA_VERSION + 1)),
                ("tool", Json::Str("runbench".into())),
            ]),
        )]);
        let err = check_bench_meta(&skewed, "runbench").unwrap_err();
        assert!(err.contains("does not match"));
    }
}

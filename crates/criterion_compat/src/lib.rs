//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny API surface its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! plain wall-clock average over a fixed iteration count — adequate for
//! relative comparisons of the simulated-cycle harnesses.
//!
//! Because the bench targets build with `harness = false`, `cargo test`
//! executes their `main`; to keep the test suite fast, benches only run
//! when `PSIM_BENCH_RUN=1` is set (otherwise `main` prints a note and
//! exits immediately).

#![warn(missing_docs)]

use std::time::Instant;

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean wall time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters: self.sample_size,
        };
        f(&mut b);
        let total: f64 = b.samples.iter().sum();
        let n = b.samples.len().max(1) as f64;
        println!("{}/{}: {:>12.1} ns/iter (stub)", self.name, id, total / n);
    }

    /// Ends the group (upstream flushes reports here; the stub does not
    /// buffer anything).
    pub fn finish(self) {}
}

/// Runs and times the measured closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    iters: usize,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            let v = f();
            self.samples.push(t0.elapsed().as_nanos() as f64);
            drop(black_box(v));
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmark
/// body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group: a named unit the stub `main` runs in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, gated on PSIM_BENCH_RUN=1.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::var_os("PSIM_BENCH_RUN").is_none() {
                eprintln!(
                    "bench stub: set PSIM_BENCH_RUN=1 to execute benches \
                     (skipped under plain `cargo test`/`cargo bench`)"
                );
                return;
            }
            $($group();)+
        }
    };
}

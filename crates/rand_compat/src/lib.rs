//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal API surface this repository uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//! The generator is a deterministic SplitMix64 / xoshiro-style mix — the
//! exact stream differs from upstream `rand`, which is fine here because
//! every consumer only requires seed-determinism, not a specific stream.

#![warn(missing_docs)]

use std::ops::Range;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain
/// (subset of `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Types that can be sampled uniformly from a half-open range
/// (subset of `rand`'s `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws one value in `[lo, hi)` from `rng`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The raw 64-bit source every distribution draws from.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of `T` over its whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from the half-open `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range on an empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 != 0
    }
}

macro_rules! int_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let v = rng.next_u64() % span;
                (lo as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

int_uniform!(i8 => i64, u8 => u64, i16 => i64, u16 => u64, i32 => i64,
             u32 => u64, i64 => i64, u64 => u64, usize => u64);

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, lo: f32, hi: f32) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: f64, hi: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core). Stream differs
    /// from upstream `rand::rngs::StdRng`; determinism per seed is the
    /// only property consumers rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = r.gen_range(5.0f32..60.0);
            assert!((5.0..60.0).contains(&v));
            let i: i32 = r.gen_range(-10i32..10);
            assert!((-10..10).contains(&i));
        }
    }
}

//! The catalog of conditional shape-transformation rules.
//!
//! Each [`Rule`] says: *if the operands of this operation satisfy these
//! preconditions, then the result is again indexed, with this base and these
//! offsets*. The rules are exactly the algebra of §4.2.2 of the paper
//! (addition distributes unconditionally, multiplication needs a
//! compile-time uniform factor, logical-and needs alignment facts, …).
//!
//! A rule is *data*: the same [`Rule::preconds_hold`] / [`Rule::result`]
//! functions are used by the offline verifier (exhaustive bit-vector
//! checking, the z3 substitute — see [`crate::verify_rule`]) and by the
//! compile-time shape analysis in the `parsimony` crate. There is no second
//! implementation to drift out of sync.

use crate::facts::OperandInfo;
use psir::{eval_bin, eval_cast, BinOp, CastKind, ScalarTy};

/// The operation a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOp {
    /// A two-operand arithmetic operation.
    Bin(BinOp),
    /// A conversion (the rule's "right operand" is ignored).
    Cast(CastKind),
}

/// A machine-checkable precondition over the operands' facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precond {
    /// Left operand has all-zero offsets.
    LeftUniform,
    /// Right operand has all-zero offsets.
    RightUniform,
    /// Left base is a compile-time constant.
    LeftBaseConst,
    /// Right base is a compile-time constant.
    RightBaseConst,
    /// Right is a compile-time uniform mask whose trailing-zero count `k`
    /// satisfies: left base is aligned to `2^k`.
    RightMaskAlignsLeft,
    /// Right is a compile-time uniform shift amount `k` and the left base is
    /// aligned to `2^k`.
    RightShiftAlignsLeft,
    /// Right is a compile-time uniform constant `c` and the left operand's
    /// base and offsets are all multiples of some `2^k > c` (so `or` cannot
    /// carry into the bits the constant occupies).
    RightConstDisjointOfLeft,
    /// Left's per-lane values are known not to wrap (unsigned).
    LeftNoWrapUnsigned,
    /// Left's per-lane values are known not to wrap (signed).
    LeftNoWrapSigned,
    /// Left's offsets are non-negative when sign-extended at this width.
    LeftOffsetsNonNeg,
}

/// How the result's scalar base is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseComb {
    /// Reuse the left base unchanged.
    Left,
    /// Apply the operation to the two bases (`op(a_base, b_base)`), or the
    /// cast to the left base.
    Apply,
}

/// How the result's compile-time per-lane offsets are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffComb {
    /// Reuse the left offsets.
    Left,
    /// All-zero offsets (result is uniform).
    Zero,
    /// `op(a_off[i], b_off[i])` lane-wise (or cast of the left offsets).
    Apply,
    /// `op(a_off[i], b_base)` — requires `RightBaseConst`.
    ApplyRightBase,
    /// `op(a_base, b_off[i])` — requires `LeftBaseConst`.
    ApplyLeftBase,
}

/// One verified-offline, checked-online shape transformation.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule name (used in reports and tests).
    pub name: &'static str,
    /// The operation this rule matches.
    pub op: RuleOp,
    /// Preconditions that must all hold.
    pub pre: &'static [Precond],
    /// Base combination.
    pub base: BaseComb,
    /// Offset combination.
    pub off: OffComb,
}

impl Rule {
    /// Checks the preconditions against operand facts at width `ty`.
    /// For cast rules `b` is ignored (pass any placeholder).
    pub fn preconds_hold(&self, ty: ScalarTy, a: &OperandInfo, b: &OperandInfo) -> bool {
        self.pre.iter().all(|p| match p {
            Precond::LeftUniform => a.is_uniform(),
            Precond::RightUniform => b.is_uniform(),
            Precond::LeftBaseConst => a.base_const.is_some(),
            Precond::RightBaseConst => b.base_const.is_some(),
            Precond::RightMaskAlignsLeft => match b.base_const {
                Some(m) => {
                    // The paper's condition: m is a "negative power of two",
                    // i.e. a contiguous high mask -2^k (all bits ≥ k set),
                    // and the left base is 2^k-aligned so no carry crosses
                    // the mask boundary.
                    let m = m & ty.bit_mask();
                    if m == 0 {
                        return false;
                    }
                    let k = m.trailing_zeros();
                    let contiguous = m == (ty.bit_mask() << k) & ty.bit_mask();
                    contiguous && a.base_align >= (1u64 << k)
                }
                None => false,
            },
            Precond::RightShiftAlignsLeft => match b.base_const {
                Some(k) => {
                    let k = k % ty.bits() as u64;
                    a.base_align >= (1u64 << k)
                }
                None => false,
            },
            Precond::RightConstDisjointOfLeft => match b.base_const {
                Some(c) => {
                    let c = c & ty.bit_mask();
                    if c == 0 {
                        return true;
                    }
                    // smallest power of two strictly above c
                    let k = 64 - c.leading_zeros() as u64;
                    let align = 1u64.checked_shl(k as u32).unwrap_or(0);
                    align != 0 && a.base_align >= align && a.offsets.iter().all(|&o| o % align == 0)
                }
                None => false,
            },
            Precond::LeftNoWrapUnsigned => a.nowrap_unsigned,
            Precond::LeftNoWrapSigned => a.nowrap_signed,
            Precond::LeftOffsetsNonNeg => a.offsets.iter().all(|&o| psir::sext(ty, o) >= 0),
        })
    }

    /// Computes the result's offsets (raw bits at the *result* width).
    ///
    /// `ty` is the operand width, `out_ty` the result width (they differ
    /// only for cast rules).
    ///
    /// # Panics
    /// Panics if the rule's offset combination needs a constant base the
    /// facts do not provide (callers must check [`Rule::preconds_hold`]).
    pub fn result_offsets(
        &self,
        ty: ScalarTy,
        out_ty: ScalarTy,
        a: &OperandInfo,
        b: &OperandInfo,
    ) -> Vec<u64> {
        let lanes = a.offsets.len().max(b.offsets.len());
        let a_off = |i: usize| a.offsets.get(i).copied().unwrap_or(0);
        let b_off = |i: usize| b.offsets.get(i).copied().unwrap_or(0);
        let apply = |x: u64, y: u64| -> u64 {
            match self.op {
                RuleOp::Bin(op) => eval_bin(op, ty, x, y).expect("rule ops cannot trap"),
                RuleOp::Cast(kind) => eval_cast(kind, ty, out_ty, x),
            }
        };
        (0..lanes)
            .map(|i| match self.off {
                OffComb::Left => a_off(i) & out_ty.bit_mask(),
                OffComb::Zero => 0,
                OffComb::Apply => apply(a_off(i), b_off(i)),
                OffComb::ApplyRightBase => {
                    apply(a_off(i), b.base_const.expect("precond RightBaseConst"))
                }
                OffComb::ApplyLeftBase => {
                    apply(a.base_const.expect("precond LeftBaseConst"), b_off(i))
                }
            })
            .collect()
    }

    /// Computes the result's base from concrete base values (used by the
    /// offline verifier; the compiler emits the corresponding scalar IR).
    pub fn result_base(&self, ty: ScalarTy, out_ty: ScalarTy, a_base: u64, b_base: u64) -> u64 {
        match self.base {
            BaseComb::Left => a_base & out_ty.bit_mask(),
            BaseComb::Apply => match self.op {
                RuleOp::Bin(op) => eval_bin(op, ty, a_base, b_base).expect("rule ops cannot trap"),
                RuleOp::Cast(kind) => eval_cast(kind, ty, out_ty, a_base),
            },
        }
    }
}

/// The verified rule catalog.
///
/// Every rule in this list is proven by [`crate::verify_all`] (exhaustively
/// at width 8, randomized at width 64) before being trusted by the
/// compile-time shape analysis; `cargo test -p shapecheck` runs the proof.
pub static RULES: &[Rule] = &[
    // (a_b + a_i) + (b_b + b_i) = (a_b + b_b) + (a_i + b_i): exact in
    // wrapping arithmetic, no preconditions.
    Rule {
        name: "add.indexed",
        op: RuleOp::Bin(BinOp::Add),
        pre: &[],
        base: BaseComb::Apply,
        off: OffComb::Apply,
    },
    // Subtraction distributes the same way.
    Rule {
        name: "sub.indexed",
        op: RuleOp::Bin(BinOp::Sub),
        pre: &[],
        base: BaseComb::Apply,
        off: OffComb::Apply,
    },
    // (a_b + a_i) * c = a_b*c + a_i*c: exact in wrapping arithmetic, but the
    // offsets are compile-time only if c is (§4.2.2's multiplication case).
    Rule {
        name: "mul.uniform-const-right",
        op: RuleOp::Bin(BinOp::Mul),
        pre: &[Precond::RightUniform, Precond::RightBaseConst],
        base: BaseComb::Apply,
        off: OffComb::ApplyRightBase,
    },
    Rule {
        name: "mul.uniform-const-left",
        op: RuleOp::Bin(BinOp::Mul),
        pre: &[Precond::LeftUniform, Precond::LeftBaseConst],
        base: BaseComb::Apply,
        off: OffComb::ApplyLeftBase,
    },
    // Shift-left by a uniform constant is multiplication by 2^k.
    Rule {
        name: "shl.uniform-const-right",
        op: RuleOp::Bin(BinOp::Shl),
        pre: &[Precond::RightUniform, Precond::RightBaseConst],
        base: BaseComb::Apply,
        off: OffComb::ApplyRightBase,
    },
    // The paper's logical-and example: (a_b + a_i) & m = (a_b & m) + (a_i & m)
    // when m's trailing zeros are covered by a_b's alignment.
    Rule {
        name: "and.mask-aligned",
        op: RuleOp::Bin(BinOp::And),
        pre: &[
            Precond::RightUniform,
            Precond::RightBaseConst,
            Precond::RightMaskAlignsLeft,
        ],
        base: BaseComb::Apply,
        off: OffComb::ApplyRightBase,
    },
    // Or with a constant whose bits sit strictly below everything in the
    // left operand: no carries, so it folds into the base.
    Rule {
        name: "or.disjoint",
        op: RuleOp::Bin(BinOp::Or),
        pre: &[
            Precond::RightUniform,
            Precond::RightBaseConst,
            Precond::RightConstDisjointOfLeft,
        ],
        base: BaseComb::Apply,
        off: OffComb::Left,
    },
    // Logical shift right by k distributes when the base is 2^k-aligned and
    // the lane values cannot wrap: (a_b + a_i) >> k = (a_b >> k) + (a_i >> k).
    Rule {
        name: "lshr.aligned",
        op: RuleOp::Bin(BinOp::LShr),
        pre: &[
            Precond::RightUniform,
            Precond::RightBaseConst,
            Precond::RightShiftAlignsLeft,
            Precond::LeftNoWrapUnsigned,
        ],
        base: BaseComb::Apply,
        off: OffComb::ApplyRightBase,
    },
    // xor with aligned mask behaves like or.disjoint for the same reason.
    Rule {
        name: "xor.disjoint",
        op: RuleOp::Bin(BinOp::Xor),
        pre: &[
            Precond::RightUniform,
            Precond::RightBaseConst,
            Precond::RightConstDisjointOfLeft,
        ],
        base: BaseComb::Apply,
        off: OffComb::Left,
    },
    // Truncation distributes over wrapping addition unconditionally.
    Rule {
        name: "trunc.indexed",
        op: RuleOp::Cast(CastKind::Trunc),
        pre: &[],
        base: BaseComb::Apply,
        off: OffComb::Apply,
    },
    // Zero-extension needs: no unsigned wrap at the source width and
    // non-negative offsets (a negative offset's bit pattern would change).
    Rule {
        name: "zext.indexed",
        op: RuleOp::Cast(CastKind::Zext),
        pre: &[Precond::LeftNoWrapUnsigned, Precond::LeftOffsetsNonNeg],
        base: BaseComb::Apply,
        off: OffComb::Apply,
    },
    // Sign-extension needs: no signed wrap at the source width.
    Rule {
        name: "sext.indexed",
        op: RuleOp::Cast(CastKind::Sext),
        pre: &[Precond::LeftNoWrapSigned],
        base: BaseComb::Apply,
        off: OffComb::Apply,
    },
];

/// Finds the first catalog rule matching `op` whose preconditions hold.
pub fn match_rule(
    op: RuleOp,
    ty: ScalarTy,
    a: &OperandInfo,
    b: &OperandInfo,
) -> Option<&'static Rule> {
    RULES
        .iter()
        .find(|r| r.op == op && r.preconds_hold(ty, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni(c: u64) -> OperandInfo {
        OperandInfo::with_const_base(c, vec![0, 0, 0, 0])
    }

    #[test]
    fn add_always_matches() {
        let a = OperandInfo::with_runtime_base(1, vec![0, 1, 2, 3]);
        let b = OperandInfo::with_runtime_base(1, vec![4, 4, 4, 4]);
        let r = match_rule(RuleOp::Bin(BinOp::Add), ScalarTy::I64, &a, &b).unwrap();
        assert_eq!(r.name, "add.indexed");
        assert_eq!(
            r.result_offsets(ScalarTy::I64, ScalarTy::I64, &a, &b),
            vec![4, 5, 6, 7]
        );
    }

    #[test]
    fn mul_needs_const_uniform() {
        let a = OperandInfo::with_runtime_base(1, vec![0, 1, 2, 3]);
        let b_const = uni(4);
        let r = match_rule(RuleOp::Bin(BinOp::Mul), ScalarTy::I64, &a, &b_const).unwrap();
        assert_eq!(r.name, "mul.uniform-const-right");
        assert_eq!(
            r.result_offsets(ScalarTy::I64, ScalarTy::I64, &a, &b_const),
            vec![0, 4, 8, 12]
        );
        // Non-constant uniform: no rule.
        let b_dyn = OperandInfo::with_runtime_base(1, vec![0, 0, 0, 0]);
        assert!(match_rule(RuleOp::Bin(BinOp::Mul), ScalarTy::I64, &a, &b_dyn).is_none());
        // Varying-ish offsets on both sides: no rule.
        let b_idx = OperandInfo::with_runtime_base(1, vec![1, 2, 3, 4]);
        assert!(match_rule(RuleOp::Bin(BinOp::Mul), ScalarTy::I64, &a, &b_idx).is_none());
    }

    #[test]
    fn and_requires_alignment() {
        let mask = uni(0xFFFF_FFF0);
        let aligned = OperandInfo::with_runtime_base(16, vec![0, 1, 2, 3]);
        let unaligned = OperandInfo::with_runtime_base(4, vec![0, 1, 2, 3]);
        assert!(match_rule(RuleOp::Bin(BinOp::And), ScalarTy::I32, &aligned, &mask).is_some());
        assert!(match_rule(RuleOp::Bin(BinOp::And), ScalarTy::I32, &unaligned, &mask).is_none());
    }

    #[test]
    fn lshr_requires_nowrap() {
        let k = uni(2);
        let a = OperandInfo::with_runtime_base(4, vec![0, 1, 2, 3]);
        assert!(match_rule(RuleOp::Bin(BinOp::LShr), ScalarTy::I32, &a, &k).is_none());
        let a = a.nowrap();
        let r = match_rule(RuleOp::Bin(BinOp::LShr), ScalarTy::I32, &a, &k).unwrap();
        assert_eq!(r.name, "lshr.aligned");
        assert_eq!(
            r.result_offsets(ScalarTy::I32, ScalarTy::I32, &a, &k),
            vec![0, 0, 0, 0]
        );
    }

    #[test]
    fn zext_requires_nonneg_offsets() {
        let b = uni(0);
        let neg = OperandInfo {
            base_const: None,
            base_align: 1,
            offsets: vec![0, 0xFF], // -1 at i8
            nowrap_unsigned: true,
            nowrap_signed: true,
        };
        assert!(match_rule(RuleOp::Cast(CastKind::Zext), ScalarTy::I8, &neg, &b).is_none());
        let pos = OperandInfo {
            offsets: vec![0, 1],
            ..neg
        };
        assert!(match_rule(RuleOp::Cast(CastKind::Zext), ScalarTy::I8, &pos, &b).is_some());
    }
}

//! Offline verification of shape rules — the z3 substitute.
//!
//! The paper verifies its conditional shape transformations offline with an
//! SMT solver and checks only the (cheap) preconditions at compile time.
//! This reproduction replaces the solver with a decision procedure that is
//! complete for the fixed-width identities in the catalog: **exhaustive
//! bit-vector enumeration at width 8** (every base value, a structured
//! catalog of offset patterns), plus **randomized checking at width 64** to
//! guard against width-dependent reasoning errors. Run it with
//! `cargo test -p shapecheck` or call [`verify_all`].

use crate::facts::{largest_pow2_divisor, OperandInfo};
use crate::rules::{Rule, RuleOp, RULES};
use psir::{eval_bin, eval_cast, sext, ScalarTy};

/// A concrete refutation of a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Rule that failed.
    pub rule: &'static str,
    /// Operand width at which it failed.
    pub ty: ScalarTy,
    /// Left base.
    pub a_base: u64,
    /// Right base.
    pub b_base: u64,
    /// Left offsets.
    pub a_off: Vec<u64>,
    /// Right offsets.
    pub b_off: Vec<u64>,
    /// Failing lane.
    pub lane: usize,
    /// What the operation actually produces on that lane.
    pub expected: u64,
    /// What the rule's (base, offset) decomposition predicts.
    pub got: u64,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rule {} refuted at {}: a={}+{:?} b={}+{:?} lane {}: op gives {:#x}, rule gives {:#x}",
            self.rule,
            self.ty,
            self.a_base,
            self.a_off,
            self.b_base,
            self.b_off,
            self.lane,
            self.expected,
            self.got
        )
    }
}

/// Outcome of verifying one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Rule name.
    pub rule: &'static str,
    /// Combinations whose preconditions held and whose identity was checked.
    pub cases_checked: u64,
    /// Combinations skipped because preconditions did not hold.
    pub cases_skipped: u64,
}

/// Minimal xorshift64* PRNG so the verifier has no dependencies and is
/// deterministic.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Offset patterns exercised at each width (chosen to include uniform,
/// unit-stride, wide strides, permutations, and negative offsets).
fn offset_catalog(ty: ScalarTy) -> Vec<Vec<u64>> {
    let m = ty.bit_mask();
    vec![
        vec![0, 0, 0, 0],
        vec![0, 1, 2, 3],
        vec![0, 2, 4, 6],
        vec![0, 4, 8, 12],
        vec![0, 8, 16, 24],
        vec![0, 16, 32, 48],
        vec![3, 1, 2, 0],
        vec![1, 1, 1, 1],
        vec![m, m - 1, m - 2, m - 3], // -1, -2, -3, -4
        vec![0, m, 64 & m, 128 & m],
        vec![0, 3, 6, 9],
        vec![0, 32, 64, 96],
    ]
}

fn base_catalog(ty: ScalarTy) -> Vec<u64> {
    let m = ty.bit_mask();
    let mut v: Vec<u64> = vec![
        0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 24, 31, 32, 63, 64, 96, 100, 127, 128, 129, 192, 240, 248,
        252, 254, 255,
    ];
    v.iter_mut().for_each(|x| *x &= m);
    v.sort_unstable();
    v.dedup();
    v
}

/// Derives honest facts from concrete values: alignment from the base value,
/// no-wrap flags from actually checking every lane.
fn facts_from_concrete(ty: ScalarTy, base: u64, offsets: &[u64]) -> OperandInfo {
    let w = ty.bits();
    let nowrap_unsigned = offsets
        .iter()
        .all(|&o| (base as u128 + o as u128) < (1u128 << w));
    let lo = -(1i128 << (w - 1));
    let hi = (1i128 << (w - 1)) - 1;
    let nowrap_signed = offsets.iter().all(|&o| {
        let s = sext(ty, base) as i128 + sext(ty, o) as i128;
        s >= lo && s <= hi
    });
    OperandInfo {
        base_const: Some(base),
        base_align: largest_pow2_divisor(base & ty.bit_mask()),
        offsets: offsets.to_vec(),
        nowrap_unsigned,
        nowrap_signed,
    }
}

/// Checks the identity for one concrete combination. Returns `Ok(true)` when
/// checked, `Ok(false)` when skipped (preconditions not met).
fn check_one(
    rule: &Rule,
    ty: ScalarTy,
    out_ty: ScalarTy,
    a_base: u64,
    a_off: &[u64],
    b_base: u64,
    b_off: &[u64],
) -> Result<bool, Counterexample> {
    let a = facts_from_concrete(ty, a_base, a_off);
    let b = facts_from_concrete(ty, b_base, b_off);
    if !rule.preconds_hold(ty, &a, &b) {
        return Ok(false);
    }
    let r_base = rule.result_base(ty, out_ty, a_base, b_base);
    let r_off = rule.result_offsets(ty, out_ty, &a, &b);
    for lane in 0..a_off.len().max(b_off.len()) {
        let av = (a_base.wrapping_add(*a_off.get(lane).unwrap_or(&0))) & ty.bit_mask();
        let bv = (b_base.wrapping_add(*b_off.get(lane).unwrap_or(&0))) & ty.bit_mask();
        let expected = match rule.op {
            RuleOp::Bin(op) => match eval_bin(op, ty, av, bv) {
                Ok(v) => v,
                Err(_) => continue, // trapping inputs are outside the identity
            },
            RuleOp::Cast(kind) => eval_cast(kind, ty, out_ty, av),
        };
        let got = r_base.wrapping_add(*r_off.get(lane).unwrap_or(&0)) & out_ty.bit_mask();
        if expected != got {
            return Err(Counterexample {
                rule: rule.name,
                ty,
                a_base,
                b_base,
                a_off: a_off.to_vec(),
                b_off: b_off.to_vec(),
                lane,
                expected,
                got,
            });
        }
    }
    Ok(true)
}

/// Verifies one rule: exhaustive bases at width 8 against the offset
/// catalog, then `random_cases` randomized trials at width 64.
///
/// # Errors
/// Returns the first [`Counterexample`] found.
pub fn verify_rule(rule: &Rule, random_cases: u64) -> Result<VerifyReport, Counterexample> {
    let mut checked = 0u64;
    let mut skipped = 0u64;

    // Phase 1: exhaustive-by-construction at width 8. For cast rules the
    // source width is 8 and the destination is 16 (trunc goes 16 → 8).
    let (ty, out_ty) = match rule.op {
        RuleOp::Cast(psir::CastKind::Trunc) => (ScalarTy::I16, ScalarTy::I8),
        RuleOp::Cast(_) => (ScalarTy::I8, ScalarTy::I16),
        RuleOp::Bin(_) => (ScalarTy::I8, ScalarTy::I8),
    };
    let offs = offset_catalog(ty);
    let b_bases = base_catalog(ty);
    let a_limit = 1u64 << ty.bits().min(10); // exhaustive for i8, sampled above
    for a_base in 0..a_limit {
        for &b_base in &b_bases {
            for a_off in &offs {
                for b_off in &offs {
                    match check_one(rule, ty, out_ty, a_base, a_off, b_base, b_off) {
                        Ok(true) => checked += 1,
                        Ok(false) => skipped += 1,
                        Err(ce) => return Err(ce),
                    }
                }
            }
        }
    }

    // Phase 2: randomized at width 64 (structured randomness: aligned bases
    // and power-of-two-ish constants show up often so preconditions fire).
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let (ty64, out64) = match rule.op {
        RuleOp::Cast(psir::CastKind::Trunc) => (ScalarTy::I64, ScalarTy::I32),
        RuleOp::Cast(_) => (ScalarTy::I32, ScalarTy::I64),
        RuleOp::Bin(_) => (ScalarTy::I64, ScalarTy::I64),
    };
    for _ in 0..random_cases {
        let align_shift = rng.next() % 16;
        let a_base = ((rng.next() >> 16) << align_shift) & ty64.bit_mask();
        let b_base = match rng.next() % 4 {
            0 => rng.next() & 0x3f, // small constant / shift
            1 => (ty64.bit_mask() << (rng.next() % 16)) & ty64.bit_mask(), // mask
            2 => 1u64 << (rng.next() % 16), // power of two
            _ => rng.next() & ty64.bit_mask(),
        };
        let stride = rng.next() % 64;
        let a_off: Vec<u64> = (0..4).map(|i| (i * stride) & ty64.bit_mask()).collect();
        let b_off: Vec<u64> = if rng.next().is_multiple_of(2) {
            vec![0, 0, 0, 0]
        } else {
            (0..4).map(|_| rng.next() & 0xff).collect()
        };
        match check_one(rule, ty64, out64, a_base, &a_off, b_base, &b_off) {
            Ok(true) => checked += 1,
            Ok(false) => skipped += 1,
            Err(ce) => return Err(ce),
        }
    }

    Ok(VerifyReport {
        rule: rule.name,
        cases_checked: checked,
        cases_skipped: skipped,
    })
}

/// Verifies the entire catalog.
///
/// # Errors
/// Returns the first [`Counterexample`] found in any rule.
pub fn verify_all() -> Result<Vec<VerifyReport>, Counterexample> {
    RULES.iter().map(|r| verify_rule(r, 4000)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{BaseComb, OffComb, Precond};
    use psir::BinOp;

    #[test]
    fn whole_catalog_verifies() {
        let reports = verify_all().unwrap_or_else(|ce| panic!("{ce}"));
        assert_eq!(reports.len(), RULES.len());
        for r in &reports {
            // Every rule must have been exercised (non-vacuous proof).
            assert!(
                r.cases_checked > 100,
                "rule {} only checked {} cases",
                r.rule,
                r.cases_checked
            );
        }
    }

    #[test]
    fn broken_mul_rule_is_refuted() {
        // Multiplication does NOT distribute as add does; the verifier must
        // catch a rule that claims it does.
        let bogus = Rule {
            name: "mul.bogus-unconditional",
            op: RuleOp::Bin(BinOp::Mul),
            pre: &[],
            base: BaseComb::Apply,
            off: OffComb::Apply,
        };
        let err = verify_rule(&bogus, 0).expect_err("must be refuted");
        assert_eq!(err.rule, "mul.bogus-unconditional");
    }

    #[test]
    fn broken_lshr_without_nowrap_is_refuted() {
        let bogus = Rule {
            name: "lshr.bogus-no-nowrap",
            op: RuleOp::Bin(BinOp::LShr),
            pre: &[
                Precond::RightUniform,
                Precond::RightBaseConst,
                Precond::RightShiftAlignsLeft,
            ],
            base: BaseComb::Apply,
            off: OffComb::ApplyRightBase,
        };
        let err = verify_rule(&bogus, 0).expect_err("must be refuted");
        assert_eq!(err.rule, "lshr.bogus-no-nowrap");
    }

    #[test]
    fn broken_and_without_alignment_is_refuted() {
        let bogus = Rule {
            name: "and.bogus-no-align",
            op: RuleOp::Bin(BinOp::And),
            pre: &[Precond::RightUniform, Precond::RightBaseConst],
            base: BaseComb::Apply,
            off: OffComb::ApplyRightBase,
        };
        let err = verify_rule(&bogus, 0).expect_err("must be refuted");
        assert_eq!(err.rule, "and.bogus-no-align");
    }

    #[test]
    fn broken_zext_without_nonneg_is_refuted() {
        let bogus = Rule {
            name: "zext.bogus",
            op: RuleOp::Cast(psir::CastKind::Zext),
            pre: &[Precond::LeftNoWrapUnsigned],
            base: BaseComb::Apply,
            off: OffComb::Apply,
        };
        // Negative offsets with nowrap_unsigned… a_base + (-1 as u8=255)
        // wraps unsigned, so nowrap_unsigned excludes them; this bogus rule
        // may actually hold. Check the *other* hole: dropping both preconds.
        let worse = Rule {
            name: "zext.bogus2",
            pre: &[],
            ..bogus
        };
        assert!(verify_rule(&worse, 0).is_err());
    }

    #[test]
    fn counterexample_displays() {
        let ce = Counterexample {
            rule: "x",
            ty: ScalarTy::I8,
            a_base: 1,
            b_base: 2,
            a_off: vec![0],
            b_off: vec![0],
            lane: 0,
            expected: 3,
            got: 4,
        };
        assert!(ce.to_string().contains("refuted"));
    }
}

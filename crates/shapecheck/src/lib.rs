//! # shapecheck — two-phase validation of shape transformations
//!
//! The Parsimony paper (§4.2.2) performs shape analysis "with the help of
//! the z3 SMT solver in two phases": offline, a catalog of conditional shape
//! transformations is verified for correctness; at compile time, a transform
//! is applied only after (cheaply) checking that its preconditions are
//! satisfied by the operands.
//!
//! This crate is that machinery with the solver replaced by a decision
//! procedure appropriate for the identities involved (fixed-width bit-vector
//! equalities): exhaustive enumeration at width 8 plus randomized checking
//! at width 64 — see `DESIGN.md` for the substitution argument.
//!
//! * [`OperandInfo`] — the compile-time facts tracked per indexed operand,
//! * [`Rule`] / [`RULES`] — the transformation catalog (data, not code),
//! * [`match_rule`] — the compile-time precondition check,
//! * [`verify_rule`] / [`verify_all`] — the offline proof.
//!
//! # Examples
//!
//! ```
//! use shapecheck::{match_rule, OperandInfo, RuleOp};
//! use psir::{BinOp, ScalarTy};
//!
//! // (base + {0,1,2,3}) * 4  — the right operand is a compile-time uniform,
//! // so the result is again indexed with offsets {0,4,8,12}.
//! let a = OperandInfo::with_runtime_base(1, vec![0, 1, 2, 3]);
//! let four = OperandInfo::with_const_base(4, vec![0, 0, 0, 0]);
//! let rule = match_rule(RuleOp::Bin(BinOp::Mul), ScalarTy::I64, &a, &four)
//!     .expect("verified rule applies");
//! assert_eq!(
//!     rule.result_offsets(ScalarTy::I64, ScalarTy::I64, &a, &four),
//!     vec![0, 4, 8, 12],
//! );
//! ```

#![warn(missing_docs)]

mod facts;
mod rules;
mod verify;

pub use facts::{largest_pow2_divisor, OperandInfo};
pub use rules::{match_rule, BaseComb, OffComb, Precond, Rule, RuleOp, RULES};
pub use verify::{verify_all, verify_rule, Counterexample, VerifyReport};

//! Compile-time facts about operands of shape transformations.
//!
//! The paper (§4.2.2) tracks "known facts about IR values … as z3 model
//! constraints" and applies a shape transform "only after verifying that its
//! preconditions are satisfied by the operands". [`OperandInfo`] is this
//! reproduction's fact record: everything the Parsimony shape analysis knows
//! about one *indexed* operand — its compile-time base value (if any), the
//! base's alignment, the per-lane offsets, and no-wrap guarantees.

use psir::ScalarTy;

/// Facts about one indexed operand `base + offsets[i]`.
///
/// Offsets are raw payload bits at the operand's width (the same encoding as
/// [`psir::Const`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandInfo {
    /// Compile-time value of the base, if known.
    pub base_const: Option<u64>,
    /// Largest power of two known to divide the base (1 = nothing known).
    pub base_align: u64,
    /// Per-lane compile-time offsets (raw bits, truncated to the width).
    pub offsets: Vec<u64>,
    /// The per-lane values `base + offsets[i]` are known not to wrap in
    /// unsigned arithmetic at this width (e.g. pointer arithmetic, which is
    /// undefined on overflow, or index arithmetic with known ranges).
    pub nowrap_unsigned: bool,
    /// The per-lane values are known not to wrap in signed arithmetic.
    pub nowrap_signed: bool,
}

impl OperandInfo {
    /// An operand with a statically known base.
    pub fn with_const_base(base: u64, offsets: Vec<u64>) -> OperandInfo {
        OperandInfo {
            base_align: largest_pow2_divisor(base),
            base_const: Some(base),
            offsets,
            nowrap_unsigned: false,
            nowrap_signed: false,
        }
    }

    /// An operand whose base is a runtime scalar with the given alignment.
    pub fn with_runtime_base(base_align: u64, offsets: Vec<u64>) -> OperandInfo {
        OperandInfo {
            base_const: None,
            base_align: base_align.max(1),
            offsets,
            nowrap_unsigned: false,
            nowrap_signed: false,
        }
    }

    /// Marks the operand as non-wrapping (both signednesses).
    pub fn nowrap(mut self) -> OperandInfo {
        self.nowrap_unsigned = true;
        self.nowrap_signed = true;
        self
    }

    /// Whether every lane offset is zero (the *uniform* special case of
    /// indexed, §4.2.2).
    pub fn is_uniform(&self) -> bool {
        self.offsets.iter().all(|&o| o == 0)
    }

    /// Whether the offsets form `0, s, 2s, …` for some stride `s`
    /// (the *strided* special case of indexed).
    pub fn stride(&self, ty: ScalarTy) -> Option<i64> {
        if self.offsets.len() < 2 {
            return Some(0);
        }
        let s = psir::sext(ty, self.offsets[1]).wrapping_sub(psir::sext(ty, self.offsets[0]));
        for w in self.offsets.windows(2) {
            let d = psir::sext(ty, w[1]).wrapping_sub(psir::sext(ty, w[0]));
            if d != s {
                return None;
            }
        }
        Some(s)
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.offsets.len()
    }
}

/// The largest power of two dividing `v` (`u64::MAX`-capped; 0 is treated as
/// maximally aligned).
pub fn largest_pow2_divisor(v: u64) -> u64 {
    if v == 0 {
        1 << 63
    } else {
        1 << v.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_stride() {
        let u = OperandInfo::with_runtime_base(1, vec![0, 0, 0, 0]);
        assert!(u.is_uniform());
        assert_eq!(u.stride(ScalarTy::I32), Some(0));

        let s = OperandInfo::with_runtime_base(1, vec![0, 4, 8, 12]);
        assert!(!s.is_uniform());
        assert_eq!(s.stride(ScalarTy::I32), Some(4));

        let irregular = OperandInfo::with_runtime_base(1, vec![0, 1, 3, 4]);
        assert_eq!(irregular.stride(ScalarTy::I32), None);
    }

    #[test]
    fn negative_stride_via_sext() {
        // offsets 3,2,1,0 at i8: stride -1
        let s = OperandInfo::with_runtime_base(1, vec![3, 2, 1, 0]);
        assert_eq!(s.stride(ScalarTy::I8), Some(-1));
    }

    #[test]
    fn pow2_divisor() {
        assert_eq!(largest_pow2_divisor(12), 4);
        assert_eq!(largest_pow2_divisor(1), 1);
        assert_eq!(largest_pow2_divisor(64), 64);
        assert_eq!(largest_pow2_divisor(0), 1 << 63);
    }

    #[test]
    fn const_base_alignment_derived() {
        let o = OperandInfo::with_const_base(24, vec![0, 1]);
        assert_eq!(o.base_align, 8);
        assert_eq!(o.base_const, Some(24));
    }
}

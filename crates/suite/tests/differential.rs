//! Differential correctness: every configuration of every kernel computes
//! byte-identical outputs. Four independently-built implementations
//! (serial interpretation, baseline auto-vectorization, the Parsimony pass,
//! hand-written vector IR) agreeing on randomized inputs is the suite's
//! correctness argument.

use suite::ispc::{kernels as ispc_kernels, IspcSizes};
use suite::runner::{run_all_and_check, Config};
use suite::simdlib::kernels as simd_kernels;

#[test]
fn simdlib_all_configs_agree() {
    let cfgs = [
        Config::Scalar,
        Config::Autovec,
        Config::Parsimony,
        Config::ParsimonyBoscc,
        Config::GangSync,
        Config::Handwritten,
    ];
    let mut failures = Vec::new();
    for k in simd_kernels(512) {
        if let Err(e) = run_all_and_check(&k, &cfgs) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} kernels disagree:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn simdlib_no_shape_ablation_agrees() {
    // The ablation is slower but must still be correct. A subset keeps the
    // test fast (the ablation emits gathers everywhere).
    let cfgs = [Config::Scalar, Config::ParsimonyNoShape];
    let mut failures = Vec::new();
    for k in simd_kernels(256).into_iter().take(24) {
        if let Err(e) = run_all_and_check(&k, &cfgs) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn ispc_workloads_all_configs_agree() {
    let cfgs = [
        Config::Scalar,
        Config::Autovec,
        Config::Parsimony,
        Config::ParsimonyBoscc,
        Config::GangSync,
    ];
    let mut failures = Vec::new();
    for k in ispc_kernels(IspcSizes::tiny()) {
        if let Err(e) = run_all_and_check(&k, &cfgs) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} workloads disagree:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

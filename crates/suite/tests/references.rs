//! Independent Rust-reference oracles for representative kernels: beyond
//! the four implementations agreeing with *each other*, these spot checks
//! pin the agreed-upon result to an independently written computation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suite::runner::{run_kernel, Config};
use suite::simdlib::kernels;
use suite::Init;

fn regen_input(init: Init, len: u64, elem_bytes: usize) -> Vec<u8> {
    // Mirrors runner::fill for the inits used below.
    match init {
        Init::RandomInt { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mask = match elem_bytes {
                1 => 0xffu64,
                2 => 0xffff,
                4 => 0xffff_ffff,
                _ => u64::MAX,
            };
            (0..len)
                .flat_map(|_| {
                    let v = rng.gen::<u64>() & mask;
                    v.to_le_bytes()[..elem_bytes].to_vec()
                })
                .collect()
        }
        _ => panic!("regen_input only supports RandomInt here"),
    }
}

fn kernel_input_u8(name: &str, buf_index: usize) -> (suite::Kernel, Vec<u8>) {
    let k = kernels(512)
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("kernel {name}"));
    let spec = &k.buffers[buf_index];
    let data = regen_input(spec.init, spec.len, spec.elem.size_bytes() as usize);
    (k, data)
}

#[test]
fn add_sat_u8_matches_rust_saturating_add() {
    let (k, a) = kernel_input_u8("add_sat_u8", 0);
    let b = regen_input(k.buffers[1].init, k.buffers[1].len, 1);
    let got = run_kernel(&k, Config::Parsimony).unwrap();
    let out = &got.outputs[0];
    for i in 0..out.len() {
        assert_eq!(out[i], a[i].saturating_add(b[i]), "element {i}");
    }
}

#[test]
fn abs_diff_u8_matches_rust_abs_diff() {
    let (k, a) = kernel_input_u8("abs_diff_u8", 0);
    let b = regen_input(k.buffers[1].init, k.buffers[1].len, 1);
    let got = run_kernel(&k, Config::Handwritten).unwrap();
    let out = &got.outputs[0];
    for i in 0..out.len() {
        assert_eq!(out[i], a[i].abs_diff(b[i]), "element {i}");
    }
}

#[test]
fn bgr_to_gray_matches_reference_formula() {
    let (k, bgr) = kernel_input_u8("bgr_to_gray", 0);
    let got = run_kernel(&k, Config::Parsimony).unwrap();
    let out = &got.outputs[0];
    for i in 0..out.len() {
        let (b, g, r) = (
            bgr[3 * i] as u32,
            bgr[3 * i + 1] as u32,
            bgr[3 * i + 2] as u32,
        );
        let want = ((b * 29 + g * 150 + r * 77 + 128) >> 8) as u8;
        assert_eq!(out[i], want, "pixel {i}");
    }
}

#[test]
fn abs_diff_sum_matches_rust_sum() {
    let (k, a) = kernel_input_u8("abs_diff_sum_u8", 0);
    let b = regen_input(k.buffers[1].init, k.buffers[1].len, 1);
    let got = run_kernel(&k, Config::Handwritten).unwrap();
    let total = u64::from_le_bytes(got.outputs[0][..8].try_into().unwrap());
    let want: u64 = a.iter().zip(&b).map(|(&x, &y)| x.abs_diff(y) as u64).sum();
    assert_eq!(total, want);
}

#[test]
fn median3_matches_rust_sort() {
    let (k, a) = kernel_input_u8("median3_u8", 0);
    let got = run_kernel(&k, Config::Autovec).unwrap();
    let out = &got.outputs[0];
    for i in 0..out.len() {
        let mut w = [a[i], a[i + 1], a[i + 2]];
        w.sort_unstable();
        assert_eq!(out[i], w[1], "element {i}");
    }
}

#[test]
fn max_reduce_matches_rust_max() {
    let (k, a) = kernel_input_u8("max_reduce_u8", 0);
    let got = run_kernel(&k, Config::GangSync).unwrap();
    assert_eq!(got.outputs[0][0], *a.iter().max().unwrap());
}

#[test]
fn mandelbrot_interior_and_exterior_points() {
    let ks = suite::ispc::kernels(suite::ispc::IspcSizes::tiny());
    let k = ks.iter().find(|k| k.name == "mandelbrot").unwrap();
    let got = run_kernel(k, Config::Parsimony).unwrap();
    let out: Vec<i32> = got.outputs[0]
        .chunks(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    // Rust reference over the same pixel grid.
    let (w, maxit) = (32i64, 64);
    let n = out.len() as i64;
    for (idx, &it) in out.iter().enumerate() {
        let idx = idx as i64;
        let x0 = -2.0f32 + (idx % w) as f32 * (3.0 / w as f32);
        let y0 = -1.0f32 + (idx / w) as f32 * (2.0 / (n / w) as f32);
        let (mut x, mut y, mut i) = (0.0f32, 0.0f32, 0);
        while x * x + y * y < 4.0 && i < maxit {
            let xt = x * x - y * y + x0;
            y = 2.0 * x * y + y0;
            x = xt;
            i += 1;
        }
        assert_eq!(it, i, "pixel {idx}");
    }
}

//! Code-generation quality guards: the §4.2.3 memory-operation selection
//! must keep producing the *kind* of accesses the paper's performance story
//! depends on. These assertions are robust (they check the dynamic
//! instruction mix, not IR text) and fail loudly if shape analysis or the
//! window transformation regresses.

use suite::runner::{run_kernel, Config};
use suite::simdlib::kernels;

fn stats(name: &str, cfg: Config) -> psir::ExecStats {
    let ks = kernels(512);
    let k = ks.iter().find(|k| k.name == name).expect("kernel exists");
    run_kernel(k, cfg).expect("runs").stats
}

#[test]
fn unit_stride_kernels_use_packed_accesses_only() {
    for name in ["add_sat_u8", "saxpy_f32", "blur3_u8", "median3_u8"] {
        let s = stats(name, Config::Parsimony);
        assert_eq!(s.gathers, 0, "{name}: unexpected gathers {s:?}");
        assert_eq!(s.scatters, 0, "{name}: unexpected scatters {s:?}");
        assert!(s.packed_loads > 0, "{name}: no packed loads? {s:?}");
        assert!(s.packed_stores > 0, "{name}: no packed stores? {s:?}");
    }
}

#[test]
fn strided_kernels_use_the_shuffle_window_not_gathers() {
    // §4.2.3: compile-time strides within 4× the gang size become packed
    // loads/stores plus shuffles — "still faster than gather/scatters".
    for name in [
        "bgr_to_gray",
        "deinterleave2_u8",
        "extract_g_u8",
        "reverse_u8",
    ] {
        let s = stats(name, Config::Parsimony);
        assert_eq!(s.gathers, 0, "{name}: window transform regressed {s:?}");
    }
    for name in [
        "gray_to_bgr",
        "interleave2_u8",
        "dup2_u8",
        "swizzle_rgba_bgra",
    ] {
        let s = stats(name, Config::Parsimony);
        assert_eq!(s.scatters, 0, "{name}: window transform regressed {s:?}");
    }
}

#[test]
fn data_dependent_addresses_gather_as_they_must() {
    let s = stats("lut_u8", Config::Parsimony);
    assert!(s.gathers > 0, "lut is inherently a gather: {s:?}");
}

#[test]
fn shape_ablation_degrades_to_gathers() {
    let with = stats("add_sat_u8", Config::Parsimony);
    let without = stats("add_sat_u8", Config::ParsimonyNoShape);
    assert_eq!(with.gathers, 0);
    assert!(
        without.gathers > 0 && without.scatters > 0,
        "the ablation must visibly lose the packed accesses: {without:?}"
    );
}

#[test]
fn soa_binomial_lattice_stays_packed() {
    let ks = suite::ispc::kernels(suite::ispc::IspcSizes::tiny());
    let k = ks
        .iter()
        .find(|k| k.name == "binomial_options")
        .expect("binomial");
    let s = run_kernel(k, Config::Parsimony).expect("runs").stats;
    assert_eq!(
        s.gathers, 0,
        "the SoA lattice must stay packed (this is why pow dominates): {s:?}"
    );
    let vol = ks.iter().find(|k| k.name == "volume").expect("volume");
    let sv = run_kernel(vol, Config::Parsimony).expect("runs").stats;
    assert!(sv.gathers > 0, "volume sampling is data-dependent: {sv:?}");
}

#[test]
fn autovec_baseline_never_gathers() {
    // The baseline has no gather path at all — its wins are packed-only.
    for name in ["add_sat_u8", "saxpy_f32", "sum_f32", "blur3_u8"] {
        let s = stats(name, Config::Autovec);
        assert_eq!(s.gathers, 0, "{name}: the baseline cannot gather {s:?}");
        assert_eq!(s.scatters, 0, "{name}: the baseline cannot scatter {s:?}");
    }
}

//! Engine differential: the fast (`FramePlan`) engine, the retained
//! reference engine, and the native tier (fused block kernels with
//! bailout) must agree byte-for-byte on simulated cycles, checked
//! outputs, execution statistics, and profile JSON — across every suite
//! kernel, across gang-size sweep variants, and on pipeline-degraded
//! (fault-injected, scalar-fallback) modules. This is the identity
//! contract the precompiled-plan and native-tier optimizations are
//! allowed to exist under.

use parsimony::{
    vectorize_module_with, FaultInjector, PipelineOptions, VectorizeOptions, VerifyMode,
};
use suite::ispc::{kernels as ispc_kernels, IspcSizes};
use suite::runner::{build_module, run_module_engine, Config, Engine};
use suite::simdlib::kernels as simd_kernels;
use suite::Kernel;
use vmach::{Target, TargetCost};

/// Runs `module` over `k`'s workload under all three engines (profiled,
/// so the classed-cost attribution is exercised too) and compares every
/// observable against the fast engine.
fn engines_agree(k: &Kernel, module: &psir::Module, label: &str) -> Result<(), String> {
    engines_agree_on(k, module, label, &Target::reference_default())
}

/// [`engines_agree`] under an explicit costing target.
fn engines_agree_on(
    k: &Kernel,
    module: &psir::Module,
    label: &str,
    target: &Target,
) -> Result<(), String> {
    let cost = TargetCost::for_target(target.clone());
    let fast = run_module_engine(module, k, &cost, true, Engine::Fast)
        .map_err(|e| format!("{label}: fast engine: {e}"))?;
    let fj = fast
        .profile
        .as_ref()
        .map(|p| p.to_json().to_string_pretty());
    for engine in [Engine::Reference, Engine::Native] {
        let name = match engine {
            Engine::Reference => "reference",
            _ => "native",
        };
        let other = run_module_engine(module, k, &cost, true, engine)
            .map_err(|e| format!("{label}: {name} engine: {e}"))?;
        if fast.cycles != other.cycles {
            return Err(format!(
                "{label}: cycles differ: fast {} vs {name} {}",
                fast.cycles, other.cycles
            ));
        }
        if fast.outputs != other.outputs {
            return Err(format!("{label}: checked outputs differ vs {name}"));
        }
        if fast.stats != other.stats {
            return Err(format!(
                "{label}: stats differ: fast {:?} vs {name} {:?}",
                fast.stats, other.stats
            ));
        }
        let oj = other.profile.map(|p| p.to_json().to_string_pretty());
        if fj != oj {
            return Err(format!("{label}: profile JSON differs vs {name}"));
        }
    }
    Ok(())
}

fn check_all(kernels: &[Kernel], cfgs: &[Config]) {
    let mut failures = Vec::new();
    for k in kernels {
        for &cfg in cfgs {
            let label = format!("{}/{}", k.name, cfg.label());
            let result = build_module(k, cfg)
                .map_err(|e| format!("{label}: build: {e}"))
                .and_then(|m| engines_agree(k, &m, &label));
            if let Err(e) = result {
                failures.push(e);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} engine divergences:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn simdlib_kernels_agree_between_engines() {
    check_all(&simd_kernels(512), &[Config::Scalar, Config::Parsimony]);
}

#[test]
fn ispc_kernels_agree_between_engines() {
    check_all(
        &ispc_kernels(IspcSizes::tiny()),
        &[Config::Parsimony, Config::GangSync],
    );
}

#[test]
fn gang_size_sweep_agrees_between_engines() {
    // The fig4 gang-size sweep recompiles the same SPMD program at a
    // different program-level gang constant; both sweep endpoints must be
    // engine-identical too (different lane counts stress the splat/slice
    // and masked-tail paths differently).
    let base = ispc_kernels(IspcSizes::tiny())
        .into_iter()
        .find(|k| k.name == "mandelbrot")
        .expect("mandelbrot present");
    let mut sweep = Vec::new();
    for gang in [8u32, 64] {
        let mut k = Kernel::new(
            format!("mandelbrot_g{gang}"),
            "ispc",
            gang,
            base.psim_src
                .replace("psim gang(16)", &format!("psim gang({gang})")),
            base.serial_src.clone(),
            base.buffers.clone(),
            base.n,
        );
        k.extra_args = base.extra_args.clone();
        sweep.push(k);
    }
    check_all(&sweep, &[Config::Parsimony]);
}

#[test]
fn targets_preserve_outputs_and_engine_identity() {
    // The target sweep of ISSUE 10: the same compiled module, priced on
    // every modeled machine — both fixed-width x86 targets and the
    // scalable target at three vector lengths. Two contracts at once:
    //   1. per target, all three engines still agree on everything
    //      (cycles included — they share the target's cost model);
    //   2. across targets, checked outputs are byte-identical to the
    //      reference target's (targets price uops, never touch values).
    let targets = [
        Target::avx2(),
        Target::sve(128),
        Target::sve(512),
        Target::sve(2048),
    ];
    let mut failures = Vec::new();
    for k in simd_kernels(512).iter().take(8) {
        let label = format!("{}/{}", k.name, Config::Parsimony.label());
        let module = match build_module(k, Config::Parsimony) {
            Ok(m) => m,
            Err(e) => {
                failures.push(format!("{label}: build: {e}"));
                continue;
            }
        };
        let base_cost = TargetCost::for_target(Target::reference_default());
        let want = match run_module_engine(&module, k, &base_cost, false, Engine::Fast) {
            Ok(r) => r.outputs,
            Err(e) => {
                failures.push(format!("{label}: reference target: {e}"));
                continue;
            }
        };
        for t in &targets {
            let tlabel = format!("{label}@{}", t.flag_name());
            if let Err(e) = engines_agree_on(k, &module, &tlabel, t) {
                failures.push(e);
                continue;
            }
            let cost = TargetCost::for_target(t.clone());
            match run_module_engine(&module, k, &cost, false, Engine::Fast) {
                Ok(r) if r.outputs != want => {
                    failures.push(format!("{tlabel}: outputs diverge from x86-avx512"));
                }
                Ok(_) => {}
                Err(e) => failures.push(format!("{tlabel}: {e}")),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} target-sweep divergences:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn degraded_scalar_fallback_agrees_between_engines() {
    // A PSIM_INJECT_FAULT-style injected panic in the vectorize pass
    // degrades regions to the scalar serialized fallback; the degraded
    // module must still be engine-identical.
    let popts = PipelineOptions {
        verify: VerifyMode::Fallback,
        inject: Some(FaultInjector::parse("vectorize:panic").expect("registered site")),
        jobs: 1,
        target: Target::reference_default(),
    };
    let mut failures = Vec::new();
    for k in simd_kernels(512).into_iter().take(8) {
        let label = format!("{}/degraded", k.name);
        let m = psimc::compile(&k.psim_src).expect("suite kernels compile");
        let out = vectorize_module_with(&m, &VectorizeOptions::default(), &popts)
            .expect("degradation serializes, never fails the module");
        assert!(
            !out.degraded.is_empty(),
            "{label}: the injected fault must degrade at least one region"
        );
        if let Err(e) = engines_agree(&k, &out.module, &label) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} engine divergences on degraded modules:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

//! Executes a kernel under each configuration, measuring simulated cycles.

use crate::{Init, Kernel};
use autovec::{autovectorize_module, AutovecOptions};
use parsimony::{vectorize_module, VectorizeOptions};
use psir::{ExecError, ExecStats, Interp, Memory, Module, Profile, RtVal, ScalarTy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmach::{Target, TargetCost};
use vmath::RuntimeExterns;

pub use psir::Engine;

/// The evaluated configurations (the paper's Figure 4 / Figure 5 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Serial code, no vectorization (Figure 5's scalar baseline).
    Scalar,
    /// Serial code through the `autovec` baseline (loop + SLP).
    Autovec,
    /// Parsimony SPMD with SLEEF-like math (the paper's prototype).
    Parsimony,
    /// Parsimony with shape analysis disabled (ablation).
    ParsimonyNoShape,
    /// Parsimony with branch-on-superword-condition guards (§4.2.3).
    ParsimonyBoscc,
    /// Gang-synchronous (ispc-like) mode with the fast built-in math.
    GangSync,
    /// Hand-written vector IR (Figure 5's intrinsics bar).
    Handwritten,
}

impl Config {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Config::Scalar => "scalar",
            Config::Autovec => "autovec",
            Config::Parsimony => "parsimony",
            Config::ParsimonyNoShape => "parsimony-noshape",
            Config::ParsimonyBoscc => "parsimony-boscc",
            Config::GangSync => "gangsync",
            Config::Handwritten => "handwritten",
        }
    }
}

/// Result of running one configuration.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Simulated cycles under the `vmach` cost model.
    pub cycles: u64,
    /// Contents of every `check`-marked buffer, in order.
    pub outputs: Vec<Vec<u8>>,
    /// Execution statistics (packed vs gather counts etc.).
    pub stats: ExecStats,
    /// Cycle-attribution profile; `Some` only under the `_profiled` entry
    /// points.
    pub profile: Option<Profile>,
    /// Native-tier blocks that dynamically fell back to the exact path
    /// (always 0 for the fast and reference engines). Not part of the
    /// engine-identity contract — it describes the native tier itself.
    pub native_bailouts: u64,
}

/// Allocates and initializes one workload buffer in `mem` according to its
/// [`BufSpec`](crate::BufSpec), returning the base address. Deterministic
/// for a given spec (seeded fills), which the differential fuzzer relies on
/// to hand every execution configuration bit-identical inputs.
pub fn fill_buffer(mem: &mut Memory, spec: &crate::BufSpec) -> u64 {
    let bytes = spec.elem.size_bytes() * spec.len;
    let mut data = vec![0u8; bytes as usize];
    match spec.init {
        Init::Zero => {}
        Init::Ramp => {
            for i in 0..spec.len {
                let v = i & spec.elem.bit_mask();
                let sz = spec.elem.size_bytes() as usize;
                data[(i as usize) * sz..(i as usize + 1) * sz]
                    .copy_from_slice(&v.to_le_bytes()[..sz]);
            }
        }
        Init::RandomInt { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..spec.len {
                let v: u64 = rng.gen::<u64>() & spec.elem.bit_mask();
                let sz = spec.elem.size_bytes() as usize;
                data[(i as usize) * sz..(i as usize + 1) * sz]
                    .copy_from_slice(&v.to_le_bytes()[..sz]);
            }
        }
        Init::RandomF32 { seed, lo, hi } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..spec.len {
                let v: f32 = rng.gen_range(lo..hi);
                data[(i as usize) * 4..(i as usize + 1) * 4]
                    .copy_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Init::RandomF32Int { seed, lo, hi } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..spec.len {
                let v: f32 = rng.gen_range(lo..hi) as f32;
                data[(i as usize) * 4..(i as usize + 1) * 4]
                    .copy_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    mem.alloc_bytes(&data, 64).expect("workload fits in memory")
}

/// Builds the module for a configuration.
///
/// # Errors
/// Propagates compile/vectorization failures, and reports kernels without a
/// hand-written implementation.
pub fn build_module(k: &Kernel, cfg: Config) -> Result<Module, String> {
    match cfg {
        Config::Scalar => psimc::compile(&k.serial_src).map_err(|e| e.to_string()),
        Config::Autovec => {
            let m = psimc::compile(&k.serial_src).map_err(|e| e.to_string())?;
            let (vm, _) = autovectorize_module(&m, &AutovecOptions::default());
            Ok(vm)
        }
        Config::Parsimony => {
            let m = psimc::compile(&k.psim_src).map_err(|e| e.to_string())?;
            let out =
                vectorize_module(&m, &VectorizeOptions::default()).map_err(|e| e.to_string())?;
            Ok(out.module)
        }
        Config::ParsimonyNoShape => {
            let m = psimc::compile(&k.psim_src).map_err(|e| e.to_string())?;
            let opts = VectorizeOptions {
                enable_shape: false,
                ..VectorizeOptions::default()
            };
            let out = vectorize_module(&m, &opts).map_err(|e| e.to_string())?;
            Ok(out.module)
        }
        Config::ParsimonyBoscc => {
            let m = psimc::compile(&k.psim_src).map_err(|e| e.to_string())?;
            let opts = VectorizeOptions {
                boscc: true,
                ..VectorizeOptions::default()
            };
            let out = vectorize_module(&m, &opts).map_err(|e| e.to_string())?;
            Ok(out.module)
        }
        Config::GangSync => {
            let m = psimc::compile(&k.psim_src).map_err(|e| e.to_string())?;
            let out = vectorize_module(&m, &VectorizeOptions::gang_synchronous())
                .map_err(|e| e.to_string())?;
            Ok(out.module)
        }
        Config::Handwritten => {
            let hand = k
                .hand
                .as_ref()
                .ok_or_else(|| format!("kernel {} has no hand-written version", k.name))?;
            let mut m = Module::new();
            hand(&mut m);
            Ok(m)
        }
    }
}

static EXTERNS: RuntimeExterns = RuntimeExterns::new();

/// Runs one configuration of a kernel, costing against
/// [`default_target`].
///
/// # Errors
/// Reports build failures and runtime traps with the kernel/config context.
pub fn run_kernel(k: &Kernel, cfg: Config) -> Result<RunResult, String> {
    run_kernel_with(k, cfg, &TargetCost::for_target(default_target()))
}

/// Like [`run_kernel`], additionally collecting a per-function
/// cycle-attribution [`Profile`] (`RunResult::profile` is `Some`).
///
/// # Errors
/// Reports build failures and runtime traps with the kernel/config context.
pub fn run_kernel_profiled(k: &Kernel, cfg: Config) -> Result<RunResult, String> {
    let module = build_module(k, cfg)?;
    run_module_inner(&module, k, &TargetCost::for_target(default_target()), true)
        .map_err(|e| format!("[{}] {e}", cfg.label()))
}

/// Runs the Parsimony configuration with custom vectorizer options (for
/// the stride-window and BOSCC ablations).
///
/// # Errors
/// Reports build failures and runtime traps with the kernel context.
pub fn run_kernel_custom(k: &Kernel, opts: &VectorizeOptions) -> Result<RunResult, String> {
    let m = psimc::compile(&k.psim_src).map_err(|e| e.to_string())?;
    let out = vectorize_module(&m, opts).map_err(|e| e.to_string())?;
    run_module(&out.module, k, &TargetCost::for_target(default_target()))
}

fn run_module(module: &Module, k: &Kernel, cost: &TargetCost) -> Result<RunResult, String> {
    run_module_inner(module, k, cost, false)
}

/// Process-wide engine override for the figure harnesses' `--engine` flag:
/// every [`run_kernel`]-family entry point executes under this engine
/// instead of [`Engine::default`]. First set wins (the CLIs set it once,
/// right after argument parsing); the explicit-engine entry points like
/// [`run_module_engine`] are unaffected.
static ENGINE_OVERRIDE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();

/// Overrides the engine used by the default-engine entry points. Returns
/// `false` if an override was already set to a *different* engine.
pub fn set_engine_override(engine: Engine) -> bool {
    *ENGINE_OVERRIDE.get_or_init(|| engine) == engine
}

/// The engine the default-engine entry points run under.
pub fn default_engine() -> Engine {
    ENGINE_OVERRIDE.get().copied().unwrap_or_default()
}

/// Process-wide target override for the harnesses' `--target` flag,
/// mirroring [`set_engine_override`]: every default-cost entry point
/// ([`run_kernel`], [`run_kernel_profiled`], [`run_kernel_custom`]) prices
/// against this machine instead of [`Target::reference_default`]. First
/// set wins; entry points taking an explicit [`TargetCost`]
/// ([`run_kernel_with`], the `run_module_engine` family) are unaffected,
/// which is what lets one process report a target×config matrix.
static TARGET_OVERRIDE: std::sync::OnceLock<Target> = std::sync::OnceLock::new();

/// Overrides the target used by the default-cost entry points. Returns
/// `false` if an override was already set to a *different* target.
pub fn set_target_override(target: Target) -> bool {
    *TARGET_OVERRIDE.get_or_init(|| target.clone()) == target
}

/// The target the default-cost entry points price against: the override
/// when one is set, otherwise the one documented defaulting site,
/// [`Target::reference_default`].
pub fn default_target() -> Target {
    TARGET_OVERRIDE
        .get()
        .cloned()
        .unwrap_or_else(Target::reference_default)
}

fn run_module_inner(
    module: &Module,
    k: &Kernel,
    cost: &TargetCost,
    profiled: bool,
) -> Result<RunResult, String> {
    run_module_engine(module, k, cost, profiled, default_engine())
}

/// Runs an already-built module over `k`'s workload with an explicit
/// interpreter [`Engine`] — the entry point `runbench` and the engine
/// differential tests use to compare the fast and reference paths over
/// identical inputs.
///
/// # Errors
/// Reports runtime traps with the kernel context.
pub fn run_module_engine(
    module: &Module,
    k: &Kernel,
    cost: &TargetCost,
    profiled: bool,
    engine: Engine,
) -> Result<RunResult, String> {
    run_module_engine_inner(module, k, cost, profiled, engine, None)
}

/// Like [`run_module_engine`] with a shared [`PlanCache`] attached, so
/// repeated runs of the same module amortize plan construction (frame
/// plans, and through them the native tier's lowering) exactly as the
/// serving path does. `module_id` must identify the module and cost model
/// within the cache.
///
/// # Errors
/// Reports runtime traps with the kernel context.
pub fn run_module_engine_shared(
    module: &Module,
    k: &Kernel,
    cost: &TargetCost,
    profiled: bool,
    engine: Engine,
    plans: &std::sync::Arc<psir::PlanCache>,
    module_id: u64,
) -> Result<RunResult, String> {
    run_module_engine_inner(module, k, cost, profiled, engine, Some((plans, module_id)))
}

fn run_module_engine_inner(
    module: &Module,
    k: &Kernel,
    cost: &TargetCost,
    profiled: bool,
    engine: Engine,
    plans: Option<(&std::sync::Arc<psir::PlanCache>, u64)>,
) -> Result<RunResult, String> {
    let mut mem = Memory::default();
    let mut args: Vec<RtVal> = Vec::new();
    let mut addrs: Vec<u64> = Vec::new();
    for spec in &k.buffers {
        let addr = fill_buffer(&mut mem, spec);
        addrs.push(addr);
        args.push(RtVal::S(addr));
    }
    args.extend(k.extra_args.iter().cloned());
    args.push(RtVal::S(k.n));
    let mut it = Interp::new(module, mem, cost, &EXTERNS);
    it.set_engine(engine);
    if let Some((cache, module_id)) = plans {
        it.set_plan_cache(std::sync::Arc::clone(cache), module_id);
    }
    if profiled {
        it.enable_profiling();
    }
    it.call("main", &args)
        .map_err(|e: ExecError| format!("{}: runtime error: {e}", k.name))?;
    let mut outputs = Vec::new();
    for (spec, &addr) in k.buffers.iter().zip(&addrs) {
        if spec.check {
            let bytes = spec.elem.size_bytes() * spec.len;
            outputs.push(
                it.mem
                    .read_bytes(addr, bytes)
                    .map_err(|e| e.to_string())?
                    .to_vec(),
            );
        }
    }
    Ok(RunResult {
        cycles: it.cycles,
        outputs,
        stats: it.stats,
        native_bailouts: it.native_bailouts(),
        profile: it.take_profile(),
    })
}

/// Like [`run_kernel`] with an explicit cost model (for width sweeps).
///
/// # Errors
/// Reports build failures and runtime traps with the kernel/config context.
pub fn run_kernel_with(k: &Kernel, cfg: Config, cost: &TargetCost) -> Result<RunResult, String> {
    let module = build_module(k, cfg)?;
    run_module(&module, k, cost).map_err(|e| format!("[{}] {e}", cfg.label()))
}

/// Geometric mean helper used by the harnesses.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Convenience: all Figure 5 configurations of one kernel must agree
/// byte-for-byte; returns per-config cycles.
///
/// # Errors
/// Reports any config failure or output mismatch.
pub fn run_all_and_check(k: &Kernel, cfgs: &[Config]) -> Result<Vec<(Config, RunResult)>, String> {
    let mut results = Vec::new();
    for &c in cfgs {
        results.push((c, run_kernel(k, c)?));
    }
    let base = &results[0];
    for (c, r) in &results[1..] {
        if r.outputs != base.1.outputs {
            return Err(format!(
                "{}: output mismatch between {} and {}",
                k.name,
                base.0.label(),
                c.label()
            ));
        }
    }
    Ok(results)
}

/// The element-size helper the kernel files use when sizing buffers.
pub fn bytes_of(elem: ScalarTy, n: u64) -> u64 {
    elem.size_bytes() * n
}

//! The 7 ispc-suite workloads of Figure 4: aobench, binomial options,
//! Black-Scholes, mandelbrot, (Perlin-style) noise, stencil, and volume
//! rendering — ported to PsimC "maintaining the same algorithms" (§5).
//!
//! Each carries a `psim` SPMD version (compiled by Parsimony with
//! SLEEF-like math, or in gang-synchronous / ispc-like mode with the fast
//! built-in math) and a serial version (the auto-vectorized baseline the
//! figure normalizes to). No hand-written versions exist for this suite,
//! as in the paper.

use crate::wrap::{psim_wrap, serial_wrap};
use crate::{BufSpec, Init, Kernel};
use psir::{RtVal, ScalarTy};

/// Scales every workload so Figure 4 runs in reasonable simulated time.
/// The shapes (who wins and by how much) are size-independent well before
/// these sizes.
#[derive(Debug, Clone, Copy)]
pub struct IspcSizes {
    /// Mandelbrot/noise/aobench image width (height = width/2).
    pub width: u64,
    /// Number of options priced (Black-Scholes / binomial).
    pub options: u64,
    /// Binomial lattice depth.
    pub steps: u64,
    /// Stencil/volume grid dimension (d³ cells).
    pub dim: u64,
}

impl Default for IspcSizes {
    fn default() -> IspcSizes {
        IspcSizes {
            width: 128,
            options: 4096,
            steps: 16,
            dim: 24,
        }
    }
}

impl IspcSizes {
    /// A tiny configuration for differential tests.
    pub fn tiny() -> IspcSizes {
        IspcSizes {
            width: 32,
            options: 128,
            steps: 8,
            dim: 8,
        }
    }
}

/// All 7 workloads.
pub fn kernels(sz: IspcSizes) -> Vec<Kernel> {
    vec![
        mandelbrot(sz),
        black_scholes(sz),
        binomial(sz),
        noise(sz),
        stencil(sz),
        volume(sz),
        aobench(sz),
    ]
}

fn mandelbrot(sz: IspcSizes) -> Kernel {
    let w = sz.width;
    let n = w * (w / 2);
    let params = "i32* restrict out, i64 w, i32 maxit, i64 n";
    let body = "    f32 x0 = -2.0 + (f32) (idx % w) * (3.0 / (f32) w);\n\
                \x20   f32 y0 = -1.0 + (f32) (idx / w) * (2.0 / (f32) (n / w));\n\
                \x20   f32 x = 0.0;\n\
                \x20   f32 y = 0.0;\n\
                \x20   i32 it = 0;\n\
                \x20   while (x * x + y * y < 4.0 && it < maxit) {\n\
                \x20       f32 xt = x * x - y * y + x0;\n\
                \x20       y = 2.0 * x * y + y0;\n\
                \x20       x = xt;\n\
                \x20       it += 1;\n\
                \x20   }\n\
                \x20   out[idx] = it;";
    Kernel::new(
        "mandelbrot",
        "ispc",
        16,
        psim_wrap(16, params, body),
        serial_wrap(params, body),
        vec![BufSpec::output(ScalarTy::I32, n)],
        n,
    )
    .with_extra_args(vec![RtVal::S(w), RtVal::S(64)])
}

fn black_scholes(sz: IspcSizes) -> Kernel {
    let n = sz.options;
    let params = "f32* restrict s, f32* restrict k, f32* restrict t, f32* restrict out, f32 r, f32 vol, i64 n";
    let body = "    f32 sp = s[idx];\n\
                \x20   f32 kp = k[idx];\n\
                \x20   f32 tp = t[idx];\n\
                \x20   f32 sq = vol * sqrt(tp);\n\
                \x20   f32 d1 = (log(sp / kp) + (r + 0.5 * vol * vol) * tp) / sq;\n\
                \x20   f32 d2 = d1 - sq;\n\
                \x20   out[idx] = sp * cdf(d1) - kp * exp(0.0 - r * tp) * cdf(d2);";
    Kernel::new(
        "black_scholes",
        "ispc",
        16,
        psim_wrap(16, params, body),
        serial_wrap(params, body),
        vec![
            BufSpec::input(
                ScalarTy::F32,
                n,
                Init::RandomF32 {
                    seed: 201,
                    lo: 40.0,
                    hi: 160.0,
                },
            ),
            BufSpec::input(
                ScalarTy::F32,
                n,
                Init::RandomF32 {
                    seed: 202,
                    lo: 50.0,
                    hi: 150.0,
                },
            ),
            BufSpec::input(
                ScalarTy::F32,
                n,
                Init::RandomF32 {
                    seed: 203,
                    lo: 0.2,
                    hi: 2.0,
                },
            ),
            BufSpec::output(ScalarTy::F32, n),
        ],
        n,
    )
    .with_extra_args(vec![RtVal::from_f32(0.03), RtVal::from_f32(0.25)])
}

fn binomial(sz: IspcSizes) -> Kernel {
    let n = sz.options;
    let steps = sz.steps;
    // The lattice lives in an SoA scratch buffer (`v[j*n + idx]`), the
    // layout ispc's varying arrays get automatically — so lattice accesses
    // are packed and, as in the paper, the `pow`-per-node initialization
    // dominates. That initialization is Figure 4's single gap: SLEEF's
    // `pow` vs ispc's built-in (§6).
    let params = "f32* restrict s, f32* restrict k, f32* restrict t, f32* restrict out, f32* restrict v, f32 r, f32 vol, i64 steps, i64 n";
    let body = "    f32 sp = s[idx];\n\
                \x20   f32 kp = k[idx];\n\
                \x20   f32 tp = t[idx];\n\
                \x20   f32 dt = tp / (f32) steps;\n\
                \x20   f32 u = exp(vol * sqrt(dt));\n\
                \x20   f32 disc = exp(r * dt);\n\
                \x20   f32 pu = (disc - 1.0 / u) / (u - 1.0 / u);\n\
                \x20   f32 pd = 1.0 - pu;\n\
                \x20   f32 idisc = 1.0 / disc;\n\
                \x20   for (i64 j = 0; j < steps + 1; j += 1) {\n\
                \x20       f32 px = sp * pow(u, 2.0 * (f32) j - (f32) steps);\n\
                \x20       v[j * n + idx] = max(px - kp, 0.0);\n\
                \x20   }\n\
                \x20   for (i64 back = steps; back > 0; back -= 1) {\n\
                \x20       for (i64 j = 0; j < back; j += 1) {\n\
                \x20           v[j * n + idx] = (pu * v[(j + 1) * n + idx] + pd * v[j * n + idx]) * idisc;\n\
                \x20       }\n\
                \x20   }\n\
                \x20   out[idx] = v[idx];";
    Kernel::new(
        "binomial_options",
        "ispc",
        16,
        psim_wrap(16, params, body),
        serial_wrap(params, body),
        vec![
            BufSpec::input(
                ScalarTy::F32,
                n,
                Init::RandomF32 {
                    seed: 211,
                    lo: 40.0,
                    hi: 160.0,
                },
            ),
            BufSpec::input(
                ScalarTy::F32,
                n,
                Init::RandomF32 {
                    seed: 212,
                    lo: 50.0,
                    hi: 150.0,
                },
            ),
            BufSpec::input(
                ScalarTy::F32,
                n,
                Init::RandomF32 {
                    seed: 213,
                    lo: 0.2,
                    hi: 2.0,
                },
            ),
            BufSpec::output(ScalarTy::F32, n),
            BufSpec::input(ScalarTy::F32, (steps + 1) * n, Init::Zero),
        ],
        n,
    )
    .with_extra_args(vec![
        RtVal::from_f32(0.03),
        RtVal::from_f32(0.25),
        RtVal::S(steps),
    ])
}

fn noise(sz: IspcSizes) -> Kernel {
    let w = sz.width;
    let n = w * (w / 2);
    let params = "f32* restrict out, i64 w, i64 n";
    // Value noise with an integer lattice hash and smooth interpolation,
    // over 3 octaves (the octave loop keeps the baseline from vectorizing
    // the outer per-pixel loop).
    let body = "    f32 total = 0.0;\n\
                \x20   f32 freq = 0.05;\n\
                \x20   f32 amp = 1.0;\n\
                \x20   for (i64 oct = 0; oct < 3; oct += 1) {\n\
                \x20       f32 x = (f32) (idx % w) * freq;\n\
                \x20       f32 y = (f32) (idx / w) * freq;\n\
                \x20       f32 fx = floor(x);\n\
                \x20       f32 fy = floor(y);\n\
                \x20       i32 xi = (i32) fx;\n\
                \x20       i32 yi = (i32) fy;\n\
                \x20       f32 tx = x - fx;\n\
                \x20       f32 ty = y - fy;\n\
                \x20       f32 sx = tx * tx * (3.0 - 2.0 * tx);\n\
                \x20       f32 sy = ty * ty * (3.0 - 2.0 * ty);\n\
                \x20       i32 h00 = (xi * 374761393 + yi * 668265263) ^ 1440662683;\n\
                \x20       i32 h10 = ((xi + 1) * 374761393 + yi * 668265263) ^ 1440662683;\n\
                \x20       i32 h01 = (xi * 374761393 + (yi + 1) * 668265263) ^ 1440662683;\n\
                \x20       i32 h11 = ((xi + 1) * 374761393 + (yi + 1) * 668265263) ^ 1440662683;\n\
                \x20       f32 v00 = (f32) ((h00 * 1274126177) >> 16 & 65535) * 0.0000152587;\n\
                \x20       f32 v10 = (f32) ((h10 * 1274126177) >> 16 & 65535) * 0.0000152587;\n\
                \x20       f32 v01 = (f32) ((h01 * 1274126177) >> 16 & 65535) * 0.0000152587;\n\
                \x20       f32 v11 = (f32) ((h11 * 1274126177) >> 16 & 65535) * 0.0000152587;\n\
                \x20       f32 nx0 = v00 + sx * (v10 - v00);\n\
                \x20       f32 nx1 = v01 + sx * (v11 - v01);\n\
                \x20       total += amp * (nx0 + sy * (nx1 - nx0));\n\
                \x20       freq = freq * 2.0;\n\
                \x20       amp = amp * 0.5;\n\
                \x20   }\n\
                \x20   out[idx] = total;";
    Kernel::new(
        "noise",
        "ispc",
        16,
        psim_wrap(16, params, body),
        serial_wrap(params, body),
        vec![BufSpec::output(ScalarTy::F32, n)],
        n,
    )
    .with_extra_args(vec![RtVal::S(w)])
}

fn stencil(sz: IspcSizes) -> Kernel {
    let d = sz.dim;
    let n = d * d * d;
    let params = "f32* restrict a, f32* restrict out, i64 d, i64 n";
    let body = "    i64 x = idx % d;\n\
                \x20   i64 y = (idx / d) % d;\n\
                \x20   i64 z = idx / (d * d);\n\
                \x20   bool interior = x >= 1 && x < d - 1 && y >= 1 && y < d - 1 && z >= 1 && z < d - 1;\n\
                \x20   if (interior) {\n\
                \x20       f32 c = a[idx];\n\
                \x20       f32 s = a[idx - 1] + a[idx + 1] + a[idx - d] + a[idx + d] + a[idx - d * d] + a[idx + d * d];\n\
                \x20       out[idx] = 0.4 * c + 0.1 * s;\n\
                \x20   } else {\n\
                \x20       out[idx] = a[idx];\n\
                \x20   }";
    Kernel::new(
        "stencil",
        "ispc",
        16,
        psim_wrap(16, params, body),
        serial_wrap(params, body),
        vec![
            BufSpec::input(
                ScalarTy::F32,
                n,
                Init::RandomF32 {
                    seed: 221,
                    lo: 0.0,
                    hi: 1.0,
                },
            ),
            BufSpec::output(ScalarTy::F32, n),
        ],
        n,
    )
    .with_extra_args(vec![RtVal::S(d)])
}

fn volume(sz: IspcSizes) -> Kernel {
    let d = sz.dim;
    let w = sz.width;
    let rays = w * (w / 2);
    let params = "f32* restrict vol, f32* restrict out, i64 d, i64 w, i64 n";
    // Orthographic ray march along +z with per-ray early exit: divergent
    // loop lengths plus data-dependent (gather) sampling.
    let body = "    i64 px = idx % w;\n\
                \x20   i64 py = idx / w;\n\
                \x20   i64 ix = px * d / w;\n\
                \x20   i64 iy = py * d / (w / 2);\n\
                \x20   f32 transmit = 1.0;\n\
                \x20   f32 light = 0.0;\n\
                \x20   i64 iz = 0;\n\
                \x20   while (iz < d && transmit > 0.05) {\n\
                \x20       f32 dens = vol[ix + iy * d + iz * d * d];\n\
                \x20       light += transmit * dens * 0.1;\n\
                \x20       transmit *= 1.0 - dens * 0.1;\n\
                \x20       iz += 1;\n\
                \x20   }\n\
                \x20   out[idx] = light;";
    Kernel::new(
        "volume",
        "ispc",
        16,
        psim_wrap(16, params, body),
        serial_wrap(params, body),
        vec![
            BufSpec::input(
                ScalarTy::F32,
                d * d * d,
                Init::RandomF32 {
                    seed: 231,
                    lo: 0.0,
                    hi: 1.0,
                },
            ),
            BufSpec::output(ScalarTy::F32, rays),
        ],
        rays,
    )
    .with_extra_args(vec![RtVal::S(d), RtVal::S(w)])
}

fn aobench(sz: IspcSizes) -> Kernel {
    let w = sz.width;
    let n = w * (w / 2);
    let params = "f32* restrict out, i64 w, i64 n";
    // Flattened aobench: one plane (y = -0.5) and one sphere; ambient
    // occlusion estimated with 4 hash-driven hemisphere rays per hit.
    let body = "    f32 px = ((f32) (idx % w) / (f32) w) * 2.0 - 1.0;\n\
                \x20   f32 py = ((f32) (idx / w) / (f32) (n / w)) * 2.0 - 1.0;\n\
                \x20   f32 dirx = px;\n\
                \x20   f32 diry = py;\n\
                \x20   f32 dirz = -1.0;\n\
                \x20   f32 dlen = sqrt(dirx * dirx + diry * diry + dirz * dirz);\n\
                \x20   dirx /= dlen;\n\
                \x20   diry /= dlen;\n\
                \x20   dirz /= dlen;\n\
                \x20   f32 scx = 0.0;\n\
                \x20   f32 scy = 0.0;\n\
                \x20   f32 scz = -2.0;\n\
                \x20   f32 rad = 0.7;\n\
                \x20   f32 b = dirx * (0.0 - scx) + diry * (0.0 - scy) + dirz * (0.0 - scz);\n\
                \x20   f32 c = scx * scx + scy * scy + scz * scz - rad * rad;\n\
                \x20   f32 disc = b * b - c;\n\
                \x20   f32 occ = 0.0;\n\
                \x20   if (disc > 0.0) {\n\
                \x20       f32 th = 0.0 - b - sqrt(disc);\n\
                \x20       f32 hx = dirx * th;\n\
                \x20       f32 hy = diry * th;\n\
                \x20       f32 hz = dirz * th;\n\
                \x20       f32 nx2 = (hx - scx) / rad;\n\
                \x20       f32 ny2 = (hy - scy) / rad;\n\
                \x20       f32 nz2 = (hz - scz) / rad;\n\
                \x20       i32 seed = (i32) idx * 747796405 + 2891336453;\n\
                \x20       for (i64 s = 0; s < 4; s += 1) {\n\
                \x20           seed = seed * 747796405 + 2891336453;\n\
                \x20           f32 r1 = (f32) ((seed >> 16) & 32767) * 0.0000305175;\n\
                \x20           seed = seed * 747796405 + 2891336453;\n\
                \x20           f32 r2 = (f32) ((seed >> 16) & 32767) * 0.0000305175;\n\
                \x20           f32 ox = nx2 + (r1 - 0.5);\n\
                \x20           f32 oy = ny2 + (r2 - 0.5);\n\
                \x20           f32 oz = nz2 + 0.5;\n\
                \x20           f32 olen = sqrt(ox * ox + oy * oy + oz * oz) + 0.0001;\n\
                \x20           f32 ob = (ox * (hx - scx) + oy * (hy - scy) + oz * (hz - scz)) / olen;\n\
                \x20           if (ob < 0.0) {\n\
                \x20               occ += 0.25;\n\
                \x20           }\n\
                \x20       }\n\
                \x20   } else {\n\
                \x20       f32 t2 = (-0.5 - py) / (diry - 1000000.0 * (diry > -0.0001 && diry < 0.0001 ? 1.0 : 0.0));\n\
                \x20       occ = t2 > 0.0 ? 0.5 : 0.0;\n\
                \x20   }\n\
                \x20   out[idx] = 1.0 - occ;";
    Kernel::new(
        "aobench",
        "ispc",
        16,
        psim_wrap(16, params, body),
        serial_wrap(params, body),
        vec![BufSpec::output(ScalarTy::F32, n)],
        n,
    )
    .with_extra_args(vec![RtVal::S(w)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_7_workloads_and_they_compile() {
        let ks = kernels(IspcSizes::tiny());
        assert_eq!(ks.len(), 7);
        for k in &ks {
            psimc::compile(&k.psim_src).unwrap_or_else(|e| panic!("{}: psim: {e}", k.name));
            psimc::compile(&k.serial_src).unwrap_or_else(|e| panic!("{}: serial: {e}", k.name));
        }
    }
}

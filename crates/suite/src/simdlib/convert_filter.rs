//! Conversion kernels (gray/BGR/YUV, widths, float) and fixed-point 1-D
//! filters (blur, Sobel, Laplace, median) — the Simd Library's
//! `Convert`/`Filter` families.

use crate::hand::{elementwise, packed_load, packed_store, vector_loop};
use crate::wrap::{psim_wrap, serial_wrap};
use crate::{BufSpec, Init, Kernel};
use psir::{BinOp, CastKind, ScalarTy, Ty};

fn in_u8(n: u64, seed: u64) -> BufSpec {
    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed })
}

pub(super) fn kernels(n: u64) -> Vec<Kernel> {
    let mut v = Vec::new();

    // 25. u8 → f32 normalize (neural conversion)
    v.push(
        Kernel::new(
            "u8_to_f32",
            "convert",
            16,
            psim_wrap(
                16,
                "u8* restrict a, f32* restrict out, i64 n",
                "    out[idx] = (f32) a[idx] * 0.00392156862;",
            ),
            serial_wrap(
                "u8* restrict a, f32* restrict out, i64 n",
                "    out[idx] = (f32) a[idx] * 0.00392156862;",
            ),
            vec![in_u8(n, 51), BufSpec::output(ScalarTy::F32, n)],
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8], ScalarTy::F32, 16, |fb, xs| {
                let w = fb.cast(CastKind::Zext, xs[0], Ty::vec(ScalarTy::I32, 16));
                let f = fb.cast(CastKind::UiToFp, w, Ty::vec(ScalarTy::F32, 16));
                let k = fb.splat(psir::c_f32(0.003_921_568_6), 16);
                fb.bin(BinOp::FMul, f, k)
            })
        }),
    );
    // 26. f32 → u8 saturating
    v.push(
        Kernel::new(
            "f32_to_u8",
            "convert",
            16,
            psim_wrap(
                16,
                "f32* restrict a, u8* restrict out, i64 n",
                "    i32 r = (i32) (a[idx] * 255.0 + 0.5);\n    out[idx] = (u8) clamp(r, 0, 255);",
            ),
            serial_wrap(
                "f32* restrict a, u8* restrict out, i64 n",
                "    i32 r = (i32) (a[idx] * 255.0 + 0.5);\n    out[idx] = (u8) clamp(r, 0, 255);",
            ),
            vec![
                BufSpec::input(
                    ScalarTy::F32,
                    n,
                    Init::RandomF32 {
                        seed: 52,
                        lo: -0.2,
                        hi: 1.2,
                    },
                ),
                BufSpec::output(ScalarTy::I8, n),
            ],
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::F32], ScalarTy::I8, 16, |fb, xs| {
                let k = fb.splat(psir::c_f32(255.0), 16);
                let h = fb.splat(psir::c_f32(0.5), 16);
                let s = fb.bin(BinOp::FMul, xs[0], k);
                let s = fb.bin(BinOp::FAdd, s, h);
                let i = fb.cast(CastKind::FpToSi, s, Ty::vec(ScalarTy::I32, 16));
                let zero = fb.splat(psir::c_i32(0), 16);
                let cap = fb.splat(psir::c_i32(255), 16);
                let c = fb.bin(BinOp::SMin, i, cap);
                let c = fb.bin(BinOp::SMax, c, zero);
                fb.cast(CastKind::Trunc, c, Ty::vec(ScalarTy::I8, 16))
            })
        }),
    );
    // 27. u8 → u16 widen (parity)
    v.push(
        Kernel::new(
            "u8_to_u16",
            "convert",
            32,
            psim_wrap(
                32,
                "u8* restrict a, u16* restrict out, i64 n",
                "    out[idx] = (u16) a[idx];",
            ),
            serial_wrap(
                "u8* restrict a, u16* restrict out, i64 n",
                "    out[idx] = (u16) a[idx];",
            ),
            vec![in_u8(n, 53), BufSpec::output(ScalarTy::I16, n)],
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8], ScalarTy::I16, 32, |fb, xs| {
                fb.cast(CastKind::Zext, xs[0], Ty::vec(ScalarTy::I16, 32))
            })
        }),
    );
    // 28. u16 → u8 saturating narrow
    v.push(
        Kernel::new(
            "u16_to_u8_sat",
            "convert",
            32,
            psim_wrap(
                32,
                "u16* restrict a, u8* restrict out, i64 n",
                "    out[idx] = (u8) min(a[idx], (u16) 255);",
            ),
            serial_wrap(
                "u16* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[idx] < (u16) 255 ? (u8) a[idx] : (u8) 255;",
            ),
            vec![
                BufSpec::input(ScalarTy::I16, n, Init::RandomInt { seed: 54 }),
                BufSpec::output(ScalarTy::I8, n),
            ],
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I16], ScalarTy::I8, 32, |fb, xs| {
                let cap = fb.splat(psir::Const::i16(255), 32);
                let c = fb.bin(BinOp::UMin, xs[0], cap);
                fb.cast(CastKind::Trunc, c, Ty::vec(ScalarTy::I8, 32))
            })
        }),
    );
    // 29. interleaved BGR → gray: stride-3 loads (the §4.2.3 packed+shuffle
    // case; the baseline cannot vectorize the stride).
    v.push(
        Kernel::new(
            "bgr_to_gray",
            "convert",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    i32 b = (i32) a[idx * 3];\n    i32 g = (i32) a[idx * 3 + 1];\n    i32 r = (i32) a[idx * 3 + 2];\n    out[idx] = (u8) ((b * 29 + g * 150 + r * 77 + 128) >> 8);",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    i32 b = (i32) a[idx * 3];\n    i32 g = (i32) a[idx * 3 + 1];\n    i32 r = (i32) a[idx * 3 + 2];\n    out[idx] = (u8) ((b * 29 + g * 150 + r * 77 + 128) >> 8);",
            ),
            vec![in_u8(3 * n + 64, 55), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                // three deinterleaving wide loads + shuffles
                let three = fb.bin(BinOp::Mul, iv, 3i64);
                let base = fb.gep(args[0], three, 1);
                let wide = fb.load(Ty::vec(ScalarTy::I8, 192), base, None);
                let ch = |fb: &mut psir::FunctionBuilder, off: u32| {
                    let pat: Vec<u32> = (0..64).map(|j| j * 3 + off).collect();
                    fb.shuffle_const(wide, pat)
                };
                let b = ch(fb, 0);
                let g = ch(fb, 1);
                let r = ch(fb, 2);
                let i32v = Ty::vec(ScalarTy::I32, 64);
                let wb = fb.cast(CastKind::Zext, b, i32v);
                let wg = fb.cast(CastKind::Zext, g, i32v);
                let wr = fb.cast(CastKind::Zext, r, i32v);
                let kb = fb.splat(psir::c_i32(29), 64);
                let kg = fb.splat(psir::c_i32(150), 64);
                let kr = fb.splat(psir::c_i32(77), 64);
                let pb = fb.bin(BinOp::Mul, wb, kb);
                let pg = fb.bin(BinOp::Mul, wg, kg);
                let pr = fb.bin(BinOp::Mul, wr, kr);
                let s = fb.bin(BinOp::Add, pb, pg);
                let s = fb.bin(BinOp::Add, s, pr);
                let c128 = fb.splat(psir::c_i32(128), 64);
                let s = fb.bin(BinOp::Add, s, c128);
                let c8 = fb.splat(psir::c_i32(8), 64);
                let sh = fb.bin(BinOp::LShr, s, c8);
                let narrow = fb.cast(CastKind::Trunc, sh, Ty::vec(ScalarTy::I8, 64));
                packed_store(fb, args[1], iv, ScalarTy::I8, narrow);
            })
        }),
    );
    // 30. gray → interleaved BGR: stride-3 stores.
    v.push(
        Kernel::new(
            "gray_to_bgr",
            "convert",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    u8 x = a[idx];\n    out[idx * 3] = x;\n    out[idx * 3 + 1] = x;\n    out[idx * 3 + 2] = x;",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    u8 x = a[idx];\n    out[idx * 3] = x;\n    out[idx * 3 + 1] = x;\n    out[idx * 3 + 2] = x;",
            ),
            vec![in_u8(n, 56), BufSpec::output(ScalarTy::I8, 3 * n + 64)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let x = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let pat: Vec<u32> = (0..192).map(|j| j / 3).collect();
                let expanded = fb.shuffle_const(x, pat);
                let three = fb.bin(BinOp::Mul, iv, 3i64);
                let base = fb.gep(args[1], three, 1);
                fb.store(base, expanded, None);
            })
        }),
    );
    // 31. planar YUV → R channel (parity: unit stride)
    v.push(
        Kernel::new(
            "yuv_to_r",
            "convert",
            64,
            psim_wrap(
                64,
                "u8* restrict y, u8* restrict v, u8* restrict out, i64 n",
                "    i32 yy = ((i32) y[idx] - 16) * 298;\n    i32 vv = (i32) v[idx] - 128;\n    out[idx] = (u8) clamp((yy + 409 * vv + 128) >> 8, 0, 255);",
            ),
            serial_wrap(
                "u8* restrict y, u8* restrict v, u8* restrict out, i64 n",
                "    i32 yy = ((i32) y[idx] - 16) * 298;\n    i32 vv = (i32) v[idx] - 128;\n    out[idx] = (u8) clamp((yy + 409 * vv + 128) >> 8, 0, 255);",
            ),
            vec![in_u8(n, 57), in_u8(n, 58), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8, ScalarTy::I8], ScalarTy::I8, 64, |fb, xs| {
                let i32v = Ty::vec(ScalarTy::I32, 64);
                let wy = fb.cast(CastKind::Zext, xs[0], i32v);
                let wv = fb.cast(CastKind::Zext, xs[1], i32v);
                let c16 = fb.splat(psir::c_i32(16), 64);
                let c298 = fb.splat(psir::c_i32(298), 64);
                let c128 = fb.splat(psir::c_i32(128), 64);
                let c409 = fb.splat(psir::c_i32(409), 64);
                let yy = fb.bin(BinOp::Sub, wy, c16);
                let yy = fb.bin(BinOp::Mul, yy, c298);
                let vv = fb.bin(BinOp::Sub, wv, c128);
                let pv = fb.bin(BinOp::Mul, vv, c409);
                let s = fb.bin(BinOp::Add, yy, pv);
                let s = fb.bin(BinOp::Add, s, c128);
                let c8 = fb.splat(psir::c_i32(8), 64);
                let sh = fb.bin(BinOp::AShr, s, c8);
                let zero = fb.splat(psir::c_i32(0), 64);
                let cap = fb.splat(psir::c_i32(255), 64);
                let c = fb.bin(BinOp::SMin, sh, cap);
                let c = fb.bin(BinOp::SMax, c, zero);
                fb.cast(CastKind::Trunc, c, Ty::vec(ScalarTy::I8, 64))
            })
        }),
    );
    // 32. i16 → u8 clamp (Int16ToGray; the psim version clamps at i16
    // width, as the intrinsics version does)
    v.push(
        Kernel::new(
            "i16_to_gray",
            "convert",
            32,
            psim_wrap(
                32,
                "i16* restrict a, u8* restrict out, i64 n",
                "    out[idx] = (u8) clamp(a[idx], (i16) 0, (i16) 255);",
            ),
            serial_wrap(
                "i16* restrict a, u8* restrict out, i64 n",
                "    out[idx] = (u8) clamp((i32) a[idx], 0, 255);",
            ),
            vec![
                BufSpec::input(ScalarTy::I16, n, Init::RandomInt { seed: 59 }),
                BufSpec::output(ScalarTy::I8, n),
            ],
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I16], ScalarTy::I8, 32, |fb, xs| {
                let zero = fb.splat(psir::Const::i16(0), 32);
                let cap = fb.splat(psir::Const::i16(255), 32);
                let c = fb.bin(BinOp::SMin, xs[0], cap);
                let c = fb.bin(BinOp::SMax, c, zero);
                fb.cast(CastKind::Trunc, c, Ty::vec(ScalarTy::I8, 32))
            })
        }),
    );

    // ---- fixed-point 1-D filters (neighbors in a padded input) ------------

    let filter2 = |name: &'static str,
                   psim_body: &'static str,
                   serial_body: &'static str,
                   out_elem: ScalarTy,
                   hand: fn(&mut psir::Module)|
     -> Kernel {
        let params: String = format!(
            "u8* restrict a, {}* restrict out, i64 n",
            match out_elem {
                ScalarTy::I16 => "i16",
                _ => "u8",
            }
        );
        Kernel::new(
            name,
            "filter",
            64,
            psim_wrap(64, &params, psim_body),
            serial_wrap(&params, serial_body),
            vec![in_u8(n + 64, 60), BufSpec::output(out_elem, n)],
            n,
        )
        .with_hand(hand)
    };
    let filter = |name: &'static str,
                  body: &'static str,
                  out_elem: ScalarTy,
                  hand: fn(&mut psir::Module)|
     -> Kernel {
        let params: String = format!(
            "u8* restrict a, {}* restrict out, i64 n",
            match out_elem {
                ScalarTy::I16 => "i16",
                _ => "u8",
            }
        );
        Kernel::new(
            name,
            "filter",
            64,
            psim_wrap(64, &params, body),
            serial_wrap(&params, body),
            vec![in_u8(n + 64, 60), BufSpec::output(out_elem, n)],
            n,
        )
        .with_hand(hand)
    };

    // 33. 3-tap blur [1 2 1]/4
    v.push(filter(
        "blur3_u8",
        "    i32 s = (i32) a[idx] + 2 * (i32) a[idx + 1] + (i32) a[idx + 2] + 2;\n    out[idx] = (u8) (s >> 2);",
        ScalarTy::I8,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let i32v = Ty::vec(ScalarTy::I32, 64);
                let load_w = |fb: &mut psir::FunctionBuilder, off: i64| {
                    let i = fb.bin(BinOp::Add, iv, off);
                    let x = packed_load(fb, args[0], i, ScalarTy::I8, 64);
                    fb.cast(CastKind::Zext, x, i32v)
                };
                let x0 = load_w(fb, 0);
                let x1 = load_w(fb, 1);
                let x2 = load_w(fb, 2);
                let two = fb.splat(psir::c_i32(2), 64);
                let mid = fb.bin(BinOp::Mul, x1, two);
                let s = fb.bin(BinOp::Add, x0, mid);
                let s = fb.bin(BinOp::Add, s, x2);
                let s = fb.bin(BinOp::Add, s, two);
                let sh = fb.bin(BinOp::LShr, s, two);
                let r = fb.cast(CastKind::Trunc, sh, Ty::vec(ScalarTy::I8, 64));
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        },
    ));
    // 34. 3-tap box (×171 >> 9 ≈ /3)
    v.push(filter(
        "box3_u8",
        "    i32 s = (i32) a[idx] + (i32) a[idx + 1] + (i32) a[idx + 2];\n    out[idx] = (u8) ((s * 171) >> 9);",
        ScalarTy::I8,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let i32v = Ty::vec(ScalarTy::I32, 64);
                let load_w = |fb: &mut psir::FunctionBuilder, off: i64| {
                    let i = fb.bin(BinOp::Add, iv, off);
                    let x = packed_load(fb, args[0], i, ScalarTy::I8, 64);
                    fb.cast(CastKind::Zext, x, i32v)
                };
                let x0 = load_w(fb, 0);
                let x1 = load_w(fb, 1);
                let x2 = load_w(fb, 2);
                let s = fb.bin(BinOp::Add, x0, x1);
                let s = fb.bin(BinOp::Add, s, x2);
                let k = fb.splat(psir::c_i32(171), 64);
                let p = fb.bin(BinOp::Mul, s, k);
                let nine = fb.splat(psir::c_i32(9), 64);
                let sh = fb.bin(BinOp::LShr, p, nine);
                let r = fb.cast(CastKind::Trunc, sh, Ty::vec(ScalarTy::I8, 64));
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        },
    ));
    // 35. Sobel dx (u8 → i16; the psim version works at i16 width like the
    // intrinsics code, the serial version in plain C's int width)
    v.push(filter2(
        "sobel_dx",
        "    out[idx] = (i16) a[idx + 2] - (i16) a[idx];",
        "    out[idx] = (i16) ((i32) a[idx + 2] - (i32) a[idx]);",
        ScalarTy::I16,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let i16v = Ty::vec(ScalarTy::I16, 64);
                let x0 = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let i2 = fb.bin(BinOp::Add, iv, 2i64);
                let x2 = packed_load(fb, args[0], i2, ScalarTy::I8, 64);
                let w0 = fb.cast(CastKind::Zext, x0, i16v);
                let w2 = fb.cast(CastKind::Zext, x2, i16v);
                let d = fb.bin(BinOp::Sub, w2, w0);
                packed_store(fb, args[1], iv, ScalarTy::I16, d);
            })
        },
    ));
    // 36. Laplace (u8 → i16)
    v.push(filter2(
        "laplace_1d",
        "    out[idx] = (i16) a[idx] - (i16) 2 * (i16) a[idx + 1] + (i16) a[idx + 2];",
        "    out[idx] = (i16) ((i32) a[idx] - 2 * (i32) a[idx + 1] + (i32) a[idx + 2]);",
        ScalarTy::I16,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let i16v = Ty::vec(ScalarTy::I16, 64);
                let load_w = |fb: &mut psir::FunctionBuilder, off: i64| {
                    let i = fb.bin(BinOp::Add, iv, off);
                    let x = packed_load(fb, args[0], i, ScalarTy::I8, 64);
                    fb.cast(CastKind::Zext, x, i16v)
                };
                let x0 = load_w(fb, 0);
                let x1 = load_w(fb, 1);
                let x2 = load_w(fb, 2);
                let two = fb.splat(psir::Const::i16(2), 64);
                let mid = fb.bin(BinOp::Mul, x1, two);
                let s = fb.bin(BinOp::Add, x0, x2);
                let d = fb.bin(BinOp::Sub, s, mid);
                packed_store(fb, args[1], iv, ScalarTy::I16, d);
            })
        },
    ));
    // 37. sharpen: 2·center − (left+right)/2, clamped
    v.push(filter(
        "sharpen_u8",
        "    i32 c = 2 * (i32) a[idx + 1] - (((i32) a[idx] + (i32) a[idx + 2]) >> 1);\n    out[idx] = (u8) clamp(c, 0, 255);",
        ScalarTy::I8,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let i32v = Ty::vec(ScalarTy::I32, 64);
                let load_w = |fb: &mut psir::FunctionBuilder, off: i64| {
                    let i = fb.bin(BinOp::Add, iv, off);
                    let x = packed_load(fb, args[0], i, ScalarTy::I8, 64);
                    fb.cast(CastKind::Zext, x, i32v)
                };
                let x0 = load_w(fb, 0);
                let x1 = load_w(fb, 1);
                let x2 = load_w(fb, 2);
                let two = fb.splat(psir::c_i32(2), 64);
                let one = fb.splat(psir::c_i32(1), 64);
                let dc = fb.bin(BinOp::Mul, x1, two);
                let s = fb.bin(BinOp::Add, x0, x2);
                let half = fb.bin(BinOp::AShr, s, one);
                let c = fb.bin(BinOp::Sub, dc, half);
                let zero = fb.splat(psir::c_i32(0), 64);
                let cap = fb.splat(psir::c_i32(255), 64);
                let c = fb.bin(BinOp::SMin, c, cap);
                let c = fb.bin(BinOp::SMax, c, zero);
                let r = fb.cast(CastKind::Trunc, c, Ty::vec(ScalarTy::I8, 64));
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        },
    ));
    // 38. median-of-3 via the min/max network
    v.push(filter(
        "median3_u8",
        "    u8 x = a[idx];\n    u8 y = a[idx + 1];\n    u8 z = a[idx + 2];\n    out[idx] = max(min(x, y), min(max(x, y), z));",
        ScalarTy::I8,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let x = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let i1 = fb.bin(BinOp::Add, iv, 1i64);
                let y = packed_load(fb, args[0], i1, ScalarTy::I8, 64);
                let i2 = fb.bin(BinOp::Add, iv, 2i64);
                let z = packed_load(fb, args[0], i2, ScalarTy::I8, 64);
                let lo = fb.bin(BinOp::UMin, x, y);
                let hi = fb.bin(BinOp::UMax, x, y);
                let m2 = fb.bin(BinOp::UMin, hi, z);
                let r = fb.bin(BinOp::UMax, lo, m2);
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        },
    ));
    // 39. edge strength: |laplace| saturated to u8
    v.push(filter(
        "edge_abs_u8",
        "    i32 d = (i32) a[idx] - 2 * (i32) a[idx + 1] + (i32) a[idx + 2];\n    out[idx] = (u8) min(d < 0 ? 0 - d : d, 255);",
        ScalarTy::I8,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let i32v = Ty::vec(ScalarTy::I32, 64);
                let load_w = |fb: &mut psir::FunctionBuilder, off: i64| {
                    let i = fb.bin(BinOp::Add, iv, off);
                    let x = packed_load(fb, args[0], i, ScalarTy::I8, 64);
                    fb.cast(CastKind::Zext, x, i32v)
                };
                let x0 = load_w(fb, 0);
                let x1 = load_w(fb, 1);
                let x2 = load_w(fb, 2);
                let two = fb.splat(psir::c_i32(2), 64);
                let mid = fb.bin(BinOp::Mul, x1, two);
                let s = fb.bin(BinOp::Add, x0, x2);
                let d = fb.bin(BinOp::Sub, s, mid);
                let ad = fb.un(psir::UnOp::IAbs, d);
                let cap = fb.splat(psir::c_i32(255), 64);
                let c = fb.bin(BinOp::SMin, ad, cap);
                let r = fb.cast(CastKind::Trunc, c, Ty::vec(ScalarTy::I8, 64));
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        },
    ));
    // 40. 5-tap smooth [1 4 6 4 1]/16
    v.push(filter(
        "smooth5_u8",
        "    i32 s = (i32) a[idx] + 4 * (i32) a[idx + 1] + 6 * (i32) a[idx + 2] + 4 * (i32) a[idx + 3] + (i32) a[idx + 4] + 8;\n    out[idx] = (u8) (s >> 4);",
        ScalarTy::I8,
        |m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let i32v = Ty::vec(ScalarTy::I32, 64);
                let load_w = |fb: &mut psir::FunctionBuilder, off: i64| {
                    let i = fb.bin(BinOp::Add, iv, off);
                    let x = packed_load(fb, args[0], i, ScalarTy::I8, 64);
                    fb.cast(CastKind::Zext, x, i32v)
                };
                let taps = [(0i64, 1i32), (1, 4), (2, 6), (3, 4), (4, 1)];
                let mut acc = fb.splat(psir::c_i32(8), 64);
                for (off, w) in taps {
                    let x = load_w(fb, off);
                    let wk = fb.splat(psir::c_i32(w), 64);
                    let p = fb.bin(BinOp::Mul, x, wk);
                    acc = fb.bin(BinOp::Add, acc, p);
                }
                let four = fb.splat(psir::c_i32(4), 64);
                let sh = fb.bin(BinOp::LShr, acc, four);
                let r = fb.cast(CastKind::Trunc, sh, Ty::vec(ScalarTy::I8, 64));
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        },
    ));

    v
}

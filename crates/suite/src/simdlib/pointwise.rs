//! Point-wise u8/u16 kernels (Simd Library "OperationBinary8u/16i"
//! families): saturating arithmetic, averages, absolute differences,
//! min/max, logic, weighted blends.

use crate::hand::elementwise;
use crate::wrap::{psim_wrap, serial_wrap};
use crate::{BufSpec, Init, Kernel};
use psir::{BinOp, RtVal, ScalarTy};

const P2U8: &str = "u8* restrict a, u8* restrict b, u8* restrict out, i64 n";
const P1U8: &str = "u8* restrict a, u8* restrict out, i64 n";
const P2U16: &str = "u16* restrict a, u16* restrict b, u16* restrict out, i64 n";

fn bufs2(elem: ScalarTy, n: u64) -> Vec<BufSpec> {
    vec![
        BufSpec::input(elem, n, Init::RandomInt { seed: 11 }),
        BufSpec::input(elem, n, Init::RandomInt { seed: 22 }),
        BufSpec::output(elem, n),
    ]
}

fn bufs1(elem: ScalarTy, n: u64) -> Vec<BufSpec> {
    vec![
        BufSpec::input(elem, n, Init::RandomInt { seed: 33 }),
        BufSpec::output(elem, n),
    ]
}

/// Binary u8 kernel where psim & hand use one native op and the serial
/// version uses the widened formula.
fn native2_u8(name: &str, n: u64, psim_expr: &str, serial_body: &str, op: BinOp) -> Kernel {
    let body = format!("    out[idx] = {psim_expr};");
    Kernel::new(
        name,
        "pointwise-u8",
        64,
        psim_wrap(64, P2U8, &body),
        serial_wrap(P2U8, serial_body),
        bufs2(ScalarTy::I8, n),
        n,
    )
    .with_hand(move |m| {
        elementwise(
            m,
            &[ScalarTy::I8, ScalarTy::I8],
            ScalarTy::I8,
            64,
            move |fb, xs| fb.bin(op, xs[0], xs[1]),
        )
    })
}

/// Kernel where all three versions use the same expression (parity cases —
/// the baseline vectorizes these fine, as in the paper's Figure 5 where
/// several bars tie).
fn parity2_u8(name: &str, n: u64, expr: &str, op: BinOp) -> Kernel {
    let body = format!("    out[idx] = {expr};");
    Kernel::new(
        name,
        "pointwise-u8",
        64,
        psim_wrap(64, P2U8, &body),
        serial_wrap(P2U8, &body),
        bufs2(ScalarTy::I8, n),
        n,
    )
    .with_hand(move |m| {
        elementwise(
            m,
            &[ScalarTy::I8, ScalarTy::I8],
            ScalarTy::I8,
            64,
            move |fb, xs| fb.bin(op, xs[0], xs[1]),
        )
    })
}

pub(super) fn kernels(n: u64) -> Vec<Kernel> {
    let mut v = vec![
        // 1. saturating add
        native2_u8(
            "add_sat_u8",
            n,
            "add_sat(a[idx], b[idx])",
            "    i32 r = (i32) a[idx] + (i32) b[idx];\n    out[idx] = (u8) min(r, 255);",
            BinOp::AddSatU,
        ),
        // 2. saturating sub
        native2_u8(
            "sub_sat_u8",
            n,
            "sub_sat(a[idx], b[idx])",
            "    i32 r = (i32) a[idx] - (i32) b[idx];\n    out[idx] = (u8) max(r, 0);",
            BinOp::SubSatU,
        ),
        // 3. rounded average
        native2_u8(
            "avg_u8",
            n,
            "avg_u(a[idx], b[idx])",
            "    i32 r = ((i32) a[idx] + (i32) b[idx] + 1) / 2;\n    out[idx] = (u8) r;",
            BinOp::AvgU,
        ),
        // 4-6. logic (parity: the auto-vectorizer handles these)
        parity2_u8("and_u8", n, "a[idx] & b[idx]", BinOp::And),
        parity2_u8("or_u8", n, "a[idx] | b[idx]", BinOp::Or),
        parity2_u8("xor_u8", n, "a[idx] ^ b[idx]", BinOp::Xor),
    ];
    // 7-8. min/max (serial uses ternaries, like scalar C)
    {
        let mk = |name: &str, cmp: &str, op: BinOp| {
            let psim_body = format!(
                "    out[idx] = {}(a[idx], b[idx]);",
                if op == BinOp::UMax { "max" } else { "min" }
            );
            let serial_body = format!("    out[idx] = a[idx] {cmp} b[idx] ? a[idx] : b[idx];");
            Kernel::new(
                name,
                "pointwise-u8",
                64,
                psim_wrap(64, P2U8, &psim_body),
                serial_wrap(P2U8, &serial_body),
                bufs2(ScalarTy::I8, n),
                n,
            )
            .with_hand(move |m| {
                elementwise(
                    m,
                    &[ScalarTy::I8, ScalarTy::I8],
                    ScalarTy::I8,
                    64,
                    move |fb, xs| fb.bin(op, xs[0], xs[1]),
                )
            })
        };
        v.push(mk("max_u8", ">", BinOp::UMax));
        v.push(mk("min_u8", "<", BinOp::UMin));
    }
    // 9. absolute difference: the saturating-subtract trick.
    v.push(
        Kernel::new(
            "abs_diff_u8",
            "pointwise-u8",
            64,
            psim_wrap(
                64,
                P2U8,
                "    out[idx] = sub_sat(a[idx], b[idx]) | sub_sat(b[idx], a[idx]);",
            ),
            serial_wrap(
                P2U8,
                "    i32 d = (i32) a[idx] - (i32) b[idx];\n    out[idx] = (u8) (d < 0 ? 0 - d : d);",
            ),
            bufs2(ScalarTy::I8, n),
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8, ScalarTy::I8], ScalarTy::I8, 64, |fb, xs| {
                let d1 = fb.bin(BinOp::SubSatU, xs[0], xs[1]);
                let d2 = fb.bin(BinOp::SubSatU, xs[1], xs[0]);
                fb.bin(BinOp::Or, d1, d2)
            })
        }),
    );
    // 10. alpha multiply: divide-by-255 via the shift identity in the
    // SIMD versions, a real division in the serial one.
    v.push(
        Kernel::new(
            "mul_div255_u8",
            "pointwise-u8",
            64,
            psim_wrap(
                64,
                P2U8,
                "    i32 x = (i32) a[idx] * (i32) b[idx] + 128;\n    out[idx] = (u8) ((x + (x >> 8) + 1) >> 8);",
            ),
            serial_wrap(
                P2U8,
                "    i32 x = (i32) a[idx] * (i32) b[idx] + 128;\n    out[idx] = (u8) ((x + (x >> 8) + 1) >> 8);",
            ),
            bufs2(ScalarTy::I8, n),
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8, ScalarTy::I8], ScalarTy::I8, 64, |fb, xs| {
                // widen to i32, multiply, shift-divide, narrow
                let i32v = psir::Ty::vec(ScalarTy::I32, 64);
                let wa = fb.cast(psir::CastKind::Zext, xs[0], i32v);
                let wb = fb.cast(psir::CastKind::Zext, xs[1], i32v);
                let p = fb.bin(BinOp::Mul, wa, wb);
                let c128 = fb.splat(psir::c_i32(128), 64);
                let x = fb.bin(BinOp::Add, p, c128);
                let c8 = fb.splat(psir::c_i32(8), 64);
                let hi = fb.bin(BinOp::LShr, x, c8);
                let s = fb.bin(BinOp::Add, x, hi);
                let one = fb.splat(psir::c_i32(1), 64);
                let s1 = fb.bin(BinOp::Add, s, one);
                let r = fb.bin(BinOp::LShr, s1, c8);
                fb.cast(psir::CastKind::Trunc, r, psir::Ty::vec(ScalarTy::I8, 64))
            })
        }),
    );
    // 11. screen blend: 255 - (255-a)(255-b)/255.
    v.push(
        Kernel::new(
            "screen_u8",
            "pointwise-u8",
            64,
            psim_wrap(
                64,
                P2U8,
                "    i32 x = (255 - (i32) a[idx]) * (255 - (i32) b[idx]) + 128;\n    out[idx] = (u8) (255 - ((x + (x >> 8) + 1) >> 8));",
            ),
            serial_wrap(
                P2U8,
                "    i32 x = (255 - (i32) a[idx]) * (255 - (i32) b[idx]) + 128;\n    out[idx] = (u8) (255 - ((x + (x >> 8) + 1) >> 8));",
            ),
            bufs2(ScalarTy::I8, n),
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8, ScalarTy::I8], ScalarTy::I8, 64, |fb, xs| {
                let ones = fb.splat(psir::Const::i8(-1), 64); // 0xff
                let na = fb.bin(BinOp::Sub, ones, xs[0]);
                let nb = fb.bin(BinOp::Sub, ones, xs[1]);
                // (255-a)(255-b)/255 via mulhi-free widened math at i32
                let i32v = psir::Ty::vec(ScalarTy::I32, 64);
                let wa = fb.cast(psir::CastKind::Zext, na, i32v);
                let wb = fb.cast(psir::CastKind::Zext, nb, i32v);
                let p = fb.bin(BinOp::Mul, wa, wb);
                let c128 = fb.splat(psir::c_i32(128), 64);
                let x = fb.bin(BinOp::Add, p, c128);
                let c8 = fb.splat(psir::c_i32(8), 64);
                let hi = fb.bin(BinOp::LShr, x, c8);
                let s = fb.bin(BinOp::Add, x, hi);
                let one = fb.splat(psir::c_i32(1), 64);
                let s1 = fb.bin(BinOp::Add, s, one);
                let q = fb.bin(BinOp::LShr, s1, c8);
                let narrowed = fb.cast(psir::CastKind::Trunc, q, psir::Ty::vec(ScalarTy::I8, 64));
                fb.bin(BinOp::Sub, ones, narrowed)
            })
        }),
    );
    // 12. horizontal gradient: |a[i+1] − a[i]| with the sat-sub trick.
    v.push(
        Kernel::new(
            "gradient_u8",
            "pointwise-u8",
            64,
            psim_wrap(
                64,
                P1U8,
                "    u8 x = a[idx];\n    u8 y = a[idx + 1];\n    out[idx] = sub_sat(x, y) | sub_sat(y, x);",
            ),
            serial_wrap(
                P1U8,
                "    i32 d = (i32) a[idx + 1] - (i32) a[idx];\n    out[idx] = (u8) (d < 0 ? 0 - d : d);",
            ),
            vec![
                BufSpec::input(ScalarTy::I8, n + 64, Init::RandomInt { seed: 44 }),
                BufSpec::output(ScalarTy::I8, n),
            ],
            n,
        )
        .with_hand(|m| {
            crate::hand::vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let x = crate::hand::packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let ip1 = fb.bin(BinOp::Add, iv, 1i64);
                let y = crate::hand::packed_load(fb, args[0], ip1, ScalarTy::I8, 64);
                let d1 = fb.bin(BinOp::SubSatU, x, y);
                let d2 = fb.bin(BinOp::SubSatU, y, x);
                let r = fb.bin(BinOp::Or, d1, d2);
                crate::hand::packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        }),
    );

    // ---- unary u8 -----------------------------------------------------------

    // 13. invert (parity)
    v.push(
        Kernel::new(
            "invert_u8",
            "pointwise-u8",
            64,
            psim_wrap(64, P1U8, "    out[idx] = (u8) 255 - a[idx];"),
            serial_wrap(P1U8, "    out[idx] = (u8) 255 - a[idx];"),
            bufs1(ScalarTy::I8, n),
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8], ScalarTy::I8, 64, |fb, xs| {
                let ones = fb.splat(psir::Const::i8(-1), 64);
                fb.bin(BinOp::Sub, ones, xs[0])
            })
        }),
    );
    // 14. binarization with threshold
    v.push(
        Kernel::new(
            "binarize_u8",
            "pointwise-u8",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, u8 t, i64 n",
                "    out[idx] = a[idx] > t ? (u8) 255 : (u8) 0;",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, u8 t, i64 n",
                "    out[idx] = a[idx] > t ? (u8) 255 : (u8) 0;",
            ),
            bufs1(ScalarTy::I8, n),
            n,
        )
        .with_extra_args(vec![RtVal::S(127)])
        .with_hand(|m| {
            crate::hand::elementwise_extra(
                m,
                &[ScalarTy::I8],
                ScalarTy::I8,
                &[ScalarTy::I8],
                64,
                |fb, xs, extra| {
                    let t = fb.splat(extra[0], 64);
                    let c = fb.cmp(psir::CmpPred::Ugt, xs[0], t);
                    let hi = fb.splat(psir::Const::i8(-1), 64);
                    let lo = fb.splat(psir::Const::i8(0), 64);
                    fb.select(c, hi, lo)
                },
            )
        }),
    );
    // 15. truncate-threshold
    v.push(
        Kernel::new(
            "threshold_trunc_u8",
            "pointwise-u8",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, u8 t, i64 n",
                "    out[idx] = min(a[idx], t);",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, u8 t, i64 n",
                "    out[idx] = a[idx] < t ? a[idx] : t;",
            ),
            bufs1(ScalarTy::I8, n),
            n,
        )
        .with_extra_args(vec![RtVal::S(160)])
        .with_hand(|m| {
            crate::hand::elementwise_extra(
                m,
                &[ScalarTy::I8],
                ScalarTy::I8,
                &[ScalarTy::I8],
                64,
                |fb, xs, extra| {
                    let t = fb.splat(extra[0], 64);
                    fb.bin(BinOp::UMin, xs[0], t)
                },
            )
        }),
    );
    // 16. contrast stretch (widened multiply, saturating narrow)
    v.push(
        Kernel::new(
            "stretch_u8",
            "pointwise-u8",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i32 k, i64 n",
                "    i32 r = ((i32) a[idx] * k) >> 8;\n    out[idx] = (u8) min(r, 255);",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i32 k, i64 n",
                "    i32 r = ((i32) a[idx] * k) >> 8;\n    out[idx] = (u8) min(r, 255);",
            ),
            bufs1(ScalarTy::I8, n),
            n,
        )
        .with_extra_args(vec![RtVal::S(310)])
        .with_hand(|m| {
            crate::hand::elementwise_extra(
                m,
                &[ScalarTy::I8],
                ScalarTy::I8,
                &[ScalarTy::I32],
                64,
                |fb, xs, extra| {
                    let i32v = psir::Ty::vec(ScalarTy::I32, 64);
                    let w = fb.cast(psir::CastKind::Zext, xs[0], i32v);
                    let k = fb.splat(extra[0], 64);
                    let p = fb.bin(BinOp::Mul, w, k);
                    let c8 = fb.splat(psir::c_i32(8), 64);
                    let s = fb.bin(BinOp::AShr, p, c8);
                    let cap = fb.splat(psir::c_i32(255), 64);
                    let c = fb.bin(BinOp::SMin, s, cap);
                    fb.cast(psir::CastKind::Trunc, c, psir::Ty::vec(ScalarTy::I8, 64))
                },
            )
        }),
    );
    // 17. x² >> 8 via native mulhi
    v.push(
        Kernel::new(
            "square_hi_u8",
            "pointwise-u8",
            64,
            psim_wrap(64, P1U8, "    out[idx] = mulhi(a[idx], a[idx]);"),
            serial_wrap(
                P1U8,
                "    out[idx] = (u8) (((i32) a[idx] * (i32) a[idx]) >> 8);",
            ),
            bufs1(ScalarTy::I8, n),
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8], ScalarTy::I8, 64, |fb, xs| {
                fb.bin(BinOp::MulHiU, xs[0], xs[0])
            })
        }),
    );
    // 18. halve (parity)
    v.push(
        Kernel::new(
            "shift_half_u8",
            "pointwise-u8",
            64,
            psim_wrap(64, P1U8, "    out[idx] = a[idx] >> (u8) 1;"),
            serial_wrap(P1U8, "    out[idx] = a[idx] >> (u8) 1;"),
            bufs1(ScalarTy::I8, n),
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I8], ScalarTy::I8, 64, |fb, xs| {
                let one = fb.splat(psir::Const::i8(1), 64);
                fb.bin(BinOp::LShr, xs[0], one)
            })
        }),
    );

    // ---- i16/u16 ------------------------------------------------------------

    // 19-20. saturating i16 add/sub
    {
        let mk = |name: &str,
                  builtin: &str,
                  clamp_lo: i32,
                  clamp_hi: i32,
                  sign: &str,
                  op: BinOp| {
            let params = "i16* restrict a, i16* restrict b, i16* restrict out, i64 n";
            Kernel::new(
                name,
                "pointwise-i16",
                32,
                psim_wrap(
                    32,
                    params,
                    &format!("    out[idx] = {builtin}(a[idx], b[idx]);"),
                ),
                serial_wrap(
                    params,
                    &format!(
                        "    i32 r = (i32) a[idx] {sign} (i32) b[idx];\n    out[idx] = (i16) clamp(r, 0 - {}, {clamp_hi});",
                        -clamp_lo
                    ),
                ),
                bufs2(ScalarTy::I16, n),
                n,
            )
            .with_hand(move |m| {
                elementwise(m, &[ScalarTy::I16, ScalarTy::I16], ScalarTy::I16, 32, move |fb, xs| {
                    fb.bin(op, xs[0], xs[1])
                })
            })
        };
        v.push(mk(
            "add_sat_i16",
            "add_sat",
            -32768,
            32767,
            "+",
            BinOp::AddSatS,
        ));
        v.push(mk(
            "sub_sat_i16",
            "sub_sat",
            -32768,
            32767,
            "-",
            BinOp::SubSatS,
        ));
    }
    // 21. mulhi i16
    v.push(
        Kernel::new(
            "mulhi_i16",
            "pointwise-i16",
            32,
            psim_wrap(
                32,
                "i16* restrict a, i16* restrict b, i16* restrict out, i64 n",
                "    out[idx] = mulhi(a[idx], b[idx]);",
            ),
            serial_wrap(
                "i16* restrict a, i16* restrict b, i16* restrict out, i64 n",
                "    out[idx] = (i16) (((i32) a[idx] * (i32) b[idx]) >> 16);",
            ),
            bufs2(ScalarTy::I16, n),
            n,
        )
        .with_hand(|m| {
            elementwise(
                m,
                &[ScalarTy::I16, ScalarTy::I16],
                ScalarTy::I16,
                32,
                |fb, xs| fb.bin(BinOp::MulHiS, xs[0], xs[1]),
            )
        }),
    );
    // 22. u16 rounded average
    v.push(
        Kernel::new(
            "avg_u16",
            "pointwise-i16",
            32,
            psim_wrap(32, P2U16, "    out[idx] = avg_u(a[idx], b[idx]);"),
            serial_wrap(
                P2U16,
                "    i32 r = ((i32) a[idx] + (i32) b[idx] + 1) / 2;\n    out[idx] = (u16) r;",
            ),
            bufs2(ScalarTy::I16, n),
            n,
        )
        .with_hand(|m| {
            elementwise(
                m,
                &[ScalarTy::I16, ScalarTy::I16],
                ScalarTy::I16,
                32,
                |fb, xs| fb.bin(BinOp::AvgU, xs[0], xs[1]),
            )
        }),
    );
    // 23. u16 absolute difference with the sat trick
    v.push(
        Kernel::new(
            "abs_diff_u16",
            "pointwise-i16",
            32,
            psim_wrap(
                32,
                P2U16,
                "    out[idx] = sub_sat(a[idx], b[idx]) | sub_sat(b[idx], a[idx]);",
            ),
            serial_wrap(
                P2U16,
                "    i32 d = (i32) a[idx] - (i32) b[idx];\n    out[idx] = (u16) (d < 0 ? 0 - d : d);",
            ),
            bufs2(ScalarTy::I16, n),
            n,
        )
        .with_hand(|m| {
            elementwise(m, &[ScalarTy::I16, ScalarTy::I16], ScalarTy::I16, 32, |fb, xs| {
                let d1 = fb.bin(BinOp::SubSatU, xs[0], xs[1]);
                let d2 = fb.bin(BinOp::SubSatU, xs[1], xs[0]);
                fb.bin(BinOp::Or, d1, d2)
            })
        }),
    );
    // 24. weighted blend (parity: widened formula everywhere)
    v.push(
        Kernel::new(
            "weighted_i16",
            "pointwise-i16",
            32,
            psim_wrap(
                32,
                "i16* restrict a, i16* restrict b, i16* restrict out, i32 w, i64 n",
                "    out[idx] = (i16) (((i32) a[idx] * w + (i32) b[idx] * (256 - w)) >> 8);",
            ),
            serial_wrap(
                "i16* restrict a, i16* restrict b, i16* restrict out, i32 w, i64 n",
                "    out[idx] = (i16) (((i32) a[idx] * w + (i32) b[idx] * (256 - w)) >> 8);",
            ),
            bufs2(ScalarTy::I16, n),
            n,
        )
        .with_extra_args(vec![RtVal::S(77)])
        .with_hand(|m| {
            crate::hand::elementwise_extra(
                m,
                &[ScalarTy::I16, ScalarTy::I16],
                ScalarTy::I16,
                &[ScalarTy::I32],
                32,
                |fb, xs, extra| {
                    let i32v = psir::Ty::vec(ScalarTy::I32, 32);
                    let wa = fb.cast(psir::CastKind::Sext, xs[0], i32v);
                    let wb = fb.cast(psir::CastKind::Sext, xs[1], i32v);
                    let w = fb.splat(extra[0], 32);
                    let c256 = fb.splat(psir::c_i32(256), 32);
                    let iw = fb.bin(BinOp::Sub, c256, w);
                    let pa = fb.bin(BinOp::Mul, wa, w);
                    let pb = fb.bin(BinOp::Mul, wb, iw);
                    let s = fb.bin(BinOp::Add, pa, pb);
                    let c8 = fb.splat(psir::c_i32(8), 32);
                    let r = fb.bin(BinOp::AShr, s, c8);
                    fb.cast(psir::CastKind::Trunc, r, psir::Ty::vec(ScalarTy::I16, 32))
                },
            )
        }),
    );

    v
}

//! Float kernels (SAXPY-class, activation functions) and reductions
//! (byte sums via `vpsadbw`, SAD, dot products, min/max, conditional
//! counts) — the Simd Library's `Neural`/`Reduce`/`Statistic` families.

use crate::hand::{elementwise, elementwise_extra, packed_load, reduction, vector_loop};
use crate::wrap::{psim_wrap, serial_wrap};
use crate::{BufSpec, Init, Kernel};
use psir::{BinOp, CastKind, ReduceOp, RtVal, ScalarTy, Ty};

fn f32_in(n: u64, seed: u64) -> BufSpec {
    BufSpec::input(
        ScalarTy::F32,
        n,
        Init::RandomF32 {
            seed,
            lo: -4.0,
            hi: 4.0,
        },
    )
}

pub(super) fn kernels(n: u64) -> Vec<Kernel> {
    let mut v = Vec::new();
    let pf1 = "f32* restrict a, f32* restrict out, i64 n";
    let pf2 = "f32* restrict a, f32* restrict b, f32* restrict out, i64 n";

    // 41. saxpy (parity)
    v.push(
        Kernel::new(
            "saxpy_f32",
            "float",
            16,
            psim_wrap(
                16,
                "f32* restrict x, f32* restrict y, f32 s, i64 n",
                "    y[idx] = s * x[idx] + y[idx];",
            ),
            serial_wrap(
                "f32* restrict x, f32* restrict y, f32 s, i64 n",
                "    y[idx] = s * x[idx] + y[idx];",
            ),
            vec![
                f32_in(n, 71),
                BufSpec::inout(
                    ScalarTy::F32,
                    n,
                    Init::RandomF32 {
                        seed: 72,
                        lo: -1.0,
                        hi: 1.0,
                    },
                ),
            ],
            n,
        )
        .with_extra_args(vec![RtVal::from_f32(1.75)])
        .with_hand(|m| {
            vector_loop(m, 2, &[ScalarTy::F32], 16, |fb, iv, args| {
                let x = packed_load(fb, args[0], iv, ScalarTy::F32, 16);
                let y = packed_load(fb, args[1], iv, ScalarTy::F32, 16);
                let s = fb.splat(args[2], 16);
                let p = fb.bin(BinOp::FMul, s, x);
                let r = fb.bin(BinOp::FAdd, p, y);
                crate::hand::packed_store(fb, args[1], iv, ScalarTy::F32, r);
            })
        }),
    );
    // 42. scale+shift
    v.push(
        Kernel::new(
            "scale_shift_f32",
            "float",
            16,
            psim_wrap(
                16,
                "f32* restrict a, f32* restrict out, f32 s, f32 b, i64 n",
                "    out[idx] = a[idx] * s + b;",
            ),
            serial_wrap(
                "f32* restrict a, f32* restrict out, f32 s, f32 b, i64 n",
                "    out[idx] = a[idx] * s + b;",
            ),
            vec![f32_in(n, 73), BufSpec::output(ScalarTy::F32, n)],
            n,
        )
        .with_extra_args(vec![RtVal::from_f32(0.5), RtVal::from_f32(-3.0)])
        .with_hand(|m| {
            elementwise_extra(
                m,
                &[ScalarTy::F32],
                ScalarTy::F32,
                &[ScalarTy::F32, ScalarTy::F32],
                16,
                |fb, xs, e| {
                    let s = fb.splat(e[0], 16);
                    let b = fb.splat(e[1], 16);
                    let p = fb.bin(BinOp::FMul, xs[0], s);
                    fb.bin(BinOp::FAdd, p, b)
                },
            )
        }),
    );
    // 43. sqrt (parity)
    {
        let body = "    out[idx] = sqrt(abs(a[idx]));";
        v.push(
            Kernel::new(
                "sqrt_f32",
                "float",
                16,
                psim_wrap(16, pf1, body),
                serial_wrap(pf1, body),
                vec![f32_in(n, 74), BufSpec::output(ScalarTy::F32, n)],
                n,
            )
            .with_hand(|m| {
                elementwise(m, &[ScalarTy::F32], ScalarTy::F32, 16, |fb, xs| {
                    let a = fb.un(psir::UnOp::FAbs, xs[0]);
                    fb.un(psir::UnOp::FSqrt, a)
                })
            }),
        );
    }
    // 44. reciprocal sqrt
    {
        let body = "    out[idx] = 1.0 / sqrt(abs(a[idx]) + 0.001);";
        v.push(
            Kernel::new(
                "rsqrt_f32",
                "float",
                16,
                psim_wrap(16, pf1, body),
                serial_wrap(pf1, body),
                vec![f32_in(n, 75), BufSpec::output(ScalarTy::F32, n)],
                n,
            )
            .with_hand(|m| {
                elementwise(m, &[ScalarTy::F32], ScalarTy::F32, 16, |fb, xs| {
                    let a = fb.un(psir::UnOp::FAbs, xs[0]);
                    let eps = fb.splat(psir::c_f32(0.001), 16);
                    let a = fb.bin(BinOp::FAdd, a, eps);
                    let s = fb.un(psir::UnOp::FSqrt, a);
                    let one = fb.splat(psir::c_f32(1.0), 16);
                    fb.bin(BinOp::FDiv, one, s)
                })
            }),
        );
    }
    // 45. clamp
    {
        let params = "f32* restrict a, f32* restrict out, f32 lo, f32 hi, i64 n";
        let body = "    out[idx] = clamp(a[idx], lo, hi);";
        v.push(
            Kernel::new(
                "clamp_f32",
                "float",
                16,
                psim_wrap(16, params, body),
                serial_wrap(params, body),
                vec![f32_in(n, 76), BufSpec::output(ScalarTy::F32, n)],
                n,
            )
            .with_extra_args(vec![RtVal::from_f32(-1.0), RtVal::from_f32(1.0)])
            .with_hand(|m| {
                elementwise_extra(
                    m,
                    &[ScalarTy::F32],
                    ScalarTy::F32,
                    &[ScalarTy::F32, ScalarTy::F32],
                    16,
                    |fb, xs, e| {
                        let lo = fb.splat(e[0], 16);
                        let hi = fb.splat(e[1], 16);
                        let c = fb.bin(BinOp::FMin, xs[0], hi);
                        fb.bin(BinOp::FMax, c, lo)
                    },
                )
            }),
        );
    }
    // 46. lerp
    {
        let params = "f32* restrict a, f32* restrict b, f32* restrict out, f32 t, i64 n";
        let body = "    out[idx] = a[idx] + (b[idx] - a[idx]) * t;";
        v.push(
            Kernel::new(
                "lerp_f32",
                "float",
                16,
                psim_wrap(16, params, body),
                serial_wrap(params, body),
                vec![
                    f32_in(n, 77),
                    f32_in(n, 78),
                    BufSpec::output(ScalarTy::F32, n),
                ],
                n,
            )
            .with_extra_args(vec![RtVal::from_f32(0.25)])
            .with_hand(|m| {
                elementwise_extra(
                    m,
                    &[ScalarTy::F32, ScalarTy::F32],
                    ScalarTy::F32,
                    &[ScalarTy::F32],
                    16,
                    |fb, xs, e| {
                        let t = fb.splat(e[0], 16);
                        let d = fb.bin(BinOp::FSub, xs[1], xs[0]);
                        let p = fb.bin(BinOp::FMul, d, t);
                        fb.bin(BinOp::FAdd, xs[0], p)
                    },
                )
            }),
        );
    }
    // 47. relu (parity)
    {
        let body = "    out[idx] = max(a[idx], 0.0);";
        v.push(
            Kernel::new(
                "relu_f32",
                "float",
                16,
                psim_wrap(16, pf1, body),
                serial_wrap(pf1, body),
                vec![f32_in(n, 79), BufSpec::output(ScalarTy::F32, n)],
                n,
            )
            .with_hand(|m| {
                elementwise(m, &[ScalarTy::F32], ScalarTy::F32, 16, |fb, xs| {
                    let zero = fb.splat(psir::c_f32(0.0), 16);
                    fb.bin(BinOp::FMax, xs[0], zero)
                })
            }),
        );
    }
    // 48. sigmoid: the baseline cannot vectorize the exp call (no veclib) —
    // Parsimony's math-library integration is the whole win here.
    {
        let body = "    out[idx] = 1.0 / (1.0 + exp(0.0 - a[idx]));";
        v.push(
            Kernel::new(
                "sigmoid_f32",
                "float",
                16,
                psim_wrap(16, pf1, body),
                serial_wrap(pf1, body),
                vec![f32_in(n, 80), BufSpec::output(ScalarTy::F32, n)],
                n,
            )
            .with_hand(|m| {
                elementwise(m, &[ScalarTy::F32], ScalarTy::F32, 16, |fb, xs| {
                    let zero = fb.splat(psir::c_f32(0.0), 16);
                    let neg = fb.bin(BinOp::FSub, zero, xs[0]);
                    let e = fb.call("sleef.exp.f32x16", Ty::vec(ScalarTy::F32, 16), vec![neg]);
                    let one = fb.splat(psir::c_f32(1.0), 16);
                    let d = fb.bin(BinOp::FAdd, one, e);
                    fb.bin(BinOp::FDiv, one, d)
                })
            }),
        );
    }
    // 49. fused multiply-add (parity: everyone has FMA)
    {
        let body = "    out[idx] = fma(a[idx], b[idx], out[idx]);";
        v.push(
            Kernel::new(
                "fma_f32",
                "float",
                16,
                psim_wrap(16, pf2, body),
                serial_wrap(pf2, body),
                vec![
                    f32_in(n, 81),
                    f32_in(n, 82),
                    BufSpec::inout(
                        ScalarTy::F32,
                        n,
                        Init::RandomF32 {
                            seed: 83,
                            lo: -1.0,
                            hi: 1.0,
                        },
                    ),
                ],
                n,
            )
            .with_hand(|m| {
                vector_loop(m, 3, &[], 16, |fb, iv, args| {
                    let a = packed_load(fb, args[0], iv, ScalarTy::F32, 16);
                    let b = packed_load(fb, args[1], iv, ScalarTy::F32, 16);
                    let c = packed_load(fb, args[2], iv, ScalarTy::F32, 16);
                    let r = fb.fma(a, b, c);
                    crate::hand::packed_store(fb, args[2], iv, ScalarTy::F32, r);
                })
            }),
        );
    }
    // 50. abs (parity)
    {
        let body = "    out[idx] = abs(a[idx]);";
        v.push(
            Kernel::new(
                "abs_f32",
                "float",
                16,
                psim_wrap(16, pf1, body),
                serial_wrap(pf1, body),
                vec![f32_in(n, 84), BufSpec::output(ScalarTy::F32, n)],
                n,
            )
            .with_hand(|m| {
                elementwise(m, &[ScalarTy::F32], ScalarTy::F32, 16, |fb, xs| {
                    fb.un(psir::UnOp::FAbs, xs[0])
                })
            }),
        );
    }

    // ---- reductions ----------------------------------------------------------
    //
    // Signature convention: main(in…, partials, out, n). The psim versions
    // use the natural SPMD formulation: one gang whose threads stride over
    // the data with a private accumulator, then a single horizontal
    // reduction at the end (`partials` is unused but kept so all three
    // configurations share a signature). The serial versions accumulate
    // directly; the hand-written versions keep a vector accumulator (and
    // use `vpsadbw` for byte sums, which is why the Simd Library does).

    /// One-gang accumulate-then-reduce psim source.
    fn psim_reduce_src(gang: u32, params: &str, decl: &str, step: &str, finish: &str) -> String {
        format!(
            "void main({params}) {{\n  psim gang({gang}) threads({gang}) {{\n    i64 lane = psim_thread_num();\n{decl}\n    for (i64 base = 0; base < n; base += {gang}) {{\n{step}\n    }}\n{finish}\n  }}\n}}\n"
        )
    }

    // 51. byte sum — the §7 `vpsadbw` abstraction in a strided loop: every
    // lane accumulates its group sum; the final total is 8× the answer.
    {
        let params = "u8* restrict a, u64* restrict partials, u64* restrict out, i64 n";
        let psim_src = psim_reduce_src(
            64,
            params,
            "    u64 acc = 0;",
            "        u64 s = psim_sad(a[base + lane], (u8) 0);\n        acc += s;",
            "    u64 r = psim_reduce_add(acc);\n    out[0] = r / 8;",
        );
        let serial_body = "    u64 acc = 0;\n    for (i64 idx = 0; idx < n; idx += 1) {\n        acc += (u64) a[idx];\n    }\n    out[0] = acc;";
        v.push(
            Kernel::new(
                "sum_u8",
                "reduce",
                64,
                psim_src,
                format!("void main({params}) {{\n{serial_body}\n}}\n"),
                vec![
                    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed: 85 }),
                    BufSpec::input(ScalarTy::I64, n / 64, Init::Zero),
                    BufSpec::output(ScalarTy::I64, 8),
                ],
                n,
            )
            .with_hand(|m| {
                reduction(
                    m,
                    &[ScalarTy::I8],
                    ScalarTy::I64,
                    64,
                    0,
                    |fb, acc, xs| {
                        // vpsadbw against zero; every lane carries its
                        // group's sum, so the final reduction is 8× the
                        // answer — divided once at the end (see below).
                        let zero = fb.splat(psir::Const::i8(0), 64);
                        let sums = fb.call(
                            "vmach.sad.i8x64.i64",
                            Ty::vec(ScalarTy::I64, 64),
                            vec![xs[0], zero],
                        );
                        fb.bin(BinOp::Add, acc, sums)
                    },
                    ReduceOp::Add,
                );
                fixup_divide_by_8(m);
            }),
        );
    }
    // 52. sum of absolute differences (SAD) — the Figure 5 headline family.
    {
        let params =
            "u8* restrict a, u8* restrict b, u64* restrict partials, u64* restrict out, i64 n";
        let psim_src = psim_reduce_src(
            64,
            params,
            "    u64 acc = 0;",
            "        u64 s = psim_sad(a[base + lane], b[base + lane]);\n        acc += s;",
            "    u64 r = psim_reduce_add(acc);\n    out[0] = r / 8;",
        );
        let serial_body = "    u64 acc = 0;\n    for (i64 idx = 0; idx < n; idx += 1) {\n        i32 d = (i32) a[idx] - (i32) b[idx];\n        acc += (u64) (d < 0 ? 0 - d : d);\n    }\n    out[0] = acc;";
        v.push(
            Kernel::new(
                "abs_diff_sum_u8",
                "reduce",
                64,
                psim_src,
                format!("void main({params}) {{\n{serial_body}\n}}\n"),
                vec![
                    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed: 86 }),
                    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed: 87 }),
                    BufSpec::input(ScalarTy::I64, n / 64, Init::Zero),
                    BufSpec::output(ScalarTy::I64, 8),
                ],
                n,
            )
            .with_hand(|m| {
                reduction(
                    m,
                    &[ScalarTy::I8, ScalarTy::I8],
                    ScalarTy::I64,
                    64,
                    0,
                    |fb, acc, xs| {
                        let sums = fb.call(
                            "vmach.sad.i8x64.i64",
                            Ty::vec(ScalarTy::I64, 64),
                            vec![xs[0], xs[1]],
                        );
                        fb.bin(BinOp::Add, acc, sums)
                    },
                    ReduceOp::Add,
                );
                fixup_divide_by_8(m);
            }),
        );
    }
    // 53. sum of squares (widened — all SIMD versions pay the widening)
    {
        let params = "u8* restrict a, u64* restrict partials, u64* restrict out, i64 n";
        let psim_src = psim_reduce_src(
            64,
            params,
            "    u64 acc = 0;",
            "        u64 x = (u64) a[base + lane];\n        acc += x * x;",
            "    u64 r = psim_reduce_add(acc);\n    out[0] = r;",
        );
        let serial_body = "    u64 acc = 0;\n    for (i64 idx = 0; idx < n; idx += 1) {\n        u64 x = (u64) a[idx];\n        acc += x * x;\n    }\n    out[0] = acc;";
        v.push(
            Kernel::new(
                "square_sum_u8",
                "reduce",
                64,
                psim_src,
                format!("void main({params}) {{\n{serial_body}\n}}\n"),
                vec![
                    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed: 88 }),
                    BufSpec::input(ScalarTy::I64, n / 64, Init::Zero),
                    BufSpec::output(ScalarTy::I64, 8),
                ],
                n,
            )
            .with_hand(|m| {
                reduction(
                    m,
                    &[ScalarTy::I8],
                    ScalarTy::I64,
                    64,
                    0,
                    |fb, acc, xs| {
                        let w = fb.cast(CastKind::Zext, xs[0], Ty::vec(ScalarTy::I64, 64));
                        let sq = fb.bin(BinOp::Mul, w, w);
                        fb.bin(BinOp::Add, acc, sq)
                    },
                    ReduceOp::Add,
                )
            }),
        );
    }
    // 54. float sum (integer-valued inputs keep every order exact)
    {
        let params = "f32* restrict a, f32* restrict partials, f32* restrict out, i64 n";
        let psim_src = psim_reduce_src(
            16,
            params,
            "    f32 acc = 0.0;",
            "        acc += a[base + lane];",
            "    f32 r = psim_reduce_add(acc);\n    out[0] = r;",
        );
        let serial_body = "    f32 acc = 0.0;\n    for (i64 idx = 0; idx < n; idx += 1) {\n        acc += a[idx];\n    }\n    out[0] = acc;";
        v.push(
            Kernel::new(
                "sum_f32",
                "reduce",
                16,
                psim_src,
                format!("void main({params}) {{\n{serial_body}\n}}\n"),
                vec![
                    BufSpec::input(
                        ScalarTy::F32,
                        n,
                        Init::RandomF32Int {
                            seed: 89,
                            lo: 0,
                            hi: 256,
                        },
                    ),
                    BufSpec::input(ScalarTy::F32, n / 16, Init::Zero),
                    BufSpec::output(ScalarTy::F32, 8),
                ],
                n,
            )
            .with_hand(|m| {
                reduction(
                    m,
                    &[ScalarTy::F32],
                    ScalarTy::F32,
                    16,
                    0.0f32.to_bits() as u64,
                    |fb, acc, xs| fb.bin(BinOp::FAdd, acc, xs[0]),
                    ReduceOp::Add,
                )
            }),
        );
    }
    // 55-56. min / max reductions over u8
    {
        let mk = |name: &'static str, is_max: bool, seed: u64| {
            let params = "u8* restrict a, u8* restrict partials, u8* restrict out, i64 n";
            let reduce_fn = if is_max {
                "psim_reduce_max"
            } else {
                "psim_reduce_min"
            };
            let fold = if is_max { "max" } else { "min" };
            let ident = if is_max { "0" } else { "255" };
            let psim_src = psim_reduce_src(
                64,
                params,
                &format!("    u8 acc = (u8) {ident};"),
                &format!("        acc = {fold}(acc, a[base + lane]);"),
                &format!("    u8 r = {reduce_fn}(acc);\n    out[0] = r;"),
            );
            let serial_body = format!(
                "    u8 acc = (u8) {ident};\n    for (i64 idx = 0; idx < n; idx += 1) {{\n        acc = {fold}(acc, a[idx]);\n    }}\n    out[0] = acc;"
            );
            let serial_full = format!("void main({params}) {{\n{serial_body}\n}}\n");
            let op = if is_max { BinOp::UMax } else { BinOp::UMin };
            let rop = if is_max {
                ReduceOp::UMax
            } else {
                ReduceOp::UMin
            };
            let identity = if is_max { 0u64 } else { 255u64 };
            Kernel::new(
                name,
                "reduce",
                64,
                psim_src,
                serial_full,
                vec![
                    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed }),
                    BufSpec::input(ScalarTy::I8, n / 64, Init::Zero),
                    BufSpec::output(ScalarTy::I8, 8),
                ],
                n,
            )
            .with_hand(move |m| {
                reduction(
                    m,
                    &[ScalarTy::I8],
                    ScalarTy::I8,
                    64,
                    identity,
                    move |fb, acc, xs| fb.bin(op, acc, xs[0]),
                    rop,
                )
            })
        };
        v.push(mk("max_reduce_u8", true, 90));
        v.push(mk("min_reduce_u8", false, 91));
    }
    // 57. conditional count (x > t)
    {
        let params = "u8* restrict a, u64* restrict partials, u64* restrict out, u8 t, i64 n";
        let psim_src = "void main(u8* restrict a, u64* restrict partials, u64* restrict out, u8 t, i64 n) {\n  psim gang(64) threads(64) {\n    i64 lane = psim_thread_num();\n    u64 acc = 0;\n    for (i64 base = 0; base < n; base += 64) {\n        acc += a[base + lane] > t ? (u64) 1 : (u64) 0;\n    }\n    u64 r = psim_reduce_add(acc);\n    out[0] = r;\n  }\n}\n".to_string();
        let serial_body = "    u64 acc = 0;\n    for (i64 idx = 0; idx < n; idx += 1) {\n        acc += a[idx] > t ? (u64) 1 : (u64) 0;\n    }\n    out[0] = acc;";
        v.push(
            Kernel::new(
                "count_above_u8",
                "reduce",
                64,
                psim_src,
                format!("void main({params}) {{\n{serial_body}\n}}\n"),
                vec![
                    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed: 92 }),
                    BufSpec::input(ScalarTy::I64, n / 64, Init::Zero),
                    BufSpec::output(ScalarTy::I64, 8),
                ],
                n,
            )
            .with_extra_args(vec![RtVal::S(99)])
            .with_hand(|m| {
                count_above_hand(m);
            }),
        );
    }
    // 58. dot product f32
    {
        let params =
            "f32* restrict a, f32* restrict b, f32* restrict partials, f32* restrict out, i64 n";
        let psim_src = "void main(f32* restrict a, f32* restrict b, f32* restrict partials, f32* restrict out, i64 n) {\n  psim gang(16) threads(16) {\n    i64 lane = psim_thread_num();\n    f32 acc = 0.0;\n    for (i64 base = 0; base < n; base += 16) {\n        acc += a[base + lane] * b[base + lane];\n    }\n    f32 r = psim_reduce_add(acc);\n    out[0] = r;\n  }\n}\n".to_string();
        let serial_body = "    f32 acc = 0.0;\n    for (i64 idx = 0; idx < n; idx += 1) {\n        acc += a[idx] * b[idx];\n    }\n    out[0] = acc;";
        v.push(
            Kernel::new(
                "dot_f32",
                "reduce",
                16,
                psim_src,
                format!("void main({params}) {{\n{serial_body}\n}}\n"),
                vec![
                    BufSpec::input(
                        ScalarTy::F32,
                        n,
                        Init::RandomF32Int {
                            seed: 93,
                            lo: -7,
                            hi: 8,
                        },
                    ),
                    BufSpec::input(
                        ScalarTy::F32,
                        n,
                        Init::RandomF32Int {
                            seed: 94,
                            lo: -7,
                            hi: 8,
                        },
                    ),
                    BufSpec::input(ScalarTy::F32, n / 16, Init::Zero),
                    BufSpec::output(ScalarTy::F32, 8),
                ],
                n,
            )
            .with_hand(|m| {
                reduction(
                    m,
                    &[ScalarTy::F32, ScalarTy::F32],
                    ScalarTy::F32,
                    16,
                    0.0f32.to_bits() as u64,
                    |fb, acc, xs| {
                        let p = fb.bin(BinOp::FMul, xs[0], xs[1]);
                        fb.bin(BinOp::FAdd, acc, p)
                    },
                    ReduceOp::Add,
                )
            }),
        );
    }

    v
}

/// Rewrites the reduction epilogue of the just-built `main` so the stored
/// total is divided by 8 (the `vpsadbw` trick replicates each group sum
/// across its 8 lanes).
fn fixup_divide_by_8(m: &mut psir::Module) {
    let f = m.function_mut("main").expect("hand kernel built");
    for b in f.block_ids().collect::<Vec<_>>() {
        for pos in 0..f.block(b).insts.len() {
            let id = f.block(b).insts[pos];
            if let psir::Inst::Store { ptr, val, mask } = f.inst(id).clone() {
                let div = f.add_inst(
                    psir::Inst::Bin {
                        op: BinOp::LShr,
                        a: val,
                        b: psir::Value::Const(psir::Const::i64(3)),
                    },
                    Ty::Scalar(ScalarTy::I64),
                );
                *f.inst_mut(id) = psir::Inst::Store {
                    ptr,
                    val: psir::Value::Inst(div),
                    mask,
                };
                f.block_mut(b).insts.insert(pos, div);
                return;
            }
        }
    }
    panic!("no reduction store found");
}

/// Hand-written conditional count: vector accumulator of 0/1 at i64,
/// horizontal reduce once at the end.
fn count_above_hand(m: &mut psir::Module) {
    use psir::{CmpPred as P, Const, FunctionBuilder, Param, Value};
    let mut params: Vec<Param> = (0..3)
        .map(|i| Param::noalias(format!("p{i}"), Ty::scalar(ScalarTy::Ptr)))
        .collect();
    params.push(Param::new("t", Ty::scalar(ScalarTy::I8)));
    params.push(Param::new("n", Ty::scalar(ScalarTy::I64)));
    let mut fb = FunctionBuilder::new("main", params, Ty::Void);
    let n = Value::Param(4);
    let header = fb.new_block("c.header");
    let body = fb.new_block("c.body");
    let exit = fb.new_block("c.exit");
    let pre = fb.current_block();
    let init = fb.const_vec(ScalarTy::I64, vec![0; 64]);
    fb.br(header);
    fb.switch_to(header);
    let iv = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(pre, psir::c_i64(0))]);
    let vacc = fb.phi_typed(Ty::vec(ScalarTy::I64, 64), vec![(pre, init)]);
    let next_end = fb.bin(BinOp::Add, iv, Value::Const(Const::i64(64)));
    let ok = fb.cmp(P::Sle, next_end, n);
    fb.cond_br(ok, body, exit);
    fb.switch_to(body);
    let x = packed_load(&mut fb, Value::Param(0), iv, ScalarTy::I8, 64);
    let t = fb.splat(Value::Param(3), 64);
    let c = fb.cmp(P::Ugt, x, t);
    let ones = fb.splat(Const::i64(1), 64);
    let zeros = fb.splat(Const::i64(0), 64);
    let sel = fb.select(c, ones, zeros);
    let vacc2 = fb.bin(BinOp::Add, vacc, sel);
    let latch = fb.current_block();
    let nx = fb.bin(BinOp::Add, iv, Value::Const(Const::i64(64)));
    fb.phi_add_incoming(iv, latch, nx);
    fb.phi_add_incoming(vacc, latch, vacc2);
    fb.br(header);
    fb.switch_to(exit);
    let total = fb.reduce(ReduceOp::Add, vacc, None);
    fb.store(Value::Param(2), total, None);
    fb.ret(None);
    let f = fb.finish();
    psir::assert_valid(&f);
    m.add_function(f);
}

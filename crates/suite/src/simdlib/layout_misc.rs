//! Layout-changing kernels ((de)interleave, channel extraction, swizzles,
//! reversal, lookup tables) and miscellaneous image ops (fill, copy,
//! blending, background maintenance, segmentation, LBP).

use crate::hand::{elementwise, packed_load, packed_store, vector_loop};
use crate::wrap::{psim_wrap, serial_wrap};
use crate::{BufSpec, Init, Kernel};
use psir::{BinOp, CastKind, CmpPred, RtVal, ScalarTy, Ty};

fn in_u8(n: u64, seed: u64) -> BufSpec {
    BufSpec::input(ScalarTy::I8, n, Init::RandomInt { seed })
}

pub(super) fn kernels(n: u64) -> Vec<Kernel> {
    let mut v = Vec::new();

    // 59. deinterleave 2 streams: stride-2 loads (baseline rejects).
    v.push(
        Kernel::new(
            "deinterleave2_u8",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out0, u8* restrict out1, i64 n",
                "    out0[idx] = a[idx * 2];\n    out1[idx] = a[idx * 2 + 1];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out0, u8* restrict out1, i64 n",
                "    out0[idx] = a[idx * 2];\n    out1[idx] = a[idx * 2 + 1];",
            ),
            vec![
                in_u8(2 * n, 101),
                BufSpec::output(ScalarTy::I8, n),
                BufSpec::output(ScalarTy::I8, n),
            ],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 3, &[], 64, |fb, iv, args| {
                let two = fb.bin(BinOp::Mul, iv, 2i64);
                let base = fb.gep(args[0], two, 1);
                let wide = fb.load(Ty::vec(ScalarTy::I8, 128), base, None);
                let ev: Vec<u32> = (0..64).map(|j| j * 2).collect();
                let od: Vec<u32> = (0..64).map(|j| j * 2 + 1).collect();
                let e = fb.shuffle_const(wide, ev);
                let o = fb.shuffle_const(wide, od);
                packed_store(fb, args[1], iv, ScalarTy::I8, e);
                packed_store(fb, args[2], iv, ScalarTy::I8, o);
            })
        }),
    );
    // 60. interleave 2 streams: stride-2 stores.
    v.push(
        Kernel::new(
            "interleave2_u8",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict b, u8* restrict out, i64 n",
                "    out[idx * 2] = a[idx];\n    out[idx * 2 + 1] = b[idx];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict b, u8* restrict out, i64 n",
                "    out[idx * 2] = a[idx];\n    out[idx * 2 + 1] = b[idx];",
            ),
            vec![
                in_u8(n, 102),
                in_u8(n, 103),
                BufSpec::output(ScalarTy::I8, 2 * n),
            ],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 3, &[], 64, |fb, iv, args| {
                let a = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let b = packed_load(fb, args[1], iv, ScalarTy::I8, 64);
                // build the 128-lane interleaved vector from a 128-lane
                // concat-free trick: widen both and merge via two shuffles
                // into a scratch via inserts is slow; instead shuffle each
                // and blend with a mask store twice.
                let lo_pat: Vec<u32> = (0..128).map(|j| (j / 2) as u32).collect();
                let ea = fb.shuffle_const(a, lo_pat.clone());
                let eb = fb.shuffle_const(b, lo_pat);
                let mask_a: Vec<u64> = (0..128).map(|j| u64::from(j % 2 == 0)).collect();
                let mask_b: Vec<u64> = (0..128).map(|j| u64::from(j % 2 == 1)).collect();
                let ma = fb.const_vec(ScalarTy::I1, mask_a);
                let mb = fb.const_vec(ScalarTy::I1, mask_b);
                let two = fb.bin(BinOp::Mul, iv, 2i64);
                let base = fb.gep(args[2], two, 1);
                fb.store(base, ea, Some(ma));
                fb.store(base, eb, Some(mb));
            })
        }),
    );
    // 61. extract middle channel of interleaved 3-channel data.
    v.push(
        Kernel::new(
            "extract_g_u8",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[idx * 3 + 1];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[idx * 3 + 1];",
            ),
            vec![in_u8(3 * n + 64, 104), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let three = fb.bin(BinOp::Mul, iv, 3i64);
                let base = fb.gep(args[0], three, 1);
                let wide = fb.load(Ty::vec(ScalarTy::I8, 192), base, None);
                let pat: Vec<u32> = (0..64).map(|j| j * 3 + 1).collect();
                let g = fb.shuffle_const(wide, pat);
                packed_store(fb, args[1], iv, ScalarTy::I8, g);
            })
        }),
    );
    // 62. RGBA → BGRA swizzle (stride-4 shuffle).
    v.push(
        Kernel::new(
            "swizzle_rgba_bgra",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx * 4] = a[idx * 4 + 2];\n    out[idx * 4 + 1] = a[idx * 4 + 1];\n    out[idx * 4 + 2] = a[idx * 4];\n    out[idx * 4 + 3] = a[idx * 4 + 3];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx * 4] = a[idx * 4 + 2];\n    out[idx * 4 + 1] = a[idx * 4 + 1];\n    out[idx * 4 + 2] = a[idx * 4];\n    out[idx * 4 + 3] = a[idx * 4 + 3];",
            ),
            vec![in_u8(4 * n, 105), BufSpec::output(ScalarTy::I8, 4 * n)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let four = fb.bin(BinOp::Mul, iv, 4i64);
                let base = fb.gep(args[0], four, 1);
                let wide = fb.load(Ty::vec(ScalarTy::I8, 256), base, None);
                let pat: Vec<u32> = (0..256)
                    .map(|j| {
                        let pix = (j / 4) * 4;
                        match j % 4 {
                            0 => pix + 2,
                            1 => pix + 1,
                            2 => pix,
                            _ => pix + 3,
                        }
                    })
                    .collect();
                let sw = fb.shuffle_const(wide, pat);
                let obase = fb.gep(args[1], four, 1);
                fb.store(obase, sw, None);
            })
        }),
    );
    // 63. downsample even elements.
    v.push(
        Kernel::new(
            "pack_even_u8",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[idx * 2];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[idx * 2];",
            ),
            vec![in_u8(2 * n, 106), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let two = fb.bin(BinOp::Mul, iv, 2i64);
                let base = fb.gep(args[0], two, 1);
                let wide = fb.load(Ty::vec(ScalarTy::I8, 128), base, None);
                let pat: Vec<u32> = (0..64).map(|j| j * 2).collect();
                let e = fb.shuffle_const(wide, pat);
                packed_store(fb, args[1], iv, ScalarTy::I8, e);
            })
        }),
    );
    // 64. duplicate (2× upsample).
    v.push(
        Kernel::new(
            "dup2_u8",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    u8 x = a[idx];\n    out[idx * 2] = x;\n    out[idx * 2 + 1] = x;",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    u8 x = a[idx];\n    out[idx * 2] = x;\n    out[idx * 2 + 1] = x;",
            ),
            vec![in_u8(n, 107), BufSpec::output(ScalarTy::I8, 2 * n)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let x = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let pat: Vec<u32> = (0..128).map(|j| (j / 2) as u32).collect();
                let d = fb.shuffle_const(x, pat);
                let two = fb.bin(BinOp::Mul, iv, 2i64);
                let base = fb.gep(args[1], two, 1);
                fb.store(base, d, None);
            })
        }),
    );
    // 65. block reversal: negative stride (baseline rejects; Parsimony uses
    // a packed load + reverse shuffle under the stride window).
    v.push(
        Kernel::new(
            "reverse_u8",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[n - 1 - idx];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[n - 1 - idx];",
            ),
            vec![in_u8(n, 108), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                // load the mirrored block and reverse it
                let nm = fb.bin(BinOp::Sub, n_param(fb), iv);
                let start = fb.bin(BinOp::Sub, nm, 64i64);
                let base = fb.gep(args[0], start, 1);
                let x = fb.load(Ty::vec(ScalarTy::I8, 64), base, None);
                let pat: Vec<u32> = (0..64).rev().collect();
                let r = fb.shuffle_const(x, pat);
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        }),
    );
    // 66. lookup table: data-dependent addresses (gather for everyone).
    v.push(
        Kernel::new(
            "lut_u8",
            "layout",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict lut, u8* restrict out, i64 n",
                "    out[idx] = lut[(i64) a[idx]];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict lut, u8* restrict out, i64 n",
                "    out[idx] = lut[(i64) a[idx]];",
            ),
            vec![
                in_u8(n, 109),
                in_u8(256, 110),
                BufSpec::output(ScalarTy::I8, n),
            ],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 3, &[], 64, |fb, iv, args| {
                let x = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let idx = fb.cast(CastKind::Zext, x, Ty::vec(ScalarTy::I64, 64));
                let ptrs = fb.gep(args[1], idx, 1);
                let g = fb.load(Ty::vec(ScalarTy::I8, 64), ptrs, None);
                packed_store(fb, args[2], iv, ScalarTy::I8, g);
            })
        }),
    );

    // ---- misc ---------------------------------------------------------------

    // 67. fill (parity)
    v.push(
        Kernel::new(
            "fill_u8",
            "misc",
            64,
            psim_wrap(64, "u8* restrict out, u8 v, i64 n", "    out[idx] = v;"),
            serial_wrap("u8* restrict out, u8 v, i64 n", "    out[idx] = v;"),
            vec![BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_extra_args(vec![RtVal::S(0xA5)])
        .with_hand(|m| {
            vector_loop(m, 1, &[ScalarTy::I8], 64, |fb, iv, args| {
                let v = fb.splat(args[1], 64);
                packed_store(fb, args[0], iv, ScalarTy::I8, v);
            })
        }),
    );
    // 68. copy (parity)
    v.push(
        Kernel::new(
            "copy_u8",
            "misc",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[idx];",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    out[idx] = a[idx];",
            ),
            vec![in_u8(n, 111), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_hand(|m| elementwise(m, &[ScalarTy::I8], ScalarTy::I8, 64, |_fb, xs| xs[0])),
    );
    // 69. mask blend
    v.push(
        Kernel::new(
            "blend_u8",
            "misc",
            64,
            psim_wrap(
                64,
                "u8* restrict m, u8* restrict a, u8* restrict b, u8* restrict out, i64 n",
                "    out[idx] = m[idx] > (u8) 127 ? a[idx] : b[idx];",
            ),
            serial_wrap(
                "u8* restrict m, u8* restrict a, u8* restrict b, u8* restrict out, i64 n",
                "    out[idx] = m[idx] > (u8) 127 ? a[idx] : b[idx];",
            ),
            vec![
                in_u8(n, 112),
                in_u8(n, 113),
                in_u8(n, 114),
                BufSpec::output(ScalarTy::I8, n),
            ],
            n,
        )
        .with_hand(|m| {
            elementwise(
                m,
                &[ScalarTy::I8, ScalarTy::I8, ScalarTy::I8],
                ScalarTy::I8,
                64,
                |fb, xs| {
                    let t = fb.splat(psir::Const::i8(127), 64);
                    let c = fb.cmp(CmpPred::Ugt, xs[0], t);
                    fb.select(c, xs[1], xs[2])
                },
            )
        }),
    );
    // 70. background maintenance (grow-range): nested select with
    // saturating steps.
    v.push(
        Kernel::new(
            "background_u8",
            "misc",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict bg, i64 n",
                "    u8 x = a[idx];\n    u8 b = bg[idx];\n    bg[idx] = x > b ? add_sat(b, (u8) 1) : (x < b ? sub_sat(b, (u8) 1) : b);",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict bg, i64 n",
                "    u8 x = a[idx];\n    u8 b = bg[idx];\n    i32 w = (i32) b;\n    i32 up = min(w + 1, 255);\n    i32 dn = max(w - 1, 0);\n    bg[idx] = x > b ? (u8) up : (x < b ? (u8) dn : b);",
            ),
            vec![
                in_u8(n, 115),
                BufSpec::inout(ScalarTy::I8, n, Init::RandomInt { seed: 116 }),
            ],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let x = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let b = packed_load(fb, args[1], iv, ScalarTy::I8, 64);
                let one = fb.splat(psir::Const::i8(1), 64);
                let up = fb.bin(BinOp::AddSatU, b, one);
                let dn = fb.bin(BinOp::SubSatU, b, one);
                let gt = fb.cmp(CmpPred::Ugt, x, b);
                let lt = fb.cmp(CmpPred::Ult, x, b);
                let lo = fb.select(lt, dn, b);
                let r = fb.select(gt, up, lo);
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        }),
    );
    // 71. two-threshold segmentation
    v.push(
        Kernel::new(
            "segment_u8",
            "misc",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, u8 t0, u8 t1, i64 n",
                "    out[idx] = a[idx] > t1 ? (u8) 2 : (a[idx] > t0 ? (u8) 1 : (u8) 0);",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, u8 t0, u8 t1, i64 n",
                "    out[idx] = a[idx] > t1 ? (u8) 2 : (a[idx] > t0 ? (u8) 1 : (u8) 0);",
            ),
            vec![in_u8(n, 117), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_extra_args(vec![RtVal::S(80), RtVal::S(170)])
        .with_hand(|m| {
            crate::hand::elementwise_extra(
                m,
                &[ScalarTy::I8],
                ScalarTy::I8,
                &[ScalarTy::I8, ScalarTy::I8],
                64,
                |fb, xs, e| {
                    let t0 = fb.splat(e[0], 64);
                    let t1 = fb.splat(e[1], 64);
                    let c0 = fb.cmp(CmpPred::Ugt, xs[0], t0);
                    let c1 = fb.cmp(CmpPred::Ugt, xs[0], t1);
                    let zero = fb.splat(psir::Const::i8(0), 64);
                    let one = fb.splat(psir::Const::i8(1), 64);
                    let two = fb.splat(psir::Const::i8(2), 64);
                    let low = fb.select(c0, one, zero);
                    fb.select(c1, two, low)
                },
            )
        }),
    );
    // 72. local binary pattern over 3 forward neighbors.
    v.push(
        Kernel::new(
            "lbp3_u8",
            "misc",
            64,
            psim_wrap(
                64,
                "u8* restrict a, u8* restrict out, i64 n",
                "    u8 c = a[idx];\n    u8 r = (a[idx + 1] > c ? (u8) 1 : (u8) 0) | (a[idx + 2] > c ? (u8) 2 : (u8) 0) | (a[idx + 3] > c ? (u8) 4 : (u8) 0);\n    out[idx] = r;",
            ),
            serial_wrap(
                "u8* restrict a, u8* restrict out, i64 n",
                "    u8 c = a[idx];\n    u8 r = (a[idx + 1] > c ? (u8) 1 : (u8) 0) | (a[idx + 2] > c ? (u8) 2 : (u8) 0) | (a[idx + 3] > c ? (u8) 4 : (u8) 0);\n    out[idx] = r;",
            ),
            vec![in_u8(n + 64, 118), BufSpec::output(ScalarTy::I8, n)],
            n,
        )
        .with_hand(|m| {
            vector_loop(m, 2, &[], 64, |fb, iv, args| {
                let c = packed_load(fb, args[0], iv, ScalarTy::I8, 64);
                let zero = fb.splat(psir::Const::i8(0), 64);
                let mut r = zero;
                for (off, bit) in [(1i64, 1i8), (2, 2), (3, 4)] {
                    let i = fb.bin(BinOp::Add, iv, off);
                    let x = packed_load(fb, args[0], i, ScalarTy::I8, 64);
                    let gt = fb.cmp(CmpPred::Ugt, x, c);
                    let b = fb.splat(psir::Const::i8(bit), 64);
                    let sel = fb.select(gt, b, zero);
                    r = fb.bin(BinOp::Or, r, sel);
                }
                packed_store(fb, args[1], iv, ScalarTy::I8, r);
            })
        }),
    );

    v
}

/// The trailing `n` parameter of a hand-built kernel (last parameter).
fn n_param(fb: &psir::FunctionBuilder) -> psir::Value {
    psir::Value::Param((fb.func().params.len() - 1) as u32)
}

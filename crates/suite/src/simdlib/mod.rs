//! The 72 Simd-Library-family kernels of Figure 5.
//!
//! Each kernel has a serial PsimC version (scalar / autovec baselines), a
//! Parsimony PsimC version, and a hand-written vector-IR version. Where the
//! Simd Library's intrinsics implementations use a hardware trick (psadbw
//! for byte sums, saturating-subtract absolute difference, divide-by-255
//! shifts), the Parsimony and hand-written versions use it too, while the
//! serial version uses the straightforward widened formula — the same
//! relationship the paper's three bars have.

mod convert_filter;
mod floats_reduce;
mod layout_misc;
mod pointwise;

use crate::Kernel;

/// All 72 kernels at workload size `n` (elements; must be a multiple of
/// 256 so that every gang size divides it and hand-written kernels need no
/// epilogue).
///
/// # Panics
/// Panics if `n` is not a positive multiple of 256.
pub fn kernels(n: u64) -> Vec<Kernel> {
    assert!(
        n > 0 && n.is_multiple_of(256),
        "workload must be a multiple of 256"
    );
    let mut v = Vec::new();
    v.extend(pointwise::kernels(n));
    v.extend(convert_filter::kernels(n));
    v.extend(floats_reduce::kernels(n));
    v.extend(layout_misc::kernels(n));
    v
}

/// The default Figure 5 workload size (1080p-row-scale).
pub const DEFAULT_N: u64 = 1 << 14;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_72_kernels_with_unique_names() {
        let ks = kernels(512);
        assert_eq!(
            ks.len(),
            72,
            "the paper evaluates 72 Simd Library benchmarks"
        );
        let mut names: Vec<&str> = ks.iter().map(|k| k.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 72, "kernel names must be unique");
    }

    #[test]
    fn all_sources_compile() {
        for k in kernels(512) {
            psimc::compile(&k.psim_src).unwrap_or_else(|e| panic!("{}: psim source: {e}", k.name));
            psimc::compile(&k.serial_src)
                .unwrap_or_else(|e| panic!("{}: serial source: {e}", k.name));
        }
    }

    #[test]
    fn all_kernels_have_handwritten_versions() {
        for k in kernels(512) {
            assert!(k.hand.is_some(), "{} lacks a hand-written version", k.name);
        }
    }
}

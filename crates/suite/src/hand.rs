//! Builders for the hand-written ("intrinsics") configurations.
//!
//! These construct vector IR directly with the `psir` builder — the moral
//! equivalent of a programmer writing AVX-512 intrinsics: explicit packed
//! loads/stores, native saturating/averaging/`vpsadbw` operations, manual
//! shuffles for layout changes. Workload sizes are multiples of the vector
//! factor, so the builders need no scalar epilogue (matching how intrinsics
//! kernels in the Simd Library handle their aligned fast path).

use psir::{BinOp, CmpPred, Const, FunctionBuilder, Param, ReduceOp, ScalarTy, Ty, Value};

/// Builds `main(buf₀…buf_{k−1}, extra…, n)` containing a single vector loop
/// `for (i = 0; i + step <= n; i += step)`; `body` receives the builder, the
/// induction variable and all parameter values.
pub fn vector_loop(
    m: &mut psir::Module,
    buf_count: usize,
    extra: &[ScalarTy],
    step: u64,
    body: impl Fn(&mut FunctionBuilder, Value, &[Value]),
) {
    let mut params: Vec<Param> = (0..buf_count)
        .map(|i| Param::noalias(format!("p{i}"), Ty::scalar(ScalarTy::Ptr)))
        .collect();
    for (i, &e) in extra.iter().enumerate() {
        params.push(Param::new(format!("e{i}"), Ty::Scalar(e)));
    }
    params.push(Param::new("n", Ty::scalar(ScalarTy::I64)));
    let nparams = params.len();
    let mut fb = FunctionBuilder::new("main", params, Ty::Void);
    let n = Value::Param((nparams - 1) as u32);
    let args: Vec<Value> = (0..nparams as u32).map(Value::Param).collect();

    let header = fb.new_block("h.header");
    let body_blk = fb.new_block("h.body");
    let exit = fb.new_block("h.exit");
    let pre = fb.current_block();
    fb.br(header);
    fb.switch_to(header);
    let iv = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(pre, psir::c_i64(0))]);
    let next_end = fb.bin(BinOp::Add, iv, Value::Const(Const::i64(step as i64)));
    let ok = fb.cmp(CmpPred::Sle, next_end, n);
    fb.cond_br(ok, body_blk, exit);
    fb.switch_to(body_blk);
    body(&mut fb, iv, &args);
    let latch = fb.current_block();
    let nx = fb.bin(BinOp::Add, iv, Value::Const(Const::i64(step as i64)));
    fb.phi_add_incoming(iv, latch, nx);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(None);
    let f = fb.finish();
    psir::assert_valid(&f);
    m.add_function(f);
}

/// Packed load of `vf` lanes of `elem` at `ptr[iv]`.
pub fn packed_load(
    fb: &mut FunctionBuilder,
    ptr: Value,
    iv: Value,
    elem: ScalarTy,
    vf: u32,
) -> Value {
    let addr = fb.gep(ptr, iv, elem.size_bytes());
    fb.load(Ty::vec(elem, vf), addr, None)
}

/// Packed store of a vector at `ptr[iv]`.
pub fn packed_store(fb: &mut FunctionBuilder, ptr: Value, iv: Value, elem: ScalarTy, v: Value) {
    let addr = fb.gep(ptr, iv, elem.size_bytes());
    fb.store(addr, v, None);
}

/// Element-wise kernel: `out[i] = f(in₀[i], …)`. Signature:
/// `main(in₀…in_{k−1}, out, n)`.
pub fn elementwise(
    m: &mut psir::Module,
    in_elems: &[ScalarTy],
    out_elem: ScalarTy,
    vf: u32,
    f: impl Fn(&mut FunctionBuilder, &[Value]) -> Value,
) {
    let ins = in_elems.to_vec();
    vector_loop(m, ins.len() + 1, &[], vf as u64, move |fb, iv, args| {
        let loaded: Vec<Value> = ins
            .iter()
            .enumerate()
            .map(|(k, &e)| packed_load(fb, args[k], iv, e, vf))
            .collect();
        let r = f(fb, &loaded);
        packed_store(fb, args[ins.len()], iv, out_elem, r);
    });
}

/// In-place element-wise kernel: `a[i] = f(a[i])`. Signature: `main(a, n)`.
pub fn map_inplace(
    m: &mut psir::Module,
    elem: ScalarTy,
    vf: u32,
    f: impl Fn(&mut FunctionBuilder, Value) -> Value,
) {
    vector_loop(m, 1, &[], vf as u64, move |fb, iv, args| {
        let x = packed_load(fb, args[0], iv, elem, vf);
        let r = f(fb, x);
        packed_store(fb, args[0], iv, elem, r);
    });
}

/// Element-wise kernel with extra scalar arguments after the buffers.
pub fn elementwise_extra(
    m: &mut psir::Module,
    in_elems: &[ScalarTy],
    out_elem: ScalarTy,
    extra: &[ScalarTy],
    vf: u32,
    f: impl Fn(&mut FunctionBuilder, &[Value], &[Value]) -> Value,
) {
    let ins = in_elems.to_vec();
    let n_in = ins.len();
    let n_extra = extra.len();
    vector_loop(m, n_in + 1, extra, vf as u64, move |fb, iv, args| {
        let loaded: Vec<Value> = ins
            .iter()
            .enumerate()
            .map(|(k, &e)| packed_load(fb, args[k], iv, e, vf))
            .collect();
        let extras: Vec<Value> = (0..n_extra).map(|k| args[n_in + 1 + k]).collect();
        let r = f(fb, &loaded, &extras);
        packed_store(fb, args[n_in], iv, out_elem, r);
    });
}

/// Reduction kernel: `out[0] = reduce(f(in₀[i], …))`. Signature matches the
/// psim version: `main(in₀…in_{k−1}, partials, out, n)` — the handwritten
/// version leaves `partials` untouched and keeps a vector accumulator.
#[allow(clippy::too_many_arguments)]
pub fn reduction(
    m: &mut psir::Module,
    in_elems: &[ScalarTy],
    acc_elem: ScalarTy,
    vf: u32,
    identity: u64,
    fold: impl Fn(&mut FunctionBuilder, Value, &[Value]) -> Value,
    final_op: ReduceOp,
) {
    // Hand-rolled: the vector_loop helper has no loop-carried state, so
    // build directly.
    let in_elems = in_elems.to_vec();
    let buf_count = in_elems.len() + 2;
    let mut params: Vec<Param> = (0..buf_count)
        .map(|i| Param::noalias(format!("p{i}"), Ty::scalar(ScalarTy::Ptr)))
        .collect();
    params.push(Param::new("n", Ty::scalar(ScalarTy::I64)));
    let n = Value::Param(buf_count as u32);
    let out_ptr = Value::Param((buf_count - 1) as u32);
    let mut fb = FunctionBuilder::new("main", params, Ty::Void);

    let header = fb.new_block("r.header");
    let body_blk = fb.new_block("r.body");
    let exit = fb.new_block("r.exit");
    let pre = fb.current_block();
    let init = fb.const_vec(acc_elem, vec![identity; vf as usize]);
    fb.br(header);
    fb.switch_to(header);
    let iv = fb.phi_typed(Ty::scalar(ScalarTy::I64), vec![(pre, psir::c_i64(0))]);
    let vacc = fb.phi_typed(Ty::vec(acc_elem, vf), vec![(pre, init)]);
    let next_end = fb.bin(BinOp::Add, iv, Value::Const(Const::i64(vf as i64)));
    let ok = fb.cmp(CmpPred::Sle, next_end, n);
    fb.cond_br(ok, body_blk, exit);
    fb.switch_to(body_blk);
    let loaded: Vec<Value> = in_elems
        .iter()
        .enumerate()
        .map(|(k, &e)| packed_load(&mut fb, Value::Param(k as u32), iv, e, vf))
        .collect();
    let vacc2 = fold(&mut fb, vacc, &loaded);
    let latch = fb.current_block();
    let nx = fb.bin(BinOp::Add, iv, Value::Const(Const::i64(vf as i64)));
    fb.phi_add_incoming(iv, latch, nx);
    fb.phi_add_incoming(vacc, latch, vacc2);
    fb.br(header);
    fb.switch_to(exit);
    let total = fb.reduce(final_op, vacc, None);
    fb.store(out_ptr, total, None);
    fb.ret(None);
    let f = fb.finish();
    psir::assert_valid(&f);
    m.add_function(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::{Interp, Memory, Module, RtVal};

    #[test]
    fn elementwise_builder_runs() {
        let mut m = Module::new();
        elementwise(
            &mut m,
            &[ScalarTy::I8, ScalarTy::I8],
            ScalarTy::I8,
            64,
            |fb, xs| fb.bin(BinOp::AddSatU, xs[0], xs[1]),
        );
        let mut mem = Memory::default();
        let a: Vec<u8> = (0..128u32).map(|i| (i * 3) as u8).collect();
        let b: Vec<u8> = (0..128u32).map(|i| (200 - i) as u8).collect();
        let pa = mem.alloc_bytes(&a, 64).unwrap();
        let pb = mem.alloc_bytes(&b, 64).unwrap();
        let po = mem.alloc(128, 64).unwrap();
        let mut it = Interp::with_defaults(&m, mem);
        it.call(
            "main",
            &[RtVal::S(pa), RtVal::S(pb), RtVal::S(po), RtVal::S(128)],
        )
        .unwrap();
        let out = it.mem.read_bytes(po, 128).unwrap();
        for i in 0..128 {
            assert_eq!(out[i], a[i].saturating_add(b[i]));
        }
        assert!(it.stats.packed_loads >= 4);
    }

    #[test]
    fn reduction_builder_runs() {
        let mut m = Module::new();
        reduction(
            &mut m,
            &[ScalarTy::I64],
            ScalarTy::I64,
            8,
            0,
            |fb, acc, xs| fb.bin(BinOp::Add, acc, xs[0]),
            ReduceOp::Add,
        );
        let mut mem = Memory::default();
        let vals: Vec<i64> = (0..64).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let pa = mem.alloc_bytes(&bytes, 64).unwrap();
        let pp = mem.alloc(64, 64).unwrap();
        let po = mem.alloc(8, 64).unwrap();
        let mut it = Interp::with_defaults(&m, mem);
        it.call(
            "main",
            &[RtVal::S(pa), RtVal::S(pp), RtVal::S(po), RtVal::S(64)],
        )
        .unwrap();
        let out = i64::from_le_bytes(it.mem.read_bytes(po, 8).unwrap().try_into().unwrap());
        assert_eq!(out, (0..64).sum::<i64>());
    }
}

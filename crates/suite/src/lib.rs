//! # suite — the evaluation workloads
//!
//! The paper's measuring instrument: 72 kernels in the families of the Simd
//! Library (image processing / ML primitives, Figure 5) and the 7 ispc
//! benchmark workloads (Figure 4). Every kernel carries up to five
//! implementations, mirroring the artifact's configurations:
//!
//! * **serial PsimC** — compiled as-is (the *scalar* baseline) or through
//!   the `autovec` baseline vectorizer,
//! * **Parsimony PsimC** — the same algorithm written against the `psim`
//!   SPMD API, compiled by the `parsimony` pass (optionally in
//!   gang-synchronous / ispc-like mode, or with shape analysis disabled),
//! * **hand-written vector IR** — what an intrinsics programmer would
//!   write, built directly with the `psir` builder.
//!
//! The [`runner`] executes any configuration on the shared workload,
//! returning simulated cycles from the `vmach` cost model plus the output
//! buffers, so differential tests can require that every configuration
//! computes byte-identical results.

#![warn(missing_docs)]

pub mod hand;
pub mod ispc;
pub mod runner;
pub mod simdlib;
pub mod wrap;

use psir::{RtVal, ScalarTy};

/// How a workload buffer is initialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zero bytes.
    Zero,
    /// Deterministic pseudo-random integers (full element range).
    RandomInt {
        /// RNG seed.
        seed: u64,
    },
    /// Deterministic pseudo-random floats in `[lo, hi)`.
    RandomF32 {
        /// RNG seed.
        seed: u64,
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// `0, 1, 2, …` truncated to the element type.
    Ramp,
    /// Integer-valued pseudo-random `f32` in `[lo, hi)`. Sums of such
    /// values are exact while they stay below 2²⁴, so float reductions are
    /// bit-identical regardless of summation order — which lets the
    /// differential tests compare reduction outputs across configurations
    /// that legitimately reassociate.
    RandomF32Int {
        /// RNG seed.
        seed: u64,
        /// Lower bound (integer).
        lo: i32,
        /// Upper bound (integer, exclusive).
        hi: i32,
    },
}

/// One workload buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct BufSpec {
    /// Element type.
    pub elem: ScalarTy,
    /// Element count.
    pub len: u64,
    /// Initialization.
    pub init: Init,
    /// Whether differential tests compare this buffer across configs.
    pub check: bool,
}

impl BufSpec {
    /// An input buffer (not compared).
    pub fn input(elem: ScalarTy, len: u64, init: Init) -> BufSpec {
        BufSpec {
            elem,
            len,
            init,
            check: false,
        }
    }

    /// An output buffer, zero-initialized and compared.
    pub fn output(elem: ScalarTy, len: u64) -> BufSpec {
        BufSpec {
            elem,
            len,
            init: Init::Zero,
            check: true,
        }
    }

    /// An in-place buffer: initialized and compared.
    pub fn inout(elem: ScalarTy, len: u64, init: Init) -> BufSpec {
        BufSpec {
            elem,
            len,
            init,
            check: true,
        }
    }
}

/// A benchmark kernel with all its implementations.
pub struct Kernel {
    /// Kernel name (unique within its suite).
    pub name: String,
    /// Family label (for reporting).
    pub family: &'static str,
    /// Gang size of the Parsimony version.
    pub gang: u32,
    /// PsimC source of the Parsimony (SPMD) version; entry `main`.
    pub psim_src: String,
    /// PsimC source of the serial version; entry `main`.
    pub serial_src: String,
    /// Hand-written vector-IR builder (Figure 5 configurations only).
    #[allow(clippy::type_complexity)]
    pub hand: Option<Box<dyn Fn(&mut psir::Module) + Send + Sync>>,
    /// Workload buffers, in parameter order.
    pub buffers: Vec<BufSpec>,
    /// Extra scalar arguments appended after the buffer pointers (before
    /// the trailing element count).
    pub extra_args: Vec<RtVal>,
    /// Element count `n` passed as the last argument.
    pub n: u64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("family", &self.family)
            .field("gang", &self.gang)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Convenience constructor; see field docs.
    pub fn new(
        name: impl Into<String>,
        family: &'static str,
        gang: u32,
        psim_src: impl Into<String>,
        serial_src: impl Into<String>,
        buffers: Vec<BufSpec>,
        n: u64,
    ) -> Kernel {
        Kernel {
            name: name.into(),
            family,
            gang,
            psim_src: psim_src.into(),
            serial_src: serial_src.into(),
            hand: None,
            buffers,
            extra_args: Vec::new(),
            n,
        }
    }

    /// Attaches the hand-written builder.
    pub fn with_hand(mut self, hand: impl Fn(&mut psir::Module) + Send + Sync + 'static) -> Kernel {
        self.hand = Some(Box::new(hand));
        self
    }

    /// Appends extra scalar arguments.
    pub fn with_extra_args(mut self, args: Vec<RtVal>) -> Kernel {
        self.extra_args = args;
        self
    }
}

//! Source templates guaranteeing algorithm identity across configurations.
//!
//! Most kernels are written once as a *body* operating on the index `idx`;
//! [`psim_wrap`] embeds it in a `psim gang(G) threads(n)` region (the
//! Parsimony version) and [`serial_wrap`] in a plain `for` loop (the
//! scalar / auto-vectorized baseline) — exactly how the paper ports ispc
//! benchmarks "maintaining the same algorithms" (§5).

/// Wraps `body` (which uses `idx`) in a `psim` region. `params` is the full
/// parameter list; the trailing parameter must be `i64 n`.
pub fn psim_wrap(gang: u32, params: &str, body: &str) -> String {
    format!(
        "void main({params}) {{\n  psim gang({gang}) threads(n) {{\n    i64 idx = psim_thread_num();\n{body}\n  }}\n}}\n"
    )
}

/// Wraps the same `body` in a serial `for` loop.
pub fn serial_wrap(params: &str, body: &str) -> String {
    format!("void main({params}) {{\n  for (i64 idx = 0; idx < n; idx += 1) {{\n{body}\n  }}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapped_sources_compile() {
        let body = "    out[idx] = add_sat(a[idx], b[idx]);";
        let params = "u8* restrict a, u8* restrict b, u8* restrict out, i64 n";
        let p = psim_wrap(64, params, body);
        let s = serial_wrap(params, body);
        psimc::compile(&p).expect("psim version compiles");
        psimc::compile(&s).expect("serial version compiles");
    }
}

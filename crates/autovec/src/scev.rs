//! Linear (SCEV-style) classification of loop-body values.
//!
//! Every value inside a candidate loop is classified relative to the
//! canonical induction variable `iv`:
//!
//! * [`Scev::Inv`] — loop-invariant (defined outside the loop),
//! * [`Scev::Lin`] — a linear function `Σ cᵢ·invᵢ + s·iv + k` (addresses and
//!   index arithmetic),
//! * [`Scev::Other`] — everything else (loaded data, nonlinear arithmetic).
//!
//! Only `Lin` addresses whose per-iteration byte stride equals the element
//! size vectorize into packed memory operations; the baseline has no
//! gather/scatter path.

use psir::{BinOp, Function, Inst, InstId, Value};
use std::collections::{HashMap, HashSet};

/// A linear form `Σ coeff·piece + iv_scale·iv + konst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lin {
    /// Invariant pieces with integer coefficients.
    pub pieces: Vec<(Value, i64)>,
    /// Coefficient of the induction variable.
    pub iv_scale: i64,
    /// Constant term.
    pub konst: i64,
}

impl Lin {
    fn inv(v: Value) -> Lin {
        Lin {
            pieces: vec![(v, 1)],
            iv_scale: 0,
            konst: 0,
        }
    }

    fn konst(k: i64) -> Lin {
        Lin {
            pieces: vec![],
            iv_scale: 0,
            konst: k,
        }
    }

    fn iv() -> Lin {
        Lin {
            pieces: vec![],
            iv_scale: 1,
            konst: 0,
        }
    }

    fn add(&self, o: &Lin, sign: i64) -> Lin {
        // All coefficient arithmetic wraps mod 2⁶⁴, matching the IR's
        // wrapping semantics (linear forms are only *compared*, and both
        // sides of a comparison wrap identically).
        let mut pieces = self.pieces.clone();
        for (v, c) in &o.pieces {
            match pieces.iter_mut().find(|(w, _)| w == v) {
                Some((_, cc)) => *cc = cc.wrapping_add(c.wrapping_mul(sign)),
                None => pieces.push((*v, c.wrapping_mul(sign))),
            }
        }
        pieces.retain(|(_, c)| *c != 0);
        Lin {
            pieces,
            iv_scale: self.iv_scale.wrapping_add(sign.wrapping_mul(o.iv_scale)),
            konst: self.konst.wrapping_add(sign.wrapping_mul(o.konst)),
        }
    }

    fn scale(&self, k: i64) -> Lin {
        Lin {
            pieces: self
                .pieces
                .iter()
                .map(|(v, c)| (*v, c.wrapping_mul(k)))
                .filter(|(_, c)| *c != 0)
                .collect(),
            iv_scale: self.iv_scale.wrapping_mul(k),
            konst: self.konst.wrapping_mul(k),
        }
    }

    /// Whether the form is invariant (no `iv` component).
    pub fn is_invariant(&self) -> bool {
        self.iv_scale == 0
    }
}

/// Classification of one value relative to a loop's induction variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scev {
    /// Loop-invariant value.
    Inv,
    /// Linear in the induction variable.
    Lin(Lin),
    /// Not linear (loaded data, products of non-constants, …).
    Other,
}

impl Scev {
    /// The linear form, if any (`Inv` values are linear with scale 0).
    pub fn lin_of(&self, v: Value) -> Option<Lin> {
        match self {
            Scev::Lin(l) => Some(l.clone()),
            Scev::Inv => Some(Lin::inv(v)),
            Scev::Other => None,
        }
    }
}

/// Classifies all values used inside a loop body relative to `iv`.
///
/// `in_loop` must contain every instruction id defined inside the loop
/// (header included). Values not in `in_loop` are invariant by definition.
pub fn classify(
    f: &Function,
    iv: InstId,
    in_loop: &HashSet<InstId>,
    body_order: &[InstId],
) -> HashMap<InstId, Scev> {
    let mut map: HashMap<InstId, Scev> = HashMap::new();
    map.insert(iv, Scev::Lin(Lin::iv()));

    let classify_val = |map: &HashMap<InstId, Scev>, v: Value| -> Scev {
        match v {
            Value::Const(c) => {
                if c.ty.is_int() {
                    Scev::Lin(Lin::konst(c.as_i64()))
                } else {
                    Scev::Inv
                }
            }
            Value::Param(_) => Scev::Inv,
            Value::Inst(i) => {
                if !in_loop.contains(&i) {
                    Scev::Inv
                } else {
                    map.get(&i).cloned().unwrap_or(Scev::Other)
                }
            }
        }
    };

    for &id in body_order {
        if id == iv {
            continue;
        }
        let inst = f.inst(id);
        let ty = f.inst_ty(id);
        let s = match inst {
            Inst::Bin { op, a, b } => {
                let (sa, sb) = (classify_val(&map, *a), classify_val(&map, *b));
                let (la, lb) = (sa.lin_of(*a), sb.lin_of(*b));
                match (op, la, lb) {
                    (BinOp::Add, Some(x), Some(y)) => Scev::Lin(x.add(&y, 1)),
                    (BinOp::Sub, Some(x), Some(y)) => Scev::Lin(x.add(&y, -1)),
                    (BinOp::Mul | BinOp::Shl, Some(x), Some(y)) => {
                        // Multiplication by a compile-time constant only.
                        let konst_of = |l: &Lin| -> Option<i64> {
                            if l.pieces.is_empty() && l.iv_scale == 0 {
                                Some(l.konst)
                            } else {
                                None
                            }
                        };
                        if let Some(k) = konst_of(&y) {
                            let k = if matches!(op, BinOp::Shl) {
                                1i64 << (k & 63)
                            } else {
                                k
                            };
                            Scev::Lin(x.scale(k))
                        } else if let (BinOp::Mul, Some(k)) = (*op, konst_of(&x)) {
                            Scev::Lin(y.scale(k))
                        } else if x.is_invariant() && y.is_invariant() {
                            Scev::Inv
                        } else {
                            Scev::Other
                        }
                    }
                    (_, Some(x), Some(y)) if x.is_invariant() && y.is_invariant() => Scev::Inv,
                    _ => Scev::Other,
                }
            }
            // Width changes preserve linearity for the index ranges kernels
            // use (the vectorizer only consumes strides, which are exact for
            // in-range indices; out-of-range indices would fault anyway).
            Inst::Cast { a, .. } => match classify_val(&map, *a) {
                Scev::Lin(l) if ty.elem().is_some_and(|e| e.is_int() || e.is_ptr()) => Scev::Lin(l),
                Scev::Inv => Scev::Inv,
                _ => Scev::Other,
            },
            Inst::Gep { base, index, scale } => {
                let sb = classify_val(&map, *base);
                let si = classify_val(&map, *index);
                match (sb.lin_of(*base), si.lin_of(*index)) {
                    (Some(b), Some(i)) => Scev::Lin(b.add(&i.scale(*scale as i64), 1)),
                    _ => Scev::Other,
                }
            }
            Inst::Un { a, .. } | Inst::Select { cond: a, .. } => {
                // Conservative: invariant if all operands invariant.
                let _ = a;
                let ops = inst.operands();
                if ops.iter().all(|&o| {
                    matches!(classify_val(&map, o), Scev::Inv)
                        || matches!(classify_val(&map,o), Scev::Lin(ref l) if l.is_invariant())
                }) {
                    Scev::Inv
                } else {
                    Scev::Other
                }
            }
            Inst::Load { .. } | Inst::Call { .. } | Inst::Intrin { .. } => Scev::Other,
            Inst::Cmp { .. } => Scev::Other,
            _ => Scev::Other,
        };
        map.insert(id, s);
    }
    map
}

/// The root of a pointer expression: follows `gep` bases to a parameter or
/// other defining value.
pub fn base_root(f: &Function, mut v: Value) -> Value {
    loop {
        match v {
            Value::Inst(i) => match f.inst(i) {
                Inst::Gep { base, .. } => v = *base,
                Inst::Cast { a, .. } => v = *a,
                _ => return v,
            },
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psir::{FunctionBuilder, Param, ScalarTy, Ty};

    #[test]
    fn linear_forms_compose() {
        // Build: v = (iv * 4 + 8) inside a pseudo-loop
        let mut fb = FunctionBuilder::new(
            "t",
            vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
            Ty::Void,
        );
        let iv = fb.bin(BinOp::Add, 0i64, 0i64); // stand-in for the IV phi
        let x4 = fb.bin(BinOp::Mul, iv, 4i64);
        let x48 = fb.bin(BinOp::Add, x4, 8i64);
        let addr = fb.gep(Value::Param(0), x48, 2);
        fb.ret(None);
        let f = fb.finish();
        let iv_id = iv.as_inst().unwrap();
        let in_loop: HashSet<InstId> = [
            iv_id,
            x4.as_inst().unwrap(),
            x48.as_inst().unwrap(),
            addr.as_inst().unwrap(),
        ]
        .into_iter()
        .collect();
        let order: Vec<InstId> = in_loop.iter().copied().collect();
        let mut order = order;
        order.sort();
        let map = classify(&f, iv_id, &in_loop, &order);
        match &map[&x48.as_inst().unwrap()] {
            Scev::Lin(l) => {
                assert_eq!(l.iv_scale, 4);
                assert_eq!(l.konst, 8);
            }
            other => panic!("expected Lin, got {other:?}"),
        }
        match &map[&addr.as_inst().unwrap()] {
            Scev::Lin(l) => {
                assert_eq!(l.iv_scale, 8); // 4 elements × 2 bytes
                assert_eq!(l.konst, 16);
                assert_eq!(l.pieces, vec![(Value::Param(0), 1)]);
            }
            other => panic!("expected Lin, got {other:?}"),
        }
    }

    #[test]
    fn base_roots_follow_geps() {
        let mut fb = FunctionBuilder::new(
            "r",
            vec![Param::new("p", Ty::scalar(ScalarTy::Ptr))],
            Ty::Void,
        );
        let a = fb.gep(Value::Param(0), 4i64, 1);
        let b = fb.gep(a, 8i64, 4);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(base_root(&f, b), Value::Param(0));
    }
}

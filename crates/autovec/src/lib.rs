//! # autovec — the baseline loop auto-vectorizer
//!
//! The paper's baselines are LLVM's default loop + SLP auto-vectorization of
//! *serial* code. This crate reproduces that role over `psir`: a classical
//! innermost-loop vectorizer with a canonical-induction-variable
//! requirement, linear (SCEV-style) address analysis, a conservative
//! memory-dependence legality check, and a scalar remainder loop — plus a
//! small superword-level-parallelism (SLP) pass for straight-line code.
//!
//! Deliberately missing, because the mainstream baseline lacks them too
//! (§2 of the paper — this is what separates the 3.46× baseline from
//! Parsimony's 7.7×):
//!
//! * no gather/scatter emission (non-unit strides fail → scalar),
//! * no vectorization of math-library calls (no `-mveclib`),
//! * no horizontal operations — serial loop semantics cannot express them,
//! * no if-conversion of control flow in loop bodies,
//! * aliasing is only disproved for `restrict` (noalias) parameters,
//! * genuine loop-carried dependences (e.g. `a[i+1] = a[i]`) are detected
//!   and reject vectorization, as they must.

#![warn(missing_docs)]

mod loopvec;
mod scev;
mod slp;

pub use loopvec::{autovectorize_function, autovectorize_module, AutovecReport};
pub use scev::{Lin, Scev};
pub use slp::slp_function;

/// Options for the auto-vectorizer.
#[derive(Debug, Clone)]
pub struct AutovecOptions {
    /// Vector register width in bits (the VF is derived from the widest
    /// element type in the loop body).
    pub vector_bits: u32,
    /// Run the SLP pass on straight-line code after loop vectorization.
    pub slp: bool,
}

impl Default for AutovecOptions {
    fn default() -> AutovecOptions {
        AutovecOptions {
            vector_bits: 512,
            slp: true,
        }
    }
}

//! The innermost-loop vectorizer.
//!
//! For each innermost, while-shaped loop with a canonical induction
//! variable, unit-stride memory references, no calls and no control flow in
//! the body, this pass emits a vector main loop plus the original loop as a
//! scalar remainder. Everything else is copied unchanged. Reductions
//! (`acc = acc ⊕ f(i)`) are supported with a horizontal reduce in the
//! middle block, matching what production loop vectorizers do.

use crate::scev::{base_root, classify, Lin, Scev};
use crate::AutovecOptions;
use parsimony::structurize::{structurize, Node};
use psir::{
    BinOp, BlockId, CmpPred, Const, Function, FunctionBuilder, Inst, InstId, Intrinsic, Module,
    ReduceOp, ScalarTy, Terminator, Ty, Value,
};
use std::collections::{HashMap, HashSet};
use telemetry::{Pass, Remark, RemarkKind, Severity};

/// What happened to each candidate loop.
#[derive(Debug, Clone, Default)]
pub struct AutovecReport {
    /// Number of loops vectorized.
    pub vectorized: usize,
    /// Rejections: (loop header in the original function, reason).
    pub rejected: Vec<(BlockId, String)>,
    /// Structured remarks mirroring the two fields above.
    pub remarks: Vec<Remark>,
}

impl AutovecReport {
    /// Records a vectorized loop.
    fn note_vectorized(&mut self, function: &str, header: BlockId) {
        self.vectorized += 1;
        self.remarks.push(
            Remark::new(
                Pass::Autovec,
                Severity::Passed,
                function,
                RemarkKind::LoopVectorized,
            )
            .at_block(header.0),
        );
    }

    /// Records a rejected loop.
    fn note_rejected(&mut self, function: &str, header: BlockId, reason: String) {
        self.remarks.push(
            Remark::new(
                Pass::Autovec,
                Severity::Missed,
                function,
                RemarkKind::LoopRejected {
                    reason: reason.clone(),
                },
            )
            .at_block(header.0),
        );
        self.rejected.push((header, reason));
    }
}

struct Copier<'a> {
    old: &'a Function,
    opts: &'a AutovecOptions,
    fb: FunctionBuilder,
    env: HashMap<Value, Value>,
    report: AutovecReport,
    old_preds: HashMap<BlockId, Vec<BlockId>>,
    dom: psir::DomTree,
}

/// A recognized reduction.
struct Reduction {
    phi: InstId,
    op: BinOp,
    update: InstId,
}

/// A vectorizable loop, after legality analysis.
struct Plan {
    iv: InstId,
    step: i64,
    init: Value,
    bound: Value,
    pred: CmpPred,
    reductions: Vec<Reduction>,
    vf: u32,
    scev: HashMap<InstId, Scev>,
    body_insts: Vec<InstId>,
}

impl<'a> Copier<'a> {
    fn map(&self, v: Value) -> Value {
        match v {
            Value::Const(_) | Value::Param(_) => v,
            Value::Inst(_) => *self
                .env
                .get(&v)
                .unwrap_or_else(|| panic!("unmapped value {v:?} in @{}", self.old.name)),
        }
    }

    fn latch_of(&self, header: BlockId) -> BlockId {
        self.old_preds[&header]
            .iter()
            .copied()
            .find(|&p| self.dom.dominates(header, p))
            .expect("loop header has a dominated latch")
    }

    fn old_phis(&self, b: BlockId) -> Vec<InstId> {
        self.old
            .block(b)
            .insts
            .iter()
            .copied()
            .filter(|&i| matches!(self.old.inst(i), Inst::Phi { .. }))
            .collect()
    }

    fn phi_edge(&self, phi: InstId, pred: impl Fn(BlockId) -> bool) -> Value {
        match self.old.inst(phi) {
            Inst::Phi { incoming } => incoming
                .iter()
                .find(|(b, _)| pred(*b))
                .map(|(_, v)| *v)
                .expect("phi edge exists"),
            _ => unreachable!(),
        }
    }

    fn blocks_in(nodes: &[Node], out: &mut Vec<BlockId>) {
        for n in nodes {
            match n {
                Node::Block(b) => out.push(*b),
                Node::If {
                    cond_block,
                    then_nodes,
                    else_nodes,
                    ..
                } => {
                    out.push(*cond_block);
                    Self::blocks_in(then_nodes, out);
                    Self::blocks_in(else_nodes, out);
                }
                Node::Loop { header, body, .. } => {
                    out.push(*header);
                    Self::blocks_in(body, out);
                }
            }
        }
    }

    // ---- structural copy ---------------------------------------------------

    fn copy_inst(&mut self, id: InstId) {
        let mut inst = self.old.inst(id).clone();
        let ty = self.old.inst_ty(id);
        inst.map_operands(|v| self.map(v));
        let new_id = {
            // Append through the builder's current block by re-adding.

            self.push_inst(inst, ty)
        };
        self.env.insert(Value::Inst(id), new_id);
    }

    fn push_inst(&mut self, inst: Inst, ty: Ty) -> Value {
        // FunctionBuilder has no raw-push; emulate with its typed methods
        // where possible. Instead we extend the builder via a generic hook:
        self.fb.push_raw(inst, ty)
    }

    fn copy_block(&mut self, b: BlockId) {
        for &id in &self.old.block(b).insts.clone() {
            if self.env.contains_key(&Value::Inst(id)) {
                continue; // φ handled by structure emitters
            }
            self.copy_inst(id);
        }
        if let Terminator::Ret(v) = &self.old.block(b).term {
            let v = v.map(|v| self.map(v));
            self.fb.ret(v);
        }
    }

    fn copy_nodes(&mut self, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Block(b) => self.copy_block(*b),
                Node::If {
                    cond_block,
                    then_nodes,
                    else_nodes,
                    join,
                } => self.copy_if(*cond_block, then_nodes, else_nodes, *join),
                Node::Loop { header, body, exit } => {
                    match self.plan_loop(*header, body) {
                        Ok(plan) => {
                            self.report.note_vectorized(&self.old.name, *header);
                            self.emit_vector_loop(*header, body, &plan);
                            // Remainder: the original loop, seeded from the
                            // vector loop's final state.
                            self.copy_loop(*header, body, *exit, Some(&plan));
                        }
                        Err(reason) => {
                            self.report.note_rejected(&self.old.name, *header, reason);
                            self.copy_loop_plain(*header, body, *exit);
                        }
                    }
                }
            }
        }
    }

    fn copy_if(
        &mut self,
        cond_block: BlockId,
        then_nodes: &[Node],
        else_nodes: &[Node],
        join: BlockId,
    ) {
        self.copy_block(cond_block);
        let cond = match &self.old.block(cond_block).term {
            Terminator::CondBr { cond, .. } => self.map(*cond),
            _ => unreachable!("structurizer guarantees condbr"),
        };
        let phis = self.old_phis(join);
        let mut then_blocks = Vec::new();
        Self::blocks_in(then_nodes, &mut then_blocks);

        let pred_block = self.fb.current_block();
        // Pre-map empty-arm φ edges before sealing this block.
        let pre_then: Option<Vec<Value>> = then_nodes.is_empty().then(|| {
            phis.iter()
                .map(|&p| self.map(self.phi_edge(p, |b| b == cond_block)))
                .collect()
        });
        let pre_else: Option<Vec<Value>> = else_nodes.is_empty().then(|| {
            phis.iter()
                .map(|&p| self.map(self.phi_edge(p, |b| b == cond_block)))
                .collect()
        });

        let then_blk = (!then_nodes.is_empty()).then(|| self.fb.new_block("av.then"));
        let else_blk = (!else_nodes.is_empty()).then(|| self.fb.new_block("av.else"));
        let join_blk = self.fb.new_block("av.join");
        self.fb.cond_br(
            cond,
            then_blk.unwrap_or(join_blk),
            else_blk.unwrap_or(join_blk),
        );

        let (then_exit, then_vals) = if let Some(tb) = then_blk {
            self.fb.switch_to(tb);
            self.copy_nodes(then_nodes);
            let exit = self.fb.current_block();
            let vals: Vec<Value> = phis
                .iter()
                .map(|&p| self.map(self.phi_edge(p, |b| then_blocks.contains(&b))))
                .collect();
            self.fb.br(join_blk);
            (exit, vals)
        } else {
            (pred_block, pre_then.expect("precomputed"))
        };
        let (else_exit, else_vals) = if let Some(eb) = else_blk {
            self.fb.switch_to(eb);
            self.copy_nodes(else_nodes);
            let exit = self.fb.current_block();
            let vals: Vec<Value> = phis
                .iter()
                .map(|&p| {
                    self.map(self.phi_edge(p, |b| !then_blocks.contains(&b) && b != cond_block))
                })
                .collect();
            self.fb.br(join_blk);
            (exit, vals)
        } else {
            (pred_block, pre_else.expect("precomputed"))
        };

        self.fb.switch_to(join_blk);
        for ((p, tv), ev) in phis.iter().zip(then_vals).zip(else_vals) {
            let np = self.fb.phi(vec![(then_exit, tv), (else_exit, ev)]);
            self.env.insert(Value::Inst(*p), np);
        }
    }

    fn copy_loop_plain(&mut self, header: BlockId, body: &[Node], exit: BlockId) {
        self.copy_loop(header, body, exit, None);
    }

    /// Copies the original loop. With a `seed` plan, the loop-carried φs
    /// start from the vector loop's final state (IV and reduction partials
    /// bound in `env` by `emit_vector_loop`).
    fn copy_loop(&mut self, header: BlockId, body: &[Node], _exit: BlockId, seed: Option<&Plan>) {
        let latch = self.latch_of(header);
        let phis = self.old_phis(header);

        let pre = self.fb.current_block();
        let header_blk = self.fb.new_block("av.loop.header");
        let body_blk = self.fb.new_block("av.loop.body");
        let exit_blk = self.fb.new_block("av.loop.exit");

        // Seeded φ inits come from env bindings made by the vector loop.
        let inits: Vec<Value> = phis
            .iter()
            .map(|&p| {
                if let Some(plan) = seed {
                    if p == plan.iv || plan.reductions.iter().any(|r| r.phi == p) {
                        return self.env[&Value::Inst(p)];
                    }
                }
                self.map(self.phi_edge(p, |b| b != latch))
            })
            .collect();

        self.fb.br(header_blk);
        self.fb.switch_to(header_blk);
        let mut new_phis = Vec::new();
        for (p, init) in phis.iter().zip(&inits) {
            let ty = self.old.inst_ty(*p);
            let np = self.fb.phi_typed(ty, vec![(pre, *init)]);
            self.env.insert(Value::Inst(*p), np);
            new_phis.push(np);
        }
        // Header straight-line code + terminator.
        for &id in &self.old.block(header).insts.clone() {
            if matches!(self.old.inst(id), Inst::Phi { .. }) {
                continue;
            }
            self.copy_inst(id);
        }
        let cond = match &self.old.block(header).term {
            Terminator::CondBr { cond, .. } => self.map(*cond),
            _ => unreachable!(),
        };
        self.fb.cond_br(cond, body_blk, exit_blk);

        self.fb.switch_to(body_blk);
        self.copy_nodes(body);
        let latch_new = self.fb.current_block();
        for (p, np) in phis.iter().zip(&new_phis) {
            let backedge = self.map(self.phi_edge(*p, |b| b == latch));
            self.fb.phi_add_incoming(*np, latch_new, backedge);
        }
        self.fb.br(header_blk);
        self.fb.switch_to(exit_blk);
    }

    // ---- legality ----------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn plan_loop(&self, header: BlockId, body: &[Node]) -> Result<Plan, String> {
        // Innermost, straight-line body only.
        if !body.iter().all(|n| matches!(n, Node::Block(_))) {
            return Err("control flow in loop body".into());
        }
        let body_blocks: Vec<BlockId> = body
            .iter()
            .map(|n| match n {
                Node::Block(b) => *b,
                _ => unreachable!(),
            })
            .collect();
        let latch = self.latch_of(header);

        // Header: φs then exactly one compare feeding the terminator.
        let phis = self.old_phis(header);
        let header_rest: Vec<InstId> = self
            .old
            .block(header)
            .insts
            .iter()
            .copied()
            .filter(|&i| !matches!(self.old.inst(i), Inst::Phi { .. }))
            .collect();
        let cond_val = match &self.old.block(header).term {
            Terminator::CondBr { cond, .. } => *cond,
            _ => return Err("loop header terminator is not a branch".into()),
        };
        if header_rest.len() != 1 || Value::Inst(header_rest[0]) != cond_val {
            return Err("loop header computes more than the exit condition".into());
        }
        let (pred, cmp_a, cmp_b) = match self.old.inst(header_rest[0]) {
            Inst::Cmp { pred, a, b } => (*pred, *a, *b),
            _ => return Err("exit condition is not a compare".into()),
        };
        if !matches!(pred, CmpPred::Slt | CmpPred::Ult) {
            return Err(format!("unsupported exit predicate {}", pred.mnemonic()));
        }

        // Identify the IV among the φs.
        let in_loop: HashSet<InstId> = {
            let mut s: HashSet<InstId> = self.old.block(header).insts.iter().copied().collect();
            for &b in &body_blocks {
                s.extend(self.old.block(b).insts.iter().copied());
            }
            s
        };
        let mut iv = None;
        for &p in &phis {
            if Value::Inst(p) != cmp_a {
                continue;
            }
            let back = self.phi_edge(p, |b| b == latch);
            if let Value::Inst(upd) = back {
                if let Inst::Bin {
                    op: BinOp::Add,
                    a,
                    b,
                } = self.old.inst(upd)
                {
                    let step = match (a, b) {
                        (x, Value::Const(c)) if *x == Value::Inst(p) => c.as_i64(),
                        (Value::Const(c), x) if *x == Value::Inst(p) => c.as_i64(),
                        _ => continue,
                    };
                    if step > 0 {
                        iv = Some((p, step));
                    }
                }
            }
        }
        let Some((iv, step)) = iv else {
            return Err("no canonical induction variable".into());
        };
        // Bound must be invariant.
        let invariant = |v: Value| match v {
            Value::Const(_) | Value::Param(_) => true,
            Value::Inst(i) => !in_loop.contains(&i),
        };
        if !invariant(cmp_b) {
            return Err("loop bound is not invariant".into());
        }

        // Other φs must be reductions.
        let mut reductions = Vec::new();
        for &p in &phis {
            if p == iv {
                continue;
            }
            let back = self.phi_edge(p, |b| b == latch);
            let Value::Inst(upd) = back else {
                return Err("non-reduction loop-carried value".into());
            };
            let Inst::Bin { op, a, b } = self.old.inst(upd) else {
                return Err("non-reduction loop-carried value".into());
            };
            let ok_op = matches!(
                op,
                BinOp::Add
                    | BinOp::FAdd
                    | BinOp::SMin
                    | BinOp::SMax
                    | BinOp::UMin
                    | BinOp::UMax
                    | BinOp::FMin
                    | BinOp::FMax
                    | BinOp::And
                    | BinOp::Or
                    | BinOp::Xor
            );
            if !ok_op || (*a != Value::Inst(p) && *b != Value::Inst(p)) {
                return Err("loop-carried value is not a supported reduction".into());
            }
            // The φ must not be used elsewhere inside the loop.
            for &i in &in_loop {
                if i == upd {
                    continue;
                }
                if self.old.inst(i).operands().contains(&Value::Inst(p)) {
                    return Err("reduction value used inside the loop".into());
                }
            }
            reductions.push(Reduction {
                phi: p,
                op: *op,
                update: upd,
            });
        }

        // Classify body values.
        let mut body_insts: Vec<InstId> = Vec::new();
        for &b in &body_blocks {
            body_insts.extend(self.old.block(b).insts.iter().copied());
        }
        let scev = classify(self.old, iv, &in_loop, &body_insts);

        // Memory legality + widest type for the VF.
        let mut widest_bits = 8u32;
        let mut refs: Vec<(bool, Value, Lin, u32)> = Vec::new(); // (is_store, root, lin, elem_bits)
        for &id in &body_insts {
            let inst = self.old.inst(id);
            let ty = self.old.inst_ty(id);
            if let Some(e) = ty.elem() {
                widest_bits = widest_bits.max(e.bits());
            }
            match inst {
                Inst::Load { ptr, .. } | Inst::Store { ptr, .. } => {
                    let is_store = matches!(inst, Inst::Store { .. });
                    let elem = match inst {
                        Inst::Load { .. } => ty.elem().expect("load elem"),
                        Inst::Store { val, .. } => {
                            self.old.value_ty(*val).elem().expect("store elem")
                        }
                        _ => unreachable!(),
                    };
                    widest_bits = widest_bits.max(elem.bits());
                    let s = match ptr {
                        Value::Inst(pi) => {
                            scev.get(pi).cloned().unwrap_or(Scev::Other).lin_of(*ptr)
                        }
                        other => Some(Lin {
                            pieces: vec![(*other, 1)],
                            iv_scale: 0,
                            konst: 0,
                        }),
                    };
                    let Some(lin) = s else {
                        return Err("non-affine address".into());
                    };
                    let stride = lin.iv_scale * step;
                    if is_store {
                        if stride != elem.size_bytes() as i64 {
                            return Err(format!(
                                "store stride {stride} ≠ element size {}",
                                elem.size_bytes()
                            ));
                        }
                    } else if stride != elem.size_bytes() as i64 && stride != 0 {
                        return Err(format!(
                            "load stride {stride} is neither 0 nor the element size"
                        ));
                    }
                    refs.push((is_store, base_root(self.old, *ptr), lin, elem.bits()));
                }
                Inst::Call { .. } => return Err("call in loop body".into()),
                Inst::Intrin { kind, .. } => match kind {
                    Intrinsic::Fma => {}
                    Intrinsic::Math(_) => {
                        return Err("math library call in loop body (no veclib)".into())
                    }
                    other => return Err(format!("intrinsic {} in loop body", other.name())),
                },
                Inst::Phi { .. } => return Err("φ in straight-line body".into()),
                Inst::Alloca { .. } => return Err("alloca in loop body".into()),
                _ => {}
            }
        }

        // Dependence check.
        let noalias_root = |v: Value| match v {
            Value::Param(i) => self.old.params[i as usize].noalias,
            _ => false,
        };
        for (i, a) in refs.iter().enumerate() {
            for b in refs.iter().skip(i + 1) {
                if !(a.0 || b.0) {
                    continue; // two loads never conflict
                }
                if a.1 == b.1 {
                    // Same base: require identical affine address.
                    if a.2 != b.2 {
                        return Err("possible loop-carried dependence (same base, \
                                    different offsets)"
                            .into());
                    }
                } else if !(noalias_root(a.1) || noalias_root(b.1)) {
                    return Err("may-alias bases without `restrict`".into());
                }
            }
        }

        let vf = (self.opts.vector_bits / widest_bits).max(2);
        let init = self.phi_edge(iv, |b| b != latch);
        Ok(Plan {
            iv,
            step,
            init,
            bound: cmp_b,
            pred,
            reductions,
            vf,
            scev,
            body_insts,
        })
    }

    // ---- vector emission -----------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn emit_vector_loop(&mut self, _header: BlockId, _body: &[Node], plan: &Plan) {
        let vf = plan.vf;
        let iv_ty = self.old.inst_ty(plan.iv);
        let iv_elem = iv_ty.elem().expect("IV is an integer");
        let init = self.map(plan.init);
        let bound = self.map(plan.bound);

        let pre = self.fb.current_block();
        let vheader = self.fb.new_block("av.vec.header");
        let vbody = self.fb.new_block("av.vec.body");
        let vmid = self.fb.new_block("av.vec.mid");

        // Reduction inits: lane 0 carries the scalar init, others identity.
        let red_inits: Vec<Value> = plan
            .reductions
            .iter()
            .map(|r| {
                let ty = self.old.inst_ty(r.phi);
                let e = ty.elem().expect("reduction elem");
                let ident = reduction_identity(r.op, e);
                let splat = self.fb.const_vec(e, vec![ident; vf as usize]);
                let init_scalar = self.map(self.phi_edge(r.phi, |b| b != self.latch_of(_header)));
                self.fb
                    .insert(splat, Value::Const(Const::i64(0)), init_scalar)
            })
            .collect();

        self.fb.br(vheader);
        self.fb.switch_to(vheader);
        let viv = self.fb.phi_typed(iv_ty, vec![(pre, init)]);
        let vreds: Vec<Value> = plan
            .reductions
            .iter()
            .zip(&red_inits)
            .map(|(r, ri)| {
                let ty = self.old.inst_ty(r.phi);
                let e = ty.elem().expect("reduction elem");
                self.fb.phi_typed(Ty::vec(e, vf), vec![(pre, *ri)])
            })
            .collect();
        let last_off = Value::Const(Const::new(iv_elem, ((vf as i64 - 1) * plan.step) as u64));
        let last = self.fb.bin(BinOp::Add, viv, last_off);
        let ok = self.fb.cmp(plan.pred, last, bound);
        self.fb.cond_br(ok, vbody, vmid);

        // Vector body.
        self.fb.switch_to(vbody);
        let mut venv: HashMap<InstId, VForm> = HashMap::new();
        venv.insert(
            plan.iv,
            VForm::Lin(
                viv,
                Lin {
                    pieces: vec![],
                    iv_scale: 1,
                    konst: 0,
                },
            ),
        );
        for (r, vr) in plan.reductions.iter().zip(&vreds) {
            venv.insert(r.phi, VForm::Vec(*vr));
        }
        for &id in &plan.body_insts {
            self.vectorize_body_inst(id, plan, &mut venv, viv);
        }
        let latch_new = self.fb.current_block();
        let stride = Value::Const(Const::new(iv_elem, (vf as i64 * plan.step) as u64));
        let viv_next = self.fb.bin(BinOp::Add, viv, stride);
        self.fb.phi_add_incoming(viv, latch_new, viv_next);
        for (r, vr) in plan.reductions.iter().zip(&vreds) {
            let next = match &venv[&r.update] {
                VForm::Vec(v) => *v,
                _ => unreachable!("reduction update is a vector op"),
            };
            self.fb.phi_add_incoming(*vr, latch_new, next);
        }
        self.fb.br(vheader);

        // Middle block: horizontal reduce, bind final IV / partials in env
        // so the scalar remainder loop starts from them.
        self.fb.switch_to(vmid);
        self.env.insert(Value::Inst(plan.iv), viv);
        for (r, vr) in plan.reductions.iter().zip(&vreds) {
            let rop = match r.op {
                BinOp::Add | BinOp::FAdd => ReduceOp::Add,
                BinOp::SMin => ReduceOp::SMin,
                BinOp::SMax => ReduceOp::SMax,
                BinOp::UMin => ReduceOp::UMin,
                BinOp::UMax => ReduceOp::UMax,
                BinOp::FMin => ReduceOp::FMin,
                BinOp::FMax => ReduceOp::FMax,
                BinOp::And => ReduceOp::And,
                BinOp::Or => ReduceOp::Or,
                BinOp::Xor => ReduceOp::Xor,
                _ => unreachable!("checked in plan_loop"),
            };
            let partial = self.fb.reduce(rop, *vr, None);
            self.env.insert(Value::Inst(r.phi), partial);
        }
    }

    fn vec_of(&mut self, v: Value, plan: &Plan, venv: &HashMap<InstId, VForm>) -> Value {
        let vf = plan.vf;
        match v {
            Value::Const(c) => self.fb.splat(Value::Const(c), vf),
            Value::Param(_) => {
                let m = self.map(v);
                self.fb.splat(m, vf)
            }
            Value::Inst(i) => match venv.get(&i) {
                Some(VForm::Vec(nv)) => *nv,
                Some(VForm::Lin(scalar, lin)) => {
                    let e = self
                        .old
                        .value_ty(v)
                        .elem()
                        .expect("linear values are int/ptr");
                    let lane_step = lin.iv_scale.wrapping_mul(plan.step) as u64;
                    let offsets: Vec<u64> = (0..vf as u64)
                        .map(|l| l.wrapping_mul(lane_step) & e.bit_mask())
                        .collect();
                    let s = self.fb.splat(*scalar, vf);
                    if offsets.iter().all(|&o| o == 0) {
                        s
                    } else if e == ScalarTy::Ptr {
                        let idx = self.fb.const_vec(ScalarTy::I64, offsets);
                        self.fb.gep(s, idx, 1)
                    } else {
                        let offs = self.fb.const_vec(e, offsets);
                        self.fb.bin(BinOp::Add, s, offs)
                    }
                }
                Some(VForm::Uniform(nv)) => {
                    let nv = *nv;
                    self.fb.splat(nv, vf)
                }
                None => {
                    // Defined outside the loop: invariant.
                    let m = self.map(v);
                    self.fb.splat(m, vf)
                }
            },
        }
    }

    /// Scalar copy of a Lin/Inv body value at the current IV.
    fn scalar_copy(&mut self, id: InstId, venv: &mut HashMap<InstId, VForm>, lin: Lin) {
        let mut inst = self.old.inst(id).clone();
        let ty = self.old.inst_ty(id);
        let old = self.old;
        let env = &self.env;
        inst.map_operands(|v| match v {
            Value::Inst(i) => match venv.get(&i) {
                Some(VForm::Lin(s, _)) | Some(VForm::Uniform(s)) => *s,
                Some(VForm::Vec(_)) => {
                    unreachable!("linear value cannot have vector operands")
                }
                None => {
                    let _ = old;
                    *env.get(&v).expect("invariant operand mapped")
                }
            },
            other => other,
        });
        let nv = self.fb.push_raw(inst, ty);
        venv.insert(id, VForm::Lin(nv, lin));
    }

    #[allow(clippy::too_many_lines)]
    fn vectorize_body_inst(
        &mut self,
        id: InstId,
        plan: &Plan,
        venv: &mut HashMap<InstId, VForm>,
        _viv: Value,
    ) {
        let vf = plan.vf;
        let inst = self.old.inst(id).clone();
        let ty = self.old.inst_ty(id);
        // Linear & invariant values stay scalar.
        match plan.scev.get(&id) {
            Some(Scev::Lin(l)) => {
                let l = l.clone();
                self.scalar_copy(id, venv, l);
                return;
            }
            Some(Scev::Inv) => {
                // Recompute invariantly (cheap; a real compiler would hoist).
                let lin = Lin {
                    pieces: vec![],
                    iv_scale: 0,
                    konst: 0,
                };
                self.scalar_copy(id, venv, lin);
                return;
            }
            _ => {}
        }
        match &inst {
            Inst::Load { ptr, .. } => {
                let elem = ty.elem().expect("load elem");
                // Address is linear by legality; find its scalar copy.
                let addr = match ptr {
                    Value::Inst(pi) => match &venv[pi] {
                        VForm::Lin(s, l) => (*s, l.clone()),
                        _ => unreachable!("legal loads have linear addresses"),
                    },
                    other => (
                        self.map(*other),
                        Lin {
                            pieces: vec![],
                            iv_scale: 0,
                            konst: 0,
                        },
                    ),
                };
                let stride = addr.1.iv_scale * plan.step;
                if stride == 0 {
                    // Invariant load: scalar once per vector iteration.
                    let s = self.fb.load(Ty::Scalar(elem), addr.0, None);
                    venv.insert(id, VForm::Uniform(s));
                } else {
                    let v = self.fb.load(Ty::vec(elem, vf), addr.0, None);
                    venv.insert(id, VForm::Vec(v));
                }
            }
            Inst::Store { ptr, val, .. } => {
                let addr = match ptr {
                    Value::Inst(pi) => match &venv[pi] {
                        VForm::Lin(s, _) => *s,
                        _ => unreachable!("legal stores have linear addresses"),
                    },
                    other => self.map(*other),
                };
                let vval = self.vec_of(*val, plan, venv);
                self.fb.store(addr, vval, None);
            }
            Inst::Bin { op, a, b } => {
                let va = self.vec_of(*a, plan, venv);
                let vb = self.vec_of(*b, plan, venv);
                let nv = self.fb.bin(*op, va, vb);
                venv.insert(id, VForm::Vec(nv));
            }
            Inst::Un { op, a } => {
                let va = self.vec_of(*a, plan, venv);
                let nv = self.fb.un(*op, va);
                venv.insert(id, VForm::Vec(nv));
            }
            Inst::Cmp { pred, a, b } => {
                let va = self.vec_of(*a, plan, venv);
                let vb = self.vec_of(*b, plan, venv);
                let nv = self.fb.cmp(*pred, va, vb);
                venv.insert(id, VForm::Vec(nv));
            }
            Inst::Cast { kind, a } => {
                let va = self.vec_of(*a, plan, venv);
                let elem = ty.elem().expect("cast elem");
                let nv = self.fb.cast(*kind, va, Ty::vec(elem, vf));
                venv.insert(id, VForm::Vec(nv));
            }
            Inst::Select { cond, t, f } => {
                let vc = self.vec_of(*cond, plan, venv);
                let vt = self.vec_of(*t, plan, venv);
                let vfv = self.vec_of(*f, plan, venv);
                let nv = self.fb.select(vc, vt, vfv);
                venv.insert(id, VForm::Vec(nv));
            }
            Inst::Intrin {
                kind: Intrinsic::Fma,
                args,
            } => {
                let elem = ty.elem().expect("fma elem");
                let vals: Vec<Value> = args.iter().map(|&a| self.vec_of(a, plan, venv)).collect();
                let nv = self.fb.intrin(Intrinsic::Fma, vals, Ty::vec(elem, vf));
                venv.insert(id, VForm::Vec(nv));
            }
            Inst::Gep { base, index, scale } => {
                // Non-linear gep (varying index would have failed loads, but
                // a gep feeding nothing memory-related can appear).
                let vb = self.vec_of(*base, plan, venv);
                let vi = self.vec_of(*index, plan, venv);
                let nv = self.fb.gep(vb, vi, *scale);
                venv.insert(id, VForm::Vec(nv));
            }
            other => unreachable!("legality rejected {other:?}"),
        }
    }
}

#[derive(Clone)]
enum VForm {
    /// Vector value in the new function.
    Vec(Value),
    /// Linear scalar copy (value at lane 0) with its linear form.
    Lin(Value, Lin),
    /// Loop-invariant scalar (splat on use).
    Uniform(Value),
}

fn reduction_identity(op: BinOp, e: ScalarTy) -> u64 {
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor if e.is_float() => {
            if e == ScalarTy::F32 {
                0.0f32.to_bits() as u64
            } else {
                0.0f64.to_bits()
            }
        }
        BinOp::FAdd => {
            if e == ScalarTy::F32 {
                0.0f32.to_bits() as u64
            } else {
                0.0f64.to_bits()
            }
        }
        BinOp::And => e.bit_mask(),
        BinOp::SMin => psir::reduce_identity(ReduceOp::SMin, e),
        BinOp::SMax => psir::reduce_identity(ReduceOp::SMax, e),
        BinOp::UMin => psir::reduce_identity(ReduceOp::UMin, e),
        BinOp::UMax => psir::reduce_identity(ReduceOp::UMax, e),
        BinOp::FMin => psir::reduce_identity(ReduceOp::FMin, e),
        BinOp::FMax => psir::reduce_identity(ReduceOp::FMax, e),
        _ => 0,
    }
}

/// Auto-vectorizes one function. SPMD-annotated functions are returned
/// unchanged (they are not serial code). Returns the new function and a
/// per-loop report.
pub fn autovectorize_function(f: &Function, opts: &AutovecOptions) -> (Function, AutovecReport) {
    if f.spmd.is_some() {
        return (f.clone(), AutovecReport::default());
    }
    // Canonicalize first: dependence legality needs structurally equal
    // addresses to be the same SSA value.
    let mut f = f.clone();
    parsimony::opt::cse(&mut f);
    let f = &f;
    let tree = match structurize(f) {
        Ok(t) => t,
        Err(e) => {
            let mut r = AutovecReport::default();
            r.note_rejected(&f.name, f.entry, format!("not structurized: {e}"));
            return (f.clone(), r);
        }
    };
    let fb = FunctionBuilder::new(f.name.clone(), f.params.clone(), f.ret);
    let mut c = Copier {
        old: f,
        opts,
        fb,
        env: HashMap::new(),
        report: AutovecReport::default(),
        old_preds: f.predecessors(),
        dom: psir::DomTree::compute(f),
    };
    c.copy_nodes(&tree.roots);
    let mut out = c.fb.finish();
    if opts.slp {
        crate::slp::slp_function(&mut out, opts.vector_bits);
    }
    parsimony::opt::cleanup(&mut out);
    (out, c.report)
}

/// Auto-vectorizes every serial function in a module.
pub fn autovectorize_module(m: &Module, opts: &AutovecOptions) -> (Module, Vec<AutovecReport>) {
    let mut out = Module::new();
    let mut reports = Vec::new();
    for f in m.functions() {
        let (nf, rep) = autovectorize_function(f, opts);
        out.add_function(nf);
        reports.push(rep);
    }
    (out, reports)
}

/// Builder extension used by the copier (raw instruction push).
trait PushRaw {
    fn push_raw(&mut self, inst: Inst, ty: Ty) -> Value;
}

impl PushRaw for FunctionBuilder {
    fn push_raw(&mut self, inst: Inst, ty: Ty) -> Value {
        push_raw_impl(self, inst, ty)
    }
}

fn push_raw_impl(fb: &mut FunctionBuilder, inst: Inst, ty: Ty) -> Value {
    match inst {
        Inst::Bin { op, a, b } => fb.bin(op, a, b),
        Inst::Un { op, a } => fb.un(op, a),
        Inst::Cmp { pred, a, b } => fb.cmp(pred, a, b),
        Inst::Cast { kind, a } => fb.cast(kind, a, ty),
        Inst::Select { cond, t, f } => fb.select(cond, t, f),
        Inst::Splat { a } => fb.splat(a, ty.lanes()),
        Inst::ConstVec { elem, lanes } => fb.const_vec(elem, lanes),
        Inst::Extract { v, lane } => fb.extract(v, lane),
        Inst::Insert { v, lane, x } => fb.insert(v, lane, x),
        Inst::ShuffleConst { v, pattern } => fb.shuffle_const(v, pattern),
        Inst::ShuffleVar { v, idx } => fb.shuffle_var(v, idx),
        Inst::Load { ptr, mask } => fb.load(ty, ptr, mask),
        Inst::Store { ptr, val, mask } => {
            fb.store(ptr, val, mask);
            Value::Const(Const::i32(0))
        }
        Inst::Alloca { size } => fb.alloca(size),
        Inst::Gep { base, index, scale } => fb.gep(base, index, scale),
        Inst::Call { callee, args } => fb.call(callee, ty, args),
        Inst::Intrin { kind, args } => fb.intrin(kind, args, ty),
        Inst::Phi { incoming } => fb.phi_typed(ty, incoming),
        Inst::Reduce { op, v, mask } => fb.reduce(op, v, mask),
    }
}

//! A small superword-level-parallelism (SLP) pass.
//!
//! Finds groups of isomorphic scalar expression trees rooted at stores to
//! consecutive addresses within one basic block (the classic Larsen &
//! Amarasinghe seed) and rewrites them as vector operations. This is the
//! baseline's answer to manually unrolled code; like the production pass it
//! only handles straight-line, constant-offset patterns.

use psir::{BlockId, Const, Function, Inst, InstId, ScalarTy, Ty, Value};
use std::collections::HashMap;

/// One store's address decomposed as `root + konst` bytes.
fn addr_form(f: &Function, ptr: Value) -> Option<(Value, i64)> {
    match ptr {
        Value::Inst(i) => match f.inst(i) {
            Inst::Gep { base, index, scale } => {
                let (root, k0) = addr_form(f, *base)?;
                let c = index.as_const()?;
                Some((root, k0 + c.as_i64() * *scale as i64))
            }
            _ => Some((ptr, 0)),
        },
        other => Some((other, 0)),
    }
}

/// Whether the instruction tree under `v` in `block` is vectorizable as a
/// lane of a group, and isomorphic to the lane-0 tree. Returns a per-lane
/// descriptor used for emission.
#[derive(Debug, Clone, PartialEq)]
enum LaneExpr {
    /// Load from `root + offset`.
    Load(Value, i64, ScalarTy),
    /// Same scalar value in every lane.
    Shared(Value),
    /// Constant (possibly different per lane).
    Konst(Const),
    /// Binary op of two lane expressions.
    Bin(psir::BinOp, Box<LaneExpr>, Box<LaneExpr>),
    /// Unary op.
    Un(psir::UnOp, Box<LaneExpr>),
}

fn lane_expr(f: &Function, v: Value, block_insts: &[InstId], depth: usize) -> Option<LaneExpr> {
    if depth > 6 {
        return None;
    }
    match v {
        Value::Const(c) => Some(LaneExpr::Konst(c)),
        Value::Param(_) => Some(LaneExpr::Shared(v)),
        Value::Inst(i) => {
            if !block_insts.contains(&i) {
                return Some(LaneExpr::Shared(v));
            }
            match f.inst(i) {
                Inst::Load { ptr, mask: None } => {
                    let (root, k) = addr_form(f, *ptr)?;
                    let e = f.inst_ty(i).elem()?;
                    Some(LaneExpr::Load(root, k, e))
                }
                Inst::Bin { op, a, b } => Some(LaneExpr::Bin(
                    *op,
                    Box::new(lane_expr(f, *a, block_insts, depth + 1)?),
                    Box::new(lane_expr(f, *b, block_insts, depth + 1)?),
                )),
                Inst::Un { op, a } => Some(LaneExpr::Un(
                    *op,
                    Box::new(lane_expr(f, *a, block_insts, depth + 1)?),
                )),
                _ => None,
            }
        }
    }
}

/// Whether `lanes` are isomorphic with consecutive loads (stride = element
/// size) or identical shared scalars.
fn isomorphic(lanes: &[LaneExpr]) -> bool {
    let first = &lanes[0];
    match first {
        LaneExpr::Load(root, k0, e) => lanes.iter().enumerate().all(|(l, x)| match x {
            LaneExpr::Load(r, k, ee) => {
                r == root && ee == e && *k == k0 + (l as i64) * e.size_bytes() as i64
            }
            _ => false,
        }),
        LaneExpr::Shared(v) => lanes
            .iter()
            .all(|x| matches!(x, LaneExpr::Shared(w) if w == v)),
        LaneExpr::Konst(_) => lanes.iter().all(|x| matches!(x, LaneExpr::Konst(_))),
        LaneExpr::Bin(op, a0, b0) => {
            let mut asub = vec![(**a0).clone()];
            let mut bsub = vec![(**b0).clone()];
            for x in &lanes[1..] {
                match x {
                    LaneExpr::Bin(o, a, b) if o == op => {
                        asub.push((**a).clone());
                        bsub.push((**b).clone());
                    }
                    _ => return false,
                }
            }
            isomorphic(&asub) && isomorphic(&bsub)
        }
        LaneExpr::Un(op, a0) => {
            let mut sub = vec![(**a0).clone()];
            for x in &lanes[1..] {
                match x {
                    LaneExpr::Un(o, a) if o == op => sub.push((**a).clone()),
                    _ => return false,
                }
            }
            isomorphic(&sub)
        }
    }
}

fn emit_group(
    f: &mut Function,
    lanes: &[LaneExpr],
    elem: ScalarTy,
    new_insts: &mut Vec<InstId>,
) -> Value {
    let n = lanes.len() as u32;
    match &lanes[0] {
        LaneExpr::Load(root, k0, e) => {
            let base = if *k0 == 0 {
                *root
            } else {
                let id = f.add_inst(
                    Inst::Gep {
                        base: *root,
                        index: Value::Const(Const::i64(*k0)),
                        scale: 1,
                    },
                    Ty::Scalar(ScalarTy::Ptr),
                );
                new_insts.push(id);
                Value::Inst(id)
            };
            let id = f.add_inst(
                Inst::Load {
                    ptr: base,
                    mask: None,
                },
                Ty::vec(*e, n),
            );
            new_insts.push(id);
            Value::Inst(id)
        }
        LaneExpr::Shared(v) => {
            let id = f.add_inst(Inst::Splat { a: *v }, Ty::vec(elem, n));
            new_insts.push(id);
            Value::Inst(id)
        }
        LaneExpr::Konst(_) => {
            let bits: Vec<u64> = lanes
                .iter()
                .map(|l| match l {
                    LaneExpr::Konst(c) => c.bits,
                    _ => unreachable!(),
                })
                .collect();
            let id = f.add_inst(Inst::ConstVec { elem, lanes: bits }, Ty::vec(elem, n));
            new_insts.push(id);
            Value::Inst(id)
        }
        LaneExpr::Bin(op, ..) => {
            let asub: Vec<LaneExpr> = lanes
                .iter()
                .map(|l| match l {
                    LaneExpr::Bin(_, a, _) => (**a).clone(),
                    _ => unreachable!(),
                })
                .collect();
            let bsub: Vec<LaneExpr> = lanes
                .iter()
                .map(|l| match l {
                    LaneExpr::Bin(_, _, b) => (**b).clone(),
                    _ => unreachable!(),
                })
                .collect();
            let va = emit_group(f, &asub, elem, new_insts);
            let vb = emit_group(f, &bsub, elem, new_insts);
            let id = f.add_inst(
                Inst::Bin {
                    op: *op,
                    a: va,
                    b: vb,
                },
                Ty::vec(elem, n),
            );
            new_insts.push(id);
            Value::Inst(id)
        }
        LaneExpr::Un(op, _) => {
            let sub: Vec<LaneExpr> = lanes
                .iter()
                .map(|l| match l {
                    LaneExpr::Un(_, a) => (**a).clone(),
                    _ => unreachable!(),
                })
                .collect();
            let va = emit_group(f, &sub, elem, new_insts);
            let id = f.add_inst(Inst::Un { op: *op, a: va }, Ty::vec(elem, n));
            new_insts.push(id);
            Value::Inst(id)
        }
    }
}

fn try_block(f: &mut Function, b: BlockId, vector_bits: u32) -> usize {
    let insts = f.block(b).insts.clone();
    // Gather store seeds grouped by (root, elem).
    let mut stores: Vec<(usize, InstId, Value, i64, ScalarTy, Value)> = Vec::new();
    for (pos, &id) in insts.iter().enumerate() {
        if let Inst::Store {
            ptr,
            val,
            mask: None,
        } = f.inst(id)
        {
            let vty = f.value_ty(*val);
            if let (Some((root, k)), Ty::Scalar(e)) = (addr_form(f, *ptr), vty) {
                stores.push((pos, id, root, k, e, *val));
            }
        }
    }
    let mut vectorized = 0usize;
    let mut consumed: Vec<InstId> = Vec::new();
    // (store ids, address root, base offset, element type, lane expressions)
    type StoreGroup = (Vec<InstId>, Value, i64, ScalarTy, Vec<LaneExpr>);
    let mut groups: Vec<StoreGroup> = Vec::new();
    let mut by_root: HashMap<(Value, ScalarTy), Vec<(i64, usize)>> = HashMap::new();
    for (i, s) in stores.iter().enumerate() {
        by_root.entry((s.2, s.4)).or_default().push((s.3, i));
    }
    for ((_root, e), mut offs) in by_root {
        offs.sort();
        let esz = e.size_bytes() as i64;
        let want = (vector_bits / e.bits()).max(2) as usize;
        let mut i = 0;
        while i + want <= offs.len() {
            let window = &offs[i..i + want];
            let consecutive = window.windows(2).all(|w| w[1].0 - w[0].0 == esz);
            if !consecutive {
                i += 1;
                continue;
            }
            let chunk: Vec<usize> = window.iter().map(|&(_, si)| si).collect();
            let lanes: Option<Vec<LaneExpr>> = chunk
                .iter()
                .map(|&si| lane_expr(f, stores[si].5, &insts, 0))
                .collect();
            let Some(lanes) = lanes else {
                i += 1;
                continue;
            };
            if !isomorphic(&lanes) {
                i += 1;
                continue;
            }
            // Loads in the trees must not alias the stores being replaced:
            // conservative check — all loads read from a different root or
            // from offsets outside the written window. Skipped here because
            // the written window check needs the root; be conservative:
            let store_ids: Vec<InstId> = chunk.iter().map(|&si| stores[si].1).collect();
            groups.push((store_ids, stores[chunk[0]].2, stores[chunk[0]].3, e, lanes));
            i += want;
        }
    }

    for (store_ids, root, k0, e, lanes) in groups {
        let mut new_insts = Vec::new();
        let vec_val = emit_group(f, &lanes, e, &mut new_insts);
        let base = if k0 == 0 {
            root
        } else {
            let id = f.add_inst(
                Inst::Gep {
                    base: root,
                    index: Value::Const(Const::i64(k0)),
                    scale: 1,
                },
                Ty::Scalar(ScalarTy::Ptr),
            );
            new_insts.push(id);
            Value::Inst(id)
        };
        let st = f.add_inst(
            Inst::Store {
                ptr: base,
                val: vec_val,
                mask: None,
            },
            Ty::Void,
        );
        new_insts.push(st);
        // Replace the first store with the group, drop the others.
        let blk = f.block_mut(b);
        let first_pos = blk
            .insts
            .iter()
            .position(|i| *i == store_ids[0])
            .expect("store present");
        blk.insts.splice(first_pos..first_pos + 1, new_insts);
        blk.insts.retain(|i| !store_ids[1..].contains(i));
        consumed.extend(store_ids);
        vectorized += 1;
    }
    vectorized
}

/// Runs the SLP pass over every block of `f`. Returns the number of store
/// groups vectorized.
pub fn slp_function(f: &mut Function, vector_bits: u32) -> usize {
    let blocks: Vec<BlockId> = f.block_ids().collect();
    let mut total = 0;
    for b in blocks {
        total += try_block(f, b, vector_bits);
    }
    if total > 0 {
        parsimony::opt::dce(f);
    }
    total
}
